#!/usr/bin/env python3
"""Market-trend analysis (Section 1 / Figures 1, 2a, 2b).

The paper's economic argument, recomputed: commodity parts displace
special-purpose parts once they are "slow but vastly cheaper" and on a
steeper trend.  Prints the TOP500 architecture transition, both
performance-trend regressions, the 2013 gap, and the projected
crossover — plus the distributed-LU demo proving the whole stack
computes real numerics.

Usage::

    python examples/trend_analysis.py
"""

import numpy as np

from repro.analysis.figures import render_figure
from repro.apps.hpl import HPL, hpl_solve_from_factors
from repro.cluster.cluster import tibidabo
from repro.core import top500, trends
from repro.core.study import MobileSoCStudy


def main() -> None:
    study = MobileSoCStudy()

    print("Figure 1: the TOP500 architecture transitions")
    print("-" * 70)
    for year in (1993, 1997, 2001, 2005, 2009, 2013):
        x86, risc, vector = top500.TOP500_SHARE[year]
        print(
            f"  {year}: x86={x86:3d}  RISC={risc:3d}  vector/SIMD={vector:3d}"
            f"   -> {top500.dominant_class(year).upper()} era"
        )

    print("\nFigure 2a: vector vs commodity micro (1975-2000)")
    print("-" * 70)
    f2a = study.figure2a()
    print(
        f"  vector trend {f2a['vector_fit'].growth_per_year:.2f}x/yr, "
        f"micro {f2a['micro_fit'].growth_per_year:.2f}x/yr; "
        f"gap in 1995: {f2a['gap_1995']:.1f}x"
    )
    print(
        "  micros were ~10x slower yet ~30x cheaper -> they won anyway "
        "(ASCI Red, 1997)."
    )

    print("\nFigure 2b: server vs mobile (1990-2015)")
    print("-" * 70)
    f2b = study.figure2b()
    print(render_figure("figure2b", f2b))
    print(
        f"\n  gap in 2013: {f2b['gap_2013']:.0f}x; price gap "
        f"{f2b['price_ratio']:.0f}x (Xeon E5-2670 vs Tegra 3 volume price);"
    )
    print(
        f"  mobile doubling time "
        f"{f2b['mobile_fit'].doubling_time_years:.1f} yr vs server "
        f"{f2b['server_fit'].doubling_time_years:.1f} yr; trend crossover "
        f"~{f2b['crossover_year']:.0f}."
    )
    arg = trends.historical_cost_argument()
    print(
        f"  same-price-type comparison (Xeon vs Atom S1260): "
        f"{arg['server_vs_atom_price_gap']:.0f}x."
    )

    print("\nProof of life: a real distributed solve through the stack")
    print("-" * 70)
    cluster = tibidabo(4)
    hpl = HPL()
    n = 128
    a, lu, piv = hpl.factorise(cluster, 4, n, nb=32)
    b = np.sin(np.arange(float(n)))
    x = hpl_solve_from_factors(lu, piv, b)
    residual = float(np.max(np.abs(a @ x - b)))
    print(
        f"  4 simulated Tegra 2 ranks factorised a {n}x{n} system over the\n"
        f"  modelled GbE network; max residual |Ax-b| = {residual:.2e}"
    )


if __name__ == "__main__":
    main()
