#!/usr/bin/env python3
"""Quickstart: the paper's question and its headline answer in ~60 lines.

Runs the core of the SC'13 study:

1. the four evaluated platforms (Table 1),
2. one micro-kernel measured the paper's way (simulated execution +
   Yokogawa-style wall-power metering),
3. the headline cluster result — HPL on 96 Tibidabo nodes.

Usage::

    python examples/quickstart.py
"""

from repro import MobileSoCStudy, PLATFORMS, get_kernel
from repro.timing.measurement import measure_kernel


def main() -> None:
    print("Platforms under evaluation (Table 1)")
    print("-" * 60)
    for name, platform in PLATFORMS.items():
        soc = platform.soc
        print(
            f"  {name:14s} {soc.core.name:11s} "
            f"{soc.n_cores} cores @ {soc.max_freq_ghz} GHz  "
            f"peak {platform.peak_gflops():5.1f} GFLOPS, "
            f"{soc.memory.peak_bandwidth_gbs} GB/s"
        )

    print("\nOne micro-kernel, measured the paper's way (dmmm @ 1 GHz)")
    print("-" * 60)
    kernel = get_kernel("dmmm")
    for name, platform in PLATFORMS.items():
        run, energy = measure_kernel(platform, kernel, freq_ghz=1.0)
        print(
            f"  {name:14s} {run.time_s:5.2f} s/iter   "
            f"{energy.energy_j:6.2f} J/iter   bound: {run.bound}"
        )

    print("\nHeadline: HPL on 96 Tibidabo nodes (Section 4)")
    print("-" * 60)
    study = MobileSoCStudy()
    head = study.headline_hpl()
    print(f"  achieved    : {head['gflops']:.1f} GFLOPS   (paper:  97)")
    print(f"  efficiency  : {head['efficiency']:.1%}       (paper: 51%)")
    print(f"  Green500    : {head['mflops_per_watt']:.0f} MFLOPS/W (paper: 120)")

    print("\nAre mobile SoCs ready for HPC?")
    print("-" * 60)
    f2b = study.figure2b()
    print(
        f"  mobile trend grows {f2b['mobile_fit'].growth_per_year:.2f}x/yr vs "
        f"server {f2b['server_fit'].growth_per_year:.2f}x/yr;"
    )
    print(
        f"  gap today ~{f2b['gap_2013']:.0f}x, price gap ~"
        f"{f2b['price_ratio']:.0f}x, trend crossover ~"
        f"{f2b['crossover_year']:.0f}."
    )
    print(
        "  -> the paper's answer: not yet (no ECC, weak I/O, 32-bit), but\n"
        "     the economics that replaced vector CPUs are lining up again."
    )


if __name__ == "__main__":
    main()
