#!/usr/bin/env python3
"""What's missing, and who already has it (Sections 2, 5 and 6.3).

Walks the paper's closing argument end to end:

1. the Section 6.3 readiness checklist over the mobile SoCs,
2. the Section 2 server-class comparators built on the *same* ARM IP
   that already integrate the missing features — "all these limitations
   are design decisions",
3. the software-stack traps of Section 5 (armel CUDA, the OpenCL
   kernel's 1 GHz cap, ATLAS's build requirements), quantified,
4. the energy-to-solution bottom line against a Nehalem cluster [13].

Usage::

    python examples/readiness_and_stack.py
"""

from repro.arch.catalog import PLATFORMS, get_platform
from repro.arch.features import Feature, assess, gap_report
from repro.arch.servers import SERVER_PLATFORMS
from repro.core.energy_study import pde_solver_campaign
from repro.core.results import render_table
from repro.stack import Deployment
from repro.stack.deployment import stack_penalty_summary


def main() -> None:
    print("1. The Section 6.3 checklist")
    print("-" * 70)
    for line in gap_report(get_platform("Tegra2")):
        print(f"   {line}")

    print("\n2. Same IP, different integration choices (Section 2)")
    print("-" * 70)
    rows = []
    for name, p in {**PLATFORMS, **SERVER_PLATFORMS}.items():
        a = assess(p)
        rows.append(
            [
                name,
                p.soc.core.name,
                "yes" if Feature.ECC_MEMORY in a.supported else "-",
                "yes" if Feature.FAST_INTERCONNECT_IO in a.supported else "-",
                "yes" if Feature.ADDRESS_64BIT in a.supported else "-",
                f"{a.readiness_score:.0%}",
            ]
        )
    print(
        render_table(
            ["platform", "core", "ECC", "10GbE+", "64-bit", "ready"], rows
        )
    )
    print(
        "   -> the Calxeda part is a Cortex-A9 (Tegra's core) with ECC and\n"
        "      five 10GbE links; KeyStone II is a Cortex-A15 with a protocol\n"
        "      offload engine.  The gaps are choices, not physics."
    )

    print("\n3. The software-stack traps (Section 5), quantified")
    print("-" * 70)
    dep = Deployment(get_platform("Exynos5250"))
    baseline = dep.hpc_baseline()
    print(f"   baseline deployment: {len(baseline.install_order)} components, "
          f"abi={baseline.abi}, production={baseline.production_ready}")
    for note in baseline.build_notes:
        print(f"     note: {note}")
    for config, rel in stack_penalty_summary(
        get_platform("Exynos5250")
    ).items():
        print(f"   {config:22s}: {rel:.2f}x of hardfp@fmax DGEMM throughput")

    print("\n4. The bottom line vs a Nehalem cluster [13]")
    print("-" * 70)
    for app, r in pde_solver_campaign().items():
        print(
            f"   {app:10s}: {r.time_ratio:.1f}x slower, "
            f"{r.energy_ratio:.1f}x less energy to solution"
        )
    print(
        "\n   'If mobile processors add the required HPC features ... it will\n"
        "    likely be due to economic reasons, rather than fundamental\n"
        "    technology differences.'"
    )


if __name__ == "__main__":
    main()
