#!/usr/bin/env python3
"""Single-SoC evaluation (Section 3): Figures 3, 4, 5 end to end.

Sweeps every platform's DVFS table, serial and all-cores, measuring
simulated performance and wall energy with the power-meter model, then
runs the STREAM bandwidth comparison — and prints the same series the
paper plots.

Usage::

    python examples/single_soc_comparison.py
"""

from repro.analysis.figures import render_figure
from repro.core.results import render_table
from repro.core.study import MobileSoCStudy


def print_sweep(title: str, data: dict) -> None:
    print(f"\n{title}")
    print("-" * 72)
    rows = []
    for plat, pts in data.items():
        for p in pts:
            rows.append(
                [plat, p["freq_ghz"], round(p["speedup"], 2),
                 round(p["energy_norm"], 2)]
            )
    print(
        render_table(
            ["platform", "GHz", "speedup vs T2@1GHz", "energy (norm.)"], rows
        )
    )


def main() -> None:
    study = MobileSoCStudy()

    f3 = study.figure3()
    print_sweep("Figure 3: single-core frequency sweep", f3)
    print(render_figure("figure3", f3))

    f4 = study.figure4()
    print_sweep("Figure 4: multi-core (OpenMP) frequency sweep", f4)

    print("\nFigure 5: STREAM bandwidth (GB/s)")
    print("-" * 72)
    f5 = study.figure5()
    ops = ("Copy", "Scale", "Add", "Triad")
    for mode in ("single", "multi"):
        rows = [
            [plat] + [round(d[mode][op], 2) for op in ops]
            + [f"{d['efficiency_vs_peak']:.0%}"]
            for plat, d in f5.items()
        ]
        print(f"\n  {mode}-core:")
        print(render_table(["platform", *ops, "eff vs peak"], rows))

    print("\nKey observations (paper Section 3):")
    at = lambda plat, f: next(
        p for p in f3[plat] if abs(p["freq_ghz"] - f) < 1e-9
    )
    print(f"  Tegra 3 vs Tegra 2 @1GHz : {at('Tegra3', 1.0)['speedup']:.2f}x (paper 1.09x)")
    print(f"  Exynos  vs Tegra 2 @1GHz : {at('Exynos5250', 1.0)['speedup']:.2f}x (paper 1.30x)")
    print(f"  Exynos @1.7GHz           : {at('Exynos5250', 1.7)['speedup']:.2f}x (paper 2.3x)")
    print(f"  i7 @2.4GHz               : {at('Corei7-2760QM', 2.4)['speedup']:.2f}x (paper ~7-8x)")
    print("  Energy/iteration falls as frequency rises on every platform —")
    print("  the SoC is not the main power sink in these systems.")


if __name__ == "__main__":
    main()
