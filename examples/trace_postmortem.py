#!/usr/bin/env python3
"""Post-mortem trace analysis (the Paraver workflow of Sections 4-5).

The original study "discovered timeouts in post-mortem application trace
analysis".  This example reproduces the workflow on the simulated
cluster: run an application with tracing enabled, summarise the trace,
inject an NFS-style stall, and show the analyser catching it.

Usage::

    python examples/trace_postmortem.py
"""

from repro.cluster.cluster import tibidabo
from repro.mpi.api import SyntheticPayload
from repro.mpi.collectives import allreduce
from repro.obs.messages import MessageRecord, TraceAnalysis, traced_world


def hydro_like(ctx, steps=6, grid=800):
    halo = SyntheticPayload(grid * 2 * 8)
    for _ in range(steps):
        sends, recvs = [], []
        if ctx.rank + 1 < ctx.size:
            sends.append((ctx.rank + 1, halo, 10))
            recvs.append((ctx.rank + 1, 11))
        if ctx.rank - 1 >= 0:
            sends.append((ctx.rank - 1, halo, 11))
            recvs.append((ctx.rank - 1, 10))
        if sends:
            yield from ctx.exchange(sends, recvs)
        yield ctx.compute_flops(150.0 * grid * grid / ctx.size)
        yield from allreduce(ctx, 1e-3, op=min)
    return None


def main() -> None:
    cluster = tibidabo(32)
    print("Running HYDRO-like solver on 32 nodes with tracing enabled...")
    world, tracer = traced_world(32, cluster.network())
    world.run(hydro_like)
    analysis = tracer.analysis(32)

    print("\nTrace summary (the Paraver view):")
    for line in analysis.summary().splitlines():
        print(f"  {line}")

    matrix = analysis.comm_matrix_bytes()
    print("\nCommunication matrix (nearest-neighbour + collective tree):")
    nz = (matrix > 0).sum()
    print(f"  {nz} active (src,dst) pairs; "
          f"heaviest pair moves {matrix.max() / 1024:.1f} KiB")

    print("\nInjecting an NFS-style 45 s stall into the trace...")
    stalled = TraceAnalysis(
        analysis.records
        + [MessageRecord(7, 8, 99, 12800, 1.0, 46.0)],
        32,
    )
    culprits = stalled.stalls()
    print(f"  stall detector flags {len(culprits)} message(s):")
    for r in culprits:
        print(
            f"    rank {r.src} -> rank {r.dst}, tag {r.tag}: "
            f"{r.flight_time_s:.1f} s in flight "
            f"(median {stalled.median_flight_time_s() * 1e6:.0f} us)"
        )
    print(
        "\nThis is how the original team localised the Section 6.2 NFS\n"
        "timeouts before serialising the parallel I/O phases."
    )


if __name__ == "__main__":
    main()
