#!/usr/bin/env python3
"""Deploying Tibidabo (Sections 4 and 6): cluster bring-up, application
scalability, and the operational problems the paper reports.

Walks the full lifecycle:

1. boot 96 nodes (with the flaky-PCIe injector filtering some out),
2. schedule the benchmark campaign through the SLURM model,
3. run the five production applications (Figure 6),
4. check the NFS I/O phases against the 100 Mbit bottleneck,
5. report the headline HPL + Green500 numbers,
6. quantify what running without ECC and without heatsinks means.

Usage::

    python examples/deploy_tibidabo.py
"""

from repro.apps import APPLICATIONS, ScalingStudy
from repro.apps.hpl import HPL
from repro.cluster import (
    ClusterPowerModel,
    DramErrorModel,
    Job,
    NFSModel,
    PCIeFaultInjector,
    SlurmScheduler,
    ThermalModel,
    tibidabo,
)


def main() -> None:
    # -- 1. bring-up ------------------------------------------------------
    print("Booting 96 SECO Q7 (Tegra 2) nodes...")
    injector = PCIeFaultInjector(p_boot_failure=0.02, seed=2013)
    healthy = injector.boot_nodes(96)
    print(
        f"  {healthy.sum()} nodes up; {(~healthy).sum()} lost to PCIe "
        "enumeration failures (Section 6.1)"
    )
    cluster = tibidabo(96, open_mx=True)

    # -- 2. schedule the campaign ------------------------------------------
    print("\nSubmitting the campaign to SLURM...")
    slurm = SlurmScheduler(96)
    jobs = [
        Job("HPL-weak", 96, 3600.0),
        Job("SPECFEM3D", 96, 1200.0),
        Job("HYDRO", 32, 900.0),
        Job("GROMACS", 64, 1500.0),
        Job("PEPC", 24, 2000.0),
    ]
    for j in jobs:
        slurm.submit(j)
    for j in slurm.schedule():
        print(
            f"  {j.name:10s} {j.n_nodes:3d} nodes  start={j.start_s:7.0f}s"
            f"  end={j.end_s:7.0f}s"
        )
    print(f"  campaign makespan {slurm.makespan_s()/3600:.1f} h, "
          f"utilisation {slurm.utilisation():.0%}")

    # -- 3. application scalability (Figure 6) -----------------------------
    print("\nFigure 6: application speed-ups")
    for name, app in APPLICATIONS.items():
        counts = tuple(
            n for n in (1, 2, 4, 8, 16, 24, 32, 48, 64, 96)
            if n >= app.min_nodes(cluster)
        )
        sp = ScalingStudy(app, cluster, node_counts=counts).run().speedups()
        curve = "  ".join(f"{n}:{s:.0f}" for n, s in sorted(sp.items()))
        print(f"  {name:10s} ({app.scaling:6s})  {curve}")

    # -- 4. the NFS trap ----------------------------------------------------
    print("\nNFS I/O phases over the 100 Mbit interface (Section 6.2):")
    nfs = NFSModel()
    per_node_bytes = 100e6
    if nfs.times_out(96, per_node_bytes):
        t_par = nfs.parallel_phase_time_s(96, per_node_bytes)
        t_ser = nfs.serialized_phase_time_s(96, per_node_bytes)
        print(
            f"  96 x 100 MB in parallel: {t_par:.0f} s -> RPC TIMEOUTS; "
            f"serialised: {t_ser:.0f} s total (the paper's workaround)"
        )
        print(
            f"  max clients that stay under the deadline: "
            f"{nfs.max_parallel_clients(per_node_bytes)}"
        )

    # -- 5. the headline ----------------------------------------------------
    print("\nHPL on 96 nodes:")
    hpl = HPL()
    run = hpl.simulate(cluster, 96)
    power = ClusterPowerModel()
    print(f"  {run.gflops:.1f} GFLOPS at {hpl.efficiency(cluster, run):.0%} "
          f"efficiency, {power.mflops_per_watt(cluster, run.gflops):.0f} "
          f"MFLOPS/W  (paper: 97 GFLOPS, 51%, 120 MFLOPS/W)")

    # -- 6. living without ECC or heatsinks ---------------------------------
    print("\nOperating risks (Section 6):")
    dram = DramErrorModel(0.045)
    print(
        f"  daily DRAM-error probability at 1500 nodes: "
        f"{dram.system_daily_error_probability(1500, 2):.0%} "
        "(and no ECC to correct it)"
    )
    print(
        f"  96-node 24 h job failure probability (no ECC): "
        f"{dram.job_failure_probability(96, 24.0):.1%}"
    )
    thermal = ThermalModel()
    print(
        f"  fanless board at 6.5 W destabilises after "
        f"{thermal.time_to_instability_s(6.5):.0f} s; "
        f"package must keep nodes under "
        f"{thermal.max_sustainable_power_w():.1f} W"
    )


if __name__ == "__main__":
    main()
