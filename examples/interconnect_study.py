#!/usr/bin/env python3
"""Interconnect deep-dive (Section 4.1 / Figure 7 / Table 4).

Reproduces the ping-pong study over the discrete-event MPI — TCP/IP vs
Open-MX, PCIe vs USB NIC attachment, 1.0 vs 1.4 GHz — then translates
latency into application slowdown and prints the bytes/FLOPS balance
table.

Usage::

    python examples/interconnect_study.py
"""

from repro.analysis.tables import render_table4
from repro.core.metrics import latency_penalty
from repro.core.results import render_table
from repro.mpi.benchmarks import bandwidth_curve, latency_curve, ping_pong
from repro.net.nic import PCIE, USB3
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack

CONFIGS = (
    ("Tegra2  TCP/IP  1.0GHz", TCP_IP, PCIE, "Cortex-A9", 1.0),
    ("Tegra2  Open-MX 1.0GHz", OPEN_MX, PCIE, "Cortex-A9", 1.0),
    ("Exynos5 TCP/IP  1.0GHz", TCP_IP, USB3, "Cortex-A15", 1.0),
    ("Exynos5 Open-MX 1.0GHz", OPEN_MX, USB3, "Cortex-A15", 1.0),
    ("Exynos5 TCP/IP  1.4GHz", TCP_IP, USB3, "Cortex-A15", 1.4),
    ("Exynos5 Open-MX 1.4GHz", OPEN_MX, USB3, "Cortex-A15", 1.4),
)


def main() -> None:
    print("Figure 7: ping-pong over the simulated MPI")
    print("-" * 72)
    rows = []
    stacks = {}
    for label, proto, att, core, freq in CONFIGS:
        stack = ProtocolStack(proto, att, core_name=core, freq_ghz=freq)
        stacks[label] = stack
        lat = ping_pong(stack, 0, repetitions=5).latency_us
        bw = ping_pong(stack, 1 << 22, repetitions=2).bandwidth_mbs
        rows.append([label, round(lat, 1), round(bw, 1)])
    print(render_table(["configuration", "latency (us)", "bw (MB/s)"], rows))

    print("\nLatency vs message size (us), Tegra 2:")
    for label in ("Tegra2  TCP/IP  1.0GHz", "Tegra2  Open-MX 1.0GHz"):
        curve = latency_curve(stacks[label])
        series = "  ".join(f"{s}B:{v:.0f}" for s, v in curve.items())
        print(f"  {label}: {series}")

    print("\nBandwidth vs message size (MB/s), Exynos 5 @1GHz:")
    for label in ("Exynos5 TCP/IP  1.0GHz", "Exynos5 Open-MX 1.0GHz"):
        curve = bandwidth_curve(
            stacks[label], sizes=tuple(1 << i for i in range(6, 25, 3))
        )
        series = "  ".join(f"2^{s.bit_length()-1}:{v:.0f}" for s, v in curve.items())
        print(f"  {label}: {series}")

    print("\nWhat latency costs applications (Section 4.1):")
    for lat in (100.0, 65.0):
        snb = latency_penalty(lat, 1.0)
        arn = latency_penalty(lat, 0.5)
        print(
            f"  total latency {lat:5.1f} us -> +{snb:.0%} execution time on "
            f"Sandy-Bridge-class nodes, +{arn:.0%} on Arndale-class"
        )

    print("\nTable 4: network bytes/FLOPS balance")
    print("-" * 72)
    print(render_table4())
    print(
        "\nA 1 GbE mobile SoC is as balanced as a Sandy Bridge with "
        "InfiniBand —\nbut only because the SoC is slow; the balance "
        "collapses as compute grows (Section 6.3)."
    )


if __name__ == "__main__":
    main()
