"""Golden-trace regression tests.

The canonical traces of two reference scenarios — the 4-rank ping-pong
and an 8-node HPL strong-scaling point — are checked into
``tests/data/``.  Any change to engine scheduling, MPI timing, protocol
pricing, or the trace format itself shows up here as a diff against the
golden file.  When a change is *intended*, regenerate with::

    pytest tests/obs/test_goldens.py --update-goldens
"""

import pathlib

import pytest

from repro.obs.replay import scenario_canonical_text

DATA = pathlib.Path(__file__).resolve().parent.parent / "data"

#: scenario name -> (golden file, seed)
GOLDENS = {
    "pingpong": ("pingpong4.trace", 0),
    "hpl": ("hpl8.trace", 0),
    "faults": ("faults8.trace", 0),
}


@pytest.mark.parametrize("scenario", sorted(GOLDENS))
def test_golden_trace(scenario, update_goldens):
    fname, seed = GOLDENS[scenario]
    path = DATA / fname
    text = scenario_canonical_text(scenario, seed=seed)
    if update_goldens:
        DATA.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"golden {fname} updated")
    assert path.exists(), (
        f"golden {fname} missing — run pytest with --update-goldens"
    )
    golden = path.read_text()
    assert text == golden, (
        f"canonical trace for {scenario!r} diverged from {fname}; if the "
        "timing/trace change is intentional, rerun with --update-goldens"
    )


def test_goldens_are_nontrivial():
    for fname, _seed in GOLDENS.values():
        path = DATA / fname
        assert path.exists()
        lines = path.read_text().splitlines()
        assert len(lines) > 50
        # Every line is a well-formed canonical record.
        assert all(line[0] in "SICT" and "|" in line for line in lines)
