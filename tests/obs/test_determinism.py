"""Replay-determinism property tests — the engine's core promise.

For each layer the paper's results rest on (reliability models, IMB
benchmarks, HPL), the same seed must produce a byte-identical canonical
trace across repeated runs, and different seeds must produce different
traces.  A hash mismatch here means nondeterminism crept into the
engine, the MPI layer, or a model's RNG handling — invalidating every
regression number in EXPERIMENTS.md.
"""

import pytest

from repro.obs.export import canonical_text, trace_hash
from repro.obs.recorder import current
from repro.obs.replay import (
    SCENARIOS,
    assert_deterministic,
    check_determinism,
    record_scenario,
)

LAYER_SCENARIOS = ("reliability", "imb", "hpl", "pingpong", "faults")


@pytest.mark.parametrize("scenario", LAYER_SCENARIOS)
def test_same_seed_three_runs_byte_identical(scenario):
    texts = [
        canonical_text(record_scenario(scenario, seed=7)) for _ in range(3)
    ]
    assert texts[0] == texts[1] == texts[2]
    assert len(texts[0]) > 100  # a real trace, not an empty one


@pytest.mark.parametrize("scenario", LAYER_SCENARIOS)
def test_different_seeds_different_traces(scenario):
    a = trace_hash(record_scenario(scenario, seed=0))
    b = trace_hash(record_scenario(scenario, seed=1))
    assert a != b


def test_all_registered_scenarios_pass_the_harness():
    for name in SCENARIOS:
        report = assert_deterministic(name, seed=0, runs=2)
        assert report.deterministic
        assert report.records > 0


def test_check_determinism_report_shape():
    report = check_determinism("reliability", seed=2, runs=3)
    assert report.scenario == "reliability"
    assert len(report.hashes) == 3
    assert report.deterministic


def test_harness_validation():
    with pytest.raises(KeyError, match="unknown scenario"):
        record_scenario("nope")
    with pytest.raises(ValueError):
        check_determinism("imb", runs=1)


def test_recording_switch_restored_after_scenarios():
    record_scenario("pingpong")
    assert current() is None
