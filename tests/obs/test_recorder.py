"""Unit tests for the observability layer: recorder semantics, the
instrumentation hooks in engine/MPI/net/cluster, exporters, and the
per-rank breakdown table."""

import json

import pytest

from repro.obs import (
    TraceRecorder,
    canonical_text,
    current,
    disable,
    enable,
    recording,
    to_chrome_trace,
    trace_hash,
    write_chrome_trace,
)


class TestRecorder:
    def test_disabled_by_default(self):
        assert current() is None

    def test_recording_context_enables_and_restores(self):
        assert current() is None
        with recording() as rec:
            assert current() is rec
        assert current() is None

    def test_nested_recording_restores_outer(self):
        with recording() as outer:
            with recording() as inner:
                assert current() is inner
            assert current() is outer

    def test_enable_disable_roundtrip(self):
        rec = enable(scenario="t")
        try:
            assert current() is rec
            assert rec.meta == {"scenario": "t"}
        finally:
            assert disable() is rec
        assert current() is None

    def test_span_validation(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            rec.span("x", "compute", 2.0, 1.0)

    def test_bump_aggregates(self):
        rec = TraceRecorder()
        rec.bump("net.bytes", 100)
        rec.bump("net.bytes", 28)
        rec.bump("net.messages")
        assert rec.totals == {"net.bytes": 128.0, "net.messages": 1.0}

    def test_ranks_and_len(self):
        rec = TraceRecorder()
        rec.span("a", "compute", 0.0, 1.0, rank=3)
        rec.instant("b", "engine", 0.5, rank=1)
        rec.counter("c", 0.0, 9.0, rank=7)
        assert rec.ranks() == [1, 3, 7]
        assert len(rec) == 3


class TestCanonicalForm:
    def test_addresses_scrubbed(self):
        rec = TraceRecorder()
        rec.instant("step:<generator object f at 0x7f2a91>", "engine", 0.0)
        text = canonical_text(rec)
        assert "0x7f2a91" not in text
        assert "0xADDR" in text

    def test_hash_sensitive_to_content_and_order(self):
        a, b, c = TraceRecorder(), TraceRecorder(), TraceRecorder()
        a.span("x", "compute", 0.0, 1.0)
        a.span("y", "compute", 0.0, 2.0)
        b.span("y", "compute", 0.0, 2.0)
        b.span("x", "compute", 0.0, 1.0)
        c.span("x", "compute", 0.0, 1.0)
        c.span("y", "compute", 0.0, 2.0)
        assert trace_hash(a) == trace_hash(c)
        assert trace_hash(a) != trace_hash(b)  # order is part of the oracle

    def test_meta_excluded_from_hash(self):
        a = TraceRecorder(seed=0)
        b = TraceRecorder(seed=999)
        a.span("x", "compute", 0.0, 1.0)
        b.span("x", "compute", 0.0, 1.0)
        assert trace_hash(a) == trace_hash(b)


class TestChromeExport:
    def make(self):
        rec = TraceRecorder(scenario="unit")
        rec.span("compute", "compute", 0.001, 0.003, rank=2, flops=10)
        rec.instant("deliver", "net", 0.002, rank=1)
        rec.counter("cluster.power_w", 0.0, 800.0)
        rec.bump("net.bytes", 64)
        return rec

    def test_phases_and_units(self):
        doc = to_chrome_trace(self.make())
        evs = doc["traceEvents"]
        phases = {e["ph"] for e in evs}
        assert phases == {"M", "X", "i", "C"}
        span = next(e for e in evs if e["ph"] == "X")
        assert span["ts"] == pytest.approx(1000.0)  # µs
        assert span["dur"] == pytest.approx(2000.0)
        assert span["tid"] == 2
        assert doc["otherData"]["totals"] == json.dumps({"net.bytes": 64.0})

    def test_written_file_is_valid_json(self, tmp_path):
        path = write_chrome_trace(self.make(), str(tmp_path / "t.json"))
        doc = json.loads(open(path).read())
        assert "traceEvents" in doc


class TestEngineHooks:
    def test_engine_emits_fire_and_step(self):
        from repro.sim.engine import Engine

        with recording() as rec:
            eng = Engine()

            def proc():
                yield eng.timeout(1.0)
                yield eng.timeout(0.5)

            eng.process(proc(), name="p")
            eng.run()
        fires = [i for i in rec.instants if i.name == "fire"]
        steps = [i for i in rec.instants if i.name.startswith("step:")]
        assert len(fires) >= 3  # initial step + two timer fires
        assert any(i.name == "step:p" for i in steps)
        assert rec.totals["engine.scheduled"] >= 3

    def test_engine_created_outside_recording_stays_silent(self):
        from repro.sim.engine import Engine

        eng = Engine()
        with recording() as rec:
            eng.timeout(1.0)
            eng.run()
        assert len(rec) == 0
        assert eng._rec is None


class TestMPISpans:
    def run_pair(self):
        from repro.mpi.api import MPIWorld, UniformNetwork
        from repro.net.protocol import TCP_IP, ProtocolStack

        stack = ProtocolStack(TCP_IP, core_name="Cortex-A9")
        with recording() as rec:
            world = MPIWorld(2, UniformNetwork(stack))

            def prog(ctx):
                if ctx.rank == 0:
                    yield ctx.compute(1e-3)
                    yield from ctx.send(1, b"x" * 64)
                    return None
                msg = yield from ctx.recv(0)
                return msg.nbytes

            res = world.run(prog)
        return rec, res

    def test_span_categories_present(self):
        rec, res = self.run_pair()
        assert res.results[1] == 64
        cats = {s.cat for s in rec.spans}
        assert {"compute", "comm", "wait", "net"} <= cats

    def test_compute_span_times(self):
        rec, _ = self.run_pair()
        (comp,) = rec.spans_by_cat("compute")
        assert comp.rank == 0
        assert comp.duration_s == pytest.approx(1e-3)

    def test_wait_span_matches_stats(self):
        rec, res = self.run_pair()
        (wait,) = rec.spans_by_cat("wait")
        assert wait.rank == 1
        assert wait.duration_s == pytest.approx(res.stats[1].comm_wait_s)

    def test_net_span_and_delivery_instant(self):
        rec, _ = self.run_pair()
        (xfer,) = rec.spans_by_cat("net")
        deliver = [i for i in rec.instants if i.name == "deliver"]
        assert len(deliver) == 1
        assert deliver[0].rank == 1
        assert deliver[0].t == pytest.approx(xfer.t1)

    def test_bytes_counter(self):
        rec, _ = self.run_pair()
        counters = [c for c in rec.counters if c.name == "mpi.bytes_sent"]
        assert counters and counters[-1].value == 64


class TestNetCounters:
    def test_protocol_stack_totals(self):
        from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack

        stack = ProtocolStack(TCP_IP, core_name="Cortex-A9")
        with recording() as rec:
            stack.transfer_time_s(3000)
            stack.transfer_time_s(100)
        assert rec.totals["net.messages"] == 2
        assert rec.totals["net.bytes"] == 3100
        assert rec.totals["net.frames"] == 3  # ceil(3000/1500) + 1
        assert "net.rendezvous" not in rec.totals

        mx = ProtocolStack(OPEN_MX, core_name="Cortex-A9")
        with recording() as rec:
            mx.transfer_time_s(64 * 1024)
        assert rec.totals["net.rendezvous"] == 1

    def test_link_frames_for(self):
        from repro.net.link import GBE

        assert GBE.frames_for(0) == 1
        assert GBE.frames_for(1500) == 1
        assert GBE.frames_for(1501) == 2
        with pytest.raises(ValueError):
            GBE.frames_for(-1)

    def test_link_wire_time(self):
        from repro.net.link import GBE

        # 1 Gb/s = 8 ns/byte: 1000 bytes take 8 µs on the wire.
        assert GBE.wire_time_s(1000) == pytest.approx(8e-6)


class TestClusterHooks:
    def test_boot_failures_recorded(self):
        from repro.cluster.reliability import PCIeFaultInjector

        with recording() as rec:
            inj = PCIeFaultInjector(p_boot_failure=0.5, seed=3)
            healthy = inj.boot_nodes(64)
        failures = [
            i for i in rec.instants if i.name == "pcie.boot_failure"
        ]
        assert len(failures) == int((~healthy).sum()) > 0
        assert rec.totals["cluster.boot_attempts"] == 64

    def test_degraded_cluster_node_up_down(self):
        from repro.cluster.cluster import degraded_tibidabo

        with recording() as rec:
            cluster, lost = degraded_tibidabo(n_nodes=32, seed=1)
        ups = [i for i in rec.instants if i.name == "node.up"]
        downs = [i for i in rec.instants if i.name == "node.down"]
        assert len(ups) == cluster.n_nodes
        assert len(downs) == lost
        assert rec.totals.get("cluster.nodes_lost", 0.0) == lost

    def test_power_sample_counter(self):
        from repro.cluster.cluster import tibidabo
        from repro.cluster.power import ClusterPowerModel

        model = ClusterPowerModel()
        cluster = tibidabo(8)
        with recording() as rec:
            watts = model.sample(cluster, 12.5)
        (c,) = [c for c in rec.counters if c.name == "cluster.power_w"]
        assert c.t == 12.5
        assert c.value == pytest.approx(watts)
        assert watts == pytest.approx(model.total_power_watts(cluster))


class TestBreakdownTable:
    def test_rank_breakdown_sums(self):
        from repro.analysis import rank_breakdown, render_rank_breakdown

        rec = TraceRecorder()
        rec.span("compute", "compute", 0.0, 2.0, rank=0)
        rec.span("send->1", "comm", 2.0, 2.5, rank=0)
        rec.span("recv<-0", "wait", 0.0, 3.0, rank=1)
        b = rank_breakdown(rec)
        assert b[0]["compute"] == pytest.approx(2.0)
        assert b[0]["comm"] == pytest.approx(0.5)
        assert b[1]["wait"] == pytest.approx(3.0)
        table = render_rank_breakdown(rec)
        assert "makespan" in table and "all" in table

    def test_empty_breakdown(self):
        from repro.analysis import render_rank_breakdown

        assert "no rank spans" in render_rank_breakdown(TraceRecorder())


class TestTraceCLI:
    def test_summary_and_hash(self, capsys):
        from repro.obs.cli import trace_main

        assert trace_main(["pingpong", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "trace hash" in out
        assert "rank" in out and "compute" in out

    def test_check_passes(self, capsys):
        from repro.obs.cli import trace_main

        assert trace_main(["reliability", "--check", "--runs", "3"]) == 0
        assert "deterministic across 3 runs: OK" in capsys.readouterr().out

    def test_out_writes_chrome_json(self, tmp_path, capsys):
        from repro.obs.cli import trace_main

        out = tmp_path / "trace.json"
        assert trace_main(["pingpong", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_dispatch_through_main_cli(self, capsys):
        from repro.cli import main

        assert main(["trace", "imb"]) == 0
        assert "trace hash" in capsys.readouterr().out

    def test_legacy_tracing_shim_warns_and_reexports(self):
        import importlib

        with pytest.warns(DeprecationWarning, match="repro.obs.messages"):
            from repro.mpi import tracing

            tracing = importlib.reload(tracing)
        from repro.obs import messages

        assert tracing.Tracer is messages.Tracer
        assert tracing.traced_world is messages.traced_world
