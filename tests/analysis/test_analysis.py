"""Tests for figure/table renderers and the paper-vs-measured report."""

import pytest

from repro.analysis.figures import ascii_chart, render_figure
from repro.analysis.report import build_comparisons, comparisons_markdown
from repro.analysis.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.study import MobileSoCStudy


@pytest.fixture(scope="module")
def study():
    return MobileSoCStudy()


class TestAsciiChart:
    def test_markers_present(self):
        txt = ascii_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}, title="T"
        )
        assert "T" in txt
        assert "o" in txt and "x" in txt
        assert "o=a" in txt and "x=b" in txt

    def test_log_scale(self):
        txt = ascii_chart({"s": [(1, 1), (2, 1000)]}, log_y=True)
        assert "1e+03" in txt or "1000" in txt

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})


class TestFigureRenderers:
    def test_each_figure_renders(self, study):
        for name, data in (
            ("figure1", study.figure1()),
            ("figure2a", study.figure2a()),
            ("figure2b", study.figure2b()),
            ("figure3", study.figure3()),
            ("figure6", study.figure6(node_counts=(1, 4, 16))),
            ("figure7", study.figure7()),
        ):
            txt = render_figure(name, data)
            assert len(txt.splitlines()) > 5, name

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            render_figure("figure99", {})


class TestTableRenderers:
    def test_table1_platforms(self):
        txt = render_table1()
        for name in ("Tegra2", "Tegra3", "Exynos5250", "Corei7-2760QM"):
            assert name in txt

    def test_table2_kernels(self):
        txt = render_table2()
        for tag in ("vecop", "dmmm", "spvm"):
            assert tag in txt

    def test_table3_applications(self):
        txt = render_table3()
        for app in ("HPL", "PEPC", "HYDRO", "GROMACS", "SPECFEM3D"):
            assert app in txt

    def test_table4_values(self):
        txt = render_table4()
        assert "2.50" in txt  # Tegra2 @ InfiniBand
        assert "0.07" in txt  # SNB @ InfiniBand


class TestComparisonReport:
    @pytest.fixture(scope="class")
    def comparisons(self, study):
        return build_comparisons(study)

    def test_covers_every_artefact_class(self, comparisons):
        artefacts = {c.artefact for c in comparisons}
        assert {"Fig3", "Fig5", "Fig7", "Sec4", "Sec4.1", "Table4",
                "Sec3.1.1", "Sec6.3"} <= artefacts

    def test_at_least_forty_claims_encoded(self, comparisons):
        assert len(comparisons) >= 40

    def test_all_claims_within_25_percent(self, comparisons):
        """The reproduction-quality gate: every numeric claim in the
        paper text must reproduce within 25% (most are far closer)."""
        bad = [c for c in comparisons if not c.within(0.25)]
        assert not bad, [(c.quantity, c.paper_value, c.measured_value) for c in bad]

    def test_majority_within_10_percent(self, comparisons):
        close = [c for c in comparisons if c.within(0.10)]
        assert len(close) >= len(comparisons) * 0.6

    def test_markdown_rendering(self, comparisons):
        md = comparisons_markdown(comparisons)
        assert md.startswith("| artefact |")
        assert md.count("\n") == len(comparisons) + 1


class TestFigure5Renderer:
    def test_figure5_renders_both_panels(self, study):
        txt = render_figure("figure5", study.figure5())
        assert "figure5(a)" in txt and "figure5(b)" in txt
        assert len(txt.splitlines()) > 20
