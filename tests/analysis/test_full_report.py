"""Tests for the one-shot report writer."""

import pytest

from repro.analysis.full_report import build_full_report, write_full_report


@pytest.fixture(scope="module")
def report_text():
    return build_full_report(quick=True)


class TestFullReport:
    def test_every_artefact_section_present(self, report_text):
        for heading in (
            "Table 1", "Table 2", "Table 3", "Table 4",
            "Figure 1", "Figure 2a", "Figure 2b", "Figure 3",
            "Figure 4", "Figure 5", "Figure 6", "Figure 7",
            "Headline", "Energy-to-solution", "Green500",
            "Paper vs measured",
        ):
            assert f"## {heading}" in report_text, heading

    def test_key_numbers_present(self, report_text):
        assert "2.50" in report_text  # Table 4 Tegra2/IB
        assert "vecop" in report_text  # Table 2
        assert "mflops_per_watt" in report_text

    def test_comparison_table_included(self, report_text):
        assert "| artefact | quantity |" in report_text
        assert report_text.count("| Fig3 |") >= 6

    def test_write_to_disk(self, tmp_path):
        out = write_full_report(tmp_path / "report.md", quick=True)
        assert out.exists()
        assert out.read_text().startswith("# Reproduction report")
