"""Every kernel's NumPy implementation matches its independent reference."""

import numpy as np
import pytest

from repro.kernels.registry import KERNELS, all_kernels, get_kernel


@pytest.mark.parametrize("tag", sorted(KERNELS))
def test_kernel_matches_reference(tag):
    assert get_kernel(tag).verify(), f"{tag} diverges from its reference"


@pytest.mark.parametrize("tag", sorted(KERNELS))
def test_kernel_deterministic_inputs(tag):
    k = get_kernel(tag)
    n = k.verification_size()
    a = k.make_input(n, seed=7)
    b = k.make_input(n, seed=7)
    flat_a = np.concatenate([np.ravel(x) for x in _flatten(a)])
    flat_b = np.concatenate([np.ravel(x) for x in _flatten(b)])
    np.testing.assert_array_equal(flat_a, flat_b)


@pytest.mark.parametrize("tag", sorted(KERNELS))
def test_different_seeds_differ(tag):
    k = get_kernel(tag)
    n = k.verification_size()
    a = np.concatenate([np.ravel(x) for x in _flatten(k.make_input(n, 0))])
    b = np.concatenate([np.ravel(x) for x in _flatten(k.make_input(n, 1))])
    assert not np.array_equal(a, b)


def _flatten(obj):
    if isinstance(obj, np.ndarray):
        return [obj.view(np.float64) if obj.dtype.kind == "c" else obj]
    if isinstance(obj, dict):
        out = []
        for v in obj.values():
            out.extend(_flatten(v))
        return out
    if isinstance(obj, (tuple, list)):
        out = []
        for v in obj:
            out.extend(_flatten(v))
        return out
    return [np.asarray([float(obj)])]


class TestSuiteComposition:
    def test_eleven_kernels(self, kernels):
        """Table 2 lists exactly 11 micro-kernels."""
        assert len(kernels) == 11

    def test_table2_tags(self, kernels):
        assert [k.tag for k in kernels] == [
            "vecop", "dmmm", "3dstc", "2dcon", "fft", "red",
            "hist", "msort", "nbody", "amcd", "spvm",
        ]

    def test_every_kernel_has_table2_metadata(self, kernels):
        for k in kernels:
            assert k.full_name
            assert k.properties

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("linpack")
