"""Operation-profile invariants across the suite."""

import pytest

from repro.kernels.base import AccessPattern, KernelCharacteristics, OperationProfile
from repro.kernels.registry import KERNELS
from repro.arch.isa import InstructionMix, OpClass


@pytest.mark.parametrize("tag", sorted(KERNELS))
class TestProfileInvariants:
    def profile(self, tag):
        k = KERNELS[tag]
        return k.profile(k.default_size())

    def test_nonnegative_work(self, tag):
        p = self.profile(tag)
        assert p.flops >= 0
        assert p.bytes_from_dram >= 0
        assert p.bytes_touched > 0
        assert p.working_set_bytes > 0

    def test_dram_traffic_bounded_by_touched(self, tag):
        p = self.profile(tag)
        assert p.bytes_from_dram <= p.bytes_touched + 1e-9

    def test_mix_is_nonempty(self, tag):
        assert self.profile(tag).mix.total() > 0

    def test_mix_memory_ops_consistent_with_traffic(self, tag):
        """A kernel that touches bytes must issue loads/stores."""
        p = self.profile(tag)
        assert p.mix.memory_ops() > 0

    def test_working_set_resident_on_every_llc(self, tag):
        """The suite uses identical sizes on every platform (Section
        3.1); the sizes are chosen cache-resident — the reason measured
        performance scales linearly with CPU frequency."""
        p = self.profile(tag)
        assert p.working_set_bytes <= 1024 * 1024  # smallest LLC (ARM L2)

    def test_profile_scales_with_size(self, tag):
        k = KERNELS[tag]
        small = k.profile(max(8, k.default_size() // 2))
        big = k.profile(k.default_size())
        assert big.flops > small.flops
        assert big.bytes_touched > small.bytes_touched

    def test_characteristics_valid(self, tag):
        ch = self.profile(tag).characteristics
        assert 0 <= ch.parallel_fraction <= 1
        assert ch.load_imbalance >= 1.0
        assert ch.barriers_per_iteration >= 0


class TestSpecificProfiles:
    def test_vecop_is_low_intensity(self):
        p = KERNELS["vecop"].profile(10_000)
        assert p.arithmetic_intensity < 0.2

    def test_dmmm_is_high_intensity(self):
        """Table 2: data reuse and compute performance."""
        p = KERNELS["dmmm"].profile(160)
        assert p.arithmetic_intensity > 5.0

    def test_amcd_embarrassingly_parallel(self):
        """Table 2: embarrassingly parallel."""
        ch = KERNELS["amcd"].profile(10_000).characteristics
        assert ch.parallel_fraction == 1.0

    def test_spvm_declares_imbalance(self):
        """Table 2: load imbalance."""
        ch = KERNELS["spvm"].profile(1000).characteristics
        assert ch.load_imbalance > 1.05

    def test_msort_declares_barriers(self):
        """Table 2: barrier operations."""
        ch = KERNELS["msort"].profile(40_000).characteristics
        assert ch.barriers_per_iteration >= 10

    def test_stencil_is_strided(self):
        assert KERNELS["3dstc"].profile(36).pattern is AccessPattern.STRIDED

    def test_nbody_is_random_access(self):
        """Table 2: irregular memory accesses."""
        assert KERNELS["nbody"].profile(2048).pattern is AccessPattern.RANDOM

    def test_fft_stage_count(self):
        p = KERNELS["fft"].profile(1 << 10)
        # 5 n log2 n FLOPs.
        assert p.flops == pytest.approx(5 * 1024 * 10)


class TestOperationProfileValidation:
    def _mix(self):
        return InstructionMix({OpClass.LOAD: 1})

    def test_dram_exceeding_touched_rejected(self):
        with pytest.raises(ValueError):
            OperationProfile(
                flops=1,
                bytes_from_dram=100,
                bytes_touched=10,
                working_set_bytes=10,
                mix=self._mix(),
                pattern=AccessPattern.SEQUENTIAL,
            )

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            OperationProfile(
                flops=-1,
                bytes_from_dram=0,
                bytes_touched=1,
                working_set_bytes=1,
                mix=self._mix(),
                pattern=AccessPattern.SEQUENTIAL,
            )

    def test_cache_traffic_defaults_to_touched(self):
        p = OperationProfile(
            flops=1,
            bytes_from_dram=8,
            bytes_touched=16,
            working_set_bytes=16,
            mix=self._mix(),
            pattern=AccessPattern.SEQUENTIAL,
        )
        assert p.cache_traffic == 16

    def test_infinite_intensity_for_cached_kernels(self):
        p = OperationProfile(
            flops=100,
            bytes_from_dram=0,
            bytes_touched=16,
            working_set_bytes=16,
            mix=self._mix(),
            pattern=AccessPattern.BLOCKED,
        )
        assert p.arithmetic_intensity == float("inf")

    def test_characteristics_validation(self):
        with pytest.raises(ValueError):
            KernelCharacteristics(simd_fraction=1.5)
        with pytest.raises(ValueError):
            KernelCharacteristics(load_imbalance=0.5)
