"""Deeper functional tests of individual kernels (beyond reference
comparison): mathematical invariants and property-based checks."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.fft import FFT1D, _bit_reverse_permutation
from repro.kernels.histogram import Histogram
from repro.kernels.msort import MergeSort, _merge
from repro.kernels.nbody import NBody
from repro.kernels.reduction import Reduction
from repro.kernels.spmv import SparseMatVec
from repro.kernels.vecop import VecOp
from repro.kernels.dmmm import DenseMatMul


class TestFFT:
    @pytest.mark.parametrize("n", [2, 4, 64, 1024])
    def test_matches_numpy(self, n):
        k = FFT1D()
        x = k.make_input(n, seed=3)
        np.testing.assert_allclose(k.run(x), np.fft.fft(x), atol=1e-9)

    def test_bit_reverse_is_an_involution(self):
        perm = _bit_reverse_permutation(256)
        idx = np.arange(256)
        assert np.array_equal(perm[perm], idx)

    def test_parseval(self):
        k = FFT1D()
        x = k.make_input(512, seed=1)
        X = k.run(x)
        assert np.sum(np.abs(x) ** 2) == pytest.approx(
            np.sum(np.abs(X) ** 2) / 512
        )

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FFT1D().make_input(100)


class TestMergeSort:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_sorts_any_input(self, values):
        x = np.asarray(values, dtype=np.float64)
        if x.size == 0:
            return
        out = MergeSort().run(x)
        np.testing.assert_array_equal(out, np.sort(x))

    def test_merge_two_sorted_arrays(self):
        a = np.array([1.0, 3.0, 5.0])
        b = np.array([2.0, 3.0, 6.0])
        np.testing.assert_array_equal(
            _merge(a, b), np.array([1.0, 2.0, 3.0, 3.0, 5.0, 6.0])
        )

    def test_merge_empty(self):
        a = np.array([1.0])
        out = _merge(a, np.array([]))
        np.testing.assert_array_equal(out, a)


class TestReduction:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_matches_fsum(self, values):
        x = np.asarray(values)
        assert MergeSort  # keep import alive
        assert Reduction().run(x) == pytest.approx(
            math.fsum(values), rel=1e-9, abs=1e-9
        )

    def test_pairwise_tree_handles_odd_sizes(self):
        x = np.arange(7.0)
        assert Reduction().run(x) == pytest.approx(21.0)


class TestHistogram:
    def test_counts_sum_to_n(self):
        k = Histogram()
        x = k.make_input(10_000, seed=2)
        assert int(k.run(x).sum()) == 10_000

    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_matches_numpy_histogram(self, n):
        k = Histogram()
        x = k.make_input(n, seed=5)
        np.testing.assert_array_equal(k.run(x), k.reference(x))


class TestNBody:
    def test_momentum_conservation(self):
        """Newton's third law: sum of m_i * a_i vanishes."""
        k = NBody()
        pos, mass = k.make_input(64, seed=4)
        acc = k.run((pos, mass))
        total = (mass[:, None] * acc).sum(axis=0)
        assert np.linalg.norm(total) < 1e-8 * np.abs(
            mass[:, None] * acc
        ).sum()

    def test_two_body_attraction(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        mass = np.array([1.0, 1.0])
        acc = NBody().run((pos, mass))
        assert acc[0, 0] > 0  # pulled towards +x
        assert acc[1, 0] < 0
        assert acc[0, 0] == pytest.approx(-acc[1, 0])


class TestSpMV:
    def test_imbalance_factor_exceeds_one(self):
        """The power-law degrees create measurable static imbalance —
        the Table 2 property the kernel exists for."""
        k = SparseMatVec()
        data = k.make_input(2000, seed=0)
        assert k.imbalance_factor(data, n_threads=4) > 1.02

    def test_indptr_monotonic(self):
        data = SparseMatVec().make_input(500, seed=1)
        assert (np.diff(data["indptr"]) >= 1).all()

    @given(st.integers(min_value=8, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_matches_scipy(self, rows):
        k = SparseMatVec()
        data = k.make_input(rows, seed=rows)
        np.testing.assert_allclose(k.run(data), k.reference(data), rtol=1e-9)


class TestVecOpAndMatMul:
    @given(st.integers(min_value=1, max_value=3000))
    @settings(max_examples=20, deadline=None)
    def test_vecop_any_size(self, n):
        k = VecOp()
        x, y = k.make_input(n, seed=n)
        np.testing.assert_allclose(k.run((x, y)), k.ALPHA * x + y)

    @pytest.mark.parametrize("n", [1, 31, 96, 130])
    def test_dmmm_odd_sizes(self, n):
        """Blocked matmul handles sizes that are not block multiples."""
        k = DenseMatMul()
        a, b = k.make_input(n, seed=n)
        np.testing.assert_allclose(k.run((a, b)), a @ b, rtol=1e-10)
