"""Trace-driven validation: the analytic cache-traffic figures in the
kernel profiles must agree with the functional cache simulator."""

import pytest

from repro.arch.cache import CacheConfig
from repro.kernels.registry import get_kernel
from repro.kernels.traces import (
    TRACES,
    dmmm_trace,
    l2_traffic_bytes,
    reduction_trace,
    replay,
    stencil3d_trace,
    vecop_trace,
)

#: A Tegra-2-like L1 (32 KiB, 32 B lines, 4-way).
L1 = [CacheConfig("L1D", 32 * 1024, 32, 4, 4)]


class TestTraceShapes:
    def test_vecop_access_count(self):
        trace = list(vecop_trace(100))
        assert len(trace) == 300  # 2 reads + 1 write per element
        assert sum(w for _, w in trace) == 100

    def test_reduction_is_read_only(self):
        assert all(not w for _, w in reduction_trace(64))

    def test_stencil_eight_accesses_per_interior_point(self):
        g = 6
        trace = list(stencil3d_trace(g))
        assert len(trace) == 8 * (g - 2) ** 3

    def test_dmmm_total_accesses(self):
        n, b = 8, 4
        trace = list(dmmm_trace(n, block=b))
        # a once per (i,k,j-block), b and c once per (i,k,j).
        assert len(trace) == n * n * (n // b) + 2 * n**3

    def test_registry(self):
        assert set(TRACES) == {"vecop", "red", "3dstc", "dmmm"}


class TestAnalyticVsSimulated:
    """The `bytes_cache_traffic` figures in the profiles, validated."""

    def test_vecop_streaming_traffic(self):
        n = 4096  # 96 KiB working set: exceeds L1, so traffic streams.
        hier = replay(vecop_trace(n), L1)
        simulated = l2_traffic_bytes(hier)
        analytic = get_kernel("vecop").profile(n).cache_traffic
        assert simulated == pytest.approx(analytic, rel=0.10)

    def test_reduction_streaming_traffic(self):
        n = 8192
        hier = replay(reduction_trace(n), L1)
        analytic = get_kernel("red").profile(n).cache_traffic
        assert l2_traffic_bytes(hier) == pytest.approx(analytic, rel=0.10)

    def test_stencil_l1_filters_unit_stride_neighbours(self):
        """The three-plane reuse window fits L1, so only ~2 of the 8
        accesses per point reach L2 (grid read-through + write); the
        profile's analytic figure must agree within 35%."""
        g = 24  # plane = 4.6 KiB, three planes ~ 14 KiB, grid 110 KiB
        hier = replay(stencil3d_trace(g), L1)
        simulated = l2_traffic_bytes(hier)
        analytic = get_kernel("3dstc").profile(g).cache_traffic
        assert simulated == pytest.approx(analytic, rel=0.35)

    def test_dmmm_blocking_filters_most_traffic(self):
        """Blocked matmul: simulated L2 traffic must be far below the
        register traffic and within 2x of the analytic model."""
        n = 64
        prof = get_kernel("dmmm").profile(n)
        hier = replay(dmmm_trace(n, block=16), L1)
        simulated = l2_traffic_bytes(hier)
        assert simulated < prof.bytes_touched / 4
        assert simulated == pytest.approx(prof.cache_traffic, rel=1.0)

    def test_second_pass_hits_when_resident(self):
        n = 512  # 12 KiB: resident in L1
        hier = replay(vecop_trace(n), L1)
        first_misses = hier.levels[0].misses
        hier.levels[0].reset_stats()
        for addr, w in vecop_trace(n):
            hier.access(addr, write=w)
        assert hier.levels[0].misses == 0
        assert first_misses > 0
