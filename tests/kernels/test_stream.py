"""Tests for the STREAM benchmark model (Figure 5)."""

import numpy as np
import pytest

from repro.kernels.stream import (
    BYTES_PER_ELEMENT,
    OPERATIONS,
    StreamBenchmark,
)


class TestFunctionalStream:
    def test_operations_compute_correctly(self):
        bench = StreamBenchmark(array_elements=1000)
        rng = np.random.default_rng(0)
        a = rng.random(1000)
        b = rng.random(1000)
        out = bench.run_functional(seed=0)
        np.testing.assert_allclose(out["Copy"], a)
        np.testing.assert_allclose(out["Scale"], 3.0 * a)
        np.testing.assert_allclose(out["Add"], a + b)
        np.testing.assert_allclose(out["Triad"], a + 3.0 * b)

    def test_byte_accounting(self):
        assert BYTES_PER_ELEMENT["Copy"] == 16
        assert BYTES_PER_ELEMENT["Triad"] == 24

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            StreamBenchmark(0)


class TestSimulatedStream:
    def test_figure5_efficiencies(self, platforms):
        """Section 3.2: 62% / 27% / 52% / 57% of peak."""
        bench = StreamBenchmark()
        expected = {
            "Tegra2": 0.62,
            "Tegra3": 0.27,
            "Exynos5250": 0.52,
            "Corei7-2760QM": 0.57,
        }
        for name, eff in expected.items():
            measured = bench.efficiency_vs_peak(platforms[name])
            assert measured == pytest.approx(eff, rel=0.02), name

    def test_exynos_multicore_advantage(self, platforms):
        """Section 3.2: ~4.5x improvement between Tegra and Exynos."""
        bench = StreamBenchmark()
        t2 = bench.simulate_all_cores(platforms["Tegra2"]).best()
        ex = bench.simulate_all_cores(platforms["Exynos5250"]).best()
        assert 3.5 <= ex / t2 <= 5.0

    def test_multicore_at_least_single(self, platforms):
        bench = StreamBenchmark()
        for p in platforms.values():
            single = bench.simulate(p, 1).best()
            multi = bench.simulate_all_cores(p).best()
            assert multi >= single * 0.999

    def test_all_four_operations_reported(self, t2):
        res = StreamBenchmark().simulate(t2, 1)
        assert set(res.bandwidth_gbs) == set(OPERATIONS)

    def test_triad_not_above_copy(self, t2):
        res = StreamBenchmark().simulate(t2, 1)
        assert res.bandwidth_gbs["Triad"] <= res.bandwidth_gbs["Copy"]

    def test_core_count_validated(self, t2):
        with pytest.raises(ValueError):
            StreamBenchmark().simulate(t2, 0)
        with pytest.raises(ValueError):
            StreamBenchmark().simulate(t2, 3)
