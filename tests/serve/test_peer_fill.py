"""Cache peer-fill: the probe op, the frontend hook, and the
failure-degrades-to-MISS contract that keeps it strictly an
optimisation."""

import asyncio
import json

import pytest

from repro.parallel.cache import MISS
from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.router import CachePeerFill, HashRing, route_key
from repro.serve.server import ServeServer

POINT_A = {"mode": "single", "platform": "Tegra2", "freq": 1.0}


def label_runner(units):
    return [u.label() for u in units]


async def start_backend(cache_dir, runner=label_runner, **config_kw):
    config_kw.setdefault("cache_dir", cache_dir)
    config_kw.setdefault("batch_window_s", 0.005)
    server = ServeServer(CampaignFrontEnd(ServeConfig(**config_kw), runner))
    await server.start()
    run_task = asyncio.ensure_future(server.serve_until_shutdown())
    return server, run_task


async def rpc(port, doc):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((json.dumps(doc) + "\n").encode())
    await writer.drain()
    resp = json.loads(await reader.readline())
    writer.close()
    return resp


def two_shard_ring(home_port, other_port):
    """A ring where the key under test is guaranteed NOT home on
    'other' (we pick names so POINT_A's home is 'home')."""
    key = route_key("sweep_point", POINT_A)
    for a, b in (("b0", "b1"), ("b1", "b0")):
        ring = HashRing([a, b])
        if ring.home(key) == a:
            peers = {a: ("127.0.0.1", home_port), b: ("127.0.0.1", other_port)}
            return ring, a, b, peers
    raise AssertionError("unreachable")


class TestProbeOp:
    def test_probe_miss_then_hit(self, tmp_path):
        async def scenario():
            server, task = await start_backend(tmp_path)
            miss = await rpc(server.port, {"op": "probe", "id": 1,
                                           "kind": "sweep_point",
                                           "params": POINT_A})
            await rpc(server.port, {"op": "query", "id": 2,
                                    "kind": "sweep_point", "params": POINT_A})
            hit = await rpc(server.port, {"op": "probe", "id": 3,
                                          "kind": "sweep_point",
                                          "params": POINT_A})
            await rpc(server.port, {"op": "shutdown", "id": 4})
            await task
            return miss, hit, server.frontend.stats.peer_serves

        miss, hit, peer_serves = asyncio.run(scenario())
        assert miss == {"id": 1, "ok": True, "hit": False}
        assert hit["ok"] and hit["hit"]
        assert hit["value"] == "sweep_point(freq=1.0,mode=single,platform=Tegra2)"
        assert peer_serves == 1

    def test_probe_never_computes(self, tmp_path):
        """The no-recursion guarantee: however many probes arrive, the
        runner is never invoked for them."""
        calls = []

        def counting_runner(units):
            calls.append(len(units))
            return [u.label() for u in units]

        async def scenario():
            server, task = await start_backend(
                tmp_path, runner=counting_runner
            )
            for i in range(5):
                doc = await rpc(server.port, {"op": "probe", "id": i,
                                              "kind": "sweep_point",
                                              "params": POINT_A})
                assert doc == {"id": i, "ok": True, "hit": False}
            await rpc(server.port, {"op": "shutdown", "id": 9})
            await task

        asyncio.run(scenario())
        assert calls == []

    def test_probe_bad_request(self, tmp_path):
        async def scenario():
            server, task = await start_backend(tmp_path)
            bad_kind = await rpc(server.port, {"op": "probe", "id": 1,
                                               "kind": "nonsense",
                                               "params": {}})
            no_params = await rpc(server.port, {"op": "probe", "id": 2,
                                                "kind": "sweep_base"})
            await rpc(server.port, {"op": "shutdown", "id": 3})
            await task
            return bad_kind, no_params

        bad_kind, no_params = asyncio.run(scenario())
        assert bad_kind["error"] == "bad_request"
        assert no_params["error"] == "bad_request"

    def test_probe_without_cache_is_always_miss(self, tmp_path):
        async def scenario():
            server, task = await start_backend(None)
            await rpc(server.port, {"op": "query", "id": 1,
                                    "kind": "sweep_base", "params": {}})
            doc = await rpc(server.port, {"op": "probe", "id": 2,
                                          "kind": "sweep_base", "params": {}})
            await rpc(server.port, {"op": "shutdown", "id": 3})
            await task
            return doc

        assert asyncio.run(scenario())["hit"] is False


class TestCachePeerFill:
    def test_non_home_backend_fills_from_home(self, tmp_path):
        async def scenario():
            s0, t0 = await start_backend(tmp_path / "a")
            s1, t1 = await start_backend(tmp_path / "b")
            ring, home_name, other_name, peers = two_shard_ring(
                s0.port, s1.port
            )
            s0.frontend.peer_fill = CachePeerFill(ring, home_name, peers)
            s1.frontend.peer_fill = CachePeerFill(ring, other_name, peers)
            # Warm the HOME shard only.
            first = await rpc(s0.port, {"op": "query", "id": 1,
                                        "kind": "sweep_point",
                                        "params": POINT_A})
            # The OTHER shard must fill from home instead of computing.
            second = await rpc(s1.port, {"op": "query", "id": 2,
                                         "kind": "sweep_point",
                                         "params": POINT_A})
            # And having written through, serve the next one locally.
            third = await rpc(s1.port, {"op": "query", "id": 3,
                                        "kind": "sweep_point",
                                        "params": POINT_A})
            for s in (s0, s1):
                await rpc(s.port, {"op": "shutdown", "id": 9})
            await asyncio.gather(t0, t1)
            return first, second, third, s1.frontend

        first, second, third, fe1 = asyncio.run(scenario())
        assert first["served"] == "computed"
        assert second["served"] == "peer"
        assert second["value"] == first["value"]
        assert third["served"] == "cache"
        assert fe1.stats.peer_fills == 1
        assert fe1.peer_fill.snapshot() == {"probes": 1, "fills": 1}
        assert fe1.stats.hit_ratio == 1.0  # peer fills count as hits

    def test_home_shard_miss_is_final(self, tmp_path):
        """When this backend IS the key's home, probe() must return
        MISS without any network traffic — recursing to itself (or
        round-tripping the ring) would amplify every cold miss."""
        ring = HashRing(["b0", "b1"])
        key_kind, key_params = "sweep_point", POINT_A
        home = ring.home(route_key(key_kind, key_params))
        pf = CachePeerFill(
            ring, home,
            {"b0": ("127.0.0.1", 1), "b1": ("127.0.0.1", 1)},
        )

        async def scenario():
            return await pf.probe(key_kind, key_params)

        assert asyncio.run(scenario()) is MISS
        assert pf.probes == 0

    def test_dead_peer_degrades_to_miss_and_cools_down(self, tmp_path):
        ring = HashRing(["b0", "b1"])
        key_kind, key_params = "sweep_point", POINT_A
        home = ring.home(route_key(key_kind, key_params))
        other = "b1" if home == "b0" else "b0"
        # Home resolves to a dead port.
        pf = CachePeerFill(
            ring, other,
            {home: ("127.0.0.1", 1), other: ("127.0.0.1", 1)},
            down_cooldown_s=60.0,
        )

        async def scenario():
            first = await pf.probe(key_kind, key_params)
            second = await pf.probe(key_kind, key_params)
            await pf.close()
            return first, second

        first, second = asyncio.run(scenario())
        assert first is MISS and second is MISS
        # Only the first probe paid the connect failure; the second
        # was short-circuited by the cooldown.
        assert pf.probes == 1

    def test_peer_fill_failure_still_computes(self, tmp_path):
        """End to end: peer-fill pointed at a corpse must not break
        serving — the query computes locally as if unclustered."""

        async def scenario():
            server, task = await start_backend(tmp_path)
            ring = HashRing(["me", "ghost"])
            server.frontend.peer_fill = CachePeerFill(
                ring, "me",
                {"me": ("127.0.0.1", server.port),
                 "ghost": ("127.0.0.1", 1)},
            )
            docs = []
            for i, params in enumerate(
                ({"mode": "single", "platform": p, "freq": 1.0}
                 for p in ("Tegra2", "Tegra3", "Exynos4")), 1
            ):
                docs.append(await rpc(server.port,
                                      {"op": "query", "id": i,
                                       "kind": "sweep_point",
                                       "params": params}))
            await rpc(server.port, {"op": "shutdown", "id": 9})
            await task
            return docs

        docs = asyncio.run(scenario())
        assert all(d["ok"] for d in docs)
        assert all(d["served"] == "computed" for d in docs)

    def test_self_name_must_be_on_ring(self):
        with pytest.raises(ValueError, match="not on the ring"):
            CachePeerFill(HashRing(["b0"]), "zz", {"b0": ("127.0.0.1", 1)})

    def test_leader_cancellation_degrades_waiters_to_miss(self, tmp_path):
        """Regression: cancelling the coalescing *leader* mid-probe must
        not propagate ``CancelledError`` into the coalesced waiters —
        they degrade to MISS (and compute locally) like every other
        peer-fill failure.  Pre-fix the waiters inherited the leader's
        fate through the shared future."""

        async def scenario():
            async def stall(reader, writer):
                await reader.readline()
                await asyncio.sleep(3600)

            stall_srv = await asyncio.start_server(stall, "127.0.0.1", 0)
            stall_port = stall_srv.sockets[0].getsockname()[1]
            ring, home_name, other_name, peers = two_shard_ring(
                stall_port, 1
            )
            pf = CachePeerFill(ring, other_name, peers, probe_timeout_s=30.0)
            leader = asyncio.ensure_future(pf.probe("sweep_point", POINT_A))
            await asyncio.sleep(0.05)  # leader owns the in-flight slot
            waiters = [
                asyncio.ensure_future(pf.probe("sweep_point", POINT_A))
                for _ in range(3)
            ]
            await asyncio.sleep(0.05)  # waiters parked on the future
            leader.cancel()
            results = await asyncio.wait_for(
                asyncio.gather(*waiters), timeout=5.0
            )
            with pytest.raises(asyncio.CancelledError):
                await leader
            await pf.close()
            stall_srv.close()
            await stall_srv.wait_closed()
            return results

        results = asyncio.run(scenario())
        assert all(value is MISS for value in results)

    def test_waiter_cancellation_does_not_break_the_leader(self, tmp_path):
        """The converse: cancelling one coalesced waiter cancels only
        that waiter; the leader and the other waiters still resolve."""

        async def scenario():
            home_server, t0 = await start_backend(tmp_path / "h")
            await rpc(home_server.port, {"op": "query", "id": 0,
                                         "kind": "sweep_point",
                                         "params": POINT_A})
            ring, home_name, other_name, peers = two_shard_ring(
                home_server.port, 1
            )
            pf = CachePeerFill(ring, other_name, peers)
            leader = asyncio.ensure_future(pf.probe("sweep_point", POINT_A))
            await asyncio.sleep(0)
            doomed = asyncio.ensure_future(pf.probe("sweep_point", POINT_A))
            survivor = asyncio.ensure_future(
                pf.probe("sweep_point", POINT_A)
            )
            await asyncio.sleep(0)
            doomed.cancel()
            value = await leader
            other = await survivor
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await pf.close()
            await rpc(home_server.port, {"op": "shutdown", "id": 9})
            await t0
            return value, other

        value, other = asyncio.run(scenario())
        expected = "sweep_point(freq=1.0,mode=single,platform=Tegra2)"
        assert value == expected and other == expected

    def test_cooldown_cleared_on_success_and_failure_race(self, tmp_path):
        """Regression, both orders of the cooldown/success race:

        * a slow probe *failure* that started before a concurrent
          probe's *success* landed must not stamp the cooldown — the
          success proves the peer alive *after* the failure began;
        * a failure with no success since its start DOES stamp it, and
          the next successful probe clears the entry (pre-fix
          ``_down_until`` was never cleared, so a stale entry outlived
          its expiry forever).
        """
        from repro.serve.router import BackendLink

        async def scenario():
            async def stall(reader, writer):
                await reader.readline()
                await asyncio.sleep(3600)

            stall_srv = await asyncio.start_server(stall, "127.0.0.1", 0)
            stall_port = stall_srv.sockets[0].getsockname()[1]
            home_server, t0 = await start_backend(tmp_path / "h")
            await rpc(home_server.port, {"op": "query", "id": 0,
                                         "kind": "sweep_point",
                                         "params": POINT_A})
            ring, home_name, other_name, peers = two_shard_ring(
                home_server.port, 1
            )
            pf = CachePeerFill(
                ring, other_name, peers,
                probe_timeout_s=0.3, down_cooldown_s=60.0,
            )
            # A link to the stall server wearing the home's name: its
            # requests time out slowly, standing in for a sick path to
            # a peer that other probes reach fine.
            slow_dead = BackendLink(home_name, "127.0.0.1", stall_port)

            # Order 1: failure in flight when a success lands.
            failing = asyncio.ensure_future(
                pf._probe_home(slow_dead, "sweep_point", POINT_A)
            )
            await asyncio.sleep(0.05)
            ok = await pf.probe("sweep_point", POINT_A)  # live home link
            raced_miss = await failing  # the timeout resolves after
            stamped_despite_success = home_name in pf._down_until

            # Order 2: failure with no success since its start stamps
            # the cooldown; the next success clears it.
            miss = await pf._probe_home(slow_dead, "sweep_point", POINT_A)
            stamped = home_name in pf._down_until
            await pf._probe_home(
                pf._links[home_name], "sweep_point", POINT_A
            )
            cleared = home_name not in pf._down_until

            await pf.close()
            await slow_dead.close()
            stall_srv.close()
            await stall_srv.wait_closed()
            await rpc(home_server.port, {"op": "shutdown", "id": 9})
            await t0
            return (ok, raced_miss, stamped_despite_success,
                    miss, stamped, cleared)

        (ok, raced_miss, stamped_despite_success,
         miss, stamped, cleared) = asyncio.run(scenario())
        assert ok == "sweep_point(freq=1.0,mode=single,platform=Tegra2)"
        assert raced_miss is MISS
        assert not stamped_despite_success
        assert miss is MISS
        assert stamped
        assert cleared

    def test_concurrent_probes_coalesce(self, tmp_path):
        """Concurrent probes for one key share one wire round-trip."""

        async def scenario():
            home_server, t0 = await start_backend(tmp_path / "h")
            await rpc(home_server.port, {"op": "query", "id": 0,
                                         "kind": "sweep_point",
                                         "params": POINT_A})
            ring, home_name, other_name, peers = two_shard_ring(
                home_server.port, 1
            )
            pf = CachePeerFill(ring, other_name, peers)
            values = await asyncio.gather(
                *(pf.probe("sweep_point", POINT_A) for _ in range(8))
            )
            await pf.close()
            await rpc(home_server.port, {"op": "shutdown", "id": 9})
            await t0
            return values, pf

        values, pf = asyncio.run(scenario())
        assert len(set(map(str, values))) == 1
        assert values[0] == "sweep_point(freq=1.0,mode=single,platform=Tegra2)"
        # 8 concurrent probes, at most a couple of wire round-trips
        # (the coalescing window races the first completion).
        assert pf.probes <= 2
