"""The job-tier wire protocol: submit/status/result/cancel over the
JSON-lines transport, error mapping, stats integration, and drain
ordering at shutdown.  Real server, ephemeral port, fake runner."""

import asyncio
import json

from repro.parallel.cache import ResultCache
from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.jobs import JobManager, JobsConfig
from repro.serve.journal import JobJournal
from repro.serve.server import ServeServer


def label_runner(units):
    return [u.label() for u in units]


async def start_server(tmp_path, runner=label_runner, jobs_cfg=None,
                       **config_kw):
    config_kw.setdefault("cache_dir", tmp_path / "cache")
    config_kw.setdefault("batch_window_s", 0.005)
    config = ServeConfig(**config_kw)
    frontend = CampaignFrontEnd(config, runner)
    manager = JobManager(
        JobJournal(tmp_path / "journal", fsync=False),
        ResultCache(config.cache_dir),
        frontend.execute_units,
        jobs_cfg or JobsConfig(retry_backoff_s=0.001),
    )
    server = ServeServer(frontend, jobs_manager=manager)
    await server.start()
    run_task = asyncio.ensure_future(server.serve_until_shutdown())
    return server, run_task


async def connect(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


async def request(reader, writer, doc):
    writer.write((json.dumps(doc) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def wait_job_state(reader, writer, job_id, states, timeout_s=5.0):
    async def poll():
        while True:
            resp = await request(
                reader, writer,
                {"op": "status", "id": 99, "job_id": job_id},
            )
            if resp["job"]["state"] in states:
                return resp["job"]
            await asyncio.sleep(0.01)

    return await asyncio.wait_for(poll(), timeout=timeout_s)


UNITS = [
    {"kind": "sweep_point", "params": {"mode": "single",
                                       "platform": "Tegra2", "freq": f}}
    for f in (0.25, 0.5, 0.75)
]


class TestJobOps:
    def test_submit_watch_result_round_trip(self, tmp_path):
        async def scenario():
            server, run_task = await start_server(tmp_path)
            reader, writer = await connect(server)
            sub = await request(
                reader, writer,
                {"op": "submit", "id": 1, "tenant": "alice", "units": UNITS},
            )
            assert sub["ok"] and sub["n_units"] == 3
            job = await wait_job_state(
                reader, writer, sub["job_id"], ("done", "failed")
            )
            assert job["state"] == "done" and job["done"] == 3
            res = await request(
                reader, writer,
                {"op": "result", "id": 2, "job_id": sub["job_id"]},
            )
            assert res["ok"]
            values = [u["value"] for u in res["result"]["units"]]
            assert all(v.startswith("sweep_point(") for v in values)
            stats = await request(reader, writer, {"op": "stats", "id": 3})
            assert stats["jobs"]["submitted"] == 1
            assert stats["jobs"]["units_done"] == 3
            await request(reader, writer, {"op": "shutdown", "id": 4})
            await run_task
            writer.close()

        asyncio.run(scenario())

    def test_status_without_id_lists_all_jobs(self, tmp_path):
        async def scenario():
            server, run_task = await start_server(tmp_path)
            reader, writer = await connect(server)
            for i, tenant in enumerate(("a", "b")):
                await request(
                    reader, writer,
                    {"op": "submit", "id": i, "tenant": tenant,
                     "units": [UNITS[i]]},
                )
            listing = await request(reader, writer, {"op": "status", "id": 9})
            assert [j["tenant"] for j in listing["jobs"]] == ["a", "b"]
            await request(reader, writer, {"op": "shutdown", "id": 10})
            await run_task
            writer.close()

        asyncio.run(scenario())

    def test_cancel_and_error_mapping(self, tmp_path):
        import threading

        gate = threading.Event()

        def gated_runner(units):
            gate.wait(timeout=5.0)
            return [u.label() for u in units]

        async def scenario():
            server, run_task = await start_server(tmp_path, gated_runner)
            reader, writer = await connect(server)
            sub = await request(
                reader, writer,
                {"op": "submit", "id": 1, "units": UNITS},
            )
            # result on a non-terminal job -> not_ready with its state.
            early = await request(
                reader, writer,
                {"op": "result", "id": 2, "job_id": sub["job_id"]},
            )
            assert early == {"id": 2, "ok": False, "error": "not_ready",
                             "state": early["state"]}
            cancel = await request(
                reader, writer,
                {"op": "cancel", "id": 3, "job_id": sub["job_id"]},
            )
            assert cancel["ok"]
            # unknown job -> bad_request.
            unknown = await request(
                reader, writer,
                {"op": "status", "id": 4, "job_id": "nope"},
            )
            assert not unknown["ok"] and unknown["error"] == "bad_request"
            # malformed submit -> bad_request.
            bad = await request(
                reader, writer,
                {"op": "submit", "id": 5,
                 "units": [{"kind": "bogus", "params": {}}]},
            )
            assert not bad["ok"] and bad["error"] == "bad_request"
            gate.set()
            await request(reader, writer, {"op": "shutdown", "id": 6})
            await run_task
            writer.close()

        asyncio.run(scenario())

    def test_tenant_quota_maps_to_overloaded(self, tmp_path):
        import threading

        gate = threading.Event()

        def gated_runner(units):
            # Quota counts PENDING units: hold execution so the greedy
            # tenant's backlog cannot drain before the over-quota submit.
            gate.wait(timeout=5.0)
            return [u.label() for u in units]

        async def scenario():
            server, run_task = await start_server(
                tmp_path, gated_runner,
                jobs_cfg=JobsConfig(tenant_quota_units=2,
                                    retry_backoff_s=0.001),
            )
            reader, writer = await connect(server)
            first = await request(
                reader, writer,
                {"op": "submit", "id": 1, "tenant": "greedy",
                 "units": UNITS[:2]},
            )
            assert first["ok"]
            over = await request(
                reader, writer,
                {"op": "submit", "id": 2, "tenant": "greedy",
                 "units": UNITS[2:]},
            )
            other = await request(
                reader, writer,
                {"op": "submit", "id": 3, "tenant": "modest",
                 "units": UNITS[2:]},
            )
            gate.set()
            await request(reader, writer, {"op": "shutdown", "id": 4})
            await run_task
            writer.close()
            return over, other

        over, other = asyncio.run(scenario())
        # Over quota: a 429-style refusal with a usable retry hint...
        assert not over["ok"] and over["error"] == "overloaded"
        assert over["reason"] == "tenant_quota"
        assert over["retry_after_s"] > 0
        # ...while the other tenant's submit is entirely unaffected.
        assert other["ok"]

    def test_jobs_disabled_is_a_clean_error(self, tmp_path):
        async def scenario():
            config = ServeConfig(cache_dir=tmp_path / "cache",
                                 batch_window_s=0.005)
            server = ServeServer(CampaignFrontEnd(config, label_runner))
            await server.start()
            run_task = asyncio.ensure_future(server.serve_until_shutdown())
            reader, writer = await connect(server)
            resp = await request(
                reader, writer, {"op": "submit", "id": 1, "units": UNITS}
            )
            await request(reader, writer, {"op": "shutdown", "id": 2})
            await run_task
            writer.close()
            return resp

        resp = asyncio.run(scenario())
        assert not resp["ok"] and resp["error"] == "bad_request"
        assert "job tier disabled" in resp["detail"]

    def test_shutdown_parks_incomplete_job_for_next_boot(self, tmp_path):
        """Shutdown with queued work journals it; a second server on the
        same journal+cache finishes the job."""

        async def boot_and_kill():
            server, run_task = await start_server(tmp_path)
            reader, writer = await connect(server)
            sub = await request(
                reader, writer,
                {"op": "submit", "id": 1, "units": UNITS},
            )
            # Shut down immediately: the job may not have dispatched.
            await request(reader, writer, {"op": "shutdown", "id": 2})
            await run_task
            writer.close()
            return sub["job_id"]

        async def boot_and_finish(job_id):
            server, run_task = await start_server(tmp_path)
            assert server.recovered is not None
            reader, writer = await connect(server)
            job = await wait_job_state(
                reader, writer, job_id, ("done", "failed")
            )
            await request(reader, writer, {"op": "shutdown", "id": 3})
            await run_task
            writer.close()
            return job

        job_id = asyncio.run(boot_and_kill())
        job = asyncio.run(boot_and_finish(job_id))
        assert job["state"] == "done" and job["done"] == 3
