"""``repro cluster-serve`` end to end: the shipped CLI boots a real
router + backend fleet as subprocesses, serves through the router,
peer-fills across shards, and drains the whole cluster cleanly."""

import json
import os
import re
import socket
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

POINT = {"mode": "single", "platform": "Tegra2", "freq": 1.0}


def rpc(port, doc, timeout=15.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        s.sendall((json.dumps(doc) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)


@pytest.mark.slow
class TestClusterServeCLI:
    def test_boot_serve_peer_fill_and_drain(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "cluster-serve",
                "--backends", "2", "--port", "0", "--jobs", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            # The readiness line carries the router port AND every
            # backend's address — the whole topology in one line.
            ready = ""
            for line in proc.stdout:
                if "cluster-serve: listening on" in line:
                    ready = line
                    break
            assert ready, "router never became ready"
            router_port = int(
                re.search(r"listening on [^:]+:(\d+)", ready).group(1)
            )
            backends = dict(
                (m.group(1), int(m.group(2)))
                for m in re.finditer(r"(b\d+)=[^:]+:(\d+)", ready)
            )
            assert set(backends) == {"b0", "b1"}

            # Through the router: first compute, then cache — the
            # router always routes a key to its home shard.
            first = rpc(router_port, {"op": "query", "id": 1,
                                      "kind": "sweep_point", "params": POINT})
            assert first["ok"], first
            assert first["served"] == "computed"
            again = rpc(router_port, {"op": "query", "id": 2,
                                      "kind": "sweep_point", "params": POINT})
            assert again["served"] == "cache"
            assert again["value"] == first["value"]

            # Peer-fill only fires on a NON-home backend, so hit the
            # backends directly: exactly one of them serves "peer".
            direct = {
                name: rpc(port, {"op": "query", "id": 3,
                                 "kind": "sweep_point", "params": POINT})
                for name, port in backends.items()
            }
            served = sorted(d["served"] for d in direct.values())
            assert served == ["cache", "peer"], served
            values = {json.dumps(d["value"], sort_keys=True)
                      for d in direct.values()}
            values.add(json.dumps(first["value"], sort_keys=True))
            assert len(values) == 1  # byte-identical across all paths

            stats = rpc(router_port, {"op": "stats", "id": 4})
            assert stats["ok"]
            agg = stats["stats"]
            assert agg["peer_fills"] >= 1
            assert set(agg["per_backend_hit_ratio"]) == {"b0", "b1"}
            assert stats["router"]["forwarded"] >= 2

            # Cluster-wide drain: ack, then router exits 0 only after
            # every backend did.
            bye = rpc(router_port, {"op": "shutdown", "id": 5})
            assert bye["ok"]
            out = proc.communicate(timeout=60)[0]
            assert proc.returncode == 0, out
            assert "drained and stopped" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    def test_backend_count_is_validated(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "cluster-serve",
             "--backends", "0"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 2
        assert "--backends" in proc.stderr
