"""The cluster router: hash ring, forwarding, stats fan-in, drain —
and the byte-identity contract that values through the router (and
through peer-fill) are the exact bytes a single-process server serves.
"""

import asyncio
import json

import pytest

from repro.parallel.units import execute_unit as run_unit
from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.router import (
    CachePeerFill,
    HashRing,
    ServeRouter,
    route_key,
)
from repro.serve.server import ServeServer

POINT_A = {"mode": "single", "platform": "Tegra2", "freq": 1.0}
POINT_B = {"mode": "multi", "platform": "Exynos5250", "freq": 1.4}
FIG6_POINT = {"app": "HPL", "max_nodes": 96, "n": 96}


def label_runner(units):
    return [u.label() for u in units]


async def start_backend(cache_dir, runner=label_runner, **config_kw):
    config_kw.setdefault("cache_dir", cache_dir)
    config_kw.setdefault("batch_window_s", 0.005)
    server = ServeServer(CampaignFrontEnd(ServeConfig(**config_kw), runner))
    await server.start()
    run_task = asyncio.ensure_future(server.serve_until_shutdown())
    return server, run_task


async def start_cluster(tmp_path, n=2, runner=label_runner, **config_kw):
    """N peer-filling backends + a router; returns
    (router, backends, tasks) — exactly the shape ``repro
    cluster-serve`` boots, minus the subprocess plumbing."""
    backends, tasks = [], []
    for i in range(n):
        server, task = await start_backend(
            tmp_path / f"b{i}", runner=runner, **config_kw
        )
        backends.append(server)
        tasks.append(task)
    names = [f"b{i}" for i in range(n)]
    peers = {
        name: ("127.0.0.1", s.port) for name, s in zip(names, backends)
    }
    ring = HashRing(names)
    for name, server in zip(names, backends):
        server.frontend.peer_fill = CachePeerFill(ring, name, peers)
    router = ServeRouter(
        [(name, "127.0.0.1", s.port) for name, s in zip(names, backends)]
    )
    await router.start()
    tasks.append(asyncio.ensure_future(router.serve_until_shutdown()))
    return router, backends, tasks


async def connect(port):
    return await asyncio.open_connection("127.0.0.1", port)


def send(writer, doc):
    writer.write((json.dumps(doc) + "\n").encode())


async def recv(reader):
    line = await reader.readline()
    assert line, "connection closed unexpectedly"
    return json.loads(line)


class TestHashRing:
    def test_deterministic_and_stable(self):
        a = HashRing(["b0", "b1", "b2"])
        b = HashRing(["b2", "b0", "b1"])  # boot order must not matter
        keys = [route_key("sweep_point", {"i": i}) for i in range(200)]
        assert [a.home(k) for k in keys] == [b.home(k) for k in keys]

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert ring.home(route_key("sweep_base", {})) == "only"

    def test_balance_within_reason(self):
        ring = HashRing(["b0", "b1", "b2", "b3"])
        keys = [route_key("sweep_point", {"i": i}) for i in range(2000)]
        shares = ring.shares(keys)
        assert sum(shares.values()) == 2000
        assert min(shares.values()) > 0.5 * 2000 / 4
        assert max(shares.values()) < 2.0 * 2000 / 4

    def test_reshape_moves_few_keys(self):
        """The consistent-hashing point: adding a node remaps ~1/N of
        the keyspace, not all of it."""
        before = HashRing(["b0", "b1", "b2"])
        after = HashRing(["b0", "b1", "b2", "b3"])
        keys = [route_key("sweep_point", {"i": i}) for i in range(2000)]
        moved = sum(1 for k in keys if before.home(k) != after.home(k))
        assert 0 < moved < 2 * 2000 / 4

    def test_coalescing_keys_route_together(self):
        """Two requests the front end would coalesce must always land
        on one shard: route_key uses the same canonicalisation as the
        single-flight table."""
        assert route_key("sweep_point", {"a": 1, "b": 2}) == route_key(
            "sweep_point", {"b": 2, "a": 1}
        )

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["b0", "b0"])


class TestRouterForwarding:
    def test_query_routes_to_home_and_answers(self, tmp_path):
        async def scenario():
            router, backends, tasks = await start_cluster(tmp_path, n=2)
            reader, writer = await connect(router.port)
            send(writer, {"op": "query", "id": 1, "kind": "sweep_point",
                          "params": POINT_A})
            send(writer, {"op": "query", "id": 2, "kind": "sweep_point",
                          "params": POINT_B})
            await writer.drain()
            docs = {}
            for _ in range(2):
                doc = await recv(reader)
                docs[doc["id"]] = doc
            send(writer, {"op": "shutdown", "id": 3})
            await writer.drain()
            ack = await recv(reader)
            await asyncio.gather(*tasks)
            writer.close()
            home_a = router.ring.home(route_key("sweep_point", POINT_A))
            stats = [b.frontend.stats for b in backends]
            return docs, ack, home_a, stats

        docs, ack, home_a, stats = asyncio.run(scenario())
        assert docs[1]["ok"] and docs[2]["ok"]
        assert docs[1]["served"] == "computed"
        assert ack["ok"] is True
        # The work landed on the ring's designated home shard(s).
        accepted = {f"b{i}": s.accepted for i, s in enumerate(stats)}
        assert accepted[home_a] >= 1

    def test_same_key_always_same_shard(self, tmp_path):
        async def scenario():
            router, backends, tasks = await start_cluster(tmp_path, n=3)
            reader, writer = await connect(router.port)
            for i in range(6):
                send(writer, {"op": "query", "id": i, "kind": "sweep_point",
                              "params": POINT_A})
            await writer.drain()
            for _ in range(6):
                await recv(reader)
            send(writer, {"op": "shutdown", "id": 99})
            await writer.drain()
            await recv(reader)
            await asyncio.gather(*tasks)
            writer.close()
            return [b.frontend.stats.accepted for b in backends]

        accepted = asyncio.run(scenario())
        # All six requests landed on exactly one backend.
        assert sorted(accepted) == [0, 0, 6]

    def test_stats_aggregates_per_backend(self, tmp_path):
        async def scenario():
            router, backends, tasks = await start_cluster(tmp_path, n=2)
            reader, writer = await connect(router.port)
            for i, params in enumerate((POINT_A, POINT_B, POINT_A)):
                send(writer, {"op": "query", "id": i, "kind": "sweep_point",
                              "params": params})
                await writer.drain()
                await recv(reader)
            send(writer, {"op": "stats", "id": 10})
            await writer.drain()
            stats = await recv(reader)
            send(writer, {"op": "shutdown", "id": 11})
            await writer.drain()
            await recv(reader)
            await asyncio.gather(*tasks)
            writer.close()
            return stats

        doc = asyncio.run(scenario())
        assert doc["ok"] is True
        assert doc["router"]["backends"] == ["b0", "b1"]
        assert doc["router"]["forwarded"] >= 3
        agg = doc["stats"]
        assert agg["accepted"] == 3
        assert set(agg["per_backend_hit_ratio"]) <= {"b0", "b1"}
        assert set(doc["backends"]) == {"b0", "b1"}

    def test_ping_and_unknown_op(self, tmp_path):
        async def scenario():
            router, backends, tasks = await start_cluster(tmp_path, n=1)
            reader, writer = await connect(router.port)
            send(writer, {"op": "ping", "id": 1})
            send(writer, {"op": "frobnicate", "id": 2})
            await writer.drain()
            docs = {}
            for _ in range(2):
                doc = await recv(reader)
                docs[doc["id"]] = doc
            send(writer, {"op": "shutdown", "id": 3})
            await writer.drain()
            await recv(reader)
            await asyncio.gather(*tasks)
            writer.close()
            return docs

        docs = asyncio.run(scenario())
        assert docs[1] == {"id": 1, "ok": True}
        assert docs[2]["error"] == "bad_request"

    def test_dead_backend_maps_to_unavailable(self, tmp_path):
        async def scenario():
            # A router pointed at a port nobody listens on.
            router = ServeRouter([("ghost", "127.0.0.1", 1)])
            await router.start()
            task = asyncio.ensure_future(router.serve_until_shutdown())
            reader, writer = await connect(router.port)
            send(writer, {"op": "query", "id": 1, "kind": "sweep_base",
                          "params": {}})
            await writer.drain()
            doc = await recv(reader)
            send(writer, {"op": "shutdown", "id": 2})
            await writer.drain()
            await recv(reader)
            await task
            writer.close()
            return doc, router.unavailable

        doc, unavailable = asyncio.run(scenario())
        assert doc["ok"] is False
        assert doc["error"] == "unavailable"
        assert doc["backend"] == "ghost"
        assert unavailable == 1

    def test_drain_rejects_new_queries(self, tmp_path):
        async def scenario():
            router, backends, tasks = await start_cluster(tmp_path, n=1)
            # Flip draining directly (the shutdown path closes the
            # listener, so a late query needs an already-open conn).
            reader, writer = await connect(router.port)
            router._draining = True
            send(writer, {"op": "query", "id": 1, "kind": "sweep_base",
                          "params": {}})
            await writer.drain()
            doc = await recv(reader)
            router._draining = False
            send(writer, {"op": "shutdown", "id": 2})
            await writer.drain()
            await recv(reader)
            await asyncio.gather(*tasks)
            writer.close()
            return doc

        doc = asyncio.run(scenario())
        assert doc["ok"] is False
        assert doc["error"] == "overloaded"
        assert doc["reason"] == "draining"
        assert doc["retry_after_s"] > 0

    def test_cluster_drain_shuts_backends_down(self, tmp_path):
        async def scenario():
            router, backends, tasks = await start_cluster(tmp_path, n=2)
            reader, writer = await connect(router.port)
            send(writer, {"op": "shutdown", "id": 1})
            await writer.drain()
            await recv(reader)
            # Every backend's serve task must complete: the router's
            # drain delivered each one a shutdown op.
            await asyncio.wait_for(asyncio.gather(*tasks), timeout=10)
            writer.close()
            return [b.frontend.draining for b in backends]

        draining = asyncio.run(scenario())
        assert all(draining)


class TestByteIdentity:
    """The acceptance contract: values served via the router (and via
    peer-fill) are byte-for-byte the single-process answer, for the
    unit kinds behind figure3, figure4 and figure6."""

    CASES = [
        ("sweep_point", POINT_A),    # figure3 (single-core sweep)
        ("sweep_point", POINT_B),    # figure4 (multi-core sweep)
        ("fig6_point", FIG6_POINT),  # figure6 (cluster scaling)
    ]

    @staticmethod
    def canon(value):
        return json.dumps(value, sort_keys=True)

    def test_router_and_peer_fill_serve_identical_bytes(self, tmp_path):
        """REAL units (jobs=1: inline in-thread execution, no pool),
        served four ways — direct run_unit, single-process server,
        through the router, and via a peer's cache_peek+probe fill —
        must all canonicalise to identical bytes."""

        async def scenario():
            router, backends, tasks = await start_cluster(
                tmp_path, n=2, runner=None, jobs=1
            )
            reader, writer = await connect(router.port)
            via_router = {}
            for i, (kind, params) in enumerate(self.CASES):
                send(writer, {"op": "query", "id": i, "kind": kind,
                              "params": params})
                await writer.drain()
                doc = await recv(reader)
                assert doc["ok"], doc
                via_router[(kind, self.canon(params))] = doc["value"]
            # Ask every backend DIRECTLY: the non-home shard must
            # peer-fill and serve the same bytes.
            via_peer = {}
            for backend in backends:
                r2, w2 = await connect(backend.port)
                for i, (kind, params) in enumerate(self.CASES):
                    send(w2, {"op": "query", "id": i, "kind": kind,
                              "params": params})
                    await w2.drain()
                    doc = await recv(r2)
                    assert doc["ok"], doc
                    via_peer.setdefault(
                        (kind, self.canon(params)), []
                    ).append((doc["served"], doc["value"]))
                w2.close()
            send(writer, {"op": "shutdown", "id": 99})
            await writer.drain()
            await recv(reader)
            await asyncio.gather(*tasks)
            writer.close()
            return via_router, via_peer

        via_router, via_peer = asyncio.run(scenario())
        peer_served = 0
        for kind, params in self.CASES:
            case = (kind, self.canon(params))
            oracle = self.canon(run_unit(kind, params))
            assert self.canon(via_router[case]) == oracle
            for served, value in via_peer[case]:
                assert self.canon(value) == oracle, (case, served)
                peer_served += served == "peer"
        # At least one direct backend query was served by peer-fill
        # (with 2 shards and 3 keys, some backend is not home).
        assert peer_served >= 1


class _StallingWriter:
    """A writer whose ``drain()`` blocks until released: simulates a
    backend whose socket is backpressured at flush time."""

    def __init__(self):
        self.writes = []
        self.gate = asyncio.Event()

    def is_closing(self):
        return False

    def write(self, data):
        self.writes.append(bytes(data))

    async def drain(self):
        await self.gate.wait()

    def close(self):
        pass


class TestBackendLinkNoHeadOfLineBlocking:
    """``BackendLink.request`` must not hold the link lock across
    ``drain()``: pre-fix, one backpressured flush serialised every
    concurrent request on the link at SEND time — the second request
    could not even reach the write buffer until the first's drain
    returned."""

    def test_second_request_writes_while_first_drain_stalls(self):
        from repro.serve.router import BackendLink
        from repro.serve.wire import WireConnection

        async def scenario():
            link = BackendLink("b0", "127.0.0.1", 1)
            writer = _StallingWriter()
            # Pre-connected link with a stalled transport: requests go
            # through the real lock/write/drain path, no socket needed.
            link._writer = writer
            link._conn = WireConnection(None, writer, allow_binary=False)

            t1 = asyncio.ensure_future(
                link.request({"op": "query", "kind": "sweep_base",
                              "params": {}})
            )
            await asyncio.sleep(0.01)
            assert len(writer.writes) == 1, "first request never sent"
            t2 = asyncio.ensure_future(
                link.request({"op": "query", "kind": "sweep_base",
                              "params": {}})
            )
            await asyncio.sleep(0.01)
            # THE regression assertion: with the drain stalled and the
            # lock (pre-fix) held across it, the second request's bytes
            # never reached the buffer.
            writes_while_stalled = len(writer.writes)
            writer.gate.set()
            await asyncio.sleep(0)
            for link_id, fut in list(link._waiting.items()):
                if not fut.done():
                    fut.set_result({"id": link_id, "ok": True})
            r1, r2 = await asyncio.gather(t1, t2)
            return writes_while_stalled, r1, r2

        writes_while_stalled, r1, r2 = asyncio.run(scenario())
        assert writes_while_stalled == 2, (
            "a stalled drain head-of-line-blocked the link"
        )
        assert r1["ok"] is True and r2["ok"] is True

    def test_fix_does_not_reorder_ids(self):
        """Narrowing the critical section must keep id allocation and
        buffer writes atomic per request: ids on the wire appear in
        allocation order even under concurrency."""
        from repro.serve.router import BackendLink
        from repro.serve.wire import WireConnection

        async def scenario():
            link = BackendLink("b0", "127.0.0.1", 1)
            writer = _StallingWriter()
            link._writer = writer
            link._conn = WireConnection(None, writer, allow_binary=False)
            tasks = [
                asyncio.ensure_future(link.request(
                    {"op": "query", "kind": "sweep_base", "params": {}}
                ))
                for _ in range(8)
            ]
            await asyncio.sleep(0.02)
            sent_ids = [json.loads(w)["id"] for w in writer.writes]
            writer.gate.set()
            await asyncio.sleep(0)
            for link_id, fut in list(link._waiting.items()):
                if not fut.done():
                    fut.set_result({"id": link_id, "ok": True})
            await asyncio.gather(*tasks)
            return sent_ids

        sent_ids = asyncio.run(scenario())
        assert sent_ids == sorted(sent_ids)
        assert len(set(sent_ids)) == 8
