"""Kill-and-restart: SIGKILL a serve process mid-job, restart it on
the same journal + cache, and require completion with resumed units
and byte-identical results vs an uninterrupted run.

This is the acceptance test of the durable job tier — everything here
runs real subprocesses, real sockets, real unit execution; nothing is
mocked.  The analogue of the paper's checkpoint/restart discipline
(Section 6): on commodity hardware the crash is a *when*, not an *if*,
and the system must pay a resume, not a recompute.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

# A dozen real operating points: cheap enough for CI, numerous enough
# (with --max-batch 1) that a poller reliably catches the job mid-run.
UNITS = [
    {"kind": "sweep_point",
     "params": {"mode": mode, "platform": "Tegra2", "freq": round(f, 1)}}
    for mode in ("single", "multi")
    for f in (0.4, 0.6, 0.8, 1.0, 1.2, 1.4)
]


def boot_serve(tmp_path, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "1", "--max-batch", "1",
            "--job-batch", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--journal-dir", str(tmp_path / "journal"),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    ready = proc.stdout.readline()
    assert "listening on" in ready, ready
    port = int(ready.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
    return proc, port, ready


def request(port, doc, timeout_s=30.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout_s) as s:
        s.sendall((json.dumps({**doc, "id": 1}) + "\n").encode())
        with s.makefile("r", encoding="utf-8") as fh:
            return json.loads(fh.readline())


def wait_done(port, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = request(port, {"op": "status", "job_id": job_id})["job"]
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} not terminal within {timeout_s}s")


def shutdown(proc, port):
    try:
        request(port, {"op": "shutdown"})
        proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


@pytest.mark.slow
class TestKillAndRestart:
    def test_sigkilled_job_resumes_and_matches_uninterrupted_run(
        self, tmp_path
    ):
        # --- reference: an uninterrupted run in pristine dirs --------
        ref_dir = tmp_path / "ref"
        proc, port, _ = boot_serve(ref_dir)
        try:
            sub = request(
                port, {"op": "submit", "tenant": "ci", "units": UNITS}
            )
            assert sub["ok"], sub
            assert wait_done(port, sub["job_id"])["state"] == "done"
            reference = request(
                port, {"op": "result", "job_id": sub["job_id"]}
            )["result"]["units"]
        finally:
            shutdown(proc, port)

        # --- crash run: SIGKILL mid-job, restart, resume -------------
        crash_dir = tmp_path / "crash"
        job_id = None
        for attempt in range(3):
            proc, port, _ = boot_serve(crash_dir)
            killed = False
            try:
                sub = request(
                    port,
                    {"op": "submit", "tenant": "ci", "units": UNITS,
                     "job_id": f"crashjob{attempt}"},
                )
                assert sub["ok"], sub
                job_id = sub["job_id"]
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    job = request(port, {"op": "status", "job_id": job_id})
                    done = job["job"]["done"]
                    if 1 <= done < len(UNITS):
                        proc.send_signal(signal.SIGKILL)
                        proc.communicate()
                        killed = True
                        break
                    if job["job"]["state"] != "running" and done == len(UNITS):
                        break  # finished before we could kill: retry
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()
            if killed:
                break
            # The job outran the poller; fresh dirs, try again.
            import shutil

            shutil.rmtree(crash_dir, ignore_errors=True)
        assert killed, "could not catch the job mid-run in 3 attempts"

        # The journal survived the SIGKILL.
        assert (crash_dir / "journal" / "jobs.wal").stat().st_size > 0

        # Restart on the same dirs: the readiness line announces the
        # recovery, the job completes, and >=1 unit came from cache.
        proc, port, ready = boot_serve(crash_dir)
        try:
            assert "recovered 1 job(s)" in ready, ready
            job = wait_done(port, job_id)
            assert job["state"] == "done"
            assert job["done"] == len(UNITS)
            assert job["resumed_units"] >= 1  # checkpoint paid off
            resumed = request(
                port, {"op": "result", "job_id": job_id}
            )["result"]["units"]
        finally:
            shutdown(proc, port)

        # Byte-identical to the uninterrupted reference.
        assert (
            json.dumps(resumed, sort_keys=True)
            == json.dumps(reference, sort_keys=True)
        )

    def test_restart_with_clean_journal_recovers_nothing(self, tmp_path):
        proc, port, ready = boot_serve(tmp_path)
        try:
            assert "recovered" not in ready
            assert request(port, {"op": "ping"})["ok"]
        finally:
            shutdown(proc, port)
