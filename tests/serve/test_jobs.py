"""The durable job tier's manager: submission, fair multi-tenant
dispatch, quotas, retry/quarantine, cancel, drain, and journal-backed
recovery with resume-from-cache.  Every test injects a fake async
executor — real unit execution rides the frontend/runner path covered
elsewhere; the contract under test here is the queue."""

import asyncio

import pytest

from repro.obs import recorder
from repro.parallel.cache import ResultCache, unit_key
from repro.parallel.runner import UnitFailure
from repro.serve.frontend import Overloaded
from repro.serve.jobs import (
    JobManager,
    JobNotReady,
    JobsConfig,
    campaign_job_units,
)
from repro.serve.journal import JobJournal


def run_async(coro):
    return asyncio.run(coro)


def specs(n, tag="u"):
    return [
        {"kind": "sweep_point", "params": {"tag": tag, "i": i}}
        for i in range(n)
    ]


def echo_executor(calls=None):
    async def execute(units, seed):
        if calls is not None:
            calls.append(([u.label() for u in units], seed))
        return [{"i": u.params.get("i"), "seed": seed} for u in units]

    return execute


def make_manager(tmp_path, execute, cache=True, **cfg):
    cfg.setdefault("retry_backoff_s", 0.001)
    return JobManager(
        JobJournal(tmp_path / "journal", fsync=False),
        ResultCache(tmp_path / "cache") if cache else None,
        execute,
        JobsConfig(**cfg),
    )


async def wait_terminal(mgr, *jobs, timeout_s=5.0):
    async def poll():
        while any(
            mgr.get(j.job_id).state not in ("done", "failed", "cancelled")
            for j in jobs
        ):
            await asyncio.sleep(0.005)

    await asyncio.wait_for(poll(), timeout=timeout_s)


class TestSubmitValidation:
    def test_empty_units_rejected(self, tmp_path):
        mgr = make_manager(tmp_path, echo_executor())
        with pytest.raises(ValueError, match="at least one unit"):
            mgr.submit("t", [])

    def test_unknown_kind_rejected(self, tmp_path):
        mgr = make_manager(tmp_path, echo_executor())
        with pytest.raises(ValueError, match="unknown work-unit kind"):
            mgr.submit("t", [{"kind": "nonsense", "params": {}}])

    def test_bad_tenant_rejected(self, tmp_path):
        mgr = make_manager(tmp_path, echo_executor())
        with pytest.raises(ValueError, match="tenant"):
            mgr.submit("", specs(1))

    def test_duplicate_job_id_rejected(self, tmp_path):
        mgr = make_manager(tmp_path, echo_executor())
        mgr.submit("t", specs(1), job_id="fixed")
        with pytest.raises(ValueError, match="duplicate job id"):
            mgr.submit("t", specs(1, tag="other"), job_id="fixed")

    def test_campaign_decomposition_is_submittable(self, tmp_path):
        units = campaign_job_units(quick=True)
        assert len(units) > 10
        mgr = make_manager(tmp_path, echo_executor())
        job = mgr.submit("t", units)
        assert job.counts["n_units"] == len(units)


class TestExecution:
    def test_job_runs_to_done_with_values(self, tmp_path):
        async def scenario():
            mgr = make_manager(tmp_path, echo_executor(), batch_units=4)
            await mgr.start()
            job = mgr.submit("alice", specs(10), seed=3)
            await wait_terminal(mgr, job)
            assert job.state == "done"
            result = mgr.result(job.job_id)
            assert [u["value"]["i"] for u in result["units"]] == list(range(10))
            assert all(u["value"]["seed"] == 3 for u in result["units"])
            assert mgr.totals["units_done"] == 10
            assert mgr.totals["done"] == 1
            await mgr.drain()
            mgr.close()

        run_async(scenario())

    def test_result_before_terminal_raises(self, tmp_path):
        mgr = make_manager(tmp_path, echo_executor())
        job = mgr.submit("t", specs(1))
        with pytest.raises(JobNotReady) as exc:
            mgr.result(job.job_id)
        assert exc.value.state == "queued"

    def test_batches_never_mix_jobs_or_seeds(self, tmp_path):
        async def scenario():
            calls = []
            mgr = make_manager(tmp_path, echo_executor(calls), batch_units=8)
            await mgr.start()
            j1 = mgr.submit("t", specs(5, tag="a"), seed=1)
            j2 = mgr.submit("t", specs(5, tag="b"), seed=2)
            await wait_terminal(mgr, j1, j2)
            for labels, seed in calls:
                tags = {l.split("tag=")[1][0] for l in labels}
                assert len(tags) == 1
                assert seed == (1 if tags == {"a"} else 2)
            await mgr.drain()
            mgr.close()

        run_async(scenario())

    def test_values_land_in_cache(self, tmp_path):
        async def scenario():
            mgr = make_manager(tmp_path, echo_executor())
            await mgr.start()
            job = mgr.submit("t", specs(3), seed=5)
            await wait_terminal(mgr, job)
            await mgr.drain()
            mgr.close()
            cache = ResultCache(tmp_path / "cache")
            key = unit_key("sweep_point", {"tag": "u", "i": 0}, 5)
            assert cache.get(key) == {"i": 0, "seed": 5}

        run_async(scenario())


class TestFairScheduling:
    def test_tenants_interleave_round_robin(self, tmp_path):
        """Two tenants with queued backlogs must alternate batches —
        neither waits for the other's whole job to finish first."""

        async def scenario():
            calls = []
            mgr = make_manager(tmp_path, echo_executor(calls), batch_units=2)
            # Hold dispatch until both jobs are queued.
            j_a = mgr.submit("alice", specs(6, tag="a"))
            j_b = mgr.submit("bob", specs(6, tag="b"))
            await mgr.start()
            await wait_terminal(mgr, j_a, j_b)
            owners = [
                "alice" if "tag=a" in labels[0] else "bob"
                for labels, _ in calls
            ]
            # Strict alternation while both have work: no tenant owns
            # two consecutive batches before the other's first.
            assert owners[:2] in (["alice", "bob"], ["bob", "alice"])
            assert owners.count("alice") == owners.count("bob") == 3
            assert all(a != b for a, b in zip(owners, owners[1:]))
            await mgr.drain()
            mgr.close()

        run_async(scenario())

    def test_within_tenant_oldest_job_first(self, tmp_path):
        async def scenario():
            calls = []
            mgr = make_manager(tmp_path, echo_executor(calls), batch_units=4)
            j1 = mgr.submit("t", specs(4, tag="first"))
            j2 = mgr.submit("t", specs(4, tag="second"))
            await mgr.start()
            await wait_terminal(mgr, j1, j2)
            assert "tag=first" in calls[0][0][0]
            assert "tag=second" in calls[-1][0][0]
            await mgr.drain()
            mgr.close()

        run_async(scenario())

    def test_quota_rejects_with_hint_and_spares_other_tenant(self, tmp_path):
        mgr = make_manager(
            tmp_path, echo_executor(), tenant_quota_units=5
        )
        mgr.submit("greedy", specs(5))
        with pytest.raises(Overloaded) as exc:
            mgr.submit("greedy", specs(1, tag="over"))
        assert exc.value.reason == "tenant_quota"
        assert exc.value.retry_after_s > 0
        # The other tenant's quota is untouched.
        job = mgr.submit("modest", specs(5, tag="m"))
        assert job.state == "queued"

    def test_quota_frees_as_units_complete(self, tmp_path):
        async def scenario():
            mgr = make_manager(
                tmp_path, echo_executor(), tenant_quota_units=4
            )
            await mgr.start()
            job = mgr.submit("t", specs(4))
            await wait_terminal(mgr, job)
            # Terminal jobs hold no quota.
            assert mgr.submit("t", specs(4, tag="next")).state == "queued"
            await mgr.drain()
            mgr.close()

        run_async(scenario())


class TestRetryAndQuarantine:
    def test_transient_failure_retries_to_success(self, tmp_path):
        attempts = {}

        async def flaky(units, seed):
            out = []
            for u in units:
                n = attempts[u.label()] = attempts.get(u.label(), 0) + 1
                if n < 2:
                    out.append(UnitFailure("RuntimeError: transient"))
                else:
                    out.append({"ok": u.params["i"]})
            return out

        async def scenario():
            mgr = make_manager(tmp_path, flaky, max_attempts=3)
            await mgr.start()
            job = mgr.submit("t", specs(3))
            await wait_terminal(mgr, job)
            assert job.state == "done"
            assert mgr.totals["units_retried"] == 3
            assert mgr.totals["units_quarantined"] == 0
            await mgr.drain()
            mgr.close()

        run_async(scenario())

    def test_poison_unit_quarantined_job_fails_with_partial_results(
        self, tmp_path
    ):
        async def poison_one(units, seed):
            return [
                UnitFailure("ValueError: poison")
                if u.params["i"] == 1 else {"ok": u.params["i"]}
                for u in units
            ]

        async def scenario():
            with recorder.recording() as rec:
                mgr = make_manager(
                    tmp_path, poison_one, max_attempts=2, batch_units=8
                )
                await mgr.start()
                job = mgr.submit("t", specs(3))
                await wait_terminal(mgr, job)
                assert job.state == "failed"
                assert mgr.totals["units_quarantined"] == 1
                doc = job.status_doc()
                assert doc["quarantined"] == 1
                assert "poison" in doc["quarantined_units"][0]["error"]
                # Partial results remain fetchable.
                result = mgr.result(job.job_id)
                states = [u["state"] for u in result["units"]]
                assert states == ["done", "quarantined", "done"]
                assert "error" in result["units"][1]
                await mgr.drain()
                mgr.close()
            assert rec.totals["serve.jobs.units_quarantined"] == 1

        run_async(scenario())

    def test_whole_batch_executor_crash_is_contained(self, tmp_path):
        async def explode(units, seed):
            raise RuntimeError("executor died")

        async def scenario():
            mgr = make_manager(tmp_path, explode, max_attempts=2)
            await mgr.start()
            job = mgr.submit("t", specs(2))
            await wait_terminal(mgr, job)
            assert job.state == "failed"
            assert job.counts["quarantined"] == 2
            await mgr.drain()
            mgr.close()

        run_async(scenario())


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        async def scenario():
            mgr = make_manager(tmp_path, echo_executor())
            job = mgr.submit("t", specs(4))
            assert mgr.cancel(job.job_id) is True
            assert job.state == "cancelled"
            assert mgr.cancel(job.job_id) is False  # already terminal
            await mgr.start()
            await asyncio.sleep(0.02)
            assert job.counts["done"] == 0  # never dispatched
            await mgr.drain()
            mgr.close()

        run_async(scenario())

    def test_cancel_survives_restart(self, tmp_path):
        mgr = make_manager(tmp_path, echo_executor())
        job = mgr.submit("t", specs(2))
        mgr.cancel(job.job_id)
        mgr.close()

        mgr2 = make_manager(tmp_path, echo_executor())
        mgr2.recover()
        assert mgr2.get(job.job_id).state == "cancelled"
        mgr2.close()


class TestDrain:
    def test_drain_parks_incomplete_jobs_recoverably(self, tmp_path):
        gate = asyncio.Event()

        async def slow(units, seed):
            await gate.wait()
            return [{"i": u.params["i"]} for u in units]

        async def scenario():
            mgr = make_manager(tmp_path, slow, batch_units=2)
            await mgr.start()
            job = mgr.submit("t", specs(6))
            await asyncio.sleep(0.02)  # first batch is now in flight
            drained = await mgr.drain(timeout_s=0.05)
            assert drained is False  # the gate never opened
            gate.set()
            mgr.close()

            # The parked job recovers as queued with all units pending.
            mgr2 = make_manager(tmp_path, echo_executor())
            info = mgr2.recover()
            assert info["restored"] == 1
            parked = mgr2.get(job.job_id)
            assert parked.state == "queued"
            assert parked.counts["pending"] == 6
            mgr2.close()

        run_async(scenario())

    def test_drain_waits_for_inflight_batch_when_it_finishes(self, tmp_path):
        async def scenario():
            mgr = make_manager(tmp_path, echo_executor())
            await mgr.start()
            job = mgr.submit("t", specs(2))
            await wait_terminal(mgr, job)
            assert await mgr.drain(timeout_s=1.0) is True
            mgr.close()

        run_async(scenario())


class TestRecovery:
    def test_completed_units_resume_from_cache(self, tmp_path):
        async def scenario():
            mgr = make_manager(tmp_path, echo_executor())
            await mgr.start()
            done = mgr.submit("t", specs(4), seed=9)
            await wait_terminal(mgr, done)
            await mgr.drain()
            mgr.close()

            # A new manager sees a fresh submit whose units are all
            # already cached: recover() completes it without dispatch.
            mgr2 = make_manager(tmp_path, echo_executor())
            parked = mgr2.submit("t", specs(4), seed=9, job_id="parked")
            mgr2.journal.flush()
            mgr2.close()

            calls = []
            with recorder.recording() as rec:
                mgr3 = make_manager(tmp_path, echo_executor(calls))
                info = mgr3.recover()
            assert info["resumed_units"] == 4
            revived = mgr3.get("parked")
            assert revived.state == "done"
            assert revived.resumed_units == 4
            assert calls == []
            assert rec.totals["serve.jobs.resumed_units"] == 4
            assert rec.totals["cache.hit"] >= 4
            result = mgr3.result("parked")
            assert [u["value"]["i"] for u in result["units"]] == [0, 1, 2, 3]
            mgr3.close()

        run_async(scenario())

    def test_partially_cached_job_recomputes_only_the_rest(self, tmp_path):
        async def scenario():
            calls = []
            mgr = make_manager(tmp_path, echo_executor(calls), batch_units=8)
            await mgr.start()
            warm = mgr.submit("t", specs(3), seed=1)  # units 0..2 cached
            await wait_terminal(mgr, warm)
            await mgr.drain()
            mgr.close()

            mgr2 = make_manager(tmp_path, echo_executor())
            mgr2.submit("t", specs(5, tag="u"), seed=1, job_id="wide")
            mgr2.journal.flush()
            mgr2.close()

            calls2 = []
            mgr3 = make_manager(tmp_path, echo_executor(calls2))
            info = mgr3.recover()
            assert info["resumed_units"] == 3
            await mgr3.start()
            await wait_terminal(mgr3, mgr3.get("wide"))
            # Only units 3 and 4 were ever dispatched.
            dispatched = sorted(
                label for labels, _ in calls2 for label in labels
            )
            assert all("i=3" in l or "i=4" in l for l in dispatched)
            assert len(dispatched) == 2
            await mgr3.drain()
            mgr3.close()

        run_async(scenario())

    def test_terminal_jobs_survive_restart_with_results(self, tmp_path):
        async def scenario():
            mgr = make_manager(tmp_path, echo_executor())
            await mgr.start()
            job = mgr.submit("t", specs(2), seed=4)
            await wait_terminal(mgr, job)
            await mgr.drain()
            mgr.close()

            mgr2 = make_manager(tmp_path, echo_executor())
            mgr2.recover()
            result = mgr2.result(job.job_id)
            assert [u["value"]["i"] for u in result["units"]] == [0, 1]
            mgr2.close()

        run_async(scenario())

    def test_rotation_compacts_and_preserves_state(self, tmp_path):
        async def scenario():
            mgr = make_manager(
                tmp_path, echo_executor(), rotate_bytes=1, keep_terminal=2
            )
            await mgr.start()
            jobs = [
                mgr.submit("t", specs(2, tag=f"j{i}")) for i in range(5)
            ]
            # keep_terminal=2 prunes old terminal jobs at rotation, so a
            # job may vanish from the manager once finished — absence
            # counts as terminal here.
            async def all_settled():
                while any(
                    j.job_id in mgr.jobs
                    and j.state not in ("done", "failed", "cancelled")
                    for j in jobs
                ):
                    await asyncio.sleep(0.005)

            await asyncio.wait_for(all_settled(), timeout=5.0)
            await mgr.drain()
            mgr.close()

            mgr2 = make_manager(tmp_path, echo_executor())
            info = mgr2.recover()
            # keep_terminal=2 pruned the oldest terminal jobs at rotate.
            assert info["jobs"] <= 3
            assert all(
                j.state == "done" for j in mgr2.jobs.values()
            )
            mgr2.close()

        run_async(scenario())


class TestCheckpointPolicyBatching:
    def test_flush_batch_is_clamped(self, tmp_path):
        mgr = make_manager(tmp_path, echo_executor())
        mgr._unit_cost_s = 1e9  # absurdly expensive units
        assert mgr._flush_every_units() == 1
        mgr._unit_cost_s = 1e-9  # absurdly cheap units
        assert mgr._flush_every_units() == 256

    def test_expensive_fsync_raises_batching(self, tmp_path):
        mgr = make_manager(tmp_path, echo_executor())
        mgr._unit_cost_s = 0.05
        mgr._fsync_cost_s = 1e-4
        cheap_fsync = mgr._flush_every_units()
        mgr._fsync_cost_s = 0.1
        assert mgr._flush_every_units() > cheap_fsync
