"""The open-loop load generator: workload determinism, end-to-end
runs against a real server, and the warm hit-ratio acceptance bar."""

import asyncio

from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.loadtest import (
    build_workload,
    format_report,
    run_loadtest_fleet,
)
from repro.serve.server import ServeServer


def label_runner(units):
    return [u.label() for u in units]


async def start_server(tmp_path):
    server = ServeServer(
        CampaignFrontEnd(
            ServeConfig(cache_dir=tmp_path, batch_window_s=0.005),
            label_runner,
        )
    )
    await server.start()
    return server, asyncio.ensure_future(server.serve_until_shutdown())


class TestWorkload:
    def test_seeded_and_reproducible(self):
        first = build_workload(50, seed=7)
        again = build_workload(50, seed=7)
        other = build_workload(50, seed=8)
        assert first == again
        assert first != other
        assert len(first) == 50

    def test_duplicate_heavy_shape(self):
        workload = build_workload(400, seed=0, hot_fraction=0.9)
        distinct = {(k, str(sorted(p.items()))) for k, p in workload}
        # 400 requests collapse onto a few dozen operating points — the
        # shape that makes coalescing + caching pay.
        assert len(distinct) < len(workload) / 5
        kinds = {k for k, _ in workload}
        assert kinds <= {"sweep_base", "sweep_point"}

    def test_hot_fraction_zero_spreads_the_load(self):
        workload = build_workload(200, seed=0, hot_fraction=0.0)
        distinct = {(k, str(sorted(p.items()))) for k, p in workload}
        assert len(distinct) > 10


class TestEndToEnd:
    def test_fleet_report_against_live_server(self, tmp_path):
        async def scenario():
            server, run_task = await start_server(tmp_path)
            report = await run_loadtest_fleet(
                "127.0.0.1", server.port,
                n_requests=120, rate=3000.0, seed=3,
                connections=2, shutdown_after=True,
            )
            await run_task
            return report

        report = asyncio.run(scenario())
        assert report["requests"] == 120
        assert report["completed"] == 120  # nothing dropped or errored
        assert report["errors"] == 0
        assert report["connections"] == 2
        assert sum(report["served"].values()) == 120
        assert 0.0 < report["hit_ratio"] <= 1.0
        assert report["p50_latency_s"] <= report["p99_latency_s"]
        assert report["throughput_rps"] > 0
        text = format_report(report)
        assert "hit ratio" in text and "p99" in text

    def test_warm_serve_hit_ratio_meets_the_bar(self, tmp_path):
        """The acceptance gate: against a warm cache the coalesce+cache
        hit ratio must reach at least 90%."""

        async def scenario():
            server, run_task = await start_server(tmp_path)
            cold = await run_loadtest_fleet(
                "127.0.0.1", server.port,
                n_requests=150, rate=3000.0, seed=5,
            )
            warm = await run_loadtest_fleet(
                "127.0.0.1", server.port,
                n_requests=150, rate=3000.0, seed=5,
                shutdown_after=True,
            )
            await run_task
            return cold, warm

        cold, warm = asyncio.run(scenario())
        assert cold["completed"] == warm["completed"] == 150
        assert warm["hit_ratio"] >= 0.9
        assert warm["served"]["computed"] == 0  # everything was known

    def test_loadtest_runs_are_reproducible(self, tmp_path):
        """Same seed, same workload: the served values must match
        request-for-request across runs (the latencies of course vary)."""

        first = build_workload(80, seed=11)
        again = build_workload(80, seed=11)
        assert first == again

        async def scenario():
            server, run_task = await start_server(tmp_path)
            a = await run_loadtest_fleet(
                "127.0.0.1", server.port, n_requests=80, rate=3000.0,
                seed=11,
            )
            b = await run_loadtest_fleet(
                "127.0.0.1", server.port, n_requests=80, rate=3000.0,
                seed=11, shutdown_after=True,
            )
            await run_task
            return a, b

        a, b = asyncio.run(scenario())
        assert a["requests"] == b["requests"] == 80
        assert a["errors"] == b["errors"] == 0
