"""The open-loop load generator: workload determinism, end-to-end
runs against a real server, the warm hit-ratio acceptance bar, the
connection-loss hang regression, and the saturation ramp."""

import asyncio
import json

from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.loadtest import (
    build_workload,
    format_report,
    format_saturation_report,
    run_loadtest,
    run_loadtest_fleet,
    run_saturation,
)
from repro.serve.server import ServeServer


def label_runner(units):
    return [u.label() for u in units]


async def start_server(tmp_path):
    server = ServeServer(
        CampaignFrontEnd(
            ServeConfig(cache_dir=tmp_path, batch_window_s=0.005),
            label_runner,
        )
    )
    await server.start()
    return server, asyncio.ensure_future(server.serve_until_shutdown())


class TestWorkload:
    def test_seeded_and_reproducible(self):
        first = build_workload(50, seed=7)
        again = build_workload(50, seed=7)
        other = build_workload(50, seed=8)
        assert first == again
        assert first != other
        assert len(first) == 50

    def test_duplicate_heavy_shape(self):
        workload = build_workload(400, seed=0, hot_fraction=0.9)
        distinct = {(k, str(sorted(p.items()))) for k, p in workload}
        # 400 requests collapse onto a few dozen operating points — the
        # shape that makes coalescing + caching pay.
        assert len(distinct) < len(workload) / 5
        kinds = {k for k, _ in workload}
        assert kinds <= {"sweep_base", "sweep_point"}

    def test_hot_fraction_zero_spreads_the_load(self):
        workload = build_workload(200, seed=0, hot_fraction=0.0)
        distinct = {(k, str(sorted(p.items()))) for k, p in workload}
        assert len(distinct) > 10


class TestEndToEnd:
    def test_fleet_report_against_live_server(self, tmp_path):
        async def scenario():
            server, run_task = await start_server(tmp_path)
            report = await run_loadtest_fleet(
                "127.0.0.1", server.port,
                n_requests=120, rate=3000.0, seed=3,
                connections=2, shutdown_after=True,
            )
            await run_task
            return report

        report = asyncio.run(scenario())
        assert report["requests"] == 120
        assert report["completed"] == 120  # nothing dropped or errored
        assert report["errors"] == 0
        assert report["connections"] == 2
        assert sum(report["served"].values()) == 120
        assert 0.0 < report["hit_ratio"] <= 1.0
        assert report["p50_latency_s"] <= report["p99_latency_s"]
        assert report["throughput_rps"] > 0
        text = format_report(report)
        assert "hit ratio" in text and "p99" in text

    def test_warm_serve_hit_ratio_meets_the_bar(self, tmp_path):
        """The acceptance gate: against a warm cache the coalesce+cache
        hit ratio must reach at least 90%."""

        async def scenario():
            server, run_task = await start_server(tmp_path)
            cold = await run_loadtest_fleet(
                "127.0.0.1", server.port,
                n_requests=150, rate=3000.0, seed=5,
            )
            warm = await run_loadtest_fleet(
                "127.0.0.1", server.port,
                n_requests=150, rate=3000.0, seed=5,
                shutdown_after=True,
            )
            await run_task
            return cold, warm

        cold, warm = asyncio.run(scenario())
        assert cold["completed"] == warm["completed"] == 150
        assert warm["hit_ratio"] >= 0.9
        assert warm["served"]["computed"] == 0  # everything was known

    def test_loadtest_runs_are_reproducible(self, tmp_path):
        """Same seed, same workload: the served values must match
        request-for-request across runs (the latencies of course vary)."""

        first = build_workload(80, seed=11)
        again = build_workload(80, seed=11)
        assert first == again

        async def scenario():
            server, run_task = await start_server(tmp_path)
            a = await run_loadtest_fleet(
                "127.0.0.1", server.port, n_requests=80, rate=3000.0,
                seed=11,
            )
            b = await run_loadtest_fleet(
                "127.0.0.1", server.port, n_requests=80, rate=3000.0,
                seed=11, shutdown_after=True,
            )
            await run_task
            return a, b

        a, b = asyncio.run(scenario())
        assert a["requests"] == b["requests"] == 80
        assert a["errors"] == b["errors"] == 0

    def test_report_carries_realized_send_duration(self, tmp_path):
        """``send_wall_s`` is what run_saturation judges capacity
        against — the realized Poisson send window, not n/rate."""

        async def scenario():
            server, run_task = await start_server(tmp_path)
            report = await run_loadtest_fleet(
                "127.0.0.1", server.port,
                n_requests=60, rate=3000.0, seed=2,
                connections=2, shutdown_after=True,
            )
            await run_task
            return report

        report = asyncio.run(scenario())
        assert report["send_wall_s"] > 0
        assert report["send_wall_s"] <= report["wall_s"]


class TestConnectionLoss:
    """Regression for the loadtest hang: a server dying mid-run used to
    leave unanswered futures pending forever (the gather waited on
    responses nobody would send).  Post-fix every outstanding request
    resolves as an error and the run completes."""

    def test_server_dying_mid_run_does_not_hang(self):
        async def scenario():
            async def handle(reader, writer):
                # Answer exactly one request, then slam the door with
                # an RST (abort, not close — readline sees an
                # exception, not a clean EOF).
                line = await reader.readline()
                doc = json.loads(line)
                writer.write((json.dumps(
                    {"id": doc["id"], "ok": True, "served": "cache",
                     "value": "x", "latency_s": 0.0}
                ) + "\n").encode())
                await writer.drain()
                writer.transport.abort()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            workload = [("sweep_base", {})] * 50
            try:
                # Pre-fix this either hung (unresolved futures in the
                # gather) or leaked the raw ConnectionResetError out of
                # the send loop; the wait_for plus the report
                # assertions below cover both failure shapes.
                report = await asyncio.wait_for(
                    run_loadtest("127.0.0.1", port, workload, rate=5000.0),
                    timeout=10.0,
                )
            finally:
                server.close()
                await server.wait_closed()
            return report

        report = asyncio.run(scenario())
        assert report["requests"] == 50
        # One answer got through before the abort; everything else
        # must be accounted for as errors, not silently dropped.
        assert report["completed"] <= 1
        assert report["errors"] >= 49
        assert report["completed"] + report["errors"] == 50

    def test_fleet_survives_a_mute_server(self):
        """A server that accepts and immediately hangs up must fail the
        whole fleet run cleanly (errors == requests)."""

        async def scenario():
            async def handle(reader, writer):
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                report = await asyncio.wait_for(
                    run_loadtest_fleet(
                        "127.0.0.1", port, n_requests=40, rate=5000.0,
                        seed=1, connections=2,
                    ),
                    timeout=10.0,
                )
            finally:
                server.close()
                await server.wait_closed()
            return report

        report = asyncio.run(scenario())
        assert report["errors"] == 40
        assert report["completed"] == 0


class TestSaturation:
    def test_ramp_exhausts_on_a_fast_server(self, tmp_path):
        """Against a server it cannot outrun, the ramp runs out of
        steps: every step sustained, ceiling > 0, saturated False."""

        async def scenario():
            server, run_task = await start_server(tmp_path)
            report = await run_saturation(
                "127.0.0.1", server.port, seed=0,
                connections=2, start_rate=800.0, growth=2.0,
                step_seconds=0.1, max_steps=2, min_step_requests=40,
                p99_limit_s=5.0,
            )
            server.request_shutdown()
            await run_task
            return report

        report = asyncio.run(scenario())
        assert report["mode"] == "saturation"
        assert len(report["steps"]) == 2
        assert all(s["sustained"] for s in report["steps"])
        assert report["saturated"] is False
        assert report["max_sustainable_ops_per_s"] > 0
        for step in report["steps"]:
            assert step["realized_offered_rps"] > 0
        text = format_saturation_report(report)
        assert "max sustainable" in text
        assert "ramp exhausted" in text

    def test_rejecting_server_saturates_at_zero(self):
        """A server that sheds every request is saturated at step one
        with no sustainable rate."""

        async def scenario():
            async def handle(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    doc = json.loads(line)
                    writer.write((json.dumps(
                        {"id": doc.get("id"), "ok": False,
                         "error": "overloaded", "reason": "shedding",
                         "retry_after_s": 0.01}
                    ) + "\n").encode())
                    await writer.drain()
                writer.close()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                report = await asyncio.wait_for(
                    run_saturation(
                        "127.0.0.1", port, connections=1,
                        start_rate=2000.0, step_seconds=0.05,
                        min_step_requests=30, max_steps=4,
                    ),
                    timeout=10.0,
                )
            finally:
                server.close()
                await server.wait_closed()
            return report

        report = asyncio.run(scenario())
        assert report["saturated"] is True
        assert len(report["steps"]) == 1  # degraded immediately
        assert report["steps"][0]["rejected"] > 0
        assert report["max_sustainable_ops_per_s"] == 0.0
        text = format_saturation_report(report)
        assert "DEGRADED" in text
