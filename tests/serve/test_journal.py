"""The crash-safe job journal: append/replay, corruption recovery,
rotation.  The contract under test is the robustness one — a torn
tail, a flipped bit, or a duplicated record must recover (or drop the
tail) deterministically, never crash, never resurrect bad data."""

import json
import zlib

import pytest

from repro.serve.journal import JobJournal


def make_journal(tmp_path, **kw):
    # fsync off: these tests exercise record framing and recovery, not
    # the disk barrier, and fsync per append makes the suite crawl.
    return JobJournal(tmp_path / "j", fsync=False, **kw)


class TestRoundTrip:
    def test_append_then_replay_preserves_order_and_content(self, tmp_path):
        j = make_journal(tmp_path)
        docs = [{"t": "submit", "job": f"job{i}"} for i in range(5)]
        for doc in docs:
            j.append(doc, flush=False)
        j.close()

        j2 = make_journal(tmp_path)
        replayed = j2.replay()
        assert [d["job"] for d in replayed] == [d["job"] for d in docs]
        assert all(d["t"] == "submit" for d in replayed)

    def test_seq_stamps_are_monotonic(self, tmp_path):
        j = make_journal(tmp_path)
        seqs = [j.append({"t": "x"}, flush=False) for _ in range(4)]
        assert seqs == [1, 2, 3, 4]
        j.close()
        assert [d["seq"] for d in make_journal(tmp_path).replay()] == seqs

    def test_empty_journal_replays_empty(self, tmp_path):
        assert make_journal(tmp_path).replay() == []

    def test_reopen_resumes_seq_past_existing_records(self, tmp_path):
        """Appending to a reopened segment must never reuse a live seq —
        a collision would make replay drop the *newer* record as a
        duplicate."""
        j = make_journal(tmp_path)
        j.append({"t": "a"})
        j.append({"t": "b"})
        j.close()

        j2 = make_journal(tmp_path)  # no explicit replay() before append
        j2.append({"t": "c"})
        j2.close()

        docs = make_journal(tmp_path).replay()
        assert [d["t"] for d in docs] == ["a", "b", "c"]
        assert len({d["seq"] for d in docs}) == 3


class TestCorruptionRecovery:
    def fill(self, tmp_path, n=6):
        j = make_journal(tmp_path)
        for i in range(n):
            j.append({"t": "rec", "i": i}, flush=False)
        j.close()
        return tmp_path / "j" / "jobs.wal"

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        path = self.fill(tmp_path)
        good_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b'00000000 {"half a record with no newline')

        j = make_journal(tmp_path)
        docs = j.replay()
        assert [d["i"] for d in docs] == list(range(6))
        # The corrupt tail is physically gone, so the next replay (and
        # the next crash) starts from a clean segment.
        assert path.stat().st_size == good_size

    def test_bit_flip_truncates_from_corruption_point(self, tmp_path):
        path = self.fill(tmp_path)
        data = bytearray(path.read_bytes())
        lines = bytes(data).split(b"\n")
        # Flip one payload bit in record 3 (0-indexed): its CRC check
        # fails, and records 3..5 — everything at and after the damage —
        # are dropped; order against a corrupt record is untrustworthy.
        offset = sum(len(l) + 1 for l in lines[:3]) + 20
        data[offset] ^= 0x01
        path.write_bytes(bytes(data))

        docs = make_journal(tmp_path).replay()
        assert [d["i"] for d in docs] == [0, 1, 2]
        assert path.read_bytes().count(b"\n") == 3

    def test_valid_crc_over_non_json_payload_truncates(self, tmp_path):
        path = self.fill(tmp_path, n=2)
        payload = b"not json at all"
        with open(path, "ab") as fh:
            fh.write(b"%08x %s\n" % (zlib.crc32(payload), payload))
            fh.write(b"trailing garbage line\n")

        docs = make_journal(tmp_path).replay()
        assert [d["i"] for d in docs] == [0, 1]
        assert path.read_bytes().count(b"\n") == 2

    def test_duplicate_records_replay_once(self, tmp_path):
        path = self.fill(tmp_path, n=3)
        lines = path.read_bytes().splitlines(keepends=True)
        # Double-land record 1, byte-for-byte (the retried-append case).
        with open(path, "ab") as fh:
            fh.write(lines[1])

        j = make_journal(tmp_path)
        docs = j.replay()
        assert [d["i"] for d in docs] == [0, 1, 2]
        # The duplicate line itself is VALID (correct CRC), so it is
        # not truncated — just deduplicated on every replay.
        assert make_journal(tmp_path).replay() == docs

    def test_whole_file_garbage_recovers_to_empty(self, tmp_path):
        j = make_journal(tmp_path)
        j.close()
        path = tmp_path / "j" / "jobs.wal"
        path.write_bytes(b"\x00\xff" * 100 + b"\n more garbage\n")

        j2 = make_journal(tmp_path)
        assert j2.replay() == []
        assert path.stat().st_size == 0
        # And the journal is immediately usable again.
        j2.append({"t": "fresh"})
        assert [d["t"] for d in make_journal(tmp_path).replay()] == ["fresh"]

    def test_post_truncation_appends_replay_cleanly(self, tmp_path):
        path = self.fill(tmp_path, n=4)
        with open(path, "ab") as fh:
            fh.write(b"torn")

        j = make_journal(tmp_path)
        j.replay()
        j.append({"t": "after", "i": 99})
        j.close()

        docs = make_journal(tmp_path).replay()
        assert [d.get("i") for d in docs] == [0, 1, 2, 3, 99]


class TestRotation:
    def test_rotate_replaces_segment_with_compacted_docs(self, tmp_path):
        j = make_journal(tmp_path)
        for i in range(50):
            j.append({"t": "noise", "i": i}, flush=False)
        j.rotate([{"t": "keep", "i": 1}, {"t": "keep", "i": 2}])

        docs = make_journal(tmp_path).replay()
        assert [(d["t"], d["i"]) for d in docs] == [("keep", 1), ("keep", 2)]
        assert [d["seq"] for d in docs] == [1, 2]

    def test_rotate_leaves_no_temp_file(self, tmp_path):
        j = make_journal(tmp_path)
        j.append({"t": "a"})
        j.rotate([{"t": "a"}])
        leftovers = [p.name for p in (tmp_path / "j").iterdir()]
        assert leftovers == ["jobs.wal"]

    def test_appends_after_rotate_continue_the_segment(self, tmp_path):
        j = make_journal(tmp_path)
        j.rotate([{"t": "base"}])
        j.append({"t": "next"})
        j.close()
        docs = make_journal(tmp_path).replay()
        assert [d["t"] for d in docs] == ["base", "next"]
        assert docs[1]["seq"] == 2

    def test_size_bytes_tracks_growth(self, tmp_path):
        j = make_journal(tmp_path)
        assert j.size_bytes == 0
        j.append({"t": "x"}, flush=False)
        assert j.size_bytes > 0


class TestRecordFraming:
    def test_records_are_crc_prefixed_lines(self, tmp_path):
        j = make_journal(tmp_path)
        j.append({"t": "probe"})
        j.close()
        line = (tmp_path / "j" / "jobs.wal").read_bytes().splitlines()[0]
        crc_hex, payload = line.split(b" ", 1)
        assert int(crc_hex, 16) == zlib.crc32(payload)
        doc = json.loads(payload)
        assert doc["t"] == "probe" and doc["seq"] == 1
