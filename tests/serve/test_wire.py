"""The ``binary1`` codec and framing layer, tested in isolation.

The one property everything else rests on: ``decode(encode(v)) == v``
EXACTLY for every JSON value — float bit patterns included — so the
binary wire can never change what a query answers, only how fast the
answer travels.  The oracle tests below close the loop against the
run-unit results the serve tier actually ships.
"""

import json
import math
import struct

import pytest

from repro.parallel.units import execute_unit as run_unit
from repro.serve.frontend import UNIT_KINDS
from repro.serve.wire import (
    FRAME_DOC,
    FRAME_QREQ,
    FRAME_QRESP,
    KIND_CODES,
    MAGIC,
    MAX_FRAME_LEN,
    SERVED_ORDER,
    BadFrame,
    DecodeMemo,
    EncodeMemo,
    decode_frame,
    decode_value,
    encode_doc_frame,
    encode_value,
)

_HEADER = struct.Struct(">BBI")
_QREQ = struct.Struct(">QBB")
_QRESP = struct.Struct(">QdB")

#: One operating point per reproduced figure — the same set the
#: protocol-contract identity tests pin.
ORACLE_CASES = [
    ("sweep_point", {"mode": "single", "platform": "Tegra2", "freq": 1.0}),
    ("sweep_point", {"mode": "multi", "platform": "Exynos5250", "freq": 1.4}),
    ("fig6_point", {"app": "HPL", "max_nodes": 96, "n": 96}),
]


def bits(x: float) -> int:
    return struct.unpack("!Q", struct.pack("!d", x))[0]


def assert_identical(a, b):
    """Equality with float *bit-pattern* strictness, recursively."""
    assert type(a) is type(b), (a, b)
    if isinstance(a, float):
        assert bits(a) == bits(b), (a.hex(), b.hex())
    elif isinstance(a, list):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_identical(x, y)
    elif isinstance(a, dict):
        assert sorted(a) == sorted(b)
        for k in a:
            assert_identical(a[k], b[k])
    else:
        assert a == b


class TestCodecRoundTrip:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**62, -(2**62),
        2**63 - 1, -(2**63),          # i64 edges
        2**63, 2**200, -(2**200),     # bigint spills
        0.0, -0.0, 1.5, -1.5, 1e308, 5e-324, math.inf, -math.inf,
        "", "plain", "uniçødé \U0001f600", "with\nnewline",
        [], [1, 2, 3], [[[]]], [None, True, 0.5, "x", {"k": []}],
        {}, {"a": 1}, {"nested": {"deep": [{"leaf": -0.0}]}},
    ])
    def test_round_trip_exact(self, value):
        assert_identical(decode_value(encode_value(value)), value)

    def test_nan_round_trips_bit_exact(self):
        # json.dumps would choke on NaN with allow_nan=False; the tag
        # codec carries the raw f64, payload bits preserved.
        out = decode_value(encode_value(math.nan))
        assert math.isnan(out) and bits(out) == bits(math.nan)

    def test_negative_zero_survives(self):
        out = decode_value(encode_value(-0.0))
        assert out == 0.0 and math.copysign(1.0, out) == -1.0

    def test_int_stays_int_float_stays_float(self):
        # 1 and 1.0 compare equal in Python; the wire must not conflate
        # them or the JSON and binary paths would answer differently.
        assert type(decode_value(encode_value(1))) is int
        assert type(decode_value(encode_value(1.0))) is float

    def test_dict_keys_coerced_like_json_dumps(self):
        mixed = {True: 1, 3: "x", 2.5: None, None: []}
        expected = json.loads(json.dumps(mixed))
        assert decode_value(encode_value(mixed)) == expected

    def test_canonical_equal_values_equal_bytes(self):
        a = {"b": 2, "a": 1}
        b = {"a": 1, "b": 2}
        assert encode_value(a) == encode_value(b)

    def test_tuple_encodes_as_list(self):
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_off_domain_values_raise(self):
        for bad in (object(), {1, 2}, b"bytes", {"k": object()}):
            with pytest.raises(ValueError):
                encode_value(bad)


class TestCodecAdversarial:
    """Malformed payloads must raise, never crash or mis-decode."""

    @pytest.mark.parametrize("blob", [
        b"",                               # empty
        b"\xc1",                           # unknown tag
        b"\xdb\x00\x00\x00\x05ab",         # truncated string
        b"\xcb\x00\x00",                   # truncated float
        b"\xd3\x01",                       # truncated int
        b"\xdd\xff\xff\xff\xff",           # list count over payload
        b"\xdf\xff\xff\xff\xff",           # dict count over payload
        b"\xdf\x00\x00\x00\x01\xc0\xc0",   # non-string dict key
        b"\xd4\x00\x00\x00\x09abc",        # truncated bigint
        encode_value(1) + b"\x00",         # trailing bytes
        b"\xdb\xff\xff\xff\xff" + b"x" * 16,  # str length over payload
    ])
    def test_malformed_payload_raises_valueerror(self, blob):
        with pytest.raises(ValueError):
            decode_value(blob)

    def test_invalid_utf8_raises(self):
        with pytest.raises(ValueError):
            decode_value(b"\xdb\x00\x00\x00\x02\xff\xfe")


class TestFrames:
    def test_doc_frame_round_trip(self):
        doc = {"op": "query", "id": 7, "kind": "sweep_base", "params": {}}
        frame = encode_doc_frame(doc)
        magic, ftype, length = _HEADER.unpack_from(frame)
        assert magic == MAGIC and ftype == FRAME_DOC
        assert length == len(frame) - _HEADER.size
        out = decode_frame(ftype, frame[_HEADER.size:], DecodeMemo())
        assert out == doc

    def test_qreq_frame_decodes_to_query_doc(self):
        kind = UNIT_KINDS[1]
        params = {"freq": 1.0, "mode": "single", "platform": "Tegra2"}
        payload = (
            _QREQ.pack(42, 0x03, KIND_CODES[kind]) + encode_value(params)
        )
        doc = decode_frame(FRAME_QREQ, payload, DecodeMemo())
        assert doc == {
            "op": "query", "id": 42, "kind": kind, "params": params,
            "via": "direct", "redirect": True,
        }

    def test_qresp_frame_decodes_to_response_doc(self):
        payload = _QRESP.pack(9, 0.25, 0) + encode_value({"v": [1.5]})
        doc = decode_frame(FRAME_QRESP, payload, DecodeMemo())
        assert doc == {
            "id": 9, "ok": True, "value": {"v": [1.5]},
            "served": SERVED_ORDER[0], "latency_s": 0.25,
        }

    @pytest.mark.parametrize("ftype,payload", [
        (0x7F, b""),                                    # unknown frame type
        (FRAME_DOC, b"\xc1"),                           # bad codec tag
        (FRAME_DOC, encode_value([1, 2])),              # doc not a dict
        (FRAME_QREQ, b"\x00"),                          # short QREQ header
        (FRAME_QREQ, _QREQ.pack(1, 0, 250) + b"\xc0"),  # unknown kind code
        (FRAME_QREQ, _QREQ.pack(1, 0, 0) + encode_value("x")),  # params not dict
        (FRAME_QRESP, _QRESP.pack(1, 0.0, 250) + b"\xc0"),  # unknown served
        (FRAME_QRESP, b"\x00\x00"),                     # short QRESP header
    ])
    def test_damaged_payload_is_badframe(self, ftype, payload):
        with pytest.raises(BadFrame):
            decode_frame(ftype, payload, DecodeMemo())

    def test_oversized_doc_payload_rejected_at_encode(self):
        with pytest.raises(ValueError):
            encode_doc_frame({"blob": "x" * (MAX_FRAME_LEN + 16)})


class TestMemos:
    def test_encode_memo_identity_hit(self):
        memo = EncodeMemo()
        value = {"a": [1.5, 2.5]}
        first = memo.encode(value)
        assert memo.encode(value) is first          # same object: cached blob
        assert memo.encode({"a": [1.5, 2.5]}) == first  # equal object: equal bytes

    def test_encode_memo_pins_objects_against_id_reuse(self):
        # The id() key is sound only because the entry holds a strong
        # reference AND re-checks identity: a different object that
        # happens to collide must miss.
        memo = EncodeMemo(max_entries=4)
        blobs = [memo.encode({"i": i}) for i in range(16)]
        assert blobs == [encode_value({"i": i}) for i in range(16)]

    def test_encode_memo_evicts_at_cap(self):
        memo = EncodeMemo(max_entries=2)
        keep = [{"i": i} for i in range(5)]
        for value in keep:
            memo.encode(value)
        assert len(memo._entries) == 2

    def test_decode_memo_returns_shared_object(self):
        memo = DecodeMemo()
        blob = encode_value({"k": [1.0, 2.0]})
        assert memo.decode(blob) is memo.decode(bytes(blob))

    def test_decode_memo_propagates_badness(self):
        with pytest.raises(ValueError):
            DecodeMemo().decode(b"\xc1")


class TestOracleIdentity:
    """The codec round-trips the serve tier's REAL values — one
    representative run-unit result per reproduced figure — with exact
    float equality, and agrees with the JSON encoding byte-for-float."""

    @pytest.mark.parametrize("kind,params", ORACLE_CASES)
    def test_run_unit_value_round_trips_exact(self, kind, params):
        value = run_unit(kind, params)
        assert_identical(decode_value(encode_value(value)), value)

    @pytest.mark.parametrize("kind,params", ORACLE_CASES)
    def test_matches_json_round_trip(self, kind, params):
        # The JSON-lines wire is the reference behaviour: whatever
        # json round-trips a value to, the binary wire must match.
        value = run_unit(kind, params)
        via_json = json.loads(json.dumps(value))
        assert_identical(decode_value(encode_value(value)), via_json)

    @pytest.mark.parametrize("kind,params", ORACLE_CASES)
    def test_params_canonical_both_wires(self, kind, params):
        # Route keys and cache keys are derived from params: the binary
        # decode must hand back params the JSON path would recognise.
        decoded = decode_value(encode_value(params))
        assert json.dumps(decoded, sort_keys=True) == json.dumps(
            params, sort_keys=True
        )
