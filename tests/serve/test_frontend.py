"""The serving front end: coalescing, caching, batching, admission,
drain.  Every test injects a fake runner — the execution path under the
batcher is :func:`run_units`, covered by the campaign tests; here the
contract under test is the funnel itself."""

import asyncio
import threading

import pytest

from repro.obs import recorder
from repro.serve.frontend import (
    CampaignFrontEnd,
    Overloaded,
    ServeConfig,
    ServeStats,
    percentile,
)

POINT_A = {"mode": "single", "platform": "Tegra2", "freq": 1.0}


def counting_runner(calls):
    """A runner that logs each batch and returns unit labels."""

    def run(units):
        calls.append([u.label() for u in units])
        return [u.label() for u in units]

    return run


def run_async(coro):
    return asyncio.run(coro)


class TestFunnel:
    def test_identical_inflight_requests_coalesce(self):
        async def scenario():
            calls = []
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None), runner=counting_runner(calls)
            )
            await fe.start()
            results = await asyncio.gather(
                *(fe.submit("sweep_base", {}) for _ in range(8))
            )
            await fe.drain()
            return calls, results, fe.stats

        calls, results, stats = run_async(scenario())
        assert len(calls) == 1  # ONE computation served all eight
        values = {v for v, _ in results}
        assert values == {"sweep_base()"}
        assert sorted(s for _, s in results) == ["coalesced"] * 7 + [
            "computed"
        ]
        assert (stats.coalesced, stats.computed) == (7, 1)
        assert stats.hit_ratio == pytest.approx(7 / 8)

    def test_cache_hit_skips_the_runner(self, tmp_path):
        async def scenario():
            calls = []
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=tmp_path), runner=counting_runner(calls)
            )
            await fe.start()
            first = await fe.submit("sweep_point", POINT_A)
            again = await fe.submit("sweep_point", POINT_A)
            await fe.drain()
            return calls, first, again, fe.stats

        calls, first, again, stats = run_async(scenario())
        assert len(calls) == 1
        assert first[1] == "computed" and again[1] == "cache"
        assert first[0] == again[0]
        assert stats.cache_hits == 1

    def test_distinct_misses_micro_batch(self):
        async def scenario():
            calls = []
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None, batch_window_s=0.05),
                runner=counting_runner(calls),
            )
            await fe.start()
            freqs = [0.1 * i for i in range(1, 7)]
            await asyncio.gather(
                *(
                    fe.submit("sweep_point", {**POINT_A, "freq": f})
                    for f in freqs
                )
            )
            await fe.drain()
            return calls, fe.stats

        calls, stats = run_async(scenario())
        assert len(calls) == 1  # one window collected all six misses
        assert len(calls[0]) == 6
        assert stats.batches == 1 and stats.mean_batch_size == 6

    def test_max_batch_splits_oversized_windows(self):
        async def scenario():
            calls = []
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None, batch_window_s=0.05, max_batch=4),
                runner=counting_runner(calls),
            )
            await fe.start()
            await asyncio.gather(
                *(
                    fe.submit("sweep_point", {**POINT_A, "freq": 0.1 * i})
                    for i in range(1, 11)
                )
            )
            await fe.drain()
            return calls

        calls = run_async(scenario())
        assert sum(len(c) for c in calls) == 10
        assert max(len(c) for c in calls) <= 4

    def test_unknown_kind_rejected(self):
        async def scenario():
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None), runner=lambda units: []
            )
            await fe.start()
            try:
                with pytest.raises(ValueError, match="work-unit kind"):
                    await fe.submit("nonsense", {})
            finally:
                await fe.drain()

        run_async(scenario())

    def test_runner_failure_reaches_every_waiter(self):
        async def scenario():
            def broken(units):
                raise RuntimeError("kaboom")

            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None), runner=broken
            )
            await fe.start()
            results = await asyncio.gather(
                *(fe.submit("sweep_base", {}) for _ in range(3)),
                return_exceptions=True,
            )
            # The front end must have cleaned up: a later submit gets a
            # fresh computation, not the dead in-flight future.
            with pytest.raises(RuntimeError, match="kaboom"):
                await fe.submit("sweep_base", {})
            await fe.drain()
            return results, fe.stats

        results, stats = run_async(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert stats.failed == 4


class TestAdmissionControl:
    def test_overload_rejected_with_retry_after(self):
        async def scenario():
            release = threading.Event()

            def blocking(units):
                release.wait(timeout=10)
                return [u.label() for u in units]

            fe = CampaignFrontEnd(
                ServeConfig(
                    cache_dir=None, queue_limit=2, batch_window_s=0.0,
                    max_batch=1,
                ),
                runner=blocking,
            )
            await fe.start()
            first = asyncio.ensure_future(fe.submit("sweep_base", {}))
            second = asyncio.ensure_future(
                fe.submit("sweep_point", POINT_A)
            )
            await asyncio.sleep(0.05)  # both occupy the pending bound
            with pytest.raises(Overloaded) as excinfo:
                await fe.submit("sweep_point", {**POINT_A, "freq": 0.5})
            release.set()
            await asyncio.gather(first, second)
            await fe.drain()
            return excinfo.value, fe.stats

        exc, stats = run_async(scenario())
        assert exc.retry_after_s > 0
        assert exc.reason == "overloaded"
        assert stats.rejected == 1
        assert stats.accepted == 2  # rejects never count as accepted

    def test_coalesced_requests_admitted_even_when_full(self):
        async def scenario():
            release = threading.Event()

            def blocking(units):
                release.wait(timeout=10)
                return [u.label() for u in units]

            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None, queue_limit=1),
                runner=blocking,
            )
            await fe.start()
            first = asyncio.ensure_future(fe.submit("sweep_base", {}))
            await asyncio.sleep(0.05)
            # The queue is full, but an identical request costs no
            # worker time — it must ride the in-flight computation.
            dup = asyncio.ensure_future(fe.submit("sweep_base", {}))
            await asyncio.sleep(0.05)
            assert not dup.done()
            release.set()
            results = await asyncio.gather(first, dup)
            await fe.drain()
            return results, fe.stats

        results, stats = run_async(scenario())
        assert [s for _, s in results] == ["computed", "coalesced"]
        assert stats.rejected == 0


class TestGracefulDrain:
    def test_drain_resolves_everything_accepted(self):
        async def scenario():
            release = threading.Event()

            def blocking(units):
                release.wait(timeout=10)
                return [u.label() for u in units]

            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None, batch_window_s=0.0),
                runner=blocking,
            )
            await fe.start()
            inflight = [
                asyncio.ensure_future(
                    fe.submit("sweep_point", {**POINT_A, "freq": 0.1 * i})
                )
                for i in range(1, 5)
            ]
            await asyncio.sleep(0.05)
            drainer = asyncio.ensure_future(fe.drain())
            await asyncio.sleep(0.05)
            assert fe.draining and not drainer.done()
            release.set()
            await drainer
            results = await asyncio.gather(*inflight)
            return results, fe.stats

        results, stats = run_async(scenario())
        assert len(results) == 4  # none dropped
        assert stats.computed == 4 and stats.failed == 0

    def test_new_misses_rejected_while_draining(self):
        async def scenario():
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None),
                runner=lambda units: [u.label() for u in units],
            )
            await fe.start()
            await fe.submit("sweep_base", {})
            await fe.drain()
            with pytest.raises(Overloaded) as excinfo:
                await fe.submit("sweep_point", POINT_A)
            return excinfo.value

        exc = run_async(scenario())
        assert exc.reason == "draining"

    def test_cache_hits_still_served_after_drain(self, tmp_path):
        async def scenario():
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=tmp_path),
                runner=lambda units: [u.label() for u in units],
            )
            await fe.start()
            await fe.submit("sweep_base", {})
            await fe.drain()
            # Costs no worker time, so the drained front end can still
            # answer it (the transport decides when to stop listening).
            return await fe.submit("sweep_base", {})

        value, served = run_async(scenario())
        assert served == "cache" and value == "sweep_base()"


class TestBoundedDrain:
    def test_drain_timeout_fails_stragglers_with_retryable_error(self):
        async def scenario():
            release = threading.Event()

            def blocking(units):
                release.wait(timeout=10)
                return [u.label() for u in units]

            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None, batch_window_s=0.0),
                runner=blocking,
            )
            await fe.start()
            inflight = [
                asyncio.ensure_future(
                    fe.submit("sweep_point", {**POINT_A, "freq": 0.1 * i})
                )
                for i in range(1, 4)
            ]
            await asyncio.sleep(0.05)
            t0 = asyncio.get_running_loop().time()
            drained = await fe.drain(timeout_s=0.1)
            elapsed = asyncio.get_running_loop().time() - t0
            results = await asyncio.gather(*inflight, return_exceptions=True)
            release.set()
            return drained, elapsed, results

        drained, elapsed, results = run_async(scenario())
        assert drained is False
        assert elapsed < 5.0  # bounded, not held hostage by the batch
        # Every unresolved waiter is released NOW with a retryable error.
        assert all(isinstance(r, Overloaded) for r in results)
        assert all(r.reason == "draining" for r in results)
        assert all(r.retry_after_s > 0 for r in results)

    def test_drain_timeout_noop_when_everything_resolves_in_time(self):
        async def scenario():
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None),
                runner=lambda units: [u.label() for u in units],
            )
            await fe.start()
            await fe.submit("sweep_base", {})
            return await fe.drain(timeout_s=5.0)

        assert run_async(scenario()) is True


class TestRetryAfterHint:
    def test_hint_is_finite_and_positive_before_any_batch(self):
        """Regression: before the first batch completes the observed
        throughput is zero, and the hint degenerated instead of falling
        back to the batch window."""

        async def scenario():
            release = threading.Event()

            def blocking(units):
                release.wait(timeout=10)
                return [u.label() for u in units]

            fe = CampaignFrontEnd(
                ServeConfig(
                    cache_dir=None, batch_window_s=0.02, queue_limit=1,
                    max_batch=4,
                ),
                runner=blocking,
            )
            await fe.start()
            first = asyncio.ensure_future(fe.submit("sweep_base", {}))
            await asyncio.sleep(0.005)
            with pytest.raises(Overloaded) as excinfo:
                await fe.submit("sweep_point", POINT_A)
            release.set()
            await first
            await fe.drain()
            return excinfo.value

        exc = run_async(scenario())
        assert exc.retry_after_s > 0
        assert exc.retry_after_s != float("inf")
        # One pending batch at zero observed throughput: the hint is the
        # batch window per not-yet-started batch, never zero.
        assert exc.retry_after_s >= 0.02

    def test_hint_scales_with_backlog_before_any_batch(self):
        fe = CampaignFrontEnd(
            ServeConfig(cache_dir=None, batch_window_s=0.02, max_batch=2),
            runner=lambda units: [u.label() for u in units],
        )
        fe._pending_units = 10  # 5 batches of 2 still to run
        assert fe._retry_after() == pytest.approx(5 * 0.02)
        fe._pending_units = 1
        assert fe._retry_after() == pytest.approx(0.02)


class TestObsIntegration:
    def test_serve_totals_and_batch_spans_recorded(self):
        async def scenario():
            fe = CampaignFrontEnd(
                ServeConfig(cache_dir=None, batch_window_s=0.02),
                runner=lambda units: [u.label() for u in units],
            )
            await fe.start()
            await asyncio.gather(
                *(fe.submit("sweep_base", {}) for _ in range(3))
            )
            await fe.drain()

        with recorder.recording() as rec:
            run_async(scenario())
        assert rec.totals["serve.computed"] == 1
        assert rec.totals["serve.coalesced"] == 2
        assert rec.totals["serve.batches"] == 1
        spans = rec.spans_by_cat("serve")
        assert [s.name for s in spans] == ["serve.batch"]
        assert dict(spans[0].args)["batch"] == 1
        assert any(c.name == "serve.queue_depth" for c in rec.counters)


class TestConfigAndHelpers:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"max_batch": 0},
            {"queue_limit": 0},
            {"batch_window_s": -0.1},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_percentile_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert percentile([7.0], 0.5) == 7.0

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 1.5)

    def test_stats_snapshot_shape(self):
        stats = ServeStats()
        assert stats.hit_ratio == 0.0 and stats.mean_batch_size == 0.0
        stats.accepted = 4
        stats.cache_hits = 1
        stats.coalesced = 1
        stats.record_latency(0.25)
        snap = stats.snapshot()
        assert snap["hit_ratio"] == 0.5
        assert snap["p50_latency_s"] == 0.25
