"""The JSON-lines wire protocol as a shared contract.

The router speaks the exact protocol the server does — same error
vocabulary, same shapes, proxied verbatim — so every case here runs
against BOTH endpoints through one parametrized harness.  If the
router ever reinterprets an error (or swallows ``retry_after_s``), the
same test that pins the server catches it.
"""

import asyncio
import json

import pytest

from repro.parallel.units import execute_unit as run_unit
from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.router import (
    CachePeerFill,
    HashRing,
    ServeRouter,
    route_key,
    topology_epoch,
)
from repro.serve.server import ServeServer
from repro.serve.wire import WireConnection, encode_doc_frame

POINT_A = {"mode": "single", "platform": "Tegra2", "freq": 1.0}
POINT_B = {"mode": "multi", "platform": "Exynos5250", "freq": 1.4}
FIG6_POINT = {"app": "HPL", "max_nodes": 96, "n": 96}

#: One representative operating point per reproduced figure.
IDENTITY_CASES = [
    ("sweep_point", POINT_A),    # figure3 (single-core sweep)
    ("sweep_point", POINT_B),    # figure4 (multi-core sweep)
    ("fig6_point", FIG6_POINT),  # figure6 (cluster scaling)
]


def canon(value):
    return json.dumps(value, sort_keys=True)


def label_runner(units):
    return [u.label() for u in units]


class Endpoint:
    """One bootable protocol endpoint: a bare server, or a router in
    front of N servers."""

    def __init__(self, kind: str, port: int, tasks, servers, router=None):
        self.kind = kind
        self.port = port
        self.tasks = tasks
        self.servers = servers
        self.router = router

    async def finish(self):
        await asyncio.gather(*self.tasks)


async def boot_endpoint(
    kind: str, tmp_path, runner=label_runner,
    binary_wire=True, backend_binary=True, backend_wire="json",
    **config_kw
) -> Endpoint:
    config_kw.setdefault("batch_window_s", 0.005)
    servers, tasks = [], []
    n = 2 if kind == "router" else 1
    for i in range(n):
        server = ServeServer(CampaignFrontEnd(
            ServeConfig(cache_dir=tmp_path / f"b{i}", **config_kw), runner
        ), binary_wire=binary_wire if kind == "server" else backend_binary)
        await server.start()
        servers.append(server)
        tasks.append(asyncio.ensure_future(server.serve_until_shutdown()))
    if kind == "server":
        return Endpoint(kind, servers[0].port, tasks, servers)
    names = [f"b{i}" for i in range(n)]
    peers = {nm: ("127.0.0.1", s.port) for nm, s in zip(names, servers)}
    ring = HashRing(names)
    for nm, s in zip(names, servers):
        s.frontend.peer_fill = CachePeerFill(ring, nm, peers)
    router = ServeRouter(
        [(nm, "127.0.0.1", s.port) for nm, s in zip(names, servers)],
        binary_wire=binary_wire,
        backend_wire=backend_wire,
    )
    await router.start()
    tasks.append(asyncio.ensure_future(router.serve_until_shutdown()))
    return Endpoint(kind, router.port, tasks, servers, router)


async def connect(port):
    return await asyncio.open_connection("127.0.0.1", port)


def send(writer, doc):
    writer.write((json.dumps(doc) + "\n").encode())


async def recv(reader):
    line = await reader.readline()
    assert line, "endpoint closed the connection unexpectedly"
    return json.loads(line)


async def shutdown_endpoint(ep, reader, writer):
    send(writer, {"op": "shutdown", "id": "__bye__"})
    await writer.drain()
    while True:
        doc = await recv(reader)
        if doc.get("id") == "__bye__":
            break
    await ep.finish()
    writer.close()


ENDPOINTS = ("server", "router")


@pytest.mark.parametrize("kind", ENDPOINTS)
class TestWireContract:
    def test_malformed_frame_gets_bad_request(self, tmp_path, kind):
        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            writer.write(b"{not json at all\n")
            writer.write(b"[1, 2, 3]\n")  # JSON, but not an object
            await writer.drain()
            docs = [await recv(reader) for _ in range(2)]
            await shutdown_endpoint(ep, reader, writer)
            return docs

        docs = asyncio.run(scenario())
        for doc in docs:
            assert doc["ok"] is False
            assert doc["error"] == "bad_request"
            assert doc["id"] is None

    def test_unknown_op_echoes_id(self, tmp_path, kind):
        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "frobnicate", "id": 17})
            await writer.drain()
            doc = await recv(reader)
            await shutdown_endpoint(ep, reader, writer)
            return doc

        doc = asyncio.run(scenario())
        assert doc["id"] == 17
        assert doc["error"] == "bad_request"
        assert "frobnicate" in doc["detail"]

    def test_query_missing_fields(self, tmp_path, kind):
        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "query", "id": 1})
            send(writer, {"op": "query", "id": 2, "kind": "sweep_base",
                          "params": "not-an-object"})
            send(writer, {"op": "query", "id": 3, "kind": 42, "params": {}})
            await writer.drain()
            docs = {}
            for _ in range(3):
                doc = await recv(reader)
                docs[doc["id"]] = doc
            await shutdown_endpoint(ep, reader, writer)
            return docs

        docs = asyncio.run(scenario())
        for rid in (1, 2, 3):
            assert docs[rid]["error"] == "bad_request", docs[rid]

    def test_unknown_kind_maps_to_bad_request(self, tmp_path, kind):
        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "query", "id": 1, "kind": "nonsense",
                          "params": {}})
            await writer.drain()
            doc = await recv(reader)
            await shutdown_endpoint(ep, reader, writer)
            return doc

        doc = asyncio.run(scenario())
        assert doc["error"] == "bad_request"
        assert "nonsense" in doc["detail"]

    def test_duplicate_ids_get_two_answers(self, tmp_path, kind):
        """Ids are the CLIENT's correlation tokens: the endpoint must
        answer every frame, even when a client reuses an id (the
        router's internal link ids must not collide either)."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "query", "id": 7, "kind": "sweep_point",
                          "params": POINT_A})
            send(writer, {"op": "query", "id": 7, "kind": "sweep_base",
                          "params": {}})
            await writer.drain()
            docs = [await recv(reader) for _ in range(2)]
            await shutdown_endpoint(ep, reader, writer)
            return docs

        docs = asyncio.run(scenario())
        assert [d["id"] for d in docs] == [7, 7]
        assert {d["value"] for d in docs} == {
            "sweep_point(freq=1.0,mode=single,platform=Tegra2)", "sweep_base()"
        }

    def test_truncated_frame_then_disconnect_is_harmless(self, tmp_path, kind):
        """A client dying mid-frame must not wedge the endpoint: the
        next connection gets full service."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            r1, w1 = await connect(ep.port)
            w1.write(b'{"op": "query", "id": 1, "kin')  # no newline, bye
            await w1.drain()
            w1.close()
            r2, w2 = await connect(ep.port)
            send(w2, {"op": "ping", "id": 2})
            await w2.drain()
            doc = await recv(r2)
            await shutdown_endpoint(ep, r2, w2)
            return doc

        assert asyncio.run(scenario()) == {"id": 2, "ok": True}

    def test_overloaded_retry_after_proxied_verbatim(self, tmp_path, kind):
        """The 429 shape — ok:false, error, reason, retry_after_s — is
        produced by the backend; a router in the path must carry every
        field through untouched."""

        async def scenario():
            # queue_limit=1 plus a runner gate: the first miss wedges
            # the queue so the second distinct miss is rejected.
            gate = asyncio.Event()
            loop_holder = {}

            def slow_runner(units):
                # Executor thread: block until the test releases it.
                fut = asyncio.run_coroutine_threadsafe(
                    gate.wait(), loop_holder["loop"]
                )
                fut.result(timeout=30)
                return [u.label() for u in units]

            ep = await boot_endpoint(
                kind, tmp_path, runner=slow_runner,
                queue_limit=1, batch_window_s=0.0, max_batch=1,
            )
            loop_holder["loop"] = asyncio.get_running_loop()
            reader, writer = await connect(ep.port)
            send(writer, {"op": "query", "id": 1, "kind": "sweep_point",
                          "params": POINT_A})
            await writer.drain()
            # Give the first query time to occupy the queue slot.
            await asyncio.sleep(0.2)
            rejected = None
            for attempt in range(2, 30):
                send(writer, {"op": "query", "id": attempt,
                              "kind": "sweep_point",
                              "params": {"mode": "multi",
                                         "platform": "Tegra3",
                                         "freq": float(attempt)}})
                await writer.drain()
                await asyncio.sleep(0.05)
            gate.set()
            docs = []
            while len(docs) < 29 - 1:
                docs.append(await recv(reader))
            await shutdown_endpoint(ep, reader, writer)
            return docs

        docs = asyncio.run(scenario())
        rejected = [d for d in docs if not d.get("ok")]
        assert rejected, "admission control never fired"
        for doc in rejected:
            assert doc["error"] == "overloaded"
            assert doc["reason"] == "overloaded"
            assert isinstance(doc["retry_after_s"], float)
            assert doc["retry_after_s"] > 0
            # The verbatim-proxy check: exactly the backend's shape,
            # no router-added or router-dropped keys.
            assert set(doc) == {"id", "ok", "error", "reason",
                                "retry_after_s"}

    def test_locate_returns_selfconsistent_topology(self, tmp_path, kind):
        """``locate`` answers the full topology plus an epoch derived
        from it — on the router AND on a bare server (which answers as
        a one-node topology, so ring clients degenerate cleanly)."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "locate", "id": 5})
            await writer.drain()
            doc = await recv(reader)
            await shutdown_endpoint(ep, reader, writer)
            return doc

        doc = asyncio.run(scenario())
        assert doc["id"] == 5 and doc["ok"] is True
        backends = doc["backends"]
        assert len(backends) == (2 if kind == "router" else 1)
        for name, (host, port) in backends.items():
            assert isinstance(host, str) and isinstance(port, int)
        assert doc["epoch"] == topology_epoch(
            [(n, h, p) for n, (h, p) in backends.items()]
        )

    def test_locate_with_key_names_home(self, tmp_path, kind):
        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "locate", "id": 1, "kind": "sweep_point",
                          "params": POINT_A})
            await writer.drain()
            doc = await recv(reader)
            await shutdown_endpoint(ep, reader, writer)
            return doc

        doc = asyncio.run(scenario())
        assert doc["ok"] is True
        assert [doc["host"], doc["port"]] == doc["backends"][doc["backend"]]
        # Client-side placement must agree: the very same ring.
        expected = HashRing(sorted(doc["backends"])).home(
            route_key("sweep_point", POINT_A)
        )
        assert doc["backend"] == expected

    def test_locate_rejects_bad_key_types(self, tmp_path, kind):
        """Half a key — or ill-typed kind/params — is a ``bad_request``
        with the id echoed, same vocabulary as every other op."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "locate", "id": 1, "kind": 42,
                          "params": {}})
            send(writer, {"op": "locate", "id": 2, "kind": "sweep_point",
                          "params": "not-an-object"})
            send(writer, {"op": "locate", "id": 3, "kind": "sweep_point"})
            await writer.drain()
            docs = {}
            for _ in range(3):
                doc = await recv(reader)
                docs[doc["id"]] = doc
            await shutdown_endpoint(ep, reader, writer)
            return docs

        docs = asyncio.run(scenario())
        for rid in (1, 2, 3):
            assert docs[rid]["ok"] is False, docs[rid]
            assert docs[rid]["error"] == "bad_request"

    def test_locate_duplicate_ids_get_two_answers(self, tmp_path, kind):
        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "locate", "id": 9})
            send(writer, {"op": "locate", "id": 9})
            await writer.drain()
            docs = [await recv(reader) for _ in range(2)]
            await shutdown_endpoint(ep, reader, writer)
            return docs

        docs = asyncio.run(scenario())
        assert [d["id"] for d in docs] == [9, 9]
        assert docs[0]["backends"] == docs[1]["backends"]

    def test_locate_after_truncated_frame(self, tmp_path, kind):
        """A client dying mid-frame must not wedge ``locate`` for the
        next connection."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            r1, w1 = await connect(ep.port)
            w1.write(b'{"op": "locate", "id"')  # no newline, bye
            await w1.drain()
            w1.close()
            r2, w2 = await connect(ep.port)
            send(w2, {"op": "locate", "id": 1})
            await w2.drain()
            doc = await recv(r2)
            await shutdown_endpoint(ep, r2, w2)
            return doc

        assert asyncio.run(scenario())["ok"] is True

    def test_redirect_flag(self, tmp_path, kind):
        """``redirect: true`` on a query: the router answers with the
        home's address instead of proxying (and following it yields the
        same value the proxied path returns); a bare server — already
        the home of everything — just serves the query."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "query", "id": 1, "kind": "sweep_point",
                          "params": POINT_A, "redirect": True})
            await writer.drain()
            first = await recv(reader)
            followed = proxied = None
            if kind == "router":
                send(writer, {"op": "query", "id": 2, "kind": "sweep_point",
                              "params": POINT_A})
                await writer.drain()
                proxied = await recv(reader)
                r2, w2 = await connect(first["port"])
                send(w2, {"op": "query", "id": 3, "kind": "sweep_point",
                          "params": POINT_A, "via": "direct"})
                await w2.drain()
                followed = await recv(r2)
                w2.close()
            await shutdown_endpoint(ep, reader, writer)
            return first, followed, proxied, ep

        first, followed, proxied, ep = asyncio.run(scenario())
        if kind == "server":
            assert first["ok"] is True and "value" in first
            return
        assert first["ok"] is False and first["error"] == "redirect"
        assert set(first) == {"id", "ok", "error", "backend", "host",
                              "port", "epoch"}
        assert first["epoch"] == ep.router.epoch
        assert followed["ok"] is True
        assert canon(followed["value"]) == canon(proxied["value"])
        assert ep.router.redirected == 1

    def test_interleaved_responses_match_by_id(self, tmp_path, kind):
        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            ids = list(range(20))
            for i in ids:
                send(writer, {"op": "query", "id": i, "kind": "sweep_point",
                              "params": {"mode": "single",
                                         "platform": "Tegra2",
                                         "freq": 1.0 + (i % 3)}})
            await writer.drain()
            docs = {}
            for _ in ids:
                doc = await recv(reader)
                docs[doc["id"]] = doc
            await shutdown_endpoint(ep, reader, writer)
            return docs

        docs = asyncio.run(scenario())
        assert sorted(docs) == list(range(20))
        assert all(docs[i]["ok"] for i in docs)


class TestDirectPathByteIdentity:
    """The redirect protocol's core promise: a query routed by the
    client straight to its home shard returns the exact value the
    proxied path returns, and both are the bytes of the run-unit
    oracle — one representative point per reproduced figure."""

    def test_direct_vs_proxied_vs_oracle(self, tmp_path):
        async def scenario():
            ep = await boot_endpoint("router", tmp_path, runner=None)
            reader, writer = await connect(ep.port)
            proxied = {}
            for i, (kind, params) in enumerate(IDENTITY_CASES):
                send(writer, {"op": "query", "id": i, "kind": kind,
                              "params": params})
            await writer.drain()
            for _ in IDENTITY_CASES:
                doc = await recv(reader)
                proxied[doc["id"]] = doc

            send(writer, {"op": "locate", "id": "topo"})
            await writer.drain()
            topo = await recv(reader)
            direct = {}
            for i, (kind, params) in enumerate(IDENTITY_CASES):
                home = HashRing(sorted(topo["backends"])).home(
                    route_key(kind, params)
                )
                host, port = topo["backends"][home]
                r2, w2 = await connect(port)
                send(w2, {"op": "query", "id": i, "kind": kind,
                          "params": params, "via": "direct"})
                await w2.drain()
                direct[i] = await recv(r2)
                w2.close()
            counted = sum(s.frontend.stats.direct for s in ep.servers)
            await shutdown_endpoint(ep, reader, writer)
            return proxied, direct, counted

        proxied, direct, counted = asyncio.run(scenario())
        for i, (kind, params) in enumerate(IDENTITY_CASES):
            oracle = canon(run_unit(kind, params))
            assert canon(proxied[i]["value"]) == oracle, (kind, params)
            assert canon(direct[i]["value"]) == oracle, (kind, params)
            # Same frame shape on both paths, not just the same value.
            assert set(proxied[i]) == set(direct[i])
        # The shards counted the direct traffic separately.
        assert counted == len(IDENTITY_CASES)


class TestJobHomeDown:
    """Job ops live on the boot-order-first backend; when it is down
    the router must answer a structured ``job_home_down`` (naming the
    home, with a retry hint) instead of the generic ``unavailable``."""

    def test_job_ops_to_down_home_are_structured(self, tmp_path):
        async def scenario():
            live = ServeServer(CampaignFrontEnd(
                ServeConfig(cache_dir=tmp_path / "b1",
                            batch_window_s=0.005),
                label_runner,
            ))
            await live.start()
            live_task = asyncio.ensure_future(live.serve_until_shutdown())
            router = ServeRouter([
                ("b0", "127.0.0.1", 1),  # the job home: nobody there
                ("b1", "127.0.0.1", live.port),
            ])
            await router.start()
            router_task = asyncio.ensure_future(
                router.serve_until_shutdown()
            )
            reader, writer = await connect(router.port)
            reqs = [
                {"op": "submit", "id": 0, "tenant": "t",
                 "units": [{"kind": "sweep_base", "params": {}}]},
                {"op": "status", "id": 1, "job_id": "nope"},
                {"op": "result", "id": 2, "job_id": "nope"},
                {"op": "cancel", "id": 3, "job_id": "nope"},
            ]
            for req in reqs:
                send(writer, req)
            await writer.drain()
            docs = {}
            for _ in reqs:
                doc = await recv(reader)
                docs[doc["id"]] = doc
            # Queries are unaffected: they shard by key, and this key's
            # home may be either backend — served or unavailable, but
            # never job_home_down.
            send(writer, {"op": "query", "id": 9, "kind": "sweep_base",
                          "params": {}})
            await writer.drain()
            query_doc = await recv(reader)
            send(writer, {"op": "shutdown", "id": 99})
            await writer.drain()
            await asyncio.gather(router_task, live_task)
            writer.close()
            return docs, query_doc, router.job_home_down

        docs, query_doc, counter = asyncio.run(scenario())
        for rid in range(4):
            doc = docs[rid]
            assert doc["ok"] is False, doc
            assert doc["error"] == "job_home_down"
            assert doc["job_home"] == "b0"
            assert isinstance(doc["retry_after_s"], float)
            assert doc["retry_after_s"] > 0
        assert counter == 4
        assert query_doc.get("error") != "job_home_down"


LABEL_A = "sweep_point(freq=1.0,mode=single,platform=Tegra2)"


async def wire_connect(port, negotiate=True):
    """A client-side :class:`WireConnection`; optionally negotiated up
    to ``binary1`` (returns whether the peer agreed)."""
    reader, writer = await connect(port)
    conn = WireConnection(reader, writer, allow_binary=False)
    agreed = await conn.negotiate() if negotiate else False
    return conn, agreed


async def wire_request(conn, doc):
    conn.write_request(doc)
    await conn.drain()
    resp = await conn.recv()
    assert resp is not None, "endpoint closed the connection unexpectedly"
    return resp


async def wire_shutdown(ep, conn):
    conn.write_request({"op": "shutdown", "id": "__bye__"})
    await conn.drain()
    while True:
        doc = await conn.recv()
        if doc is None or doc.get("id") == "__bye__":
            break
    await ep.finish()
    conn.writer.close()


@pytest.mark.parametrize("kind", ENDPOINTS)
class TestWireNegotiation:
    """The binary1 negotiation matrix, run against the server AND the
    router: every pairing of binary-preferring/JSON clients with
    binary-capable/JSON-only endpoints must end in a working session —
    the only variable is which framing carries it."""

    def test_binary_client_binary_endpoint(self, tmp_path, kind):
        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            conn, agreed = await wire_connect(ep.port)
            doc = await wire_request(conn, {
                "op": "query", "id": 1, "kind": "sweep_point",
                "params": POINT_A,
            })
            await wire_shutdown(ep, conn)
            return agreed, conn.wire, doc

        agreed, wire, doc = asyncio.run(scenario())
        assert agreed and wire == "binary1"
        assert doc["ok"] is True
        assert doc["value"] == LABEL_A

    def test_binary_client_json_only_endpoint_downgrades(self, tmp_path, kind):
        """A binary-preferring client against a ``--wire json`` endpoint:
        the hello comes back refused (old servers answer ``bad_request``
        for the unknown op, new JSON-only ones ack ``wire: "json"``),
        the client stays on JSON-lines, and the session just works."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path, binary_wire=False,
                                     backend_binary=False)
            conn, agreed = await wire_connect(ep.port)
            doc = await wire_request(conn, {
                "op": "query", "id": 1, "kind": "sweep_point",
                "params": POINT_A,
            })
            await wire_shutdown(ep, conn)
            return agreed, conn.wire, doc

        agreed, wire, doc = asyncio.run(scenario())
        assert not agreed and wire == "json"
        assert doc["ok"] is True
        assert doc["value"] == LABEL_A

    def test_json_client_binary_endpoint_unchanged(self, tmp_path, kind):
        """A plain JSON-lines client never sends a hello; a
        binary-capable endpoint must serve it exactly as before."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            send(writer, {"op": "query", "id": 1, "kind": "sweep_point",
                          "params": POINT_A})
            await writer.drain()
            doc = await recv(reader)
            await shutdown_endpoint(ep, reader, writer)
            return doc

        doc = asyncio.run(scenario())
        assert doc["ok"] is True
        assert doc["value"] == LABEL_A

    def test_magic_byte_sniff_skips_the_hello(self, tmp_path, kind):
        """No JSON object can start with 0xAB, so a client may open
        blind-binary: the endpoint sniffs the first byte and answers in
        kind."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            reader, writer = await connect(ep.port)
            conn = WireConnection(reader, writer, allow_binary=False)
            conn.binary = True  # speak binary from byte one
            doc = await wire_request(conn, {
                "op": "query", "id": 1, "kind": "sweep_point",
                "params": POINT_A,
            })
            await wire_shutdown(ep, conn)
            return doc

        doc = asyncio.run(scenario())
        assert doc["ok"] is True
        assert doc["value"] == LABEL_A

    def test_corrupt_payload_is_bad_request_not_a_wedge(self, tmp_path, kind):
        """A frame whose header parses but whose payload is garbage
        consumes exactly its framed length: the endpoint answers
        ``bad_request`` and the SAME connection keeps working."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            conn, agreed = await wire_connect(ep.port)
            assert agreed
            # Valid header, undecodable payload (0xc1 is no tag).
            conn.writer.write(b"\xab\x01\x00\x00\x00\x01\xc1")
            await conn.drain()
            bad = await conn.recv()
            good = await wire_request(conn, {
                "op": "query", "id": 2, "kind": "sweep_point",
                "params": POINT_A,
            })
            await wire_shutdown(ep, conn)
            return bad, good

        bad, good = asyncio.run(scenario())
        assert bad["ok"] is False and bad["error"] == "bad_request"
        assert good["ok"] is True

    def test_broken_framing_closes_without_wedging(self, tmp_path, kind):
        """Bytes that cannot be a frame header (wrong magic) mean the
        stream can never resynchronise: the endpoint must close that
        connection — and the NEXT connection gets full service."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            conn, agreed = await wire_connect(ep.port)
            assert agreed
            conn.writer.write(b"\xff" * 8)
            await conn.drain()
            closed = await conn.recv() is None
            conn.writer.close()
            conn2, agreed2 = await wire_connect(ep.port)
            doc = await wire_request(conn2, {
                "op": "query", "id": 1, "kind": "sweep_point",
                "params": POINT_A,
            })
            await wire_shutdown(ep, conn2)
            return closed, agreed2, doc

        closed, agreed2, doc = asyncio.run(scenario())
        assert closed, "endpoint kept reading an unframed stream"
        assert agreed2 and doc["ok"] is True

    def test_truncated_binary_frame_then_disconnect(self, tmp_path, kind):
        """The binary twin of the JSON truncated-frame test: a client
        dying mid-frame must not wedge the endpoint."""

        async def scenario():
            ep = await boot_endpoint(kind, tmp_path)
            conn, agreed = await wire_connect(ep.port)
            assert agreed
            frame = encode_doc_frame({"op": "ping", "id": 1})
            conn.writer.write(frame[: len(frame) - 3])  # header, partial payload
            await conn.drain()
            conn.writer.close()
            conn2, _ = await wire_connect(ep.port)
            doc = await wire_request(conn2, {"op": "ping", "id": 2})
            await wire_shutdown(ep, conn2)
            return doc

        assert asyncio.run(scenario()) == {"id": 2, "ok": True}


class TestMixedWireCluster:
    """A cluster may be binary on one face and JSON on the other —
    in EITHER direction — and values must cross unchanged (exact float
    equality: ``canon`` is ``json.dumps`` of round-trippable reprs)."""

    @pytest.mark.parametrize("client_wire,backend_wire", [
        ("binary", "json"),    # binary client -> router -> JSON links
        ("json", "binary"),    # JSON client -> router -> binary links
        ("binary", "binary"),  # binary end to end
    ])
    def test_values_identical_across_mixed_framings(
        self, tmp_path, client_wire, backend_wire
    ):
        async def scenario():
            ep = await boot_endpoint(
                "router", tmp_path, runner=None, backend_wire=backend_wire
            )
            if client_wire == "binary":
                conn, agreed = await wire_connect(ep.port)
                assert agreed
            else:
                conn, _ = await wire_connect(ep.port, negotiate=False)
            docs = {}
            for i, (kind, params) in enumerate(IDENTITY_CASES):
                docs[i] = await wire_request(conn, {
                    "op": "query", "id": i, "kind": kind, "params": params,
                })
            links = [
                link.wire_active for link in ep.router._links.values()
                if link.wire_active != "json" or backend_wire == "json"
            ]
            await wire_shutdown(ep, conn)
            return docs, links

        docs, links = asyncio.run(scenario())
        for i, (kind, params) in enumerate(IDENTITY_CASES):
            assert docs[i]["ok"] is True, docs[i]
            assert canon(docs[i]["value"]) == canon(run_unit(kind, params))
        if backend_wire == "binary":
            assert "binary1" in links, "no backend link negotiated binary"


class TestAdvertiseHost:
    """Wildcard binds must never leak onto the wire: pre-fix,
    ``--host 0.0.0.0`` handed ring clients the unconnectable
    ``0.0.0.0:<port>`` in locate and redirect answers."""

    def test_server_on_wildcard_advertises_connectable_host(self, tmp_path):
        async def scenario():
            server = ServeServer(CampaignFrontEnd(
                ServeConfig(cache_dir=tmp_path, batch_window_s=0.005),
                label_runner,
            ), host="0.0.0.0")
            await server.start()
            task = asyncio.ensure_future(server.serve_until_shutdown())
            reader, writer = await connect(server.port)
            send(writer, {"op": "locate", "id": 1, "kind": "sweep_point",
                          "params": POINT_A})
            send(writer, {"op": "shutdown", "id": 2})
            await writer.drain()
            docs = [await recv(reader) for _ in range(2)]
            await task
            writer.close()
            return docs[0]

        doc = asyncio.run(scenario())
        assert doc["ok"] is True
        assert doc["host"] != "0.0.0.0"
        for host, _port in doc["backends"].values():
            assert host != "0.0.0.0"

    def test_server_advertise_override_wins(self, tmp_path):
        async def scenario():
            server = ServeServer(CampaignFrontEnd(
                ServeConfig(cache_dir=tmp_path, batch_window_s=0.005),
                label_runner,
            ), host="0.0.0.0", advertise_host="198.51.100.7")
            await server.start()
            task = asyncio.ensure_future(server.serve_until_shutdown())
            reader, writer = await connect(server.port)
            send(writer, {"op": "locate", "id": 1})
            send(writer, {"op": "shutdown", "id": 2})
            await writer.drain()
            docs = [await recv(reader) for _ in range(2)]
            await task
            writer.close()
            return docs[0]

        doc = asyncio.run(scenario())
        assert doc["backends"] == {
            name: ["198.51.100.7", port]
            for name, (_h, port) in doc["backends"].items()
        }

    def test_router_resolves_wildcard_backends(self, tmp_path):
        """Backends registered at a wildcard address (as a cluster boot
        binding 0.0.0.0 would) must be advertised at a connectable
        one — in locate AND in redirect answers."""

        async def scenario():
            router = ServeRouter([("b0", "0.0.0.0", 45999)])
            await router.start()
            task = asyncio.ensure_future(router.serve_until_shutdown())
            reader, writer = await connect(router.port)
            send(writer, {"op": "locate", "id": 1})
            send(writer, {"op": "query", "id": 2, "kind": "sweep_point",
                          "params": POINT_A, "redirect": True})
            send(writer, {"op": "shutdown", "id": 3})
            await writer.drain()
            docs = {}
            for _ in range(3):
                doc = await recv(reader)
                docs[doc["id"]] = doc
            await task
            writer.close()
            return docs

        docs = asyncio.run(scenario())
        for host, _port in docs[1]["backends"].values():
            assert host != "0.0.0.0"
        assert docs[2]["error"] == "redirect"
        assert docs[2]["host"] != "0.0.0.0"


class TestDirectStatsAdmissionOnly:
    """``stats.direct`` counts queries the funnel ADMITS: pre-fix the
    counter ticked before validation, so malformed ``via: "direct"``
    frames skewed the direct-vs-proxied accounting forever."""

    def test_rejected_direct_queries_do_not_count(self, tmp_path):
        async def scenario():
            ep = await boot_endpoint("server", tmp_path)
            server = ep.servers[0]
            reader, writer = await connect(ep.port)
            # Three rejections: missing params, ill-typed kind, unknown
            # kind — all tagged via:"direct".
            send(writer, {"op": "query", "id": 1, "kind": "sweep_point",
                          "via": "direct"})
            send(writer, {"op": "query", "id": 2, "kind": 42, "params": {},
                          "via": "direct"})
            send(writer, {"op": "query", "id": 3, "kind": "nonsense",
                          "params": {}, "via": "direct"})
            await writer.drain()
            rejected = [await recv(reader) for _ in range(3)]
            after_rejects = server.frontend.stats.direct
            send(writer, {"op": "query", "id": 4, "kind": "sweep_point",
                          "params": POINT_A, "via": "direct"})
            await writer.drain()
            admitted = await recv(reader)
            after_admit = server.frontend.stats.direct
            await shutdown_endpoint(ep, reader, writer)
            return rejected, after_rejects, admitted, after_admit

        rejected, after_rejects, admitted, after_admit = asyncio.run(scenario())
        for doc in rejected:
            assert doc["error"] == "bad_request", doc
        assert after_rejects == 0, "rejected queries counted as direct"
        assert admitted["ok"] is True
        assert after_admit == 1
