"""The ring-aware client: topology learning, client-side placement,
the direct data path, and the fallback ladder back to the router."""

import asyncio
import json

import pytest

from repro.serve.client import RingClient, request_once
from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.router import (
    CachePeerFill,
    HashRing,
    ServeRouter,
    route_key,
)
from repro.serve.server import ServeServer

POINT_A = {"mode": "single", "platform": "Tegra2", "freq": 1.0}
POINT_B = {"mode": "multi", "platform": "Exynos5250", "freq": 1.4}


def label_runner(units):
    return [u.label() for u in units]


async def start_backend(cache_dir, name="serve"):
    server = ServeServer(
        CampaignFrontEnd(
            ServeConfig(cache_dir=cache_dir, batch_window_s=0.005),
            label_runner,
        ),
        name=name,
    )
    await server.start()
    task = asyncio.ensure_future(server.serve_until_shutdown())
    return server, task


async def start_cluster(tmp_path, n=2):
    servers, tasks = [], []
    names = [f"b{i}" for i in range(n)]
    for name in names:
        server, task = await start_backend(tmp_path / name, name=name)
        servers.append(server)
        tasks.append(task)
    peers = {nm: ("127.0.0.1", s.port) for nm, s in zip(names, servers)}
    ring = HashRing(names)
    for nm, s in zip(names, servers):
        s.frontend.peer_fill = CachePeerFill(ring, nm, peers)
    router = ServeRouter(
        [(nm, "127.0.0.1", s.port) for nm, s in zip(names, servers)]
    )
    await router.start()
    tasks.append(asyncio.ensure_future(router.serve_until_shutdown()))
    return router, servers, tasks


async def rpc(port, doc):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((json.dumps(doc) + "\n").encode())
    await writer.drain()
    resp = json.loads(await reader.readline())
    writer.close()
    return resp


async def shutdown_all(router, tasks):
    await rpc(router.port, {"op": "shutdown", "id": "bye"})
    await asyncio.gather(*tasks)


class TestRequestOnce:
    def test_round_trip(self, tmp_path):
        async def boot():
            server, task = await start_backend(tmp_path)
            return server, task

        loop = asyncio.new_event_loop()
        try:
            server, task = loop.run_until_complete(boot())
            # request_once is synchronous by design (one-shot CLIs);
            # drive it from a thread so the server's loop stays live.
            doc = loop.run_until_complete(
                asyncio.to_thread(
                    request_once, "127.0.0.1", server.port,
                    {"op": "ping"},
                )
            )
            loop.run_until_complete(
                rpc(server.port, {"op": "shutdown", "id": 9})
            )
            loop.run_until_complete(task)
        finally:
            loop.close()
        assert doc == {"id": 1, "ok": True}

    def test_dead_port_raises(self):
        with pytest.raises(OSError):
            request_once("127.0.0.1", 1, {"op": "ping"}, timeout_s=0.5)


class TestRingClient:
    def test_learns_topology_and_routes_direct(self, tmp_path):
        async def scenario():
            router, servers, tasks = await start_cluster(tmp_path)
            client = RingClient("127.0.0.1", router.port)
            await client.connect()
            docs = [
                await client.query("sweep_point", POINT_A),
                await client.query("sweep_point", POINT_B),
                await client.query("sweep_base", {}),
            ]
            snap = client.snapshot()
            direct_counts = {
                s.name: s.frontend.stats.direct for s in servers
            }
            homes = [
                client.home("sweep_point", POINT_A),
                client.home("sweep_point", POINT_B),
                client.home("sweep_base", {}),
            ]
            await client.close()
            await shutdown_all(router, tasks)
            return docs, snap, direct_counts, homes, router

        docs, snap, direct_counts, homes, router = asyncio.run(scenario())
        assert all(d["ok"] for d in docs)
        assert snap["epoch"] == router.epoch
        assert snap["backends"] == ["b0", "b1"]
        assert snap["direct_queries"] == 3
        assert snap["router_fallbacks"] == 0
        # Every query landed on the shard the router would have picked,
        # and the shards counted the direct traffic.
        expected = [
            router.ring.home(route_key("sweep_point", POINT_A)),
            router.ring.home(route_key("sweep_point", POINT_B)),
            router.ring.home(route_key("sweep_base", {})),
        ]
        assert homes == expected
        assert sum(direct_counts.values()) == 3
        # The router itself never proxied a query.
        assert router.forwarded == 0

    def test_direct_value_matches_proxied_value(self, tmp_path):
        async def scenario():
            router, servers, tasks = await start_cluster(tmp_path)
            proxied = await rpc(router.port, {
                "op": "query", "id": 1,
                "kind": "sweep_point", "params": POINT_A,
            })
            client = RingClient("127.0.0.1", router.port)
            await client.connect()
            direct = await client.query("sweep_point", POINT_A)
            await client.close()
            await shutdown_all(router, tasks)
            return proxied, direct

        proxied, direct = asyncio.run(scenario())
        canon = lambda v: json.dumps(v, sort_keys=True)  # noqa: E731
        assert canon(direct["value"]) == canon(proxied["value"])

    def test_dead_home_falls_back_to_router(self, tmp_path):
        """Kill one shard: its keys fall back to the proxied path (the
        router answers ``unavailable`` or serves via the other shard's
        peer-fill-less compute — either way the client doesn't hang),
        the home goes on cooldown, and keys homed elsewhere still flow
        direct."""

        async def scenario():
            router, servers, tasks = await start_cluster(tmp_path)
            client = RingClient("127.0.0.1", router.port)
            await client.connect()
            # Find one point per home so we can kill selectively.
            points = [
                {"mode": m, "platform": p, "freq": f}
                for m in ("single", "multi")
                for p in ("Tegra2", "Tegra3", "Exynos4", "Exynos5250")
                for f in (1.0, 1.2)
            ]
            by_home = {}
            for params in points:
                by_home.setdefault(
                    client.home("sweep_point", params), params
                )
            assert set(by_home) == {"b0", "b1"}

            # Kill b0 (drain it directly, bypassing the router).
            victim = next(s for s in servers if s.name == "b0")
            await rpc(victim.port, {"op": "shutdown", "id": 0})

            dead_doc = await client.query("sweep_point", by_home["b0"])
            on_cooldown = "b0" in client._down_until
            live_doc = await client.query("sweep_point", by_home["b1"])
            snap = client.snapshot()
            await client.close()
            await shutdown_all(router, tasks)
            return dead_doc, on_cooldown, live_doc, snap

        dead_doc, on_cooldown, live_doc, snap = asyncio.run(scenario())
        # The fallback answered *something* structured — the proxied
        # path's verdict on a dead shard is `unavailable`.
        assert dead_doc.get("ok") or dead_doc.get("error") == "unavailable"
        assert on_cooldown
        assert live_doc["ok"] is True
        assert snap["router_fallbacks"] == 1
        assert snap["direct_queries"] >= 1

    def test_adopt_rebuilds_only_on_epoch_change(self, tmp_path):
        async def scenario():
            router, servers, tasks = await start_cluster(tmp_path)
            client = RingClient("127.0.0.1", router.port)
            await client.connect()
            refreshes_before = client.topology_refreshes
            ring_before = client.ring
            # Same epoch: a no-op (the common case after any fallback).
            await client._adopt(client.epoch, {"zz": ["127.0.0.1", 1]})
            same = (client.ring is ring_before,
                    client.topology_refreshes == refreshes_before)
            # Changed epoch: ring and links rebuilt from the new map.
            await client._adopt(
                "fresh-epoch",
                {"c0": ["127.0.0.1", 7001], "c1": ["127.0.0.1", 7002]},
            )
            rebuilt = (client.epoch, sorted(client._links),
                       client.ring.nodes,
                       client.topology_refreshes - refreshes_before)
            await client.close()
            await shutdown_all(router, tasks)
            return same, rebuilt

        same, rebuilt = asyncio.run(scenario())
        assert same == (True, True)
        epoch, links, nodes, delta = rebuilt
        assert epoch == "fresh-epoch"
        assert links == ["c0", "c1"]
        assert sorted(nodes) == ["c0", "c1"]
        assert delta == 1

    def test_degenerates_against_bare_server(self, tmp_path):
        """Pointed at a single ``repro serve``, the client learns a
        one-node topology and every query goes direct to it."""

        async def scenario():
            server, task = await start_backend(tmp_path, name="solo")
            client = RingClient("127.0.0.1", server.port)
            await client.connect()
            doc = await client.query("sweep_point", POINT_A)
            snap = client.snapshot()
            direct_count = server.frontend.stats.direct
            await client.close()
            await rpc(server.port, {"op": "shutdown", "id": 9})
            await task
            return doc, snap, direct_count

        doc, snap, direct_count = asyncio.run(scenario())
        assert doc["ok"] is True
        assert snap["backends"] == ["solo"]
        assert snap["direct_queries"] == 1
        # via="direct" reached the server twice over: once as the
        # counted stat, once as the served value.
        assert direct_count == 1
