"""The JSON-lines TCP transport: protocol, concurrency, graceful
shutdown.  All tests run a real server on an ephemeral localhost port
with a fake runner behind the front end."""

import asyncio
import json
import threading

from repro.serve.frontend import CampaignFrontEnd, ServeConfig
from repro.serve.server import ServeServer

POINT_A = {"mode": "single", "platform": "Tegra2", "freq": 1.0}


def label_runner(units):
    return [u.label() for u in units]


async def start_server(tmp_path=None, runner=label_runner, **config_kw):
    config_kw.setdefault("cache_dir", tmp_path)
    config_kw.setdefault("batch_window_s", 0.005)
    server = ServeServer(CampaignFrontEnd(ServeConfig(**config_kw), runner))
    await server.start()
    run_task = asyncio.ensure_future(server.serve_until_shutdown())
    return server, run_task


async def connect(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


def send(writer, doc):
    writer.write((json.dumps(doc) + "\n").encode())


async def recv(reader):
    line = await reader.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def recv_by_id(reader, n):
    docs = {}
    for _ in range(n):
        doc = await recv(reader)
        docs[doc["id"]] = doc
    return docs


class TestProtocol:
    def test_query_stats_ping_round_trip(self, tmp_path):
        async def scenario():
            server, run_task = await start_server(tmp_path)
            reader, writer = await connect(server)
            send(writer, {"op": "ping", "id": 0})
            send(writer, {"op": "query", "id": 1, "kind": "sweep_base",
                          "params": {}})
            send(writer, {"op": "query", "id": 2, "kind": "sweep_base",
                          "params": {}})
            await writer.drain()
            docs = await recv_by_id(reader, 3)
            send(writer, {"op": "query", "id": 3, "kind": "sweep_base",
                          "params": {}})
            await writer.drain()
            docs.update(await recv_by_id(reader, 1))
            send(writer, {"op": "stats", "id": 4})
            await writer.drain()
            docs.update(await recv_by_id(reader, 1))
            send(writer, {"op": "shutdown", "id": 5})
            await writer.drain()
            docs.update(await recv_by_id(reader, 1))
            await run_task
            writer.close()
            return docs

        docs = asyncio.run(scenario())
        assert docs[0] == {"id": 0, "ok": True}
        served = {docs[1]["served"], docs[2]["served"]}
        assert served == {"computed", "coalesced"}  # same in-flight unit
        assert docs[1]["value"] == docs[2]["value"] == "sweep_base()"
        assert docs[1]["latency_s"] >= 0
        assert docs[3]["served"] == "cache"  # second round rides the disk
        assert docs[4]["stats"]["accepted"] == 3
        assert docs[4]["stats"]["hit_ratio"] > 0.5
        assert docs[5]["ok"] is True

    def test_bad_requests_get_structured_errors(self, tmp_path):
        async def scenario():
            server, run_task = await start_server(tmp_path)
            reader, writer = await connect(server)
            writer.write(b"this is not json\n")
            send(writer, {"op": "frobnicate", "id": 1})
            send(writer, {"op": "query", "id": 2, "kind": "nonsense",
                          "params": {}})
            send(writer, {"op": "query", "id": 3, "kind": "sweep_base"})
            await writer.drain()
            docs = [await recv(reader) for _ in range(4)]
            send(writer, {"op": "shutdown", "id": 4})
            await writer.drain()
            await recv(reader)
            await run_task
            writer.close()
            return docs

        docs = asyncio.run(scenario())
        assert all(doc["ok"] is False for doc in docs)
        assert all(doc["error"] == "bad_request" for doc in docs)
        details = [doc.get("detail", "") for doc in docs]
        assert "not a JSON object" in details[0]
        assert "frobnicate" in details[1]
        assert "work-unit kind" in details[2]
        assert "params" in details[3]

    def test_overload_maps_to_429_style_response(self, tmp_path):
        async def scenario():
            release = threading.Event()

            def blocking(units):
                release.wait(timeout=10)
                return [u.label() for u in units]

            server, run_task = await start_server(
                tmp_path, runner=blocking, queue_limit=1,
                batch_window_s=0.0, max_batch=1,
            )
            reader, writer = await connect(server)
            send(writer, {"op": "query", "id": 1, "kind": "sweep_base",
                          "params": {}})
            await writer.drain()
            await asyncio.sleep(0.05)  # occupy the only pending slot
            send(writer, {"op": "query", "id": 2, "kind": "sweep_point",
                          "params": POINT_A})
            await writer.drain()
            rejected = await recv(reader)
            release.set()
            accepted = await recv(reader)
            send(writer, {"op": "shutdown", "id": 3})
            await writer.drain()
            await recv(reader)
            await run_task
            writer.close()
            return rejected, accepted

        rejected, accepted = asyncio.run(scenario())
        assert rejected["id"] == 2
        assert rejected["ok"] is False
        assert rejected["error"] == "overloaded"
        assert rejected["reason"] == "overloaded"
        assert rejected["retry_after_s"] > 0
        assert accepted["id"] == 1 and accepted["ok"] is True


class TestGracefulShutdown:
    def test_shutdown_drains_inflight_none_dropped(self, tmp_path):
        """The acceptance gate: every request accepted before the
        shutdown op must still get its answer on the wire."""

        async def scenario():
            release = threading.Event()

            def blocking(units):
                release.wait(timeout=10)
                return [u.label() for u in units]

            server, run_task = await start_server(
                tmp_path, runner=blocking, batch_window_s=0.0
            )
            reader, writer = await connect(server)
            for i, freq in enumerate((0.5, 0.8, 1.0)):
                send(writer, {"op": "query", "id": i, "kind": "sweep_point",
                              "params": {**POINT_A, "freq": freq}})
            await writer.drain()
            await asyncio.sleep(0.05)  # all three accepted, none resolved
            send(writer, {"op": "shutdown", "id": 99})
            await writer.drain()
            asyncio.get_running_loop().call_later(0.1, release.set)
            docs = await recv_by_id(reader, 4)
            await run_task  # the server exits once drained
            assert await reader.readline() == b""  # connection closed
            writer.close()
            return docs, server.frontend.stats

        docs, stats = asyncio.run(scenario())
        assert docs[99]["ok"] is True  # the shutdown ack
        for i in range(3):
            assert docs[i]["ok"] is True, docs[i]
            assert docs[i]["served"] == "computed"
        assert stats.accepted == 3 and stats.failed == 0

    def test_new_connections_refused_after_shutdown(self, tmp_path):
        async def scenario():
            server, run_task = await start_server(tmp_path)
            reader, writer = await connect(server)
            send(writer, {"op": "shutdown", "id": 0})
            await writer.drain()
            await recv(reader)
            await run_task
            writer.close()
            try:
                await asyncio.open_connection("127.0.0.1", server.port)
            except OSError:
                return True
            return False

        assert asyncio.run(scenario()) is True
