"""The serve/loadtest argument surface, and the shared --jobs contract
across every subcommand that takes one (satellite of the serving PR:
one validator, one error message, no subcommand left unguarded)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestSharedJobsValidation:
    """Every --jobs-taking subcommand routes through
    ``repro.cli.jobs_count``: same exit code, same message."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["all", "--jobs", "0"],
            ["bench", "engine", "--jobs", "0"],
            ["serve", "--jobs", "0"],
            ["loadtest", "--port", "1", "--jobs", "0"],
        ],
        ids=["all", "bench", "serve", "loadtest"],
    )
    def test_rejects_zero_jobs(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "--jobs must be at least 1" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["all", "--jobs", "many"],
            ["serve", "--jobs", "many"],
        ],
        ids=["all", "serve"],
    )
    def test_rejects_non_integer_jobs(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err


class TestServeArgs:
    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--max-batch", "0"),
            ("--queue-limit", "0"),
            ("--batch-window", "-0.5"),
        ],
    )
    def test_bad_config_is_a_parse_error(self, flag, value, capsys):
        from repro.serve.cli import serve_main

        with pytest.raises(SystemExit) as excinfo:
            serve_main([flag, value])
        assert excinfo.value.code == 2

    def test_loadtest_requires_a_port(self, capsys):
        from repro.serve.cli import loadtest_main

        with pytest.raises(SystemExit) as excinfo:
            loadtest_main([])
        assert excinfo.value.code == 2
        assert "--port" in capsys.readouterr().err


class TestServeLoadtestEndToEnd:
    def test_boot_serve_then_loadtest_against_it(self, tmp_path):
        """The CI recipe in miniature: boot ``repro serve`` as a real
        subprocess, scrape the readiness line for the port, point the
        load generator at it, assert the warm-shaped hit ratio, shut
        the server down gracefully, and check its exit status."""
        from repro.serve.cli import loadtest_main

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            ready = proc.stdout.readline()
            assert "listening on" in ready, ready
            port = int(ready.split("listening on ")[1].split()[0].rsplit(":", 1)[1])

            # Warm the cache, then measure — the warm pass must clear
            # the 90% coalesce+cache bar end to end through the CLI.
            assert loadtest_main(
                ["--port", str(port), "--requests", "150", "--rate", "2000",
                 "--seed", "5"]
            ) == 0
            assert loadtest_main(
                ["--port", str(port), "--requests", "150", "--rate", "2000",
                 "--seed", "5", "--assert-hit-ratio", "0.9", "--json",
                 "--shutdown"]
            ) == 0
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
            assert "drained and stopped" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    def test_assert_hit_ratio_fails_loudly(self, tmp_path, capsys):
        """An impossible bar must turn into exit 1, not a silent pass."""
        import asyncio

        from repro.serve.cli import loadtest_main
        from repro.serve.frontend import CampaignFrontEnd, ServeConfig
        from repro.serve.server import ServeServer

        async def scenario():
            server = ServeServer(
                CampaignFrontEnd(
                    ServeConfig(cache_dir=None, batch_window_s=0.0),
                    runner=lambda units: [u.label() for u in units],
                )
            )
            await server.start()
            run_task = asyncio.ensure_future(server.serve_until_shutdown())
            # Unique-request workload: nothing to coalesce or cache, so
            # a 1.01 bar cannot be met.
            code = await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: loadtest_main(
                    ["--port", str(server.port), "--requests", "20",
                     "--rate", "2000", "--hot-fraction", "0",
                     "--assert-hit-ratio", "1.01", "--shutdown"]
                ),
            )
            await run_task
            return code

        assert asyncio.run(scenario()) == 1
        assert "FAIL" in capsys.readouterr().out
