"""Tests for the Section 5 software-stack model."""

import pytest

from repro.arch.catalog import get_platform
from repro.stack import (
    Component,
    ComponentKind,
    Deployment,
    DeploymentError,
    Maturity,
    STACK,
    component,
    figure8_layout,
)
from repro.stack.deployment import stack_penalty_summary


class TestRegistry:
    def test_figure8_layers_present(self):
        layout = figure8_layout()
        assert set(layout) == {k.value for k in ComponentKind}

    def test_paper_components_present(self):
        """Every box of Figure 8."""
        for name in (
            "mercurium", "gcc", "gfortran", "g++", "atlas", "fftw",
            "hdf5", "allinea-ddt", "paraver", "papi", "scalasca",
            "nanos++", "mpich2", "openmpi", "slurm",
        ):
            assert name in STACK, name

    def test_lookup(self):
        assert component("atlas").kind is ComponentKind.SCIENTIFIC_LIBRARY
        with pytest.raises(KeyError):
            component("icc")

    def test_atlas_constraints(self):
        """Section 5: ATLAS needed source patches and a pinned clock."""
        atlas = component("atlas")
        assert atlas.needs_pinned_frequency
        assert atlas.source_patches_required
        assert atlas.maturity is Maturity.NEEDS_PORT_WORK

    def test_cuda_is_armel_experimental(self):
        cuda = component("cuda-4.2")
        assert cuda.maturity is Maturity.EXPERIMENTAL
        assert cuda.forces_abi == "softfp"
        assert cuda.supported_isas == ("ARMv7",)

    def test_opencl_caps_frequency(self):
        assert component("opencl-mali").caps_freq_ghz == 1.0

    def test_component_validation(self):
        with pytest.raises(ValueError):
            Component("", ComponentKind.COMPILER)
        with pytest.raises(ValueError):
            Component("x", ComponentKind.COMPILER, caps_freq_ghz=0)


class TestDependencyResolution:
    def test_dependencies_precede_dependents(self, t2):
        dep = Deployment(t2)
        order = dep.resolve(["mercurium"])
        assert order.index("gcc") < order.index("mercurium")
        assert order.index("nanos++") < order.index("mercurium")
        assert order.index("g++") < order.index("nanos++")

    def test_no_duplicates(self, t2):
        order = Deployment(t2).resolve(["mpich2", "openmpi", "open-mx"])
        assert len(order) == len(set(order))

    def test_cycle_detection(self, t2, monkeypatch):
        import repro.stack.registry as reg

        a = Component("cyc-a", ComponentKind.RUNTIME, requires=("cyc-b",))
        b = Component("cyc-b", ComponentKind.RUNTIME, requires=("cyc-a",))
        monkeypatch.setitem(reg.STACK, "cyc-a", a)
        monkeypatch.setitem(reg.STACK, "cyc-b", b)
        with pytest.raises(DeploymentError, match="cycle"):
            Deployment(t2).resolve(["cyc-a"])


class TestPlatformConstraints:
    def test_hpc_baseline_is_production_hardfp(self, t2):
        report = Deployment(t2).hpc_baseline()
        assert report.abi == "hardfp"
        assert report.production_ready
        assert "slurm" in report.install_order
        assert any("atlas" in note for note in report.build_notes)

    def test_cuda_forces_softfp(self, t3):
        """The CARMA configuration: armel filesystem, lower CPU perf."""
        report = Deployment(t3).with_cuda()
        assert report.abi == "softfp"
        assert "cuda-4.2" in report.experimental
        assert not report.production_ready

    def test_opencl_caps_exynos_clock(self, exynos):
        """Section 5: the old kernel cannot clock the chip above 1 GHz."""
        report = Deployment(exynos).with_opencl()
        assert report.effective_max_freq_ghz(1.7) == 1.0
        assert report.effective_max_freq_ghz(0.8) == 0.8

    def test_arm_only_components_rejected_on_x86(self, i7):
        with pytest.raises(DeploymentError, match="does not support"):
            Deployment(i7).with_cuda()

    def test_x86_runs_the_generic_stack(self, i7):
        # gcc/openmpi/etc are cross-ISA, but the armhf OS is not.
        with pytest.raises(DeploymentError):
            Deployment(i7).install(["slurm"])  # requires debian-armhf


class TestQuantifiedPenalties:
    def test_cuda_abi_costs_cpu_performance(self, exynos):
        """'deployed a Debian/armel filesystem ... at the cost of a
        lower CPU performance' — measurable through the executor."""
        out = stack_penalty_summary(exynos)
        assert out["cuda(armel)@fmax"] < 0.95

    def test_opencl_kernel_costs_more_on_fast_chips(self, exynos, t3):
        """The 1 GHz cap hurts the 1.7 GHz Exynos more than the 1.3 GHz
        Tegra 3."""
        ex = stack_penalty_summary(exynos)["opencl-kernel@cap"]
        t3p = stack_penalty_summary(t3)["opencl-kernel@cap"]
        assert ex < t3p < 1.0


class TestResolutionProperties:
    def test_resolution_idempotent(self, t2):
        from repro.stack.registry import STACK

        dep = Deployment(t2)
        arm_ok = [
            n for n, c in STACK.items() if c.supports("ARMv7")
        ]
        once = dep.resolve(arm_ok)
        twice = dep.resolve(once)
        assert once == twice

    def test_any_subset_resolves_validly(self, t2):
        """Every dependency precedes its dependent, for random subsets."""
        import itertools

        from repro.stack.registry import STACK, component

        dep = Deployment(t2)
        names = sorted(n for n, c in STACK.items() if c.supports("ARMv7"))
        for subset in itertools.combinations(names, 3):
            order = dep.resolve(list(subset))
            pos = {n: i for i, n in enumerate(order)}
            for n in order:
                for req in component(n).requires:
                    assert pos[req] < pos[n], (n, req)
