"""ResilientRunner acceptance tests: HPL survives live mid-run crashes
via checkpoint/restart, with correct numerics and reported overhead."""

import numpy as np
import pytest

from repro.apps.hpl import HPLConfig, hpl_solve_from_factors, rank_program
from repro.cluster.power import ClusterPowerModel
from repro.fault import (
    CheckpointPolicy,
    FaultEvent,
    FaultPlan,
    ResilientRunner,
)


@pytest.fixture(scope="module")
def baseline(small_cluster):
    """Fault-free 8-node model-HPL makespan (the work axis)."""
    cfg = HPLConfig(n=1024, nb=128)
    result = small_cluster.make_world(workload="dgemm").run(
        rank_program(), cfg
    )
    return cfg, result.makespan_s


def crash_plan(t_s, node=3, n_nodes=8, horizon=100.0):
    return FaultPlan(
        [FaultEvent(t_s, node, "pcie_hang")], n_nodes, horizon_s=horizon
    )


class TestRecovery:
    def test_mid_run_crash_completes_with_overhead(
        self, small_cluster, baseline
    ):
        cfg, t_ff = baseline
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff / 4)
        runner = ResilientRunner(
            small_cluster, crash_plan(t_ff * 0.45), policy
        )
        res = runner.run(rank_program(), cfg)
        assert res.crashes == 1
        assert len(res.attempts) == 2
        assert not res.attempts[0].succeeded
        assert res.attempts[1].succeeded
        assert res.fault_free_s == pytest.approx(t_ff)
        assert res.wall_s > res.fault_free_s
        assert res.overhead_s > 0
        assert res.lost_work_s > 0
        assert res.restart_overhead_s == pytest.approx(0.02)
        assert res.n_nodes_final == 8
        assert res.mpi_result is not None

    def test_no_faults_no_measurable_slowdown(self, small_cluster, baseline):
        """With an empty plan and no checkpoints due, the wall clock
        equals the fault-free makespan exactly."""
        cfg, t_ff = baseline
        # Interval longer than the job: zero checkpoints taken.
        policy = CheckpointPolicy(0.01, 0.02, interval_s=10 * t_ff)
        runner = ResilientRunner(
            small_cluster, FaultPlan.none(8, 100.0), policy
        )
        res = runner.run(rank_program(), cfg)
        assert res.crashes == 0
        assert res.checkpoints == 0
        assert res.wall_s == t_ff
        assert res.overhead_fraction == 0.0

    def test_checkpoint_cost_charged_without_faults(
        self, small_cluster, baseline
    ):
        cfg, t_ff = baseline
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff / 4)
        res = ResilientRunner(
            small_cluster, FaultPlan.none(8, 100.0), policy
        ).run(rank_program(), cfg)
        assert res.crashes == 0
        assert res.checkpoints == 4
        assert res.wall_s == pytest.approx(t_ff + 4 * 0.01)

    def test_deterministic_given_plan(self, small_cluster, baseline):
        cfg, t_ff = baseline
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff / 4)
        runs = [
            ResilientRunner(
                small_cluster, crash_plan(t_ff * 0.45), policy
            ).run(rank_program(), cfg)
            for _ in range(2)
        ]
        assert runs[0].wall_s == runs[1].wall_s
        assert runs[0].attempts == runs[1].attempts

    def test_wall_decomposes_into_overheads(self, small_cluster, baseline):
        """wall = fault-free + lost work + checkpoint + restart, exactly.

        Note the crash is *detected* when a survivor next needs the dead
        rank (panel broadcast), not at the injection instant — lost work
        is measured from the detection point.
        """
        cfg, t_ff = baseline
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff / 4)
        res = ResilientRunner(
            small_cluster, crash_plan(t_ff * 0.45), policy
        ).run(rank_program(), cfg)
        assert res.wall_s == pytest.approx(
            res.fault_free_s
            + res.lost_work_s
            + res.checkpoint_overhead_s
            + res.restart_overhead_s
        )
        assert 0 <= res.lost_work_s < res.interval_s

    def test_multiple_crashes(self, small_cluster, baseline):
        cfg, t_ff = baseline
        plan = FaultPlan(
            [
                FaultEvent(t_ff * 0.4, 2, "pcie_hang"),
                FaultEvent(t_ff * 0.9, 5, "dram_error"),
            ],
            8,
            horizon_s=100.0,
        )
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff / 4)
        res = ResilientRunner(small_cluster, plan, policy).run(
            rank_program(), cfg
        )
        assert res.crashes == 2
        assert len(res.attempts) == 3
        assert res.attempts[-1].succeeded
        assert res.restart_overhead_s == pytest.approx(0.04)


class TestShrink:
    def test_shrinks_onto_survivors(self, small_cluster, baseline):
        cfg, t_ff = baseline
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff / 4)
        res = ResilientRunner(
            small_cluster, crash_plan(t_ff * 0.45), policy, shrink=True
        ).run(rank_program(), cfg)
        assert res.n_nodes_start == 8
        assert res.n_nodes_final == 7
        assert res.attempts[1].n_ranks == 7
        # Fewer nodes: the tail runs slower than the full-size restart.
        assert res.wall_s > res.fault_free_s

    def test_progress_fraction_carries_over(self, small_cluster, baseline):
        """A crash exactly on a checkpoint boundary must NOT look like a
        finished job after the shrink re-anchoring."""
        cfg, t_ff = baseline
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff / 4)
        res = ResilientRunner(
            small_cluster, crash_plan(t_ff * 0.5), policy, shrink=True
        ).run(rank_program(), cfg)
        second = res.attempts[1]
        assert second.succeeded
        # The second attempt still had roughly half the job to do.
        assert second.end_wall_s - second.start_wall_s > 0.2 * t_ff


class TestEnergy:
    def test_energy_to_solution_reported(self, small_cluster, baseline):
        cfg, t_ff = baseline
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff / 4)
        res = ResilientRunner(
            small_cluster,
            crash_plan(t_ff * 0.45),
            policy,
            power_model=ClusterPowerModel(),
        ).run(rank_program(), cfg)
        assert res.energy_j is not None
        assert res.fault_free_energy_j is not None
        assert res.energy_ratio > 1.0  # faults cost energy too
        assert res.energy_j == pytest.approx(
            res.fault_free_energy_j * (res.wall_s / res.fault_free_s),
            rel=1e-6,
        )

    def test_no_power_model_no_energy(self, small_cluster, baseline):
        cfg, t_ff = baseline
        policy = CheckpointPolicy(0.01, 0.02, interval_s=t_ff)
        res = ResilientRunner(
            small_cluster, FaultPlan.none(8, 10.0), policy
        ).run(rank_program(), cfg)
        assert res.energy_j is None
        assert res.energy_ratio is None


class TestFunctionalNumerics:
    def test_residual_correct_after_recovery(self, small_cluster):
        """The acceptance bar: functional HPL on 8 nodes with a live
        mid-run node crash completes via checkpoint/restart and the
        recovered factorisation solves the system correctly."""
        cfg = HPLConfig(n=256, nb=32)
        prog = rank_program(functional=True)
        t_ff = small_cluster.make_world(workload="dgemm").run(
            prog, cfg, 0
        ).makespan_s
        policy = CheckpointPolicy(0.001, 0.002, interval_s=t_ff / 5)
        res = ResilientRunner(
            small_cluster, crash_plan(t_ff * 0.5, node=2), policy
        ).run(prog, cfg, 0)
        assert res.crashes == 1
        lu, pivots = res.mpi_result.results[0]
        rng = np.random.default_rng(0)
        a = rng.standard_normal((cfg.n, cfg.n))
        b = rng.standard_normal(cfg.n)
        x = hpl_solve_from_factors(lu, pivots, b)
        resid = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        assert resid < 1e-10


class TestLinkFaults:
    def test_link_outage_slows_but_completes(self, small_cluster, baseline):
        cfg, t_ff = baseline
        plan = FaultPlan(
            [FaultEvent(t_ff * 0.2, 1, "link_loss", duration_s=t_ff * 0.1)],
            8,
            horizon_s=100.0,
        )
        policy = CheckpointPolicy(0.01, 0.02, interval_s=10 * t_ff)
        res = ResilientRunner(
            small_cluster, plan, policy, net_kwargs={"rto_s": 0.002}
        ).run(rank_program(), cfg)
        assert res.crashes == 0
        assert res.wall_s > res.fault_free_s  # retransmission delay
