"""Fault-plan construction, queries, and RNG-stream discipline."""

import numpy as np
import pytest

from repro.cluster.reliability import (
    DramErrorModel,
    PCIeFaultInjector,
    ThermalModel,
)
from repro.fault.plan import CRASH_KINDS, FaultEvent, FaultPlan


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, 0, "pcie_hang")
        with pytest.raises(ValueError):
            FaultEvent(1.0, -1, "pcie_hang")
        with pytest.raises(ValueError):
            FaultEvent(1.0, 0, "gremlins")
        with pytest.raises(ValueError):
            FaultEvent(1.0, 0, "link_loss", duration_s=-0.1)

    def test_is_crash(self):
        for kind in CRASH_KINDS:
            assert FaultEvent(1.0, 0, kind).is_crash
        assert not FaultEvent(1.0, 0, "link_loss", 0.5).is_crash


class TestFaultPlanQueries:
    def test_events_sorted_and_validated(self):
        plan = FaultPlan(
            [FaultEvent(5.0, 1, "pcie_hang"), FaultEvent(2.0, 0, "dram_error")],
            n_nodes=4,
            horizon_s=10.0,
        )
        assert [e.time_s for e in plan.events] == [2.0, 5.0]
        with pytest.raises(ValueError):
            FaultPlan([FaultEvent(1.0, 9, "pcie_hang")], 4, 10.0)
        with pytest.raises(ValueError):
            FaultPlan((), 0, 10.0)
        with pytest.raises(ValueError):
            FaultPlan((), 4, 0.0)

    def test_node_dies_once(self):
        plan = FaultPlan(
            [
                FaultEvent(2.0, 0, "pcie_hang"),
                FaultEvent(5.0, 0, "thermal_shutdown"),
            ],
            n_nodes=2,
            horizon_s=10.0,
        )
        assert len(plan.node_crashes) == 1
        assert plan.node_crashes[0].time_s == 2.0

    def test_first_crash_after_respects_alive(self):
        plan = FaultPlan(
            [
                FaultEvent(1.0, 0, "pcie_hang"),
                FaultEvent(3.0, 1, "dram_error"),
            ],
            n_nodes=4,
            horizon_s=10.0,
        )
        assert plan.first_crash_after(0.0).node == 0
        assert plan.first_crash_after(1.0).node == 1  # strictly after
        assert plan.first_crash_after(0.0, alive=[1, 2]).node == 1
        assert plan.first_crash_after(3.0) is None

    def test_outage_end_covers_either_endpoint(self):
        plan = FaultPlan(
            [FaultEvent(1.0, 2, "link_loss", duration_s=0.5)],
            n_nodes=4,
            horizon_s=10.0,
        )
        assert plan.outage_end(2, 0, 1.2) == 1.5  # src down
        assert plan.outage_end(0, 2, 1.2) == 1.5  # dst down
        assert plan.outage_end(0, 1, 1.2) is None  # path untouched
        assert plan.outage_end(2, 0, 1.5) is None  # outage over
        assert plan.outage_end(2, 0, 0.9) is None  # not yet

    def test_none_plan_is_empty(self):
        plan = FaultPlan.none(8, 100.0)
        assert len(plan) == 0
        assert plan.first_crash_after(0.0) is None


class TestGeneration:
    def test_same_seed_identical_plan(self):
        kw = dict(
            pcie=PCIeFaultInjector(mtbf_hours_under_load=0.001),
            link_loss_rate_hz=1.0,
        )
        a = FaultPlan.generate(8, 10.0, seed=3, **kw)
        b = FaultPlan.generate(8, 10.0, seed=3, **kw)
        assert a.events == b.events
        assert len(a) > 0

    def test_different_seed_different_plan(self):
        kw = dict(crash_mtbf_s=5.0, link_loss_rate_hz=1.0)
        a = FaultPlan.generate(8, 10.0, seed=0, **kw)
        b = FaultPlan.generate(8, 10.0, seed=1, **kw)
        assert a.events != b.events

    def test_fault_class_streams_independent(self):
        """Adding link-loss draws must not move the crash times."""
        only_crash = FaultPlan.generate(8, 10.0, seed=5, crash_mtbf_s=5.0)
        both = FaultPlan.generate(
            8, 10.0, seed=5, crash_mtbf_s=5.0, link_loss_rate_hz=2.0
        )
        assert only_crash.node_crashes == both.node_crashes
        assert any(e.kind == "link_loss" for e in both.events)

    def test_dram_and_pcie_sources(self):
        plan = FaultPlan.generate(
            16,
            horizon_s=3600.0 * 24 * 365,
            seed=1,
            pcie=PCIeFaultInjector(mtbf_hours_under_load=10.0),
            dram=DramErrorModel(annual_dimm_error_rate=0.2),
        )
        kinds = {e.kind for e in plan.events}
        assert "pcie_hang" in kinds
        assert "dram_error" in kinds

    def test_thermal_needs_power_and_crosses_threshold(self):
        tm = ThermalModel()
        with pytest.raises(ValueError):
            FaultPlan.generate(4, 1e4, thermal=tm)
        hot = FaultPlan.generate(4, 1e4, seed=2, thermal=tm, node_power_w=8.0)
        assert all(e.kind == "thermal_shutdown" for e in hot.events)
        assert len(hot) == 4  # every node eventually cooks
        cool = FaultPlan.generate(4, 1e4, seed=2, thermal=tm, node_power_w=2.0)
        assert len(cool) == 0  # steady state below threshold

    def test_generation_does_not_advance_injector_streams(self):
        inj = PCIeFaultInjector(mtbf_hours_under_load=0.01, seed=9)
        before = PCIeFaultInjector(
            mtbf_hours_under_load=0.01, seed=9
        ).hang_times_s(8)
        FaultPlan.generate(8, 100.0, seed=0, pcie=inj)
        np.testing.assert_array_equal(inj.hang_times_s(8), before)

    def test_extra_events_merged(self):
        plan = FaultPlan.generate(
            4, 10.0, seed=0, extra=[FaultEvent(1.5, 2, "pcie_hang")]
        )
        assert plan.node_crashes == [FaultEvent(1.5, 2, "pcie_hang")]

    def test_crash_mtbf_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(4, 10.0, crash_mtbf_s=0.0)
