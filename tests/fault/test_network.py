"""FaultyNetwork: TCP-style retry pricing for planned link outages."""

import pytest

from repro.fault.network import FaultyNetwork
from repro.fault.plan import FaultEvent, FaultPlan


class FlatNetwork:
    """Inner stub: constant transfer time, tiny occupancy."""

    def transfer_time_s(self, src, dst, nbytes):
        return 1.0

    def sender_occupancy_s(self, src, dst, nbytes):
        return 0.25

    def custom_attribute(self):
        return "inner"


class FakeEngine:
    def __init__(self, now=0.0):
        self.now = now


def outage_plan(node=0, start=10.0, dur=2.0, n=4):
    return FaultPlan(
        [FaultEvent(start, node, "link_loss", duration_s=dur)], n, 100.0
    )


class TestFastPath:
    def test_no_events_is_passthrough(self):
        net = FaultyNetwork(FlatNetwork(), FaultPlan.none(4, 100.0))
        # No attach needed: the empty plan short-circuits.
        assert net.transfer_time_s(0, 1, 1024) == 1.0

    def test_outside_outage_is_passthrough(self):
        net = FaultyNetwork(FlatNetwork(), outage_plan())
        net.attach(FakeEngine(now=5.0))
        assert net.transfer_time_s(0, 1, 1024) == 1.0
        net.attach(FakeEngine(now=12.5))  # outage [10, 12) just lifted
        assert net.transfer_time_s(0, 1, 1024) == 1.0

    def test_self_send_untouched(self):
        net = FaultyNetwork(FlatNetwork(), outage_plan())
        net.attach(FakeEngine(now=10.5))
        assert net.transfer_time_s(0, 0, 64) == 1.0

    def test_delegation(self):
        net = FaultyNetwork(FlatNetwork(), outage_plan())
        assert net.sender_occupancy_s(0, 1, 64) == 0.25
        assert net.custom_attribute() == "inner"


class TestRetryPricing:
    def test_outage_adds_backoff_penalty(self):
        net = FaultyNetwork(
            FlatNetwork(), outage_plan(start=10.0, dur=1.0), rto_s=0.4
        )
        net.attach(FakeEngine(now=10.0))
        t = net.transfer_time_s(0, 1, 1024)
        # Retries at +0.4 and +1.2; the second lands after the outage.
        assert t == pytest.approx(1.0 + 0.4 + 0.8)

    def test_penalty_shrinks_near_outage_end(self):
        net = FaultyNetwork(FlatNetwork(), outage_plan(start=10.0, dur=2.0))
        net.attach(FakeEngine(now=10.1))
        early = net.transfer_time_s(0, 1, 64)
        net.attach(FakeEngine(now=11.9))
        late = net.transfer_time_s(0, 1, 64)
        assert late < early

    def test_deterministic_repeated_calls(self):
        net = FaultyNetwork(FlatNetwork(), outage_plan(start=10.0, dur=2.0))
        net.attach(FakeEngine(now=10.3))
        assert net.transfer_time_s(0, 1, 64) == net.transfer_time_s(0, 1, 64)

    def test_give_up_waits_out_the_outage(self):
        """After max_retries the sender idles until the outage lifts."""
        net = FaultyNetwork(
            FlatNetwork(),
            outage_plan(start=0.0, dur=50.0),
            rto_s=0.1,
            max_retries=3,
        )
        net.attach(FakeEngine(now=0.0))
        t = net.transfer_time_s(0, 1, 64)
        # Backoff covers only 0.1+0.2+0.4 = 0.7 s of a 50 s outage:
        # the give-up path charges the outage remainder + one final RTO.
        assert t == pytest.approx(1.0 + 50.0 + 0.8)

    def test_wall_offset_maps_attempt_clock_to_plan_axis(self):
        """A restarted attempt replays early engine time while the wall
        has moved on — the offset lines the two axes up."""
        net = FaultyNetwork(
            FlatNetwork(), outage_plan(start=10.0, dur=1.0),
            wall_offset_s=10.0, rto_s=0.4,
        )
        net.attach(FakeEngine(now=0.0))  # wall = 0 + 10 -> inside outage
        assert net.transfer_time_s(0, 1, 64) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultyNetwork(FlatNetwork(), outage_plan(), rto_s=0.0)
        with pytest.raises(ValueError):
            FaultyNetwork(FlatNetwork(), outage_plan(), rto_backoff=0.5)
        with pytest.raises(ValueError):
            FaultyNetwork(FlatNetwork(), outage_plan(), max_retries=0)
