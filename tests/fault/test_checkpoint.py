"""Daly-interval arithmetic and checkpoint policy."""

import math

import pytest

from repro.cluster.reliability import DramErrorModel, PCIeFaultInjector
from repro.fault.checkpoint import (
    CheckpointPolicy,
    daly_interval_s,
    system_mtbf_s,
)


class TestDalyInterval:
    def test_first_order_formula(self):
        mtbf, cost = 3600.0, 60.0
        assert daly_interval_s(mtbf, cost) == pytest.approx(
            math.sqrt(2 * cost * mtbf) - cost
        )

    def test_clamped_to_checkpoint_cost(self):
        # Pathological MTBF (shorter than the checkpoint itself) must
        # not yield a non-positive interval.
        assert daly_interval_s(1.0, 10.0) == 10.0

    def test_interval_grows_with_mtbf(self):
        assert daly_interval_s(7200.0, 60.0) > daly_interval_s(3600.0, 60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            daly_interval_s(0.0, 60.0)
        with pytest.raises(ValueError):
            daly_interval_s(3600.0, 0.0)


class TestSystemMtbf:
    def test_no_sources_is_infinite(self):
        assert system_mtbf_s(100) == math.inf

    def test_rates_add(self):
        dram = DramErrorModel(annual_dimm_error_rate=0.1)
        pcie = PCIeFaultInjector(mtbf_hours_under_load=200.0)
        both = system_mtbf_s(64, dram=dram, pcie=pcie)
        only_dram = system_mtbf_s(64, dram=dram)
        only_pcie = system_mtbf_s(64, pcie=pcie)
        assert both == pytest.approx(
            1.0 / (1.0 / only_dram + 1.0 / only_pcie)
        )
        assert both < min(only_dram, only_pcie)

    def test_pcie_mtbf_scales_inversely_with_nodes(self):
        pcie = PCIeFaultInjector(mtbf_hours_under_load=100.0)
        assert system_mtbf_s(32, pcie=pcie) == pytest.approx(
            system_mtbf_s(16, pcie=pcie) / 2
        )
        assert system_mtbf_s(1, pcie=pcie) == pytest.approx(100.0 * 3600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            system_mtbf_s(0)


class TestCheckpointPolicy:
    def test_fixed_interval_wins(self):
        p = CheckpointPolicy(1.0, 2.0, interval_s=30.0)
        assert p.interval_for(3600.0) == 30.0
        assert p.interval_for(None) == 30.0

    def test_daly_mode_uses_mtbf(self):
        p = CheckpointPolicy(60.0, 120.0)
        assert p.interval_for(3600.0) == pytest.approx(
            daly_interval_s(3600.0, 60.0)
        )

    def test_daly_mode_needs_finite_mtbf(self):
        p = CheckpointPolicy(60.0, 120.0)
        with pytest.raises(ValueError):
            p.interval_for(None)
        with pytest.raises(ValueError):
            p.interval_for(math.inf)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(-1.0, 2.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(1.0, -2.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(1.0, 2.0, interval_s=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(0.0, 2.0).interval_for(3600.0)
