"""Cross-module integration tests: the pieces must tell one consistent
story end to end."""

import numpy as np
import pytest

from repro import MobileSoCStudy, PLATFORMS, get_kernel, tibidabo
from repro.apps.hpl import HPL, hpl_solve_from_factors
from repro.kernels.stream import StreamBenchmark
from repro.mpi.benchmarks import ping_pong
from repro.net.nic import PCIE
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack
from repro.timing.executor import SimulatedExecutor


class TestCrossModelConsistency:
    def test_stream_model_agrees_with_dram_model(self):
        """The STREAM benchmark and the raw memory model must be the
        same physics."""
        for p in PLATFORMS.values():
            soc = p.soc
            stream = StreamBenchmark().simulate_all_cores(p).best()
            dram = soc.memory.effective_bandwidth_gbs(
                soc.n_cores, soc.core.mlp
            )
            assert stream == pytest.approx(dram, rel=0.05), p.name

    def test_roofline_bound_matches_executor_bound(self):
        """If the roofline says memory-bound, the executor must agree."""
        for p in PLATFORMS.values():
            ex = SimulatedExecutor(p)
            for tag in ("vecop", "dmmm", "nbody"):
                k = get_kernel(tag)
                prof = k.profile(k.default_size())
                roof = ex.roofline(1.0, 1, prof)
                run = ex.time_kernel(k, 1.0)
                intensity = prof.flops / prof.cache_traffic
                if roof.is_memory_bound(intensity):
                    assert run.bound == "memory", (p.name, tag)
                else:
                    assert run.bound == "compute", (p.name, tag)

    def test_pingpong_through_des_matches_analytic_stack(self):
        """The discrete-event path and the closed-form stack agree."""
        for proto in (TCP_IP, OPEN_MX):
            stack = ProtocolStack(proto, PCIE, core_name="Cortex-A9")
            for size in (0, 1024, 1 << 20):
                des = ping_pong(stack, size, repetitions=3).half_round_trip_us
                analytic = stack.one_way_latency_us(size)
                assert des == pytest.approx(analytic, rel=0.02), (
                    proto.name,
                    size,
                )

    def test_cluster_hpl_rate_bounded_by_node_model(self):
        """Aggregate HPL GFLOPS can never beat nodes x achieved DGEMM."""
        cluster = tibidabo(16, open_mx=True)
        run = HPL().simulate(cluster, 16)
        ceiling = sum(n.achieved_gflops("dgemm") for n in cluster.nodes)
        assert run.gflops < ceiling


class TestEndToEndNumerics:
    def test_distributed_solve_through_full_stack(self):
        """Real linear algebra through the DES MPI over the cluster
        network model, verified against NumPy."""
        cluster = tibidabo(4)
        hpl = HPL()
        a, lu, piv = hpl.factorise(cluster, 4, 128, nb=32, seed=11)
        b = np.cos(np.arange(128.0))
        x = hpl_solve_from_factors(lu, piv, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-7)


class TestStudyCampaign:
    def test_run_all_quick(self):
        """The full campaign executes and produces every artefact key."""
        report = MobileSoCStudy().run_all(quick=True)
        expected = {
            "figure1", "figure2a", "figure2b", "table1", "table2",
            "figure3", "figure4", "figure5", "figure6", "figure7",
            "table4", "headline_hpl", "latency_penalties", "armv8_outlook",
        }
        assert expected <= set(report)

    def test_the_papers_answer(self):
        """The bottom line the title asks about: competitive energy
        efficiency at scale (vs contemporary x86 clusters), an order of
        magnitude off the per-node performance of HPC parts, and a
        mobile trend line steep enough to close the gap."""
        study = MobileSoCStudy()
        head = study.headline_hpl()
        # Competitive with Opteron/Xeon clusters of the day (~120 MF/W).
        assert 100 <= head["mflops_per_watt"] <= 140
        # Per-SoC performance ~10x below the laptop-class x86 part.
        i7 = PLATFORMS["Corei7-2760QM"].peak_gflops()
        t2 = PLATFORMS["Tegra2"].peak_gflops()
        assert i7 / t2 > 10
        # The mobile trend grows faster, so the gap closes.
        f2b = study.figure2b()
        assert (
            f2b["mobile_fit"].growth_per_year
            > f2b["server_fit"].growth_per_year
        )
