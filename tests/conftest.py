"""Shared fixtures for the test suite."""

from __future__ import annotations

import importlib.util
import signal

import pytest

from repro.arch.catalog import (
    PLATFORMS,
    core_i7_2760qm,
    exynos5250,
    tegra2,
    tegra3,
)
from repro.cluster.cluster import tibidabo
from repro.kernels.registry import all_kernels


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden trace files under tests/data/ instead "
        "of comparing against them",
    )


@pytest.fixture
def update_goldens(request):
    """Whether ``--update-goldens`` was passed to this pytest run."""
    return request.config.getoption("--update-goldens")


_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None

if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.fixture(autouse=True)
    def _fallback_test_timeout():
        """Poor-man's per-test timeout when pytest-timeout isn't
        installed (CI installs it; bare containers may not).  A hung
        fault-injection test would otherwise stall the whole suite."""

        def _alarm(signum, frame):
            raise TimeoutError("test exceeded the 120 s fallback timeout")

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.alarm(120)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def platforms():
    """The four Table 1 platforms, keyed by name."""
    return dict(PLATFORMS)


@pytest.fixture(scope="session")
def t2():
    return tegra2()


@pytest.fixture(scope="session")
def t3():
    return tegra3()


@pytest.fixture(scope="session")
def exynos():
    return exynos5250()


@pytest.fixture(scope="session")
def i7():
    return core_i7_2760qm()


@pytest.fixture(scope="session")
def kernels():
    """The 11-kernel suite in Table 2 order."""
    return all_kernels()


@pytest.fixture(scope="session")
def small_cluster():
    """An 8-node Tibidabo slice (cheap for functional MPI tests)."""
    return tibidabo(8)


@pytest.fixture(scope="session")
def cluster96():
    """The 96-node slice used for the Figure 6 / headline artefacts."""
    return tibidabo(96)
