"""Property-based collective correctness under adversarial timing.

Collectives must produce correct results regardless of when ranks
arrive (skewed compute), what sizes the payloads have, and which rank
is root — the orderings the deterministic unit tests cannot cover."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.api import MPIWorld, UniformNetwork
from repro.mpi.collectives import allgather, allreduce, bcast, reduce
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack


def world(n, proto=TCP_IP):
    stack = ProtocolStack(proto, core_name="Cortex-A9", freq_ghz=1.0)
    return MPIWorld(n, UniformNetwork(stack))


@given(
    n=st.integers(min_value=1, max_value=12),
    skews=st.lists(
        st.floats(min_value=0.0, max_value=0.01), min_size=12, max_size=12
    ),
)
@settings(max_examples=40, deadline=None)
def test_allreduce_correct_under_arrival_skew(n, skews):
    def prog(ctx):
        yield ctx.compute(skews[ctx.rank])  # arrive at random times
        total = yield from allreduce(ctx, float(2 ** ctx.rank))
        return total

    res = world(n).run(prog)
    expected = float(2**n - 1)
    assert all(r == expected for r in res.results)


@given(
    n=st.integers(min_value=2, max_value=10),
    root=st.integers(min_value=0, max_value=9),
    nbytes=st.integers(min_value=0, max_value=1 << 16),
)
@settings(max_examples=40, deadline=None)
def test_bcast_payload_intact_any_root_any_size(n, root, nbytes):
    root = root % n
    payload = np.arange(max(1, nbytes // 8), dtype=np.float64)

    def prog(ctx):
        obj = payload if ctx.rank == root else None
        got = yield from bcast(ctx, obj, root=root)
        return got

    res = world(n).run(prog)
    for got in res.results:
        np.testing.assert_array_equal(got, payload)


@given(
    n=st.integers(min_value=1, max_value=10),
    root=st.integers(min_value=0, max_value=9),
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=10, max_size=10
    ),
)
@settings(max_examples=40, deadline=None)
def test_reduce_matches_serial_fold(n, root, values):
    root = root % n

    def prog(ctx):
        return (
            yield from reduce(
                ctx, values[ctx.rank], op=lambda a, b: a + b, root=root
            )
        )

    res = world(n).run(prog)
    got = res.results[root]
    assert got == pytest.approx(sum(values[:n]), rel=1e-9, abs=1e-9)
    for r, out in enumerate(res.results):
        if r != root:
            assert out is None


@given(
    n=st.integers(min_value=1, max_value=10),
    proto=st.sampled_from([TCP_IP, OPEN_MX]),
)
@settings(max_examples=30, deadline=None)
def test_allgather_is_a_permutation_proof(n, proto):
    def prog(ctx):
        return (yield from allgather(ctx, (ctx.rank, ctx.rank**2)))

    res = world(n, proto).run(prog)
    expected = [(i, i**2) for i in range(n)]
    assert all(r == expected for r in res.results)


@given(n=st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_makespan_deterministic(n):
    def prog(ctx):
        v = yield from allreduce(ctx, 1.0)
        return v

    a = world(n).run(prog).makespan_s
    b = world(n).run(prog).makespan_s
    assert a == b
