"""MPI fault tolerance: rank death, receive timeouts, and the
structured deadlock diagnostic."""

import pytest

from repro.mpi.api import (
    ANY_SOURCE,
    DeadlockError,
    MPIWorld,
    RankFailure,
    RecvTimeout,
    SyntheticPayload,
    UniformNetwork,
)
from repro.net.nic import PCIE
from repro.net.protocol import TCP_IP, ProtocolStack


def world(n=2):
    stack = ProtocolStack(TCP_IP, PCIE, core_name="Cortex-A9", freq_ghz=1.0)
    return MPIWorld(n, UniformNetwork(stack))


class TestDeadlockDiagnostics:
    def test_structured_deadlock_error(self):
        w = world(2)

        def prog(ctx):
            # Both ranks wait on each other with no send: classic hang.
            yield from ctx.recv(1 - ctx.rank, tag=7)

        with pytest.raises(DeadlockError) as ei:
            w.run(prog)
        err = ei.value
        assert sorted(err.unfinished) == ["rank0", "rank1"]
        assert err.pending == {0: [(1, 7)], 1: [(0, 7)]}
        assert err.mailboxes == {0: [], 1: []}
        # Backwards-compatible message prefix + the per-rank detail.
        assert str(err).startswith("deadlock: ranks never completed")
        assert "rank 0: pending recv (src, tag): [(1, 7)]" in str(err)

    def test_mailbox_summary_shows_unmatched_messages(self):
        w = world(2)

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, SyntheticPayload(128), tag=3)
                yield from ctx.recv(1)  # never answered
            else:
                yield from ctx.recv(0, tag=9)  # wrong tag: never matches

        with pytest.raises(DeadlockError) as ei:
            w.run(prog)
        err = ei.value
        assert err.pending[1] == [(0, 9)]
        assert err.mailboxes[1] == [(0, 3, 128)]

    def test_match_on_runtime_error_still_works(self):
        """DeadlockError subclasses RuntimeError (old call sites)."""
        w = world(2)

        def prog(ctx):
            yield from ctx.recv(1 - ctx.rank)

        with pytest.raises(RuntimeError, match="deadlock"):
            w.run(prog)


class TestRecvTimeout:
    def test_timeout_raises_with_context(self):
        w = world(2)

        def prog(ctx):
            if ctx.rank == 0:
                with pytest.raises(RecvTimeout) as ei:
                    yield from ctx.recv(1, tag=4, timeout=0.5)
                assert ei.value.rank == 0
                assert ei.value.src == 1
                assert ei.value.tag == 4
                assert ei.value.timeout_s == 0.5
                return ctx.now
            return ctx.now

        res = w.run(prog)
        assert res.results[0] == pytest.approx(0.5)

    def test_message_before_timeout_wins(self):
        w = world(2)

        def prog(ctx):
            if ctx.rank == 0:
                msg = yield from ctx.recv(1, timeout=10.0)
                return msg.nbytes
            yield from ctx.send(0, SyntheticPayload(64))

        res = w.run(prog)
        assert res.results[0] == 64

    def test_late_message_lands_in_mailbox_for_retry(self):
        w = world(2)

        def prog(ctx):
            if ctx.rank == 0:
                try:
                    yield from ctx.recv(1, timeout=0.01)
                except RecvTimeout:
                    pass
                msg = yield from ctx.recv(1)  # retry gets the late message
                return msg.nbytes
            yield ctx.compute(0.5)  # sender is slow
            yield from ctx.send(0, SyntheticPayload(256))

        res = w.run(prog)
        assert res.results[0] == 256

    def test_negative_timeout_rejected(self):
        w = world(2)

        def prog(ctx):
            if ctx.rank == 0:
                with pytest.raises(ValueError):
                    yield from ctx.recv(1, timeout=-1.0)
            yield ctx.compute(1e-6)

        w.run(prog)


class TestKillRank:
    def test_dead_rank_failure_reraised_by_run(self):
        w = world(2)

        def prog(ctx):
            yield ctx.compute(10.0)

        w.spawn_daemon(self._killer(w, 1, 2.0))
        with pytest.raises(RankFailure) as ei:
            w.run(prog)
        assert ei.value.rank == 1
        # The survivor runs to completion (settle semantics): the clock
        # stops when the last rank settles, not at the crash.
        assert w.engine.now == pytest.approx(10.0)

    @staticmethod
    def _killer(w, rank, at):
        yield w.engine.timeout(at)
        w.kill_rank(rank, cause="pcie_hang")

    def test_peer_blocked_on_dead_rank_gets_rank_failure(self):
        w = world(3)
        seen = []

        def prog(ctx):
            if ctx.rank == 0:
                try:
                    yield from ctx.recv(1)  # rank 1 dies before sending
                except RankFailure as f:
                    seen.append((ctx.rank, f.rank, ctx.now))
                return "survived"
            yield ctx.compute(10.0)

        w.spawn_daemon(self._killer(w, 1, 2.0))
        with pytest.raises(RankFailure):
            w.run(prog)
        assert seen == [(0, 1, 2.0)]

    def test_recv_posted_after_death_fails_immediately(self):
        w = world(3)
        seen = []

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.compute(5.0)  # rank 1 is dead by now
                try:
                    yield from ctx.recv(1)
                except RankFailure:
                    seen.append(ctx.now)
                return "survived"
            yield ctx.compute(10.0)

        w.spawn_daemon(self._killer(w, 1, 2.0))
        with pytest.raises(RankFailure):
            w.run(prog)
        assert seen == [5.0]

    def test_wildcard_recv_not_failed_surfaces_as_timeout(self):
        w = world(2)
        seen = []

        def prog(ctx):
            if ctx.rank == 0:
                try:
                    yield from ctx.recv(ANY_SOURCE, timeout=3.0)
                except RecvTimeout:
                    seen.append(ctx.now)
                return "survived"
            yield ctx.compute(10.0)

        w.spawn_daemon(self._killer(w, 1, 1.0))
        with pytest.raises(RankFailure):
            w.run(prog)
        assert seen == [pytest.approx(3.0, abs=0.1)]

    def test_send_to_dead_rank_is_dropped(self):
        w = world(2)

        def prog(ctx):
            if ctx.rank == 0:
                yield ctx.compute(3.0)
                yield from ctx.send(1, SyntheticPayload(1024))
                return "sent"
            yield ctx.compute(10.0)

        w.spawn_daemon(self._killer(w, 1, 1.0))
        with pytest.raises(RankFailure):
            w.run(prog)
        assert w.contexts[1]._mailbox == []  # bytes vanished with the node

    def test_kill_is_idempotent(self):
        w = world(2)

        def killer():
            yield w.engine.timeout(1.0)
            w.kill_rank(1, cause="first")
            w.kill_rank(1, cause="second")  # no double-throw

        def prog(ctx):
            yield ctx.compute(5.0)

        w.spawn_daemon(killer())
        with pytest.raises(RankFailure, match="first"):
            w.run(prog)

    def test_kill_rank_validates_range(self):
        w = world(2)
        with pytest.raises(ValueError):
            w.kill_rank(5)

    def test_daemon_after_completion_does_not_stretch_makespan(self):
        w = world(2)

        def prog(ctx):
            yield ctx.compute(1.0)
            return ctx.now

        w.spawn_daemon(self._killer(w, 1, 50.0))  # never fires
        res = w.run(prog)
        assert res.makespan_s == pytest.approx(1.0)
        assert res.results == [1.0, 1.0]
