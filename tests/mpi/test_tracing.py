"""Tests for the trace capture/analysis facility."""

import numpy as np
import pytest

from repro.mpi.api import SyntheticPayload
from repro.mpi.collectives import allreduce
from repro.obs.messages import MessageRecord, TraceAnalysis, traced_world
from repro.mpi.api import UniformNetwork
from repro.net.protocol import TCP_IP, ProtocolStack


def network():
    return UniformNetwork(
        ProtocolStack(TCP_IP, core_name="Cortex-A9", freq_ghz=1.0)
    )


class TestTraceCapture:
    def test_every_message_recorded(self):
        world, tracer = traced_world(4, network())

        def prog(ctx):
            if ctx.rank == 0:
                for d in (1, 2, 3):
                    yield from ctx.send(d, SyntheticPayload(100 * d))
                return None
            yield from ctx.recv(0)
            return None

        world.run(prog)
        assert len(tracer.records) == 3
        assert {r.dst for r in tracer.records} == {1, 2, 3}
        assert {r.nbytes for r in tracer.records} == {100, 200, 300}

    def test_flight_times_positive(self):
        world, tracer = traced_world(2, network())

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, b"x" * 64)
                return None
            yield from ctx.recv(0)
            return None

        world.run(prog)
        assert tracer.records[0].flight_time_s > 0

    def test_collectives_are_traced(self):
        world, tracer = traced_world(8, network())

        def prog(ctx):
            return (yield from allreduce(ctx, 1.0))

        world.run(prog)
        assert len(tracer.records) > 8  # log2 rounds x ranks


class TestAnalysis:
    def run_ring(self, n=4, nbytes=256, rounds=3):
        world, tracer = traced_world(n, network())

        def prog(ctx):
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            for _ in range(rounds):
                yield from ctx.exchange(
                    [(right, SyntheticPayload(nbytes), 1)], [(left, 1)]
                )
            return None

        world.run(prog)
        return tracer.analysis(n)

    def test_comm_matrix(self):
        a = self.run_ring(n=4, nbytes=256, rounds=3)
        m = a.comm_matrix_bytes()
        assert m.shape == (4, 4)
        assert m[0, 1] == 3 * 256
        assert m[0, 2] == 0
        assert a.total_bytes() == 4 * 3 * 256

    def test_message_counts(self):
        a = self.run_ring(n=4, rounds=2)
        counts = a.message_count_matrix()
        assert counts.sum() == 8

    def test_median_flight_time_near_stack_latency(self):
        a = self.run_ring(nbytes=8)
        stack = ProtocolStack(TCP_IP, core_name="Cortex-A9")
        assert a.median_flight_time_s() == pytest.approx(
            stack.transfer_time_s(8), rel=0.05
        )

    def test_clean_run_has_no_stalls(self):
        a = self.run_ring()
        assert a.stalls() == []
        assert a.late_senders() == {}

    def test_injected_timeout_is_detected(self):
        """The paper's use case: a stalled transfer stands out against
        the trace's normal flight times."""
        a = self.run_ring(n=4, nbytes=256, rounds=5)
        slow = MessageRecord(0, 1, 9, 256, 10.0, 10.0 + 60.0)  # 60 s stall
        analysis = TraceAnalysis(a.records + [slow], 4)
        stalls = analysis.stalls()
        assert len(stalls) == 1
        assert stalls[0].tag == 9
        assert analysis.late_senders() == {0: 1}

    def test_summary_renders(self):
        a = self.run_ring()
        s = a.summary()
        assert "messages" in s and "stalls" in s

    def test_empty_trace(self):
        a = TraceAnalysis([], 2)
        assert a.stalls() == []
        with pytest.raises(ValueError):
            a.median_flight_time_s()

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceAnalysis([], 0)
        with pytest.raises(ValueError):
            TraceAnalysis([], 2).stalls(factor=1.0)


class TestTracingOverClusterNetwork:
    def test_tracer_wraps_cluster_network(self):
        """The tracer must be a drop-in for the Tibidabo network model,
        preserving its timing while recording messages."""
        from repro.cluster.cluster import tibidabo

        cluster = tibidabo(8)
        world, tracer = traced_world(8, cluster.network())

        def prog(ctx):
            if ctx.rank == 0:
                for d in range(1, ctx.size):
                    yield from ctx.send(d, SyntheticPayload(4096))
                return None
            msg = yield from ctx.recv(0)
            return msg.received_at - msg.sent_at

        res = world.run(prog)
        assert len(tracer.records) == 7
        # Timing passthrough: flight time equals the cluster model's.
        expected = cluster.network().transfer_time_s(0, 1, 4096)
        assert res.results[1] == pytest.approx(expected, rel=1e-9)

    def test_cross_leaf_messages_visibly_slower_in_trace(self):
        from repro.cluster.cluster import tibidabo

        cluster = tibidabo(96)
        world, tracer = traced_world(96, cluster.network())

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, SyntheticPayload(64))    # same leaf
                yield from ctx.send(50, SyntheticPayload(64))   # cross leaf
                return None
            if ctx.rank in (1, 50):
                yield from ctx.recv(0)
            return None

        world.run(prog)
        by_dst = {r.dst: r.flight_time_s for r in tracer.records}
        assert by_dst[50] > by_dst[1]
