"""Tests for the IMB-style ping-pong benchmark (Figure 7 harness)."""

import pytest

from repro.mpi.benchmarks import (
    BANDWIDTH_SIZES,
    LATENCY_SIZES,
    bandwidth_curve,
    latency_curve,
    ping_pong,
)
from repro.net.nic import PCIE, USB3
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack


def stack(proto=TCP_IP, att=PCIE, core="Cortex-A9", freq=1.0):
    return ProtocolStack(proto, att, core_name=core, freq_ghz=freq)


class TestPingPong:
    def test_zero_byte_latency_equals_stack_latency(self):
        s = stack()
        r = ping_pong(s, 0, repetitions=4)
        assert r.latency_us == pytest.approx(
            s.small_message_latency_us(), rel=0.01
        )

    def test_repetitions_average_out(self):
        s = stack()
        r1 = ping_pong(s, 64, repetitions=1)
        r10 = ping_pong(s, 64, repetitions=10)
        assert r1.half_round_trip_us == pytest.approx(
            r10.half_round_trip_us, rel=0.01
        )

    def test_bandwidth_definition(self):
        s = stack()
        r = ping_pong(s, 1 << 20)
        assert r.bandwidth_mbs == pytest.approx(
            (1 << 20) / r.half_round_trip_us
        )

    def test_zero_bytes_zero_bandwidth(self):
        assert ping_pong(stack(), 0).bandwidth_mbs == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ping_pong(stack(), -1)
        with pytest.raises(ValueError):
            ping_pong(stack(), 8, repetitions=0)


class TestCurves:
    def test_latency_panel_flat_for_small_messages(self):
        """Figure 7(a)-(c): latency is essentially constant over 0-64 B."""
        curve = latency_curve(stack())
        values = list(curve.values())
        assert max(values) / min(values) < 1.05

    def test_bandwidth_panel_monotone_then_saturating(self):
        """Figure 7(d)-(f): bandwidth rises with message size and
        approaches the large-message limit."""
        s = stack(OPEN_MX)
        curve = bandwidth_curve(s)
        sizes = sorted(curve)
        values = [curve[x] for x in sizes]
        assert values[0] < 1.0  # tiny messages are latency-dominated
        assert values[-1] == pytest.approx(
            s.effective_bandwidth_mbs(sizes[-1]), rel=0.02
        )

    def test_figure7_crossing(self):
        """Open-MX beats TCP at every size on the same hardware."""
        tcp = bandwidth_curve(stack(TCP_IP), sizes=(1 << 10, 1 << 16, 1 << 22))
        omx = bandwidth_curve(stack(OPEN_MX), sizes=(1 << 10, 1 << 16, 1 << 22))
        for size in tcp:
            assert omx[size] > tcp[size]

    def test_usb_bandwidth_below_pcie(self):
        """Figure 7: 'Due to the overheads in the USB software stack,
        Exynos 5 shows smaller bandwidth than Tegra 2' with Open-MX."""
        pcie = ping_pong(stack(OPEN_MX, PCIE, "Cortex-A9"), 1 << 22)
        usb = ping_pong(stack(OPEN_MX, USB3, "Cortex-A15"), 1 << 22)
        assert usb.bandwidth_mbs < pcie.bandwidth_mbs

    def test_default_size_grids(self):
        assert 0 in LATENCY_SIZES and 64 in LATENCY_SIZES
        assert max(BANDWIDTH_SIZES) == 1 << 24
