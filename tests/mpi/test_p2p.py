"""Point-to-point MPI simulator tests."""

import numpy as np
import pytest

from repro.mpi.api import (
    ANY_SOURCE,
    MPIWorld,
    SyntheticPayload,
    UniformNetwork,
    payload_nbytes,
)
from repro.net.nic import PCIE
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack


def world(n=2, proto=TCP_IP):
    stack = ProtocolStack(proto, PCIE, core_name="Cortex-A9", freq_ghz=1.0)
    return MPIWorld(n, UniformNetwork(stack))


class TestPayloadSizes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(100)) == 800

    def test_bytes(self):
        assert payload_nbytes(b"x" * 33) == 33

    def test_synthetic(self):
        assert payload_nbytes(SyntheticPayload(12345)) == 12345

    def test_scalar_and_none(self):
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(None) == 0

    def test_sequence(self):
        assert payload_nbytes([np.zeros(2), 1.0]) == 16 + 8 + 8

    def test_negative_synthetic_rejected(self):
        with pytest.raises(ValueError):
            SyntheticPayload(-1)


class TestSendRecv:
    def test_array_payload_delivered_intact(self):
        w = world()
        data = np.arange(64.0)

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, data)
                return None
            msg = yield from ctx.recv(0)
            return msg.payload

        res = w.run(prog)
        np.testing.assert_array_equal(res.results[1], data)

    def test_message_metadata(self):
        w = world()

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, b"abc", tag=7)
                return None
            msg = yield from ctx.recv(0, tag=7)
            return (msg.src, msg.tag, msg.nbytes, msg.received_at > msg.sent_at)

        res = w.run(prog)
        assert res.results[1] == (0, 7, 3, True)

    def test_fifo_ordering_same_pair(self):
        w = world()

        def prog(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield from ctx.send(1, float(i))
                return None
            got = []
            for _ in range(5):
                msg = yield from ctx.recv(0)
                got.append(msg.payload)
            return got

        res = w.run(prog)
        assert res.results[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_any_source(self):
        w = world(3)

        def prog(ctx):
            if ctx.rank in (1, 2):
                yield ctx.compute(ctx.rank * 1e-3)
                yield from ctx.send(0, ctx.rank)
                return None
            first = yield from ctx.recv(ANY_SOURCE)
            second = yield from ctx.recv(ANY_SOURCE)
            return [first.payload, second.payload]

        res = w.run(prog)
        assert res.results[0] == [1, 2]  # rank 1 sent earlier

    def test_tag_selectivity(self):
        w = world()

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, "wrong", tag=1)
                yield from ctx.send(1, "right", tag=2)
                return None
            msg = yield from ctx.recv(0, tag=2)
            other = yield from ctx.recv(0, tag=1)
            return (msg.payload, other.payload)

        res = w.run(prog)
        assert res.results[1] == ("right", "wrong")

    def test_recv_posted_before_send(self):
        w = world()

        def prog(ctx):
            if ctx.rank == 1:
                msg = yield from ctx.recv(0)
                return msg.payload
            yield ctx.compute(0.01)  # rank 1 is already waiting
            yield from ctx.send(1, "late")
            return None

        res = w.run(prog)
        assert res.results[1] == "late"

    def test_self_send(self):
        w = world()

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(0, "loop")
                msg = yield from ctx.recv(0)
                return msg.payload
            return None

        assert w.run(prog).results[0] == "loop"

    def test_exchange_runs_concurrently(self):
        """Both directions of an exchange overlap: total time ~ one
        transfer, not two."""
        stack = ProtocolStack(TCP_IP, PCIE, core_name="Cortex-A9")
        one_way = stack.transfer_time_s(8)

        def prog(ctx):
            peer = 1 - ctx.rank
            yield from ctx.exchange([(peer, 1.0, 5)], [(peer, 5)])
            return ctx.now

        res = world().run(prog)
        assert res.makespan_s < 1.7 * one_way

    def test_destination_validated(self):
        w = world()

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(5, "x")
            return None

        with pytest.raises(ValueError):
            w.run(prog)

    def test_deadlock_detected(self):
        w = world()

        def prog(ctx):
            yield from ctx.recv()  # nobody sends
            return None

        with pytest.raises(RuntimeError, match="deadlock"):
            w.run(prog)


class TestTiming:
    def test_transfer_time_matches_stack(self):
        stack = ProtocolStack(TCP_IP, PCIE, core_name="Cortex-A9")
        w = MPIWorld(2, UniformNetwork(stack))

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, b"")
                return None
            yield from ctx.recv(0)
            return ctx.now

        res = w.run(prog)
        assert res.results[1] == pytest.approx(
            stack.transfer_time_s(0), rel=1e-6
        )

    def test_openmx_faster_than_tcp(self):
        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, b"x" * 64)
                return None
            yield from ctx.recv(0)
            return ctx.now

        t_tcp = world(proto=TCP_IP).run(prog).results[1]
        t_omx = world(proto=OPEN_MX).run(prog).results[1]
        assert t_omx < t_tcp

    def test_compute_flops_uses_rank_speed(self):
        stack = ProtocolStack(TCP_IP, PCIE, core_name="Cortex-A9")
        w = MPIWorld(1, UniformNetwork(stack), rank_gflops=2.0)

        def prog(ctx):
            yield ctx.compute_flops(4e9)
            return ctx.now

        assert w.run(prog).results[0] == pytest.approx(2.0)

    def test_stats_accounting(self):
        w = world()

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, np.zeros(128))
                return None
            yield from ctx.recv(0)
            return None

        res = w.run(prog)
        assert res.total_messages == 1
        assert res.total_bytes == 1024
        assert res.stats[1].comm_wait_s > 0

    def test_world_validation(self):
        with pytest.raises(ValueError):
            MPIWorld(0, None)
        with pytest.raises(ValueError):
            world().contexts[0].compute(-1)
