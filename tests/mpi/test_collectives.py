"""Collective-operation correctness and cost-shape tests."""

import math

import numpy as np
import pytest

from repro.mpi.api import MPIWorld, UniformNetwork
from repro.mpi.collectives import (
    allgather,
    allreduce,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)
from repro.net.nic import PCIE
from repro.net.protocol import TCP_IP, ProtocolStack

SIZES = [1, 2, 3, 4, 5, 7, 8, 12, 16, 17]


def world(n):
    stack = ProtocolStack(TCP_IP, PCIE, core_name="Cortex-A9", freq_ghz=1.0)
    return MPIWorld(n, UniformNetwork(stack))


@pytest.mark.parametrize("n", SIZES)
class TestCorrectness:
    def test_allreduce_sum(self, n):
        def prog(ctx):
            return (yield from allreduce(ctx, float(ctx.rank + 1)))

        res = world(n).run(prog)
        assert all(r == n * (n + 1) / 2 for r in res.results)

    def test_allreduce_min(self, n):
        def prog(ctx):
            return (yield from allreduce(ctx, float(ctx.rank + 3), op=min))

        res = world(n).run(prog)
        assert all(r == 3.0 for r in res.results)

    def test_allreduce_arrays(self, n):
        def prog(ctx):
            v = np.full(4, float(ctx.rank))
            return (yield from allreduce(ctx, v))

        res = world(n).run(prog)
        expected = np.full(4, sum(range(n)), dtype=float)
        for r in res.results:
            np.testing.assert_array_equal(r, expected)

    def test_bcast_every_root(self, n):
        for root in {0, n // 2, n - 1}:
            def prog(ctx, root=root):
                obj = {"data": 99} if ctx.rank == root else None
                return (yield from bcast(ctx, obj, root=root))

            res = world(n).run(prog)
            assert all(r == {"data": 99} for r in res.results)

    def test_reduce_root_only(self, n):
        def prog(ctx):
            return (yield from reduce(ctx, ctx.rank, op=lambda a, b: a + b))

        res = world(n).run(prog)
        assert res.results[0] == n * (n - 1) // 2
        assert all(r is None for r in res.results[1:])

    def test_gather(self, n):
        def prog(ctx):
            return (yield from gather(ctx, ctx.rank * 2))

        res = world(n).run(prog)
        assert res.results[0] == [2 * i for i in range(n)]

    def test_scatter(self, n):
        def prog(ctx):
            vals = [f"item{i}" for i in range(ctx.size)]
            return (
                yield from scatter(
                    ctx, vals if ctx.rank == 0 else None, root=0
                )
            )

        res = world(n).run(prog)
        assert res.results == [f"item{i}" for i in range(n)]

    def test_allgather(self, n):
        def prog(ctx):
            return (yield from allgather(ctx, ctx.rank ** 2))

        res = world(n).run(prog)
        expected = [i**2 for i in range(n)]
        assert all(r == expected for r in res.results)

    def test_barrier_synchronises(self, n):
        def prog(ctx):
            # Stagger arrival; after the barrier everyone's clock must be
            # at least the latest arrival time.
            yield ctx.compute(0.01 * (ctx.rank + 1))
            yield from barrier(ctx)
            return ctx.now

        res = world(n).run(prog)
        latest_arrival = 0.01 * n
        assert all(t >= latest_arrival - 1e-12 for t in res.results)


class TestCostShapes:
    def _barrier_time(self, n):
        def prog(ctx):
            yield from barrier(ctx)
            return ctx.now

        return world(n).run(prog).makespan_s

    def test_barrier_scales_logarithmically(self):
        """A dissemination barrier costs ceil(log2 p) rounds."""
        t8 = self._barrier_time(8)
        t64 = self._barrier_time(64)
        assert t64 / t8 == pytest.approx(math.log2(64) / math.log2(8), rel=0.35)

    def test_bcast_cheaper_than_allgather_for_large_worlds(self):
        payload = b"z" * 4096

        def b_prog(ctx):
            yield from bcast(ctx, payload if ctx.rank == 0 else None)
            return None

        def ag_prog(ctx):
            yield from allgather(ctx, payload)
            return None

        t_b = world(32).run(b_prog).makespan_s
        t_ag = world(32).run(ag_prog).makespan_s
        assert t_b < t_ag

    def test_scatter_validates_length(self):
        def prog(ctx):
            return (yield from scatter(ctx, [1], root=0))

        with pytest.raises(ValueError):
            world(3).run(prog)
