"""Tests for reduce_scatter / scan / alltoall and the extra IMB
benchmarks."""

import numpy as np
import pytest

from repro.mpi import (
    MPIWorld,
    UniformNetwork,
    alltoall,
    reduce_scatter,
    scan,
)
from repro.mpi.benchmarks import (
    allreduce_benchmark,
    exchange_benchmark,
    ping_pong,
    sendrecv_benchmark,
)
from repro.net.protocol import TCP_IP, ProtocolStack

SIZES = [1, 2, 3, 5, 8, 13]


def world(n):
    stack = ProtocolStack(TCP_IP, core_name="Cortex-A9", freq_ghz=1.0)
    return MPIWorld(n, UniformNetwork(stack))


@pytest.mark.parametrize("n", SIZES)
class TestExtraCollectives:
    def test_reduce_scatter(self, n):
        def prog(ctx):
            vals = [float(ctx.rank * 10 + d) for d in range(ctx.size)]
            return (yield from reduce_scatter(ctx, vals))

        res = world(n).run(prog)
        for r, got in enumerate(res.results):
            expected = sum(src * 10 + r for src in range(n))
            assert got == expected, (n, r)

    def test_scan_inclusive_prefix(self, n):
        def prog(ctx):
            return (yield from scan(ctx, ctx.rank + 1))

        res = world(n).run(prog)
        for r, got in enumerate(res.results):
            assert got == sum(range(1, r + 2)), (n, r)

    def test_scan_noncommutative_order(self, n):
        def prog(ctx):
            return (
                yield from scan(ctx, str(ctx.rank), op=lambda a, b: a + b)
            )

        res = world(n).run(prog)
        for r, got in enumerate(res.results):
            assert got == "".join(str(i) for i in range(r + 1))

    def test_alltoall_personalised(self, n):
        def prog(ctx):
            return (
                yield from alltoall(
                    ctx, [f"{ctx.rank}->{d}" for d in range(ctx.size)]
                )
            )

        res = world(n).run(prog)
        for r, got in enumerate(res.results):
            assert got == [f"{s}->{r}" for s in range(n)], (n, r)

    def test_alltoall_arrays(self, n):
        def prog(ctx):
            vals = [np.full(3, ctx.rank * ctx.size + d) for d in range(ctx.size)]
            return (yield from alltoall(ctx, vals))

        res = world(n).run(prog)
        for r, got in enumerate(res.results):
            for s, arr in enumerate(got):
                np.testing.assert_array_equal(arr, np.full(3, s * n + r))


class TestValidationErrors:
    def test_reduce_scatter_needs_one_per_rank(self):
        def prog(ctx):
            return (yield from reduce_scatter(ctx, [1.0]))

        with pytest.raises(ValueError):
            world(3).run(prog)

    def test_alltoall_needs_one_per_destination(self):
        def prog(ctx):
            return (yield from alltoall(ctx, [1.0]))

        with pytest.raises(ValueError):
            world(3).run(prog)


class TestIMBExtras:
    def stack(self):
        return ProtocolStack(TCP_IP, core_name="Cortex-A9", freq_ghz=1.0)

    def test_sendrecv_matches_single_latency(self):
        """The ring shift is fully concurrent: per-iteration time is one
        message latency, independent of ring size."""
        s = self.stack()
        t8 = sendrecv_benchmark(s, 8, 8)
        t32 = sendrecv_benchmark(s, 32, 8)
        assert t8 == pytest.approx(s.one_way_latency_us(8), rel=0.05)
        assert t32 == pytest.approx(t8, rel=0.05)

    def test_exchange_at_least_sendrecv(self):
        s = self.stack()
        assert exchange_benchmark(s, 8, 1024) >= sendrecv_benchmark(
            s, 8, 1024
        ) * 0.99

    def test_allreduce_grows_with_ranks(self):
        s = self.stack()
        t4 = allreduce_benchmark(s, 4)
        t32 = allreduce_benchmark(s, 32)
        assert t32 > t4
        # Recursive doubling: ~log2 growth, not linear.
        assert t32 / t4 < 8

    def test_pingpong_consistency(self):
        s = self.stack()
        assert allreduce_benchmark(s, 2) >= ping_pong(s, 8).latency_us - 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            sendrecv_benchmark(self.stack(), 1, 8)
        with pytest.raises(ValueError):
            exchange_benchmark(self.stack(), 1, 8)
