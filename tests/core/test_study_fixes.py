"""Regression tests for latent study bugs: the executor-cache keying
and the silent ``_geomean`` edge cases."""

import dataclasses
import gc
import weakref

import pytest

from repro.core.study import MobileSoCStudy, _geomean


class TestExecutorCache:
    def test_executor_memoized_per_platform(self):
        study = MobileSoCStudy()
        plat = study.platforms["Tegra2"]
        assert study._executor(plat) is study._executor(plat)

    def test_swapped_platform_gets_fresh_executor(self):
        study = MobileSoCStudy()
        old = study.platforms["Tegra2"]
        old_ex = study._executor(old)
        swapped = dataclasses.replace(old, calibration_notes="swapped-in")
        assert swapped.name == old.name and swapped != old
        new_ex = study._executor(swapped)
        assert new_ex is not old_ex
        assert new_ex.platform is swapped

    def test_swap_releases_the_stale_executor(self):
        """Pre-fix the table was keyed by ``id(platform)``: swapping a
        platform left the old executor (and through it the old platform
        model) pinned in the study forever."""
        study = MobileSoCStudy()
        old = study.platforms["Tegra2"]
        stale = weakref.ref(study._executor(old))
        study._executor(dataclasses.replace(old, calibration_notes="v2"))
        gc.collect()
        assert stale() is None

    def test_table_stays_bounded_under_repeated_swaps(self):
        study = MobileSoCStudy()
        plat = study.platforms["Tegra2"]
        for i in range(7):
            study._executor(
                dataclasses.replace(plat, calibration_notes=f"rev{i}")
            )
        assert len(study._executors) == 1


class TestGeomean:
    def test_normal_case_unchanged(self):
        assert _geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            _geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError, match="positive"):
            _geomean([1.0, 0.0])
        with pytest.raises(ValueError, match="positive"):
            _geomean([1.0, -2.0])

    def test_bench_copy_same_contract(self):
        """The perf harness's own ``_geomean`` (the second call site)
        must enforce the identical contract."""
        from repro.perf.bench import _geomean as bench_geomean

        assert bench_geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError, match="empty"):
            bench_geomean([])
        with pytest.raises(ValueError, match="positive"):
            bench_geomean([3.0, -1.0])
