"""Tests for the TOP500 datasets and trend analysis (Figures 1, 2)."""

import math

import pytest

from repro.core import top500, trends


class TestTop500Share:
    def test_all_years_present(self):
        assert set(top500.TOP500_SHARE) == set(range(1993, 2014))

    def test_totals_bounded_by_500(self):
        for counts in top500.TOP500_SHARE.values():
            assert sum(counts) <= 500
            assert all(c >= 0 for c in counts)

    def test_figure1_narrative(self):
        """Vector dominated 1993; RISC peaked late-90s; x86 dominates
        2013."""
        assert top500.dominant_class(1993) == "vector"
        assert top500.dominant_class(1999) == "risc"
        assert top500.dominant_class(2013) == "x86"

    def test_x86_monotonically_rises(self):
        years, counts = top500.share_series("x86")
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_vector_monotonically_falls(self):
        _, counts = top500.share_series("vector")
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            top500.share_series("quantum")
        with pytest.raises(KeyError):
            top500.dominant_class(1980)


class TestProcessorDatasets:
    def test_families_consistent(self):
        for pts, family in (
            (top500.VECTOR_PROCESSORS, "vector"),
            (top500.MICRO_PROCESSORS, "micro"),
            (top500.SERVER_PROCESSORS, "server"),
            (top500.MOBILE_PROCESSORS, "mobile"),
        ):
            assert all(p.family == family for p in pts)
            assert len(pts) >= 5

    def test_mobile_points_match_table1(self):
        by_name = {p.name: p for p in top500.MOBILE_PROCESSORS}
        assert by_name["NVIDIA Tegra 2"].peak_mflops == 2_000
        assert by_name["Samsung Exynos 5250"].peak_mflops == 6_800
        assert by_name["4-core ARMv8 @ 2GHz"].peak_mflops == 32_000


class TestExponentialFits:
    def test_exact_recovery_of_synthetic_trend(self):
        pts = [(2000 + i, 100.0 * 1.5**i) for i in range(10)]
        fit = trends.fit_exponential(pts)
        assert fit.growth_per_year == pytest.approx(1.5, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(2005) == pytest.approx(100.0 * 1.5**5)

    def test_doubling_time(self):
        pts = [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]
        fit = trends.fit_exponential(pts)
        assert fit.doubling_time_years == pytest.approx(1.0)

    def test_flat_trend_never_doubles(self):
        fit = trends.fit_exponential([(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)])
        assert math.isinf(fit.doubling_time_years)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            trends.fit_exponential([(2000.0, 1.0)])

    def test_gap_and_crossover(self):
        slow = trends.fit_exponential([(0.0, 100.0), (10.0, 100.0 * 2**10)])
        fast = trends.fit_exponential([(0.0, 1.0), (10.0, 4.0**10)])
        # fast starts 100x behind but doubles twice as often.
        year = trends.crossover_year(fast, slow)
        assert trends.gap_ratio(slow, fast, 0.0) == pytest.approx(100.0)
        assert slow.predict(year) == pytest.approx(fast.predict(year), rel=1e-6)

    def test_no_crossover_when_chaser_slower(self):
        fast = trends.fit_exponential([(0.0, 1.0), (1.0, 4.0)])
        slow = trends.fit_exponential([(0.0, 1.0), (1.0, 2.0)])
        with pytest.raises(ValueError):
            trends.crossover_year(slow, fast)


class TestPaperTrends:
    def test_vector_micro_gap_was_about_ten_x(self):
        """Section 1: micros were 'around ten times slower' ~1990-2000."""
        vec = trends.fit_exponential(top500.VECTOR_PROCESSORS)
        mic = trends.fit_exponential(top500.MICRO_PROCESSORS)
        assert 5.0 <= trends.gap_ratio(vec, mic, 1995.0) <= 15.0

    def test_mobile_trend_steeper_than_server(self):
        """Figure 2b: the mobile regression is the steeper one."""
        srv = trends.fit_exponential(top500.SERVER_PROCESSORS)
        mob = trends.fit_exponential(top500.MOBILE_PROCESSORS)
        assert mob.growth_per_year > srv.growth_per_year

    def test_mobile_catches_server_in_the_future(self):
        srv = trends.fit_exponential(top500.SERVER_PROCESSORS)
        mob = trends.fit_exponential(top500.MOBILE_PROCESSORS)
        year = trends.crossover_year(mob, srv)
        assert 2014 < year < 2035

    def test_price_ratios(self):
        """Footnote 5: ~70x (Tegra 3) and ~24x (Atom S1260)."""
        assert trends.price_ratio_mobile_vs_hpc() == pytest.approx(
            1552 / 21
        )
        assert trends.price_ratio_same_price_type() == pytest.approx(
            1552 / 64
        )

    def test_cost_argument_structure(self):
        arg = trends.historical_cost_argument()
        assert arg["vector_vs_micro_price_gap"] == 30.0
        assert arg["server_vs_mobile_price_gap"] > 70.0
