"""Tests for Green500 list positioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.green500 import (
    JUNE_2013,
    NOV_2007,
    megaproto_claim,
    rank_june_2013,
    rank_november_2007,
    tibidabo_positioning,
)


class TestAnchors:
    @pytest.mark.parametrize("anchors", [NOV_2007, JUNE_2013])
    def test_anchors_monotone(self, anchors):
        ranks = [r for r, _ in anchors]
        effs = [e for _, e in anchors]
        assert ranks == sorted(ranks)
        assert effs == sorted(effs, reverse=True)

    def test_anchor_points_exact(self):
        assert rank_november_2007(357.2) == 1
        assert rank_november_2007(86.6) == 70
        assert rank_june_2013(3208.8) == 1


class TestPaperClaims:
    def test_megaproto_ranks_45_to_70(self):
        """Section 2, footnote 7: MegaProto's 100 MFLOPS/W 'would have
        ranked between 45 and 70 in the first edition of the Green500'."""
        rank, holds = megaproto_claim()
        assert holds
        assert 45 <= rank <= 70

    def test_tibidabo_mid_table_in_2013(self):
        """120 MFLOPS/W in June 2013: the commodity-x86-cluster band
        (the paper: 'competitive with AMD Opteron 6174 and Intel Xeon
        E5660-based clusters')."""
        pos = tibidabo_positioning(120.0)
        assert 350 <= pos["estimated_rank"] <= 470
        assert pos["gap_to_best"] == pytest.approx(26.7, rel=0.02)

    def test_greenest_2007_would_be_midfield_2013(self):
        """Six years of Green500 inflation: the 2007 #1 efficiency ranks
        in the middle of the 2013 list."""
        rank_2013 = rank_june_2013(NOV_2007[0][1])
        assert 150 <= rank_2013 <= 350


class TestInterpolation:
    @given(st.floats(min_value=4.0, max_value=3000.0))
    @settings(max_examples=60, deadline=None)
    def test_rank_within_list_bounds(self, eff):
        for fn in (rank_november_2007, rank_june_2013):
            r = fn(eff)
            assert 1.0 <= r <= 500.0

    @given(
        a=st.floats(min_value=4.0, max_value=3000.0),
        b=st.floats(min_value=4.0, max_value=3000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_better_efficiency_never_ranks_worse(self, a, b):
        lo, hi = sorted((a, b))
        assert rank_june_2013(hi) <= rank_june_2013(lo) + 1e-9

    def test_clamping(self):
        assert rank_june_2013(1e6) == 1.0
        assert rank_june_2013(0.1) == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_june_2013(0.0)
