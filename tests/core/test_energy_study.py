"""Tests for the [13] energy-to-solution reproduction."""

import pytest

from repro.core.energy_study import (
    EnergyToSolutionResult,
    energy_to_solution,
    pde_solver_campaign,
)


@pytest.fixture(scope="module")
def specfem():
    return energy_to_solution("SPECFEM3D", arm_nodes=96, x86_nodes=16)


class TestPaperClaim:
    """[13]: 'while Tibidabo had a 4 times increase in simulation time,
    it achieved up to 3 times lower energy-to-solution'."""

    def test_arm_is_several_times_slower(self, specfem):
        assert 3.0 <= specfem.time_ratio <= 5.0

    def test_arm_uses_less_energy(self, specfem):
        assert 2.0 <= specfem.energy_ratio <= 3.5

    def test_campaign_direction_consistent(self):
        for name, r in pde_solver_campaign().items():
            assert r.time_ratio > 1.0, name  # ARM always slower
            assert r.energy_ratio > 1.0, name  # ARM always cheaper

    def test_power_asymmetry(self, specfem):
        """The whole effect comes from the ~10x power gap."""
        assert specfem.x86_power_w / specfem.arm_power_w > 5.0


class TestMechanics:
    def test_energy_identity(self, specfem):
        assert specfem.arm_energy_j == pytest.approx(
            specfem.arm_time_s * specfem.arm_power_w
        )

    def test_result_fields(self, specfem):
        assert specfem.app == "SPECFEM3D"
        assert specfem.arm_nodes == 96
        assert specfem.x86_nodes == 16

    def test_infrastructure_factor_shifts_energy_only(self):
        lean = energy_to_solution("HYDRO", 96, 16, infrastructure_factor=1.0)
        heavy = energy_to_solution("HYDRO", 96, 16, infrastructure_factor=2.0)
        assert heavy.time_ratio == pytest.approx(lean.time_ratio)
        assert heavy.energy_ratio > lean.energy_ratio

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            energy_to_solution(infrastructure_factor=0.5)

    def test_result_dataclass_math(self):
        r = EnergyToSolutionResult("x", 4, 2, 40.0, 10.0, 100.0, 1000.0)
        assert r.time_ratio == 4.0
        assert r.energy_ratio == pytest.approx(10000.0 / 4000.0)
