"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import ARTEFACTS, main, run_artefact
from repro.core.study import MobileSoCStudy


@pytest.fixture(scope="module")
def study():
    return MobileSoCStudy()


FAST_ARTEFACTS = [
    "table1", "table2", "table3", "table4",
    "fig1", "fig2a", "fig2b", "fig5", "fig7",
    "headline", "features", "stack",
]


class TestArtefacts:
    @pytest.mark.parametrize("name", FAST_ARTEFACTS)
    def test_artefact_renders(self, name, study, capsys):
        run_artefact(name, study)
        out = capsys.readouterr().out
        assert len(out.strip()) > 20, name

    def test_table4_content(self, study, capsys):
        run_artefact("table4", study)
        out = capsys.readouterr().out
        assert "2.50" in out and "0.07" in out

    def test_features_content(self, study, capsys):
        run_artefact("features", study)
        out = capsys.readouterr().out
        assert "Tegra2" in out and "KeyStone-II" in out

    def test_unknown_artefact(self, study):
        with pytest.raises(SystemExit):
            run_artefact("figure99", study)


class TestMain:
    def test_single_artefact(self, capsys):
        assert main(["table2"]) == 0
        assert "vecop" in capsys.readouterr().out

    def test_multiple_deduplicated(self, capsys):
        assert main(["table1", "table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("Table 1: platforms") == 1

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_artefact_list_is_complete(self):
        assert "headline" in ARTEFACTS
        assert "compare" in ARTEFACTS
