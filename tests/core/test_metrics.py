"""Tests for metrics: Table 4 values and the latency-penalty model."""

import pytest

from repro.arch.catalog import get_platform
from repro.core import metrics
from repro.net.link import GBE, INFINIBAND_40G, TEN_GBE


class TestBasicMetrics:
    def test_speedup(self):
        assert metrics.speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            metrics.speedup(0, 1)

    def test_parallel_efficiency(self):
        assert metrics.parallel_efficiency(48.0, 96) == 0.5
        with pytest.raises(ValueError):
            metrics.parallel_efficiency(1.0, 0)

    def test_energy(self):
        assert metrics.energy_to_solution_j(8.0, 3.0) == 24.0
        with pytest.raises(ValueError):
            metrics.energy_to_solution_j(-1, 1)

    def test_mflops_per_watt(self):
        assert metrics.mflops_per_watt(97.0, 808.0) == pytest.approx(120.05, abs=0.01)
        with pytest.raises(ValueError):
            metrics.mflops_per_watt(1.0, 0)


class TestTable4:
    """Network bytes/FLOPS — the published table, to two decimals."""

    PAPER = {
        "Tegra2": (0.06, 0.63, 2.50),
        "Tegra3": (0.02, 0.24, 0.96),
        "Exynos5250": (0.02, 0.18, 0.74),
        "Corei7-2760QM": (0.00, 0.02, 0.07),
    }

    @pytest.mark.parametrize("platform", sorted(PAPER))
    def test_rows_match_paper(self, platform):
        p = get_platform(platform)
        for link, paper in zip(
            (GBE, TEN_GBE, INFINIBAND_40G), self.PAPER[platform]
        ):
            measured = round(metrics.bytes_per_flop(p, link), 2)
            assert measured == pytest.approx(paper, abs=0.011), link.name

    def test_mobile_balance_matches_hpc_box(self):
        """The paper's point: a 1 GbE mobile SoC has a bytes/FLOPS ratio
        close to a Sandy Bridge with InfiniBand."""
        tegra3_gbe = metrics.bytes_per_flop(get_platform("Tegra3"), GBE)
        snb_ib = metrics.bytes_per_flop(
            get_platform("Corei7-2760QM"), INFINIBAND_40G
        )
        assert tegra3_gbe == pytest.approx(snb_ib, rel=1.0)  # same order

    def test_full_table_structure(self):
        table = metrics.bytes_per_flop_table(
            [get_platform("Tegra2"), get_platform("Tegra3")]
        )
        assert set(table) == {"Tegra2", "Tegra3"}
        assert set(table["Tegra2"]) == {"1GbE", "10GbE", "40Gb InfiniBand"}


class TestLatencyPenalty:
    """Section 4.1 / Saravanan et al.: 100 µs -> +90%, 65 µs -> +60% on
    Sandy Bridge; ~50% / ~40% on Arndale-class nodes."""

    def test_snb_anchors(self):
        assert metrics.latency_penalty(100.0) == pytest.approx(0.90, abs=0.02)
        assert metrics.latency_penalty(65.0) == pytest.approx(0.60, abs=0.03)

    def test_arndale_estimates(self):
        assert metrics.latency_penalty(100.0, 0.5) == pytest.approx(
            0.50, abs=0.08
        )
        assert metrics.latency_penalty(65.0, 0.5) == pytest.approx(
            0.40, abs=0.06
        )

    def test_zero_latency_zero_penalty(self):
        assert metrics.latency_penalty(0.0) == 0.0

    def test_monotone_in_latency(self):
        pens = [metrics.latency_penalty(x) for x in (10, 50, 100, 200)]
        assert all(b > a for a, b in zip(pens, pens[1:]))

    def test_slower_cpu_hides_latency(self):
        assert metrics.latency_penalty(100.0, 0.5) < metrics.latency_penalty(
            100.0, 1.0
        )

    def test_penalised_time(self):
        assert metrics.penalised_time(10.0, 100.0) == pytest.approx(
            19.0, abs=0.3
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            metrics.latency_penalty(-1)
        with pytest.raises(ValueError):
            metrics.latency_penalty(1, 0)
        with pytest.raises(ValueError):
            metrics.penalised_time(-1, 10)
