"""The top-level CLI grammar: real subparsers for every command.

Pre-fix the trace/faults/bench tools were dispatched by hand off
``argv[0]``, so ``repro --help`` never mentioned them and their flags
were invisible to the top parser.  These tests pin the new contract:
the tools are listed, ``repro <tool> --help`` reaches the tool's own
parser, and every historical invocation shape keeps working.
"""

import pytest

from repro.cli import build_parser, main


def _help_text(capsys, argv) -> str:
    with pytest.raises(SystemExit) as e:
        main(argv)
    assert e.value.code == 0
    return capsys.readouterr().out


class TestTopLevelHelp:
    def test_lists_every_tool_subcommand(self, capsys):
        out = _help_text(capsys, ["--help"])
        for tool in ("trace", "faults", "bench"):
            assert tool in out, tool
        assert "all" in out

    def test_lists_artefact_subcommands(self, capsys):
        out = _help_text(capsys, ["--help"])
        for name in ("table1", "fig3", "headline", "compare"):
            assert name in out, name

    def test_no_command_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as e:
            main([])
        assert e.value.code == 2


class TestToolDelegation:
    @pytest.mark.parametrize("tool", ["trace", "faults", "bench"])
    def test_tool_help_reaches_the_tool_parser(self, tool, capsys):
        out = _help_text(capsys, [tool, "--help"])
        assert f"repro {tool}" in out  # the tool's own prog line

    def test_tool_tail_passed_verbatim(self, monkeypatch):
        seen = {}

        def fake_bench(argv):
            seen["argv"] = argv
            return 0

        import repro.perf.cli as perf_cli

        monkeypatch.setattr(perf_cli, "bench_main", fake_bench)
        assert main(["bench", "engine", "--quick", "--repeats", "1"]) == 0
        assert seen["argv"] == ["engine", "--quick", "--repeats", "1"]

    def test_unknown_tool_flag_not_swallowed_by_top_parser(self, capsys):
        """Flags argparse has never heard of must reach the tool, not
        die at the top level (the pre-fix dispatch relied on this)."""
        with pytest.raises(SystemExit) as e:
            main(["trace", "--no-such-flag"])
        assert e.value.code == 2
        # the *tool's* parser rejected it, under the tool's prog name
        assert "repro trace" in capsys.readouterr().err


class TestArtefactGrammar:
    def test_single_artefact_still_works(self, capsys):
        assert main(["table2"]) == 0
        assert "vecop" in capsys.readouterr().out

    def test_multiple_artefacts_still_work(self, capsys):
        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_unknown_artefact_rejected(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["figure99"])
        assert e.value.code == 2

    def test_unknown_flag_on_artefact_rejected(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["table1", "--bogus"])
        assert e.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err


class TestAllGrammar:
    def test_all_flags_parse(self):
        parser = build_parser()
        args, extra = parser.parse_known_args(
            ["all", "--quick", "--jobs", "4", "--no-cache"]
        )
        assert not extra
        assert args.command == "all"
        assert args.jobs == 4 and args.quick and args.no_cache

    def test_all_default_cache_dir(self):
        parser = build_parser()
        args = parser.parse_args(["all"])
        assert str(args.cache_dir) == ".repro-cache"
        assert args.jobs == 1
