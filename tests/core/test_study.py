"""Tests for the study orchestrator and the results helpers."""

import pytest

from repro.core.results import Comparison, StudyReport, SweepPoint, render_table
from repro.core.study import MobileSoCStudy


@pytest.fixture(scope="module")
def study():
    return MobileSoCStudy()


class TestFigureData:
    def test_figure1_series(self, study):
        f1 = study.figure1()
        assert set(f1) == {"x86", "risc", "vector"}
        years, counts = f1["x86"]
        assert len(years) == len(counts) == 21

    def test_figure2_gaps(self, study):
        assert 5 <= study.figure2a()["gap_1995"] <= 15
        f2b = study.figure2b()
        assert f2b["gap_2013"] > 5
        assert f2b["crossover_year"] > 2013
        assert f2b["price_ratio"] == pytest.approx(1552 / 21)

    def test_table1_rows(self, study):
        rows = study.table1()
        assert len(rows) == 4
        assert {r["SoC"] for r in rows} == {
            "Tegra2", "Tegra3", "Exynos5250", "Corei7-2760QM"
        }

    def test_table2_rows(self, study):
        assert len(study.table2()) == 11

    def test_figure3_baseline_is_unity(self, study):
        f3 = study.figure3()
        t2_at_1ghz = [p for p in f3["Tegra2"] if p["freq_ghz"] == 1.0][0]
        assert t2_at_1ghz["speedup"] == pytest.approx(1.0)
        assert t2_at_1ghz["energy_norm"] == pytest.approx(1.0, abs=0.02)

    def test_figure3_performance_rises_with_frequency(self, study):
        f3 = study.figure3()
        for plat, pts in f3.items():
            sp = [p["speedup"] for p in pts]
            assert sp == sorted(sp), plat

    def test_figure3_energy_falls_with_frequency(self, study):
        """The paper's headline energy observation."""
        f3 = study.figure3()
        for plat, pts in f3.items():
            e = [p["energy_norm"] for p in pts]
            assert all(b < a for a, b in zip(e, e[1:])), plat

    def test_figure4_multicore_beats_serial(self, study):
        f3 = study.figure3()
        f4 = study.figure4()
        for plat in f3:
            assert f4[plat][-1]["speedup"] > f3[plat][-1]["speedup"]

    def test_figure5_structure(self, study):
        f5 = study.figure5()
        for plat, d in f5.items():
            assert set(d["single"]) == {"Copy", "Scale", "Add", "Triad"}
            assert 0 < d["efficiency_vs_peak"] <= 1

    def test_figure7_configs(self, study):
        f7 = study.figure7()
        assert len(f7) == 6
        for label, d in f7.items():
            assert d["small_message_latency_us"] > 0
            assert max(d["bandwidth_mbs"].values()) <= 125.0

    def test_speedup_vs_baseline_identity(self, study):
        assert study.speedup_vs_baseline("Tegra2", 1.0) == pytest.approx(1.0)

    def test_headline(self, study):
        head = study.headline_hpl()
        assert head["gflops"] == pytest.approx(97.0, rel=0.1)
        assert head["efficiency"] == pytest.approx(0.51, abs=0.05)
        assert head["mflops_per_watt"] == pytest.approx(120.0, rel=0.1)

    def test_armv8_outlook(self, study):
        out = study.armv8_outlook()
        assert out["per_core_per_ghz_ratio"] == pytest.approx(2.0)
        assert out["armv8_peak_gflops"] == pytest.approx(32.0)


class TestResults:
    def test_render_table_alignment(self):
        txt = render_table(["a", "bbbb"], [[1, 2.5], ["xx", 3.14159]])
        lines = txt.splitlines()
        assert len({len(l) for l in lines if l}) == 1  # aligned
        assert "3.14" in txt

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_comparison_ratio_and_within(self):
        c = Comparison("F", "q", 100.0, 104.0)
        assert c.ratio == pytest.approx(1.04)
        assert c.within(0.05)
        assert not c.within(0.03)

    def test_comparison_zero_paper_value(self):
        assert Comparison("F", "q", 0.0, 0.0).ratio == 1.0

    def test_study_report(self):
        r = StudyReport()
        r.add_comparison(Comparison("F", "q", 1.0, 1.1))
        assert "1.10" in r.comparison_table()

    def test_sweep_point(self):
        p = SweepPoint("Tegra2", 1.0, 1, 1.0, 1.0)
        assert p.platform == "Tegra2"


class TestPerKernelBreakdown:
    def test_tegra3_gain_concentrates_in_memory_kernels(self, study):
        """Section 3.1.1: 'Tegra 3 has an improved memory controller
        which brings a performance increase in memory-intensive
        micro-kernels' — the per-kernel view proves the attribution."""
        from repro.kernels.registry import get_kernel
        from repro.timing.executor import SimulatedExecutor

        sp = study.per_kernel_speedups("Tegra3", 1.0)
        ex = SimulatedExecutor(study.platforms["Tegra2"])
        bounds = {
            tag: ex.time_kernel(get_kernel(tag), 1.0).bound for tag in sp
        }
        mem = [s for tag, s in sp.items() if bounds[tag] == "memory"]
        comp = [s for tag, s in sp.items() if bounds[tag] == "compute"]
        assert min(mem) > max(comp)  # every memory kernel gains more
        assert all(abs(s - 1.0) < 0.01 for s in comp)  # same A9 core

    def test_i7_gains_everywhere(self, study):
        sp = study.per_kernel_speedups("Corei7-2760QM", 2.4)
        assert all(s > 1.5 for s in sp.values())
