"""Tests for the SoC/Platform aggregates."""

import pytest

from repro.arch.catalog import get_platform


class TestSoC:
    def test_peak_defaults_to_max_frequency(self, t2):
        assert t2.soc.peak_gflops() == t2.soc.peak_gflops(1.0)

    def test_llc_shared_flags(self, t2, i7):
        assert t2.soc.llc_shared  # shared 1M L2
        assert i7.soc.llc_shared  # shared 6M L3

    def test_last_level_cache_bytes(self, t2, i7):
        assert t2.soc.last_level_cache_bytes() == 1024 * 1024
        assert i7.soc.last_level_cache_bytes() == 6 * 1024 * 1024

    def test_build_cache_hierarchy(self, t2):
        h = t2.soc.build_cache_hierarchy()
        assert [c.config.name for c in h.levels] == ["L1D", "L2"]
        assert h.dram_latency_cycles > 0


class TestL2Bandwidth:
    def test_scales_with_frequency(self, t2):
        assert t2.soc.l2_bandwidth_gbs(1.0) == pytest.approx(
            2 * t2.soc.l2_bandwidth_gbs(0.5)
        )

    def test_shared_l2_saturates(self, t3):
        """The 4-core Tegra 3 shares one L2: aggregate bandwidth must cap
        below 4x the single-core figure."""
        one = t3.soc.l2_bandwidth_gbs(1.0, 1)
        four = t3.soc.l2_bandwidth_gbs(1.0, 4)
        assert 1.0 < four / one <= 2.5

    def test_private_l2_scales_linearly(self, i7):
        one = i7.soc.l2_bandwidth_gbs(1.0, 1)
        four = i7.soc.l2_bandwidth_gbs(1.0, 4)
        assert four / one == pytest.approx(4.0)

    def test_validates_inputs(self, t2):
        with pytest.raises(ValueError):
            t2.soc.l2_bandwidth_gbs(0.0, 1)
        with pytest.raises(ValueError):
            t2.soc.l2_bandwidth_gbs(1.0, 99)


class TestGPUExclusion:
    def test_tegra_gpus_not_programmable(self, t2, t3):
        """Section 3: ULP GeForce is graphics-only."""
        assert not t2.soc.gpu.programmable
        assert not t3.soc.gpu.programmable

    def test_mali_programmable_but_unusable(self, exynos):
        """Mali-T604 supports OpenCL but had no optimised driver."""
        gpu = exynos.soc.gpu
        assert gpu.programmable
        assert gpu.api == "OpenCL"
        assert not gpu.usable_for_compute

    def test_no_platform_contributes_gpu_compute(self, platforms):
        """The evaluation excludes every GPU (Section 3 / Table 4)."""
        for p in platforms.values():
            assert p.soc.gpu is None or not p.soc.gpu.usable_for_compute


class TestValidation:
    def test_subzero_cores_rejected(self, t2):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(t2.soc, n_cores=0)
