"""Tests for the functional cache simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.cache import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    estimate_miss_ratio,
    strided_trace,
)


def small_cache(size=1024, line=64, assoc=2, latency=2):
    return Cache(CacheConfig("L1", size, line, assoc, latency))


class TestCacheConfig:
    def test_n_sets(self):
        cfg = CacheConfig("L1", 32 * 1024, 64, 4, 4)
        assert cfg.n_sets == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0, line_bytes=64, associativity=2),
            dict(size_bytes=1024, line_bytes=48, associativity=2),
            dict(size_bytes=1024, line_bytes=64, associativity=0),
            dict(size_bytes=1000, line_bytes=64, associativity=2),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CacheConfig("bad", latency_cycles=1, **kwargs)


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(32) is True  # same 64 B line

    def test_different_lines_miss(self):
        c = small_cache()
        c.access(0)
        assert c.access(64) is False

    def test_lru_eviction_order(self):
        # 2-way cache: three lines mapping to the same set evict the LRU.
        c = small_cache(size=256, line=64, assoc=2)  # 2 sets
        set_stride = 2 * 64  # same-set stride
        a, b, d = 0, set_stride, 2 * set_stride
        c.access(a)
        c.access(b)
        c.access(a)  # a is now MRU
        c.access(d)  # evicts b (LRU)
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)

    def test_writeback_only_for_dirty_victims(self):
        c = small_cache(size=256, line=64, assoc=2)
        stride = 128
        c.access(0, write=True)
        c.access(stride)
        c.access(2 * stride)  # evicts the dirty line 0
        assert c.writebacks == 1
        c.access(3 * stride)  # evicts clean line `stride`
        assert c.writebacks == 1

    def test_flush_counts_dirty_lines(self):
        c = small_cache()
        c.access(0, write=True)
        c.access(64, write=True)
        c.access(128)
        assert c.flush() == 2
        assert c.resident_lines == 0

    def test_miss_ratio(self):
        c = small_cache()
        for _ in range(2):
            for addr in range(0, 512, 64):
                c.access(addr)
        assert c.miss_ratio == pytest.approx(0.5)

    def test_reset_stats_keeps_contents(self):
        c = small_cache()
        c.access(0)
        c.reset_stats()
        assert c.accesses == 0
        assert c.contains(0)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_resident_lines_never_exceed_capacity(self, addrs):
        c = small_cache(size=512, line=64, assoc=2)
        for a in addrs:
            c.access(a)
        assert c.resident_lines <= 512 // 64
        assert c.hits + c.misses == len(addrs)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_fitting_working_set_fully_hits_second_pass(self, n_lines):
        c = small_cache(size=1024, line=64, assoc=16)
        addrs = [i * 64 for i in range(n_lines)]
        for a in addrs:
            c.access(a)
        c.reset_stats()
        for a in addrs:
            assert c.access(a) is True


class TestCacheHierarchy:
    def levels(self):
        return [
            CacheConfig("L1", 1024, 64, 2, 2),
            CacheConfig("L2", 8192, 64, 4, 10, shared=True),
        ]

    def test_first_hit_level_reported(self):
        h = CacheHierarchy(self.levels(), dram_latency_cycles=100)
        assert h.access(0) == "DRAM"
        assert h.access(0) == "L1"

    def test_l2_catches_l1_capacity_victims(self):
        h = CacheHierarchy(self.levels(), dram_latency_cycles=100)
        addrs = [i * 64 for i in range(32)]  # 2 KiB: exceeds L1, fits L2
        for a in addrs:
            h.access(a)
        levels = {h.access(a) for a in addrs}
        assert "DRAM" not in levels
        assert "L2" in levels

    def test_amat_between_l1_and_dram(self):
        h = CacheHierarchy(self.levels(), dram_latency_cycles=100)
        for _ in range(4):
            for a in range(0, 1024, 64):
                h.access(a)
        amat = h.amat()
        assert 2 <= amat <= 112

    def test_amat_empty_is_l1_latency(self):
        h = CacheHierarchy(self.levels(), dram_latency_cycles=100)
        assert h.amat() == 2

    def test_run_trace_and_stats(self):
        h = CacheHierarchy(self.levels(), dram_latency_cycles=100)
        stats = h.run_trace(strided_trace(64, 64))
        l1_hits, l1_misses = stats.per_level["L1"]
        assert l1_hits + l1_misses == 64
        assert stats.dram_accesses > 0

    def test_reset(self):
        h = CacheHierarchy(self.levels(), dram_latency_cycles=100)
        h.access(0)
        h.reset()
        assert h.dram_accesses == 0
        assert h.access(0) == "DRAM"

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([], 100)


class TestMissRatioEstimator:
    def test_fitting_footprint_mostly_hits(self):
        levels = [CacheConfig("L1", 4096, 64, 4, 2)]
        r = estimate_miss_ratio(levels, footprint_bytes=2048, stride_bytes=64)
        assert r <= 0.5  # second pass hits everywhere

    def test_oversized_footprint_mostly_misses(self):
        levels = [CacheConfig("L1", 1024, 64, 2, 2)]
        r = estimate_miss_ratio(
            levels, footprint_bytes=1 << 16, stride_bytes=64
        )
        assert r > 0.9

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            estimate_miss_ratio(
                [CacheConfig("L1", 1024, 64, 2, 2)], 1024, 0
            )
