"""Tests for the memory-system model."""

import pytest

from repro.arch.dram import MemorySystem


def mem(**over):
    base = dict(
        channels=1,
        width_bits=32,
        freq_mhz=333.0,
        peak_bandwidth_gbs=2.6,
        latency_ns=150.0,
        stream_efficiency=0.62,
    )
    base.update(over)
    return MemorySystem(**base)


class TestPeaks:
    def test_theoretical_peak_tegra2(self):
        # 1 channel x 4 B x 2 (DDR) x 333 MHz = 2.66 GB/s (Table 1: 2.6).
        assert mem().theoretical_peak_gbs() == pytest.approx(2.664, rel=1e-3)

    def test_theoretical_peak_matches_table_within_10pct(self, platforms):
        for p in platforms.values():
            m = p.soc.memory
            assert m.theoretical_peak_gbs() == pytest.approx(
                m.peak_bandwidth_gbs, rel=0.11
            )

    def test_sustained_is_efficiency_fraction(self):
        m = mem()
        assert m.sustained_bandwidth_gbs() == pytest.approx(2.6 * 0.62)


class TestConcurrencyLimit:
    def test_littles_law(self):
        m = mem()
        # 2 outstanding 64 B lines / 150 ns.
        assert m.per_core_bandwidth_gbs(2.0) == pytest.approx(
            2 * 64 / 150.0
        )

    def test_single_core_below_sustained(self):
        m = mem()
        assert m.effective_bandwidth_gbs(1, 2.8) < m.sustained_bandwidth_gbs()

    def test_many_cores_saturate(self):
        m = mem()
        assert m.effective_bandwidth_gbs(64, 2.8) == pytest.approx(
            m.sustained_bandwidth_gbs()
        )

    def test_bandwidth_monotonic_in_cores(self):
        m = mem()
        bws = [m.effective_bandwidth_gbs(c, 2.8) for c in range(1, 8)]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))

    def test_exynos_advantage_over_tegra(self, t2, exynos):
        """Section 3.2: ~4.5x bandwidth improvement (multicore STREAM)."""
        bw_t2 = t2.soc.memory.effective_bandwidth_gbs(2, t2.soc.core.mlp)
        bw_ex = exynos.soc.memory.effective_bandwidth_gbs(
            2, exynos.soc.core.mlp
        )
        assert 3.5 <= bw_ex / bw_t2 <= 5.0


class TestLatency:
    def test_latency_in_cycles_scales_with_frequency(self):
        m = mem()
        assert m.dram_latency_cycles(2.0) == 2 * m.dram_latency_cycles(1.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            mem().dram_latency_cycles(0)


class TestValidation:
    @pytest.mark.parametrize(
        "over",
        [
            dict(channels=0),
            dict(width_bits=0),
            dict(stream_efficiency=0.0),
            dict(stream_efficiency=1.2),
            dict(latency_ns=0),
        ],
    )
    def test_invalid_configs(self, over):
        with pytest.raises(ValueError):
            mem(**over)

    def test_mlp_must_be_positive(self):
        with pytest.raises(ValueError):
            mem().per_core_bandwidth_gbs(0)

    def test_cores_must_be_positive(self):
        with pytest.raises(ValueError):
            mem().effective_bandwidth_gbs(0, 2.0)

    def test_no_ecc_on_mobile_parts(self, platforms):
        """Section 6.3: no mobile memory controller supports ECC."""
        for p in platforms.values():
            assert p.soc.memory.ecc is False
