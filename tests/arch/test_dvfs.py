"""Tests for DVFS tables and governors."""

import pytest

from repro.arch.dvfs import (
    DVFSTable,
    Governor,
    GovernorPolicy,
    OperatingPoint,
)


def table():
    return DVFSTable(
        [
            OperatingPoint(1.0, 1.1),
            OperatingPoint(0.456, 0.825),
            OperatingPoint(0.76, 0.925),
        ]
    )


class TestDVFSTable:
    def test_sorted_by_frequency(self):
        t = table()
        assert t.frequencies() == [0.456, 0.76, 1.0]
        assert t.fmin == 0.456
        assert t.fmax == 1.0

    def test_voltage_at_picks_lowest_sufficient_point(self):
        t = table()
        assert t.voltage_at(0.5) == pytest.approx(0.925)
        assert t.voltage_at(1.0) == pytest.approx(1.1)

    def test_voltage_at_rejects_overclock(self):
        with pytest.raises(ValueError):
            table().voltage_at(1.5)

    def test_nearest(self):
        assert table().nearest(0.8).freq_ghz == pytest.approx(0.76)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            DVFSTable([])

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ValueError):
            DVFSTable([OperatingPoint(1.0, 1.0), OperatingPoint(1.0, 1.1)])

    def test_operating_point_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(1.0, -0.1)


class TestGovernor:
    def test_performance_always_max(self):
        """The paper's HPC tuning: default DVFS policy = performance."""
        g = Governor(table(), GovernorPolicy.PERFORMANCE)
        assert g.current.freq_ghz == 1.0
        g.step(0.0)
        assert g.current.freq_ghz == 1.0

    def test_powersave_always_min(self):
        g = Governor(table(), GovernorPolicy.POWERSAVE)
        g.step(1.0)
        assert g.current.freq_ghz == pytest.approx(0.456)

    def test_ondemand_ramps_up_under_load(self):
        g = Governor(table(), GovernorPolicy.ONDEMAND)
        g.step(0.95)
        assert g.current.freq_ghz == 1.0

    def test_ondemand_steps_down_when_idle(self):
        g = Governor(table(), GovernorPolicy.ONDEMAND)
        g.step(0.95)
        g.step(0.1)
        assert g.current.freq_ghz < 1.0

    def test_pin_for_atlas_autotuning(self):
        """Section 5: ATLAS required the frequency pinned to maximum."""
        g = Governor(table(), GovernorPolicy.ONDEMAND)
        g.pin(1.0)
        assert g.current.freq_ghz == 1.0
        with pytest.raises(ValueError):
            g.pin(0.9)  # not an operating point

    def test_utilisation_validated(self):
        g = Governor(table())
        with pytest.raises(ValueError):
            g.step(1.5)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            Governor(table(), up_threshold=0.0)


class TestPlatformTables:
    def test_max_frequencies_match_table1(self, platforms):
        expected = {
            "Tegra2": 1.0,
            "Tegra3": 1.3,
            "Exynos5250": 1.7,
            "Corei7-2760QM": 2.4,
        }
        for name, plat in platforms.items():
            assert plat.soc.dvfs.fmax == pytest.approx(expected[name])

    def test_all_tables_have_a_sweep(self, platforms):
        for plat in platforms.values():
            assert len(plat.soc.dvfs.frequencies()) >= 4
