"""Tests for the HPC-readiness analysis and the Section 2 comparators."""

import pytest

from repro.arch.catalog import PLATFORMS, get_platform
from repro.arch.features import (
    Feature,
    assess,
    gap_report,
    readiness_matrix,
)
from repro.arch.servers import (
    SERVER_PLATFORMS,
    atom_s1260,
    calxeda_ecx1000,
    keystone2,
    nehalem_node,
    xgene,
)


class TestMobileSoCGaps:
    """Section 6.3: the limitations that keep mobile SoCs out of
    production HPC."""

    @pytest.mark.parametrize("name", ["Tegra2", "Tegra3", "Exynos5250"])
    def test_mobile_socs_miss_everything(self, name):
        a = assess(get_platform(name))
        assert not a.ready
        assert Feature.ECC_MEMORY in a.missing
        assert Feature.FAST_INTERCONNECT_IO in a.missing
        assert Feature.ADDRESS_64BIT in a.missing
        assert Feature.SERVER_THERMAL_PACKAGE in a.missing

    def test_tegra_scores_zero(self):
        assert assess(get_platform("Tegra2")).readiness_score == 0.0

    def test_gap_report_lists_each_missing_feature(self):
        report = gap_report(get_platform("Tegra2"))
        assert len(report) == len(Feature)
        assert any("ECC" in line for line in report)

    def test_thermal_override(self):
        """Adding a heatsink fixes exactly one checklist item."""
        base = assess(get_platform("Tegra2"))
        cooled = assess(get_platform("Tegra2"), thermal_ok=True)
        assert Feature.SERVER_THERMAL_PACKAGE in cooled.supported
        assert len(cooled.missing) == len(base.missing) - 1


class TestServerComparators:
    def test_registry_contents(self):
        assert set(SERVER_PLATFORMS) == {
            "EnergyCore-ECX1000",
            "X-Gene",
            "Atom-S1260",
            "KeyStone-II",
            "Xeon-X5570",
        }

    def test_server_socs_have_ecc(self):
        """The very feature Section 6.3 says mobile parts lack."""
        for p in SERVER_PLATFORMS.values():
            assert p.soc.memory.ecc, p.name

    def test_server_socs_beat_mobile_on_readiness(self):
        mobile_best = max(
            assess(p).readiness_score
            for n, p in PLATFORMS.items()
            if n != "Corei7-2760QM"
        )
        for p in SERVER_PLATFORMS.values():
            assert assess(p).readiness_score > mobile_best, p.name

    def test_keystone_has_protocol_offload(self):
        """Section 4.1: 'TI's KeyStone II already implement protocol
        accelerators'."""
        a = assess(keystone2())
        assert Feature.PROTOCOL_OFFLOAD in a.supported
        for other in (calxeda_ecx1000(), xgene(), atom_s1260()):
            assert Feature.PROTOCOL_OFFLOAD in assess(other).missing

    def test_xgene_is_64bit(self):
        """Section 2: X-Gene is a server-class ARMv8 (64-bit) SoC."""
        a = assess(xgene())
        assert Feature.ADDRESS_64BIT in a.supported
        assert Feature.ADDRESS_64BIT in assess(calxeda_ecx1000()).missing

    def test_calxeda_10gbe(self):
        assert calxeda_ecx1000().board.ethernet_interfaces == ("10GbE",) * 5

    def test_atom_price_point(self):
        """Footnote 5: $64 list."""
        assert atom_s1260().unit_price_usd == 64.0

    def test_nehalem_is_a_server_node(self):
        p = nehalem_node()
        assert p.peak_gflops() == pytest.approx(46.9, rel=0.02)
        assert p.soc.memory.ecc

    def test_matrix_structure(self):
        matrix = readiness_matrix(
            [get_platform("Tegra2"), keystone2()]
        )
        assert set(matrix) == {"Tegra2", "KeyStone-II"}
        for row in matrix.values():
            assert len(row) == len(Feature)


class TestServerPlatformModels:
    """The comparators must work through the whole stack, not just the
    feature checklist."""

    def test_kernels_time_on_every_server_platform(self):
        from repro.kernels.registry import get_kernel
        from repro.timing.executor import SimulatedExecutor

        k = get_kernel("dmmm")
        for p in SERVER_PLATFORMS.values():
            run = SimulatedExecutor(p).time_kernel(k, 1.0)
            assert run.time_s > 0, p.name

    def test_xgene_outruns_exynos(self):
        """ARMv8 FP64 NEON + more cores: the server SoC wins."""
        from repro.kernels.registry import get_kernel
        from repro.timing.executor import SimulatedExecutor

        k = get_kernel("dmmm")
        ex = SimulatedExecutor(get_platform("Exynos5250")).time_kernel(k, 1.7)
        xg = SimulatedExecutor(xgene()).time_kernel(k, 2.4)
        assert xg.time_s < ex.time_s

    def test_protocol_stacks_build_for_server_cores(self):
        from repro.net.protocol import TCP_IP, ProtocolStack

        for p in SERVER_PLATFORMS.values():
            s = ProtocolStack(TCP_IP, core_name=p.soc.core.name)
            assert s.small_message_latency_us() > 0
