"""Tests for ISA descriptors and instruction mixes."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.arch.isa import (
    ARMV7,
    ARMV8,
    X86_64,
    FLOPS_PER_OP,
    InstructionMix,
    OpClass,
)


class TestISADescriptors:
    def test_armv7_is_32_bit(self):
        assert ARMV7.address_bits == 32
        assert ARMV7.max_process_memory_bytes == 4 * 2**30

    def test_armv7_lpae_physical_space(self):
        # Cortex-A15 LPAE: 40-bit physical addressing (Section 6.3).
        assert ARMV7.physical_address_bits == 40
        assert ARMV7.max_physical_memory_bytes == 2**40

    def test_armv8_expands_address_space(self):
        assert ARMV8.address_bits > ARMV7.address_bits

    def test_armv7_has_no_fp64_simd(self):
        assert ARMV7.simd_fp64_lanes == 0

    def test_armv8_makes_fp64_simd_compulsory(self):
        assert ARMV8.simd_fp64_lanes == 2
        assert not ARMV8.fp64_optional

    def test_x86_avx_is_four_wide(self):
        assert X86_64.simd_fp64_lanes == 4

    def test_softfp_penalty_only_on_softfp_default_abis(self):
        assert ARMV7.softfp_call_penalty() > 1.0
        assert ARMV8.softfp_call_penalty() == 1.0
        assert X86_64.softfp_call_penalty() == 1.0


class TestInstructionMix:
    def test_total_and_flops(self):
        mix = InstructionMix(
            {OpClass.FP_FMA: 10, OpClass.LOAD: 20, OpClass.FP_ADD: 5}
        )
        assert mix.total() == 35
        assert mix.flops() == 2 * 10 + 5

    def test_fma_counts_two_flops(self):
        assert FLOPS_PER_OP[OpClass.FP_FMA] == 2.0

    def test_empty_mix(self):
        mix = InstructionMix({})
        assert mix.total() == 0
        assert mix.flops() == 0
        assert mix.fraction(OpClass.LOAD) == 0.0
        assert mix.normalised().total() == 0

    def test_fraction(self):
        mix = InstructionMix({OpClass.LOAD: 3, OpClass.STORE: 1})
        assert mix.fraction(OpClass.LOAD) == pytest.approx(0.75)

    def test_normalised_sums_to_one(self):
        mix = InstructionMix({OpClass.LOAD: 3, OpClass.FP_MUL: 9})
        assert sum(mix.normalised().counts.values()) == pytest.approx(1.0)

    def test_scaled(self):
        mix = InstructionMix({OpClass.LOAD: 4}).scaled(2.5)
        assert mix.counts[OpClass.LOAD] == 10

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            InstructionMix({OpClass.LOAD: 1}).scaled(-1)

    def test_merged(self):
        a = InstructionMix({OpClass.LOAD: 1, OpClass.FP_ADD: 2})
        b = InstructionMix({OpClass.LOAD: 3, OpClass.BRANCH: 1})
        m = a.merged(b)
        assert m.counts[OpClass.LOAD] == 4
        assert m.counts[OpClass.FP_ADD] == 2
        assert m.counts[OpClass.BRANCH] == 1

    def test_memory_ops(self):
        mix = InstructionMix({OpClass.LOAD: 5, OpClass.STORE: 3})
        assert mix.memory_ops() == 8

    def test_arithmetic_intensity(self):
        mix = InstructionMix({OpClass.FP_FMA: 8, OpClass.LOAD: 2})
        # 16 FLOPs over 16 bytes.
        assert mix.arithmetic_intensity() == pytest.approx(1.0)

    def test_intensity_infinite_without_memory(self):
        mix = InstructionMix({OpClass.FP_ADD: 5})
        assert math.isinf(mix.arithmetic_intensity())

    @given(
        st.dictionaries(
            st.sampled_from(list(OpClass)),
            st.floats(min_value=0, max_value=1e9),
            max_size=len(OpClass),
        )
    )
    def test_normalised_is_idempotent(self, counts):
        mix = InstructionMix(counts)
        n1 = mix.normalised()
        n2 = n1.normalised()
        for op in n1.counts:
            assert n1.counts[op] == pytest.approx(
                n2.counts.get(op, 0.0), abs=1e-12
            )

    @given(st.floats(min_value=0.1, max_value=100.0))
    def test_scaling_preserves_fractions(self, factor):
        mix = InstructionMix({OpClass.LOAD: 2, OpClass.FP_ADD: 6})
        scaled = mix.scaled(factor)
        assert scaled.fraction(OpClass.LOAD) == pytest.approx(
            mix.fraction(OpClass.LOAD)
        )
