"""Tests pinning the catalog to Table 1 of the paper."""

import pytest

from repro.arch.catalog import (
    ATOM_S1260_PRICE_USD,
    TEGRA3_VOLUME_PRICE_USD,
    XEON_E5_2670_PRICE_USD,
    armv8_projection,
    get_platform,
)


class TestTable1Peaks:
    """Peak FP64 GFLOPS must equal the Table 1 row exactly."""

    @pytest.mark.parametrize(
        "name,peak",
        [
            ("Tegra2", 2.0),
            ("Tegra3", 5.2),
            ("Exynos5250", 6.8),
            ("Corei7-2760QM", 76.8),
        ],
    )
    def test_peak_gflops(self, name, peak):
        assert get_platform(name).peak_gflops() == pytest.approx(peak)

    @pytest.mark.parametrize(
        "name,cores,threads",
        [
            ("Tegra2", 2, 2),
            ("Tegra3", 4, 4),
            ("Exynos5250", 2, 2),
            ("Corei7-2760QM", 4, 8),
        ],
    )
    def test_cores_and_threads(self, name, cores, threads):
        soc = get_platform(name).soc
        assert soc.n_cores == cores
        assert soc.n_threads == threads

    @pytest.mark.parametrize(
        "name,channels,width,freq,peak_bw",
        [
            ("Tegra2", 1, 32, 333, 2.6),
            ("Tegra3", 1, 32, 750, 5.86),
            ("Exynos5250", 2, 32, 800, 12.8),
            ("Corei7-2760QM", 2, 64, 800, 25.6),
        ],
    )
    def test_memory_rows(self, name, channels, width, freq, peak_bw):
        m = get_platform(name).soc.memory
        assert m.channels == channels
        assert m.width_bits == width
        assert m.freq_mhz == freq
        assert m.peak_bandwidth_gbs == pytest.approx(peak_bw)

    def test_cache_hierarchies(self):
        """Table 1: ARM SoCs 32K L1 / 1M shared L2; i7 has private 256K
        L2 and a 6M shared L3."""
        for name in ("Tegra2", "Tegra3", "Exynos5250"):
            levels = get_platform(name).soc.cache_levels
            assert len(levels) == 2
            assert levels[0].size_bytes == 32 * 1024
            assert levels[1].size_bytes == 1024 * 1024
            assert levels[1].shared
        i7 = get_platform("Corei7-2760QM").soc.cache_levels
        assert len(i7) == 3
        assert i7[1].size_bytes == 256 * 1024 and not i7[1].shared
        assert i7[2].size_bytes == 6 * 1024 * 1024 and i7[2].shared


class TestBoards:
    def test_nic_attachments(self):
        """Section 4.1: SECO boards attach the NIC via PCIe, the Arndale
        via USB 3.0 — the root of the Exynos latency disadvantage."""
        assert get_platform("Tegra2").board.nic_attachment == "pcie"
        assert get_platform("Tegra3").board.nic_attachment == "pcie"
        assert get_platform("Exynos5250").board.nic_attachment == "usb3"

    def test_arndale_only_has_100mbit(self):
        assert get_platform("Exynos5250").board.ethernet_interfaces == (
            "100Mb",
        )

    def test_no_heatsinks_on_dev_kits(self):
        """Section 6.1: no cooling infrastructure on developer kits."""
        for name in ("Tegra2", "Tegra3", "Exynos5250"):
            assert not get_platform(name).board.has_heatsink

    def test_dev_kits_boot_from_nfs(self):
        for name in ("Tegra2", "Tegra3", "Exynos5250"):
            assert get_platform(name).board.root_filesystem == "nfs"
        assert get_platform("Corei7-2760QM").board.root_filesystem == "disk"

    def test_dram_sizes(self):
        gib = 2**30
        assert get_platform("Tegra2").board.dram_bytes == 1 * gib
        assert get_platform("Corei7-2760QM").board.dram_bytes == 8 * gib


class TestEconomics:
    def test_price_points(self):
        """Section 1 footnote 5."""
        assert XEON_E5_2670_PRICE_USD == 1552.0
        assert TEGRA3_VOLUME_PRICE_USD == 21.0
        assert ATOM_S1260_PRICE_USD == 64.0

    def test_tegra3_carries_its_price(self):
        assert get_platform("Tegra3").unit_price_usd == 21.0


class TestProjection:
    def test_armv8_projection_peak(self):
        """Figure 2b: 4-core ARMv8 @ 2 GHz = 32 GFLOPS."""
        assert armv8_projection().peak_gflops() == pytest.approx(32.0)

    def test_projection_reachable_by_name(self):
        assert get_platform("armv8").peak_gflops() == pytest.approx(32.0)


class TestLookup:
    def test_case_insensitive(self):
        assert get_platform("tegra2").name == "Tegra2"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_platform("Snapdragon")

    def test_describe_has_table1_fields(self):
        d = get_platform("Tegra2").describe()
        for key in (
            "Architecture",
            "FP-64 GFLOPS",
            "Peak bandwidth (GB/s)",
            "Developer kit",
        ):
            assert key in d
