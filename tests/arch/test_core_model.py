"""Tests for the per-core pipeline model."""

import pytest

from repro.arch.core_model import (
    cortex_a9,
    cortex_a15,
    cortex_a15_armv8,
    sandy_bridge,
)
from repro.arch.isa import InstructionMix, OpClass


class TestPeakThroughput:
    def test_a9_one_fma_every_two_cycles(self):
        assert cortex_a9().fp64_flops_per_cycle == 1.0

    def test_a15_pipelined_fma(self):
        assert cortex_a15().fp64_flops_per_cycle == 2.0

    def test_sandy_bridge_avx(self):
        assert sandy_bridge().fp64_flops_per_cycle == 8.0

    def test_armv8_doubles_a15(self):
        """Section 3.1.2: same micro-architecture, ARMv8 FP64 NEON."""
        assert (
            cortex_a15_armv8().fp64_flops_per_cycle
            == 2 * cortex_a15().fp64_flops_per_cycle
        )

    def test_peak_gflops_scales_with_frequency(self):
        c = cortex_a15()
        assert c.peak_gflops(1.7) == pytest.approx(3.4)

    def test_peak_rejects_nonpositive_freq(self):
        with pytest.raises(ValueError):
            cortex_a9().peak_gflops(0.0)


class TestMicroarchitectureOrdering:
    def test_mlp_ordering(self):
        """Cortex-A15 sustains more outstanding misses than A9 (the
        paper's stated reason for the STREAM gap); SNB more still."""
        assert cortex_a9().mlp < cortex_a15().mlp < sandy_bridge().mlp

    def test_ilp_efficiency_ordering(self):
        assert (
            cortex_a9().ilp_efficiency()
            < cortex_a15().ilp_efficiency()
            <= sandy_bridge().ilp_efficiency()
        )

    def test_ilp_efficiency_bounded(self):
        for core in (cortex_a9(), cortex_a15(), sandy_bridge()):
            assert 0 < core.ilp_efficiency() <= 1.0

    def test_smt_only_on_i7(self):
        assert sandy_bridge().smt_threads == 2
        assert cortex_a9().smt_threads == 1


class TestIssueModel:
    def test_empty_mix_is_free(self):
        assert cortex_a9().issue_cycles(InstructionMix({})) == 0.0

    def test_issue_bound(self):
        # 100 integer ops on a 2-wide machine: at least 50 cycles.
        mix = InstructionMix({OpClass.INT_ALU: 100})
        assert cortex_a9().issue_cycles(mix) == pytest.approx(50.0)

    def test_fp_bound_dominates_for_fma_streams(self):
        mix = InstructionMix({OpClass.FP_FMA: 100})
        # A9: 200 FLOPs at 1 FLOP/cycle = 200 cycles > 50 issue cycles.
        assert cortex_a9().issue_cycles(mix) == pytest.approx(200.0)

    def test_divides_serialise(self):
        mix = InstructionMix({OpClass.FP_DIV: 10})
        base = InstructionMix({OpClass.FP_ADD: 10})
        assert cortex_a9().issue_cycles(mix) > cortex_a9().issue_cycles(base)

    def test_wider_machine_issues_faster(self):
        mix = InstructionMix({OpClass.INT_ALU: 120, OpClass.LOAD: 60})
        assert sandy_bridge().issue_cycles(mix) < cortex_a9().issue_cycles(mix)

    def test_dependent_fma_latency_bound(self):
        c = cortex_a9()
        assert c.dependent_fma_gflops(1.0) == pytest.approx(2.0 / 8.0)
        assert c.dependent_fma_gflops(1.0) < c.peak_gflops(1.0)
