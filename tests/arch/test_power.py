"""Tests for the platform power model."""

import pytest

from repro.arch.power import PowerModel


def model(**over):
    base = dict(
        board_watts=6.2,
        soc_static_watts=0.8,
        core_active_watts=1.0,
        nominal_freq_ghz=1.0,
        vmin=0.825,
        vmax=1.10,
        fmin_ghz=0.456,
        fmax_ghz=1.0,
    )
    base.update(over)
    return PowerModel(**base)


class TestVoltageCurve:
    def test_endpoints(self):
        m = model()
        assert m.voltage(0.456) == pytest.approx(0.825)
        assert m.voltage(1.0) == pytest.approx(1.10)

    def test_clamped_outside_range(self):
        m = model()
        assert m.voltage(0.1) == pytest.approx(0.825)
        assert m.voltage(5.0) == pytest.approx(1.10)

    def test_monotonic(self):
        m = model()
        vs = [m.voltage(f) for f in (0.5, 0.6, 0.8, 1.0)]
        assert vs == sorted(vs)

    def test_flat_table(self):
        m = model(fmin_ghz=1.0, fmax_ghz=1.0, vmin=1.0, vmax=1.0)
        assert m.voltage(1.0) == 1.0


class TestCorePower:
    def test_nominal_point(self):
        assert model().core_power(1.0) == pytest.approx(1.0)

    def test_superlinear_in_frequency(self):
        """f * V(f)^2 scaling: doubling frequency more than doubles
        power when voltage rises with it."""
        m = model()
        assert m.core_power(1.0) > 2 * m.core_power(0.5) * 0.9
        ratio = m.core_power(1.0) / m.core_power(0.456)
        assert ratio > 1.0 / 0.456  # superlinear

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            model().core_power(0)


class TestPlatformPower:
    def test_board_dominates_at_one_core(self):
        """Section 3.1.2: 'the SoC is not the main power sink'."""
        m = model()
        total = m.platform_power(1.0, 1, 2)
        assert m.board_watts / total > 0.5

    def test_more_cores_more_power(self):
        m = model()
        assert m.platform_power(1.0, 2, 2) > m.platform_power(1.0, 1, 2)

    def test_idle_below_active(self):
        m = model()
        assert m.idle_power(1.0, 2) < m.platform_power(1.0, 2, 2)

    def test_memory_utilisation_term(self):
        m = model(mem_dynamic_watts=2.0)
        p0 = m.platform_power(1.0, 1, 2, mem_bw_utilisation=0.0)
        p1 = m.platform_power(1.0, 1, 2, mem_bw_utilisation=1.0)
        assert p1 - p0 == pytest.approx(2.0)

    def test_active_cores_validated(self):
        with pytest.raises(ValueError):
            model().platform_power(1.0, 3, 2)
        with pytest.raises(ValueError):
            model().platform_power(1.0, -1, 2)

    def test_utilisation_validated(self):
        with pytest.raises(ValueError):
            model().platform_power(1.0, 1, 2, mem_bw_utilisation=1.5)


class TestEnergyEfficiencyShape:
    def test_energy_per_work_improves_with_frequency(self):
        """The paper's key observation: raising frequency improves whole-
        platform energy efficiency because board power dominates.
        Energy per unit work ~ P(f) / f must decrease with f."""
        m = model()
        e = [
            m.platform_power(f, 1, 2) / f
            for f in (0.456, 0.608, 0.760, 0.912, 1.0)
        ]
        assert all(b < a for a, b in zip(e, e[1:]))


class TestValidation:
    @pytest.mark.parametrize(
        "over",
        [
            dict(fmin_ghz=0),
            dict(fmax_ghz=0.4),  # below fmin
            dict(vmax=0.5),  # below vmin
            dict(board_watts=-1),
        ],
    )
    def test_invalid_models(self, over):
        with pytest.raises(ValueError):
            model(**over)
