"""Tests for cluster nodes and the Tibidabo builder."""

import pytest

from repro.cluster.cluster import Cluster, build_cluster, tibidabo
from repro.cluster.node import ClusterNode
from repro.net.protocol import OPEN_MX, TCP_IP


class TestClusterNode:
    def node(self, t2):
        return ClusterNode(0, t2, 1.0)

    def test_peak_gflops(self, t2):
        assert self.node(t2).peak_gflops() == pytest.approx(2.0)

    def test_achieved_below_peak(self, t2):
        n = self.node(t2)
        for wl in ("dgemm", "stencil", "particle", "spectral"):
            assert 0 < n.achieved_gflops(wl) < n.peak_gflops()

    def test_dgemm_best_achieved(self, t2):
        """ATLAS DGEMM is the best-optimised phase."""
        n = self.node(t2)
        assert n.achieved_gflops("dgemm") == max(
            n.achieved_gflops(w)
            for w in ("dgemm", "stencil", "particle", "spectral")
        )

    def test_unknown_workload(self, t2):
        with pytest.raises(KeyError):
            self.node(t2).achieved_gflops("raytracing")

    def test_usable_memory_reserves_for_os(self, t2):
        n = self.node(t2)
        assert n.usable_memory_bytes() < n.memory_bytes
        assert n.usable_memory_bytes(0.0) == n.memory_bytes

    def test_nic_from_board(self, t2, exynos):
        assert ClusterNode(0, t2, 1.0).nic.name == "PCIe"
        assert ClusterNode(0, exynos, 1.0).nic.name == "USB3.0"

    def test_validation(self, t2):
        with pytest.raises(ValueError):
            ClusterNode(-1, t2, 1.0)
        with pytest.raises(ValueError):
            ClusterNode(0, t2, 0.0)
        with pytest.raises(ValueError):
            ClusterNode(0, t2, 1.0, ranks_per_node=3)


class TestTibidabo:
    def test_full_cluster(self):
        c = tibidabo()
        assert c.n_nodes == 192
        assert c.peak_gflops() == pytest.approx(384.0)
        assert c.topology.n_leaves == 4

    def test_nodes_are_tegra2_at_1ghz(self):
        c = tibidabo(4)
        for node in c.nodes:
            assert node.platform.name == "Tegra2"
            assert node.freq_ghz == 1.0

    def test_open_mx_option(self):
        assert tibidabo(4, open_mx=True).protocol is OPEN_MX
        assert tibidabo(4).protocol is TCP_IP

    def test_size_cap(self):
        with pytest.raises(ValueError):
            tibidabo(200)
        with pytest.raises(ValueError):
            tibidabo(0)

    def test_subcluster(self):
        c = tibidabo(96)
        sub = c.subcluster(16)
        assert sub.n_nodes == 16
        assert sub.topology.n_nodes == 16
        with pytest.raises(ValueError):
            c.subcluster(97)


class TestClusterNetwork:
    def test_cross_leaf_slower_than_intra(self):
        net = tibidabo(96).network()
        near = net.transfer_time_s(0, 1, 1024)
        far = net.transfer_time_s(0, 50, 1024)
        assert far > near

    def test_self_transfer_is_cheap(self):
        net = tibidabo(4).network()
        assert net.transfer_time_s(2, 2, 1 << 20) < 1e-6

    def test_contention_penalises_cross_leaf_only(self):
        base = tibidabo(96).network(contention_factor=1.0)
        cont = tibidabo(96).network(contention_factor=3.0)
        nbytes = 1 << 20
        assert cont.transfer_time_s(0, 50, nbytes) > base.transfer_time_s(
            0, 50, nbytes
        )
        assert cont.transfer_time_s(0, 1, nbytes) == pytest.approx(
            base.transfer_time_s(0, 1, nbytes)
        )

    def test_contention_validated(self):
        with pytest.raises(ValueError):
            tibidabo(4).network(contention_factor=0.5)

    def test_make_world_rank_speeds(self):
        c = tibidabo(4)
        w = c.make_world(workload="dgemm")
        assert w.rank_gflops(0) == pytest.approx(
            c.nodes[0].achieved_gflops("dgemm")
        )

    def test_make_world_validates(self):
        with pytest.raises(ValueError):
            tibidabo(4).make_world(n_ranks=5)


class TestGenericBuilder:
    def test_exynos_cluster(self):
        c = build_cluster("arndale-wall", 8, platform="Exynos5250")
        assert c.nodes[0].platform.name == "Exynos5250"
        assert c.nodes[0].freq_ghz == pytest.approx(1.7)

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            Cluster("empty", [], None)


class TestDegradedCluster:
    def test_boot_failures_shrink_the_machine(self):
        from repro.cluster.cluster import degraded_tibidabo
        from repro.cluster.reliability import PCIeFaultInjector

        inj = PCIeFaultInjector(p_boot_failure=0.05, seed=11)
        cluster, lost = degraded_tibidabo(96, injector=inj)
        assert cluster.n_nodes + lost == 96
        assert lost > 0

    def test_healthy_injector_keeps_everything(self):
        from repro.cluster.cluster import degraded_tibidabo
        from repro.cluster.reliability import PCIeFaultInjector

        inj = PCIeFaultInjector(p_boot_failure=0.0, seed=0)
        cluster, lost = degraded_tibidabo(48, injector=inj)
        assert (cluster.n_nodes, lost) == (48, 0)

    def test_hpl_still_runs_degraded(self):
        from repro.apps.hpl import HPL
        from repro.cluster.cluster import degraded_tibidabo
        from repro.cluster.reliability import PCIeFaultInjector

        inj = PCIeFaultInjector(p_boot_failure=0.04, seed=5)
        cluster, lost = degraded_tibidabo(32, injector=inj)
        run = HPL().simulate(cluster, cluster.n_nodes)
        assert run.gflops > 0
        # Losing nodes costs roughly proportional throughput.
        full = HPL().simulate(degraded_tibidabo(32, injector=PCIeFaultInjector(0.0))[0], 32)
        assert run.gflops <= full.gflops
