"""Tests for cluster power (Green500) and the NFS model."""

import pytest

from repro.cluster.cluster import tibidabo
from repro.cluster.nfs import NFSModel
from repro.cluster.power import GREEN500_REFERENCES, ClusterPowerModel
from repro.net.link import FAST_ETHERNET, GBE


class TestClusterPower:
    def test_headline_green500_number(self, cluster96):
        """Section 4: 97 GFLOPS at 120 MFLOPS/W."""
        pm = ClusterPowerModel()
        assert pm.mflops_per_watt(cluster96, 97.0) == pytest.approx(
            120.0, rel=0.08
        )

    def test_node_power_plausible(self, cluster96):
        """A Q7 module under load draws single-digit watts."""
        pm = ClusterPowerModel()
        assert 4.0 <= pm.node_power_watts(cluster96) <= 10.0

    def test_switch_count(self):
        pm = ClusterPowerModel()
        assert pm.n_switches(tibidabo(8)) == 1  # one leaf, no core
        assert pm.n_switches(tibidabo(96)) == 3  # two leaves + core
        assert pm.n_switches(tibidabo(192)) == 5

    def test_power_grows_with_nodes(self):
        pm = ClusterPowerModel()
        assert pm.total_power_watts(tibidabo(96)) > pm.total_power_watts(
            tibidabo(48)
        )

    def test_psu_losses_increase_wall_power(self, cluster96):
        lossy = ClusterPowerModel(psu_efficiency=0.85)
        ideal = ClusterPowerModel(psu_efficiency=1.0)
        assert lossy.total_power_watts(cluster96) > ideal.total_power_watts(
            cluster96
        )

    def test_gaps_to_green500_leaders(self, cluster96):
        """'nineteen times lower than BlueGene/Q, almost 27 times lower
        than the number one GPU-accelerated system'."""
        pm = ClusterPowerModel()
        measured = pm.mflops_per_watt(cluster96, 97.0)
        assert pm.gap_to("BlueGene/Q (best homogeneous)", measured) == (
            pytest.approx(19.0, rel=0.15)
        )
        assert pm.gap_to("Eurotech Eurora (K20 GPU, #1)", measured) == (
            pytest.approx(27.0, rel=0.15)
        )

    def test_reference_table_present(self):
        assert "Tibidabo (paper)" in GREEN500_REFERENCES

    def test_validation(self, cluster96):
        with pytest.raises(ValueError):
            ClusterPowerModel(psu_efficiency=0)
        with pytest.raises(ValueError):
            ClusterPowerModel().mflops_per_watt(cluster96, -1)
        with pytest.raises(ValueError):
            ClusterPowerModel().node_power_watts(cluster96, active_cores=9)


class TestNFS:
    def test_client_link_caps_throughput(self):
        """Section 6.2: NFS rides the 100 Mbit interface."""
        nfs = NFSModel()
        assert nfs.per_client_mbs(1) == pytest.approx(
            FAST_ETHERNET.payload_bandwidth_mbs
        )

    def test_server_fair_share_at_scale(self):
        nfs = NFSModel()
        assert nfs.per_client_mbs(96) < nfs.per_client_mbs(8)

    def test_large_parallel_phase_times_out(self):
        """The Section 6.2 failure: parallel I/O from many nodes trips
        the RPC deadline."""
        nfs = NFSModel()
        assert nfs.times_out(96, 100e6)
        assert not nfs.times_out(2, 1e6)

    def test_serialisation_mitigates_timeouts(self):
        """The paper's fix: serialise the parallel I/O.  Each client's
        individual transfer then fits the deadline (throughput is full
        client-link speed rather than a starved fair share)."""
        nfs = NFSModel()
        per_client_serial = nfs.serialized_phase_time_s(96, 100e6) / 96
        assert per_client_serial < nfs.rpc_timeout_s
        assert nfs.parallel_phase_time_s(96, 100e6) > nfs.rpc_timeout_s

    def test_max_parallel_clients_monotone_in_volume(self):
        nfs = NFSModel()
        assert nfs.max_parallel_clients(10e6) >= nfs.max_parallel_clients(
            100e6
        )

    def test_max_clients_limits_node_count(self):
        """'in some cases this limited the maximum number of nodes'."""
        nfs = NFSModel()
        assert nfs.max_parallel_clients(100e6) < 96

    def test_gbe_server_helps(self):
        slow = NFSModel(server_link=FAST_ETHERNET)
        fast = NFSModel(server_link=GBE)
        assert fast.per_client_mbs(48) > slow.per_client_mbs(48)

    def test_validation(self):
        nfs = NFSModel()
        with pytest.raises(ValueError):
            nfs.per_client_mbs(0)
        with pytest.raises(ValueError):
            nfs.parallel_phase_time_s(4, -1)
        with pytest.raises(ValueError):
            NFSModel(rpc_timeout_s=0)
