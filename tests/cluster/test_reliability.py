"""Tests for the Section 6 reliability models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.reliability import (
    DramErrorModel,
    PCIeFaultInjector,
    ThermalModel,
)


class TestDramErrors:
    def test_paper_headline_thirty_percent(self):
        """Section 6.3: 1,500 nodes x 2 DIMMs -> ~30% daily error
        probability (using the low end of the 4-20% study range)."""
        m = DramErrorModel(annual_dimm_error_rate=0.045)
        p = m.system_daily_error_probability(1500, 2)
        assert p == pytest.approx(0.30, abs=0.04)

    def test_range_of_study(self):
        low = DramErrorModel(0.04).system_daily_error_probability(1500, 2)
        high = DramErrorModel(0.20).system_daily_error_probability(1500, 2)
        assert low < high
        assert 0.2 < low < 0.4
        assert high > 0.8

    def test_daily_probability_consistent_with_annual(self):
        m = DramErrorModel(0.08)
        p_day = m.daily_dimm_error_probability()
        assert 1 - (1 - p_day) ** 365 == pytest.approx(0.08, rel=1e-9)

    def test_mean_days_between_errors(self):
        m = DramErrorModel(0.045)
        assert m.mean_days_between_errors(1500, 2) == pytest.approx(
            1 / m.system_daily_error_probability(1500, 2)
        )

    def test_ecc_absorbs_errors(self):
        m = DramErrorModel(0.10)
        assert m.job_failure_probability(100, 24.0, ecc=True) == 0.0
        assert m.job_failure_probability(100, 24.0, ecc=False) > 0.0

    def test_failure_grows_with_scale_and_duration(self):
        m = DramErrorModel(0.10)
        assert m.job_failure_probability(200, 24.0) > (
            m.job_failure_probability(100, 24.0)
        )
        assert m.job_failure_probability(100, 48.0) > (
            m.job_failure_probability(100, 24.0)
        )

    @given(st.floats(min_value=0.01, max_value=0.5),
           st.integers(min_value=1, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_probabilities_stay_in_unit_interval(self, annual, nodes):
        m = DramErrorModel(annual)
        assert 0 < m.system_daily_error_probability(nodes) < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DramErrorModel(0.0)
        with pytest.raises(ValueError):
            DramErrorModel(0.1).system_daily_error_probability(0)
        with pytest.raises(ValueError):
            DramErrorModel(0.1).job_failure_probability(10, 0)


class TestThermal:
    def test_fanless_board_overheats_at_load(self):
        """Section 6.1: sustained max-frequency load destabilises the
        heatsink-less boards (Tegra 2 under load: ~5-8 W)."""
        tm = ThermalModel()
        assert tm.becomes_unstable(6.0)
        assert math.isfinite(tm.time_to_instability_s(6.0))

    def test_idle_board_is_safe(self):
        tm = ThermalModel()
        assert not tm.becomes_unstable(2.0)
        assert tm.time_to_instability_s(2.0) == math.inf

    def test_temperature_monotone_in_time_and_power(self):
        tm = ThermalModel()
        assert tm.temperature_c(6.0, 60) < tm.temperature_c(6.0, 600)
        assert tm.temperature_c(4.0, 300) < tm.temperature_c(8.0, 300)

    def test_approaches_steady_state(self):
        tm = ThermalModel()
        assert tm.temperature_c(6.0, 1e6) == pytest.approx(
            tm.steady_state_c(6.0), rel=1e-6
        )

    def test_time_to_instability_decreasing_in_power(self):
        tm = ThermalModel()
        assert tm.time_to_instability_s(8.0) < tm.time_to_instability_s(6.0)

    def test_max_sustainable_power(self):
        """The thermal budget a production package must honour."""
        tm = ThermalModel()
        p = tm.max_sustainable_power_w()
        assert not tm.becomes_unstable(p * 0.999)
        assert tm.becomes_unstable(p * 1.001)

    def test_heatsink_raises_budget(self):
        bare = ThermalModel(r_c_per_w=14.0)
        sinked = ThermalModel(r_c_per_w=4.0)
        assert (
            sinked.max_sustainable_power_w() > bare.max_sustainable_power_w()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(r_c_per_w=0)
        with pytest.raises(ValueError):
            ThermalModel(t_unstable=20.0, t_ambient=30.0)
        with pytest.raises(ValueError):
            ThermalModel().temperature_c(-1.0, 10)


class TestPCIeFaults:
    def test_deterministic_given_seed(self):
        a = PCIeFaultInjector(seed=7).boot_nodes(100)
        b = PCIeFaultInjector(seed=7).boot_nodes(100)
        assert (a == b).all()

    def test_some_boot_failures_at_scale(self):
        """Section 6.1: 'sometimes the PCIe interface failed to
        initialize during boot'."""
        inj = PCIeFaultInjector(p_boot_failure=0.02, seed=0)
        ok = inj.boot_nodes(1000)
        assert 0 < (~ok).sum() < 100

    def test_analytic_survival(self):
        inj = PCIeFaultInjector(mtbf_hours_under_load=200.0)
        assert inj.expected_job_survival(1, 200.0) == pytest.approx(
            math.exp(-1)
        )
        assert inj.expected_job_survival(192, 24.0) < 0.0001e5  # < 1

    def test_survival_decreases_with_scale(self):
        inj = PCIeFaultInjector()
        assert inj.expected_job_survival(192, 10.0) < (
            inj.expected_job_survival(16, 10.0)
        )

    def test_empirical_matches_analytic_roughly(self):
        inj = PCIeFaultInjector(mtbf_hours_under_load=50.0, seed=3)
        survived = sum(
            inj.job_survives(8, 2.0) for _ in range(300)
        )
        expected = PCIeFaultInjector(
            mtbf_hours_under_load=50.0
        ).expected_job_survival(8, 2.0)
        assert survived / 300 == pytest.approx(expected, abs=0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            PCIeFaultInjector(p_boot_failure=1.0)
        with pytest.raises(ValueError):
            PCIeFaultInjector(mtbf_hours_under_load=0)
        with pytest.raises(ValueError):
            PCIeFaultInjector().boot_nodes(0)
        with pytest.raises(ValueError):
            PCIeFaultInjector().job_survives(4, 0)


class TestRngStreamIndependence:
    """Boot-failure and hang-time draws come from independently spawned
    SeedSequence streams: consuming one class of faults must not shift
    the other (the fault-plan generator relies on this)."""

    def test_boot_draws_do_not_perturb_hang_times(self):
        clean = PCIeFaultInjector(seed=11).hang_times_s(64)
        mixed = PCIeFaultInjector(seed=11)
        mixed.boot_nodes(500)  # interleave draws from the boot stream
        mixed.boot_nodes(500)
        np.testing.assert_array_equal(mixed.hang_times_s(64), clean)

    def test_hang_draws_do_not_perturb_boot_outcomes(self):
        clean = PCIeFaultInjector(p_boot_failure=0.05, seed=11).boot_nodes(500)
        mixed = PCIeFaultInjector(p_boot_failure=0.05, seed=11)
        mixed.hang_times_s(64)
        assert (mixed.boot_nodes(500) == clean).all()

    def test_survival_statistic_unbiased_after_stream_split(self):
        """job_survives (hang stream) must still track the analytic
        expectation over many independently seeded injectors."""
        expected = PCIeFaultInjector(
            mtbf_hours_under_load=50.0
        ).expected_job_survival(8, 2.0)
        survived = sum(
            PCIeFaultInjector(
                mtbf_hours_under_load=50.0, seed=s
            ).job_survives(8, 2.0)
            for s in range(400)
        )
        assert survived / 400 == pytest.approx(expected, abs=0.07)
