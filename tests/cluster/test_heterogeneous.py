"""Tests for the heterogeneous-cluster study ([25]'s proposal)."""

import pytest

from repro.arch.catalog import get_platform
from repro.arch.servers import nehalem_node
from repro.cluster.heterogeneous import (
    HeterogeneousCluster,
    NodeGroup,
    best_mix_under_power_cap,
)


def tegra_group(count=32):
    return NodeGroup(get_platform("Tegra2"), count, 1.0, node_watts=6.3)


def xeon_group(count=2):
    return NodeGroup(nehalem_node(), count, 2.93, node_watts=330.0)


@pytest.fixture
def mixed():
    return HeterogeneousCluster([tegra_group(32), xeon_group(2)])


class TestPartitioning:
    def test_static_partition_gated_by_slow_nodes(self, mixed):
        """[25]'s homogeneity problem: an unweighted split of work loses
        most of the fast nodes' capacity."""
        eff = mixed.static_efficiency()
        assert eff < 0.5

    def test_weighted_partition_recovers_aggregate(self, mixed):
        flops = 1e12
        t = mixed.weighted_partition_time_s(flops)
        assert t == pytest.approx(
            flops / (mixed.total_gflops() * 1e9)
        )
        assert t < mixed.static_partition_time_s(flops)

    def test_homogeneous_cluster_has_no_static_penalty(self):
        homo = HeterogeneousCluster([tegra_group(16)])
        assert homo.static_efficiency() == pytest.approx(1.0)

    def test_counts(self, mixed):
        assert mixed.n_nodes == 34
        assert mixed.total_watts() == pytest.approx(32 * 6.3 + 2 * 330.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousCluster([])
        with pytest.raises(ValueError):
            NodeGroup(get_platform("Tegra2"), 0, 1.0, 6.3)
        with pytest.raises(KeyError):
            tegra_group().group_gflops("unknown-workload")


class TestPowerCapMix:
    def test_arm_nodes_win_under_tight_caps(self):
        """Per-watt the Tegra nodes are better (the paper's premise), so
        a throughput-maximising mix under a power cap is ARM-heavy."""
        best = best_mix_under_power_cap(
            fast=xeon_group(1), slow=tegra_group(1), power_cap_w=700.0
        )
        assert best["n_slow"] > best["n_fast"] * 10

    def test_per_watt_ordering(self):
        arm = HeterogeneousCluster([tegra_group(16)])
        x86 = HeterogeneousCluster([xeon_group(2)])
        assert arm.gflops_per_watt() > x86.gflops_per_watt()

    def test_cap_respected(self):
        cap = 1000.0
        best = best_mix_under_power_cap(
            xeon_group(1), tegra_group(1), power_cap_w=cap
        )
        used = best["n_fast"] * 330.0 + best["n_slow"] * 6.3
        assert used <= cap

    def test_validation(self):
        with pytest.raises(ValueError):
            best_mix_under_power_cap(
                xeon_group(1), tegra_group(1), power_cap_w=0
            )
        with pytest.raises(ValueError):
            HeterogeneousCluster([tegra_group()]).static_partition_time_s(0)
