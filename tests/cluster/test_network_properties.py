"""Property-based invariants of the cluster network model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import tibidabo


@pytest.fixture(scope="module")
def net96():
    return tibidabo(96).network()


@given(
    src=st.integers(0, 95),
    dst=st.integers(0, 95),
    nbytes=st.integers(0, 1 << 22),
)
@settings(max_examples=80, deadline=None)
def test_transfer_time_positive_and_symmetric(src, dst, nbytes):
    net = tibidabo(96).network()
    t_ab = net.transfer_time_s(src, dst, nbytes)
    t_ba = net.transfer_time_s(dst, src, nbytes)
    assert t_ab > 0
    # Homogeneous nodes: the path cost is symmetric.
    assert t_ab == pytest.approx(t_ba, rel=1e-12)


@given(
    src=st.integers(0, 95),
    dst=st.integers(0, 95),
    a=st.integers(0, 1 << 20),
    b=st.integers(0, 1 << 20),
)
@settings(max_examples=60, deadline=None)
def test_transfer_time_monotone_in_size(src, dst, a, b):
    net = tibidabo(96).network()
    small, big = sorted((a, b))
    assert net.transfer_time_s(src, dst, small) <= (
        net.transfer_time_s(src, dst, big) + 1e-15
    )


@given(
    intra=st.integers(1, 47),
    inter=st.integers(48, 95),
    nbytes=st.integers(0, 1 << 16),
)
@settings(max_examples=60, deadline=None)
def test_cross_leaf_never_cheaper(intra, inter, nbytes):
    net = tibidabo(96).network()
    assert net.transfer_time_s(0, inter, nbytes) >= net.transfer_time_s(
        0, intra, nbytes
    )


@given(nodes=st.integers(1, 96))
@settings(max_examples=30, deadline=None)
def test_subclusters_are_self_consistent(nodes):
    c = tibidabo(96).subcluster(nodes)
    assert c.n_nodes == nodes
    assert c.topology.n_nodes == nodes
    assert c.peak_gflops() == pytest.approx(2.0 * nodes)
