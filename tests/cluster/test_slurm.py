"""Tests for the SLURM-like scheduler, including property-based
no-oversubscription checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.slurm import Job, SlurmScheduler


def schedule(n_nodes, specs):
    s = SlurmScheduler(n_nodes)
    for name, nodes, dur, sub in specs:
        s.submit(Job(name, nodes, dur, submit_s=sub))
    return s, s.schedule()


class TestBasicScheduling:
    def test_single_job_starts_at_submit(self):
        _, jobs = schedule(4, [("a", 2, 10.0, 5.0)])
        assert jobs[0].start_s == 5.0
        assert jobs[0].end_s == 15.0
        assert jobs[0].wait_s == 0.0

    def test_fifo_for_conflicting_jobs(self):
        _, jobs = schedule(4, [("a", 4, 10.0, 0.0), ("b", 4, 5.0, 0.0)])
        assert jobs[0].start_s == 0.0
        assert jobs[1].start_s == 10.0

    def test_parallel_when_capacity_allows(self):
        _, jobs = schedule(8, [("a", 4, 10.0, 0.0), ("b", 4, 10.0, 0.0)])
        assert jobs[0].start_s == jobs[1].start_s == 0.0

    def test_backfill_small_job(self):
        """A small job slips into the gap without delaying the queue."""
        s, jobs = schedule(
            8,
            [
                ("big", 8, 100.0, 0.0),
                ("wide", 8, 50.0, 0.0),
                ("tiny", 2, 10.0, 0.0),
            ],
        )
        by_name = {j.name: j for j in jobs}
        assert by_name["wide"].start_s == 100.0
        # tiny cannot fit alongside big (8 nodes busy), so it backfills
        # after... in this schedule every node is busy until 150.
        assert by_name["tiny"].start_s >= 100.0

    def test_backfill_uses_idle_nodes(self):
        s, jobs = schedule(
            8,
            [
                ("half", 4, 100.0, 0.0),
                ("wide", 8, 50.0, 0.0),
                ("tiny", 4, 10.0, 0.0),
            ],
        )
        by_name = {j.name: j for j in jobs}
        # 4 nodes are idle while `half` runs; tiny fits there and ends
        # before `wide`'s reserved start at t=100.
        assert by_name["tiny"].start_s == 0.0
        assert by_name["wide"].start_s == 100.0

    def test_oversized_job_rejected(self):
        s = SlurmScheduler(4)
        with pytest.raises(ValueError):
            s.submit(Job("huge", 8, 10.0))

    def test_job_validation(self):
        with pytest.raises(ValueError):
            Job("bad", 0, 10.0)
        with pytest.raises(ValueError):
            Job("bad", 1, 0.0)
        with pytest.raises(ValueError):
            Job("bad", 1, 1.0, submit_s=-1)
        with pytest.raises(ValueError):
            SlurmScheduler(0)


class TestMetrics:
    def test_makespan(self):
        s, _ = schedule(4, [("a", 4, 10.0, 0.0), ("b", 4, 5.0, 0.0)])
        assert s.makespan_s() == 15.0

    def test_utilisation_bounds(self):
        s, _ = schedule(
            8, [("a", 4, 10.0, 0.0), ("b", 8, 5.0, 0.0), ("c", 1, 2.0, 3.0)]
        )
        assert 0.0 < s.utilisation() <= 1.0

    def test_empty_scheduler(self):
        s = SlurmScheduler(4)
        assert s.makespan_s() == 0.0
        assert s.utilisation() == 0.0


class TestDrain:
    def test_validation(self):
        s = SlurmScheduler(4)
        with pytest.raises(ValueError):
            s.drain(-1.0, 1)
        with pytest.raises(ValueError):
            s.drain(0.0, 0)
        with pytest.raises(ValueError):
            s.drain(0.0, 4)  # cannot drain the whole pool

    def test_drain_requeues_displaced_and_future_jobs(self):
        s, _ = schedule(
            8,
            [
                ("a", 3, 10.0, 0.0),
                ("b", 3, 10.0, 0.0),
                ("c", 3, 10.0, 0.0),
            ],
        )
        by_name = {j.name: j for j in s.scheduled}
        assert by_name["a"].start_s == by_name["b"].start_s == 0.0
        assert by_name["c"].start_s == 10.0
        requeued, dropped = s.drain(5.0, 4)
        assert s.n_nodes == 4
        assert dropped == []
        # a (oldest) keeps running; b is displaced, c loses its future
        # reservation — both requeued from the drain time.
        assert [j.name for j in s.scheduled] == ["a"]
        assert sorted(j.name for j in requeued) == ["b", "c"]
        for j in requeued:
            assert j.start_s is None
            assert j.submit_s == pytest.approx(5.0)
        jobs = s.schedule()
        by_name = {j.name: j for j in jobs}
        # b restarts after a frees the pool; c follows FIFO behind b.
        assert by_name["b"].start_s == 10.0
        assert by_name["c"].start_s == 20.0

    def test_finished_jobs_untouched(self):
        s, _ = schedule(4, [("done", 4, 2.0, 0.0), ("late", 2, 5.0, 3.0)])
        requeued, dropped = s.drain(2.5, 2)
        assert [j.name for j in s.scheduled] == ["done"]
        assert s.scheduled[0].start_s == 0.0  # history untouched
        assert [j.name for j in requeued] == ["late"]
        assert dropped == []

    def test_too_wide_jobs_dropped(self):
        s, _ = schedule(8, [("wide", 6, 10.0, 0.0), ("slim", 2, 10.0, 0.0)])
        requeued, dropped = s.drain(1.0, 5)
        assert [j.name for j in dropped] == ["wide"]
        assert [j.name for j in requeued] == []
        assert [j.name for j in s.scheduled] == ["slim"]

    def test_post_drain_schedule_fits_shrunken_pool(self):
        s, _ = schedule(
            8,
            [("a", 4, 10.0, 0.0), ("b", 4, 10.0, 0.0), ("c", 8, 5.0, 0.0)],
        )
        requeued, dropped = s.drain(3.0, 4)
        assert [j.name for j in dropped] == ["c"]
        jobs = s.schedule()
        for t in sorted({j.start_s for j in jobs}):
            used = sum(j.n_nodes for j in jobs if j.start_s <= t < j.end_s)
            assert used <= 8  # original pool bound trivially holds
            if t >= 3.0:
                assert used <= s.n_nodes  # shrunken bound after the drain

class TestEarliestStartFallback:
    def test_fallback_returns_last_horizon_point(self):
        """When no horizon point fits (pool shrunk below the job width),
        the conservative fallback is the last known boundary."""
        s, _ = schedule(8, [("a", 6, 10.0, 0.0)])
        s.n_nodes = 4  # shrink under the scheduled job
        start = s._earliest_start(Job("w", 6, 5.0), not_before=0.0)
        assert start == 10.0  # max(horizon): after everything known

    def test_fallback_empty_horizon(self):
        s = SlurmScheduler(2)
        s.n_nodes = 1
        start = s._earliest_start(Job("w", 2, 5.0), not_before=7.0)
        assert start == 7.0  # nothing scheduled: not_before itself


@st.composite
def job_specs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return [
        (
            f"j{i}",
            draw(st.integers(min_value=1, max_value=8)),
            draw(st.floats(min_value=0.5, max_value=50.0)),
            draw(st.floats(min_value=0.0, max_value=20.0)),
        )
        for i in range(n)
    ]


class TestInvariants:
    @given(job_specs())
    @settings(max_examples=60, deadline=None)
    def test_never_oversubscribed_and_never_early(self, specs):
        s, jobs = schedule(8, specs)
        # No job starts before submission.
        for j in jobs:
            assert j.start_s >= j.submit_s
        # At every start boundary, concurrent usage fits the cluster.
        for t in sorted({j.start_s for j in jobs}):
            used = sum(
                j.n_nodes for j in jobs if j.start_s <= t < j.end_s
            )
            assert used <= 8

    @given(job_specs())
    @settings(max_examples=30, deadline=None)
    def test_all_jobs_scheduled_exactly_once(self, specs):
        s, jobs = schedule(8, specs)
        assert len(jobs) == len(specs)
        assert all(j.start_s is not None for j in jobs)

    @given(job_specs(), st.floats(min_value=0.0, max_value=60.0))
    @settings(max_examples=40, deadline=None)
    def test_drain_invariants(self, specs, t):
        s, _ = schedule(8, specs)
        requeued, dropped = s.drain(t, 4)
        jobs = s.schedule()
        requeued_names = {r.name for r in requeued}
        # Requeued jobs never restart before the drain instant.
        for j in jobs:
            if j.name in requeued_names:
                assert j.start_s >= t
        # No boundary at/after the drain oversubscribes the survivors.
        for b in sorted({j.start_s for j in jobs} | {t}):
            if b < t:
                continue
            used = sum(j.n_nodes for j in jobs if j.start_s <= b < j.end_s)
            assert used <= s.n_nodes
        # Every submitted job is either rescheduled or dropped.
        assert len(jobs) + len(dropped) == len(specs)
