"""Figure 6 shape tests: the strong/weak scalability of the five
applications on Tibidabo."""

import pytest

from repro.apps import APPLICATIONS, ScalingStudy
from repro.apps.base import AppRunResult


@pytest.fixture(scope="module")
def speedups(cluster96):
    out = {}
    for name, app in APPLICATIONS.items():
        counts = tuple(
            n
            for n in (1, 2, 4, 8, 16, 24, 32, 48, 64, 96)
            if n >= app.min_nodes(cluster96)
        )
        out[name] = ScalingStudy(
            app, cluster96, node_counts=counts
        ).run().speedups()
    return out


class TestMinimumNodeCounts:
    def test_pepc_needs_24_nodes(self, cluster96):
        """Section 4: 'PEPC with the reference input set requires at
        least 24 nodes'."""
        assert APPLICATIONS["PEPC"].min_nodes(cluster96) == 24

    def test_gromacs_fits_two_nodes(self, cluster96):
        """'GROMACS was executed using an input that fits in the memory
        of two nodes'."""
        assert APPLICATIONS["GROMACS"].min_nodes(cluster96) == 2

    def test_specfem_fits_one_node(self, cluster96):
        """'an input set that fits in the memory of a single node'."""
        assert APPLICATIONS["SPECFEM3D"].min_nodes(cluster96) == 1

    def test_hydro_fits_one_node(self, cluster96):
        assert APPLICATIONS["HYDRO"].min_nodes(cluster96) == 1


class TestFigure6Shapes:
    def test_anchor_convention(self, speedups):
        """The smallest runnable count is defined as linear (the
        paper's convention for PEPC's 24-node anchor)."""
        assert speedups["PEPC"][24] == pytest.approx(24.0)
        assert speedups["GROMACS"][2] == pytest.approx(2.0)

    def test_speedups_monotone(self, speedups):
        for name, sp in speedups.items():
            vals = [sp[n] for n in sorted(sp)]
            assert all(b >= a * 0.98 for a, b in zip(vals, vals[1:])), name

    def test_no_superlinear_speedup(self, speedups):
        for name, sp in speedups.items():
            for n, s in sp.items():
                assert s <= n * 1.05, (name, n, s)

    def test_specfem_scales_best(self, speedups):
        """'SPECFEM3D shows good strong scaling'."""
        assert speedups["SPECFEM3D"][96] / 96 >= 0.85

    def test_hydro_loses_linearity_after_16(self, speedups):
        """'HYDRO starts losing linear strong scalability after 16'."""
        sp = speedups["HYDRO"]
        assert sp[16] / 16 >= 0.85  # near-linear up to 16
        assert sp[96] / 96 <= 0.70  # clearly bent by 96

    def test_pepc_scales_poorly(self, speedups):
        """'PEPC also shows relatively poor strong scalability'."""
        sp = speedups["PEPC"]
        eff_96 = sp[96] / (96 / 24 * 24)
        assert eff_96 <= 0.75

    def test_strong_scaling_ordering_at_96(self, speedups):
        """SPECFEM3D best; HYDRO and PEPC clearly worse."""
        eff = {
            name: sp[96] / 96
            for name, sp in speedups.items()
            if 96 in sp and name != "HPL"
        }
        assert eff["SPECFEM3D"] == max(eff.values())
        assert eff["HYDRO"] < eff["SPECFEM3D"]

    def test_hpl_weak_scaling_is_good(self, speedups):
        """'Tibidabo shows good weak scaling on HPL'."""
        sp = speedups["HPL"]
        assert sp[96] / 96 >= 0.5

    def test_gromacs_improves_with_input_size(self, cluster96):
        """'its scalability improves as the input size is increased'."""
        app = APPLICATIONS["GROMACS"]
        small = app.simulate(cluster96, 96)
        big = app.simulate(cluster96, 96, n_atoms=4.0e6)
        base_small = app.simulate(cluster96, 8)
        base_big = app.simulate(cluster96, 8, n_atoms=4.0e6)
        eff_small = base_small.time_s / small.time_s * 8 / 96
        eff_big = base_big.time_s / big.time_s * 8 / 96
        assert eff_big > eff_small


class TestAppRunResults:
    def test_gflops_and_steps(self, cluster96):
        r = APPLICATIONS["HYDRO"].simulate(cluster96, 4)
        assert r.gflops > 0
        assert r.time_per_step_s == pytest.approx(r.time_s / r.steps)
        assert 0 <= r.comm_fraction < 1

    def test_comm_fraction_grows_with_ranks(self, cluster96):
        app = APPLICATIONS["HYDRO"]
        assert (
            app.simulate(cluster96, 96).comm_fraction
            > app.simulate(cluster96, 4).comm_fraction
        )

    def test_study_rejects_unrunnable_everything(self, cluster96):
        study = ScalingStudy(
            APPLICATIONS["PEPC"], cluster96, node_counts=(4, 8)
        )
        with pytest.raises(RuntimeError):
            study.run()

    def test_study_rejects_oversized_counts(self, cluster96):
        study = ScalingStudy(
            APPLICATIONS["HYDRO"], cluster96, node_counts=(128,)
        )
        with pytest.raises(ValueError):
            study.run()

    def test_table3_registry(self):
        assert set(APPLICATIONS) == {
            "HPL", "PEPC", "HYDRO", "GROMACS", "SPECFEM3D"
        }
