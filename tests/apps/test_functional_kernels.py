"""Functional physics kernels inside the applications."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.gromacs import lennard_jones, velocity_verlet
from repro.apps.hydro import hydro_step


class TestHydroStep:
    def setup_state(self, n=16, seed=0):
        rng = np.random.default_rng(seed)
        rho = rng.random((n, n)) + 0.5
        vel = rng.standard_normal((n, n, 2)) * 0.1
        return rho, vel

    def test_mass_conservation(self):
        rho, vel = self.setup_state()
        out, _ = hydro_step(rho, vel, dt=0.05)
        assert out.sum() == pytest.approx(rho.sum())

    def test_uniform_flow_translates(self):
        n = 8
        rho = np.zeros((n, n))
        rho[2, 2] = 1.0
        vel = np.zeros((n, n, 2))
        vel[..., 0] = 1.0
        out, _ = hydro_step(rho, vel, dt=1.0)
        assert out[3, 2] == pytest.approx(1.0)
        assert out[2, 2] == pytest.approx(0.0)

    def test_zero_velocity_is_identity(self):
        rho, _ = self.setup_state()
        out, _ = hydro_step(rho, np.zeros(rho.shape + (2,)), dt=0.1)
        np.testing.assert_allclose(out, rho)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_positivity_under_cfl(self, seed):
        rho, vel = self.setup_state(seed=seed)
        out, _ = hydro_step(rho, vel, dt=0.1)  # CFL ~ 0.1 * |v| << 1
        assert (out > 0).all()

    def test_validation(self):
        rho, vel = self.setup_state()
        with pytest.raises(ValueError):
            hydro_step(rho, vel, dt=0)
        with pytest.raises(ValueError):
            hydro_step(rho, vel[..., :1], dt=0.1)


class TestLennardJones:
    def grid_positions(self, n=8):
        # Slightly perturbed lattice: avoids singular overlaps.
        rng = np.random.default_rng(0)
        side = int(np.ceil(n ** (1 / 3)))
        pts = []
        for i in range(side):
            for j in range(side):
                for k in range(side):
                    pts.append([i * 1.5, j * 1.5, k * 1.5])
        pos = np.array(pts[:n], dtype=float)
        return pos + rng.standard_normal(pos.shape) * 0.01

    def test_forces_sum_to_zero(self):
        _, forces = lennard_jones(self.grid_positions(12))
        np.testing.assert_allclose(
            forces.sum(axis=0), np.zeros(3), atol=1e-10
        )

    def test_equilibrium_distance(self):
        """The LJ minimum sits at r = 2^(1/6) sigma: force vanishes."""
        r0 = 2 ** (1 / 6)
        pos = np.array([[0.0, 0, 0], [r0, 0, 0]])
        _, forces = lennard_jones(pos)
        assert abs(forces[0, 0]) < 1e-10

    def test_repulsive_inside_attractive_outside(self):
        near = np.array([[0.0, 0, 0], [0.9, 0, 0]])
        far = np.array([[0.0, 0, 0], [1.5, 0, 0]])
        _, f_near = lennard_jones(near)
        _, f_far = lennard_jones(far)
        assert f_near[0, 0] < 0  # pushed apart
        assert f_far[0, 0] > 0  # pulled together

    def test_energy_conservation_over_verlet_steps(self):
        pos = self.grid_positions(8)
        vel = np.zeros_like(pos)
        e0 = None
        for _ in range(20):
            pos, vel, e = velocity_verlet(pos, vel, dt=1e-3)
            e0 = e if e0 is None else e0
        assert e == pytest.approx(e0, rel=1e-3)

    def test_verlet_validation(self):
        pos = self.grid_positions(4)
        with pytest.raises(ValueError):
            velocity_verlet(pos, np.zeros_like(pos), dt=0)
