"""Direct tests of the Application/ScalingStudy abstractions using stub
applications (the real apps test these only indirectly)."""

import pytest

from repro.apps.base import Application, AppRunResult, ScalingStudy
from repro.cluster.cluster import tibidabo


class StrongStub(Application):
    """t(n) = work / n + overhead * n — a strong-scaling toy."""

    name = "StrongStub"
    description = "toy"
    scaling = "strong"

    def __init__(self, work=96.0, overhead=0.0, min_n=1):
        self.work = work
        self.overhead = overhead
        self._min = min_n

    def min_nodes(self, cluster):
        return self._min

    def simulate(self, cluster, n_nodes, **_):
        return AppRunResult(
            app=self.name,
            n_nodes=n_nodes,
            time_s=self.work / n_nodes + self.overhead * n_nodes,
            flops=self.work * 1e9,
            steps=1,
        )


class WeakStub(Application):
    """Work grows with n; per-node time constant plus a comm term."""

    name = "WeakStub"
    description = "toy"
    scaling = "weak"

    def min_nodes(self, cluster):
        return 1

    def simulate(self, cluster, n_nodes, **_):
        return AppRunResult(
            app=self.name,
            n_nodes=n_nodes,
            time_s=1.0 + 0.01 * n_nodes,
            flops=n_nodes * 1e9,
            steps=1,
        )


@pytest.fixture(scope="module")
def cluster():
    return tibidabo(96)


class TestStrongScalingConventions:
    def test_perfect_scaling_is_ideal(self, cluster):
        study = ScalingStudy(StrongStub(), cluster, node_counts=(1, 2, 4, 8))
        sp = study.run().speedups()
        for n, s in sp.items():
            assert s == pytest.approx(n)

    def test_overhead_bends_the_curve(self, cluster):
        study = ScalingStudy(
            StrongStub(overhead=0.05), cluster, node_counts=(1, 8, 64)
        )
        eff = study.run().efficiencies()
        assert eff[1] == pytest.approx(1.0)
        assert eff[64] < eff[8] < 1.0

    def test_anchor_convention_for_memory_limited_apps(self, cluster):
        """Anchor = smallest runnable count, defined as linear — the
        paper's PEPC treatment."""
        study = ScalingStudy(
            StrongStub(min_n=24), cluster, node_counts=(4, 8, 24, 48)
        )
        sp = study.run().speedups()
        assert 4 not in sp and 8 not in sp
        assert sp[24] == pytest.approx(24.0)
        assert study.base_nodes == 24

    def test_unrunnable_everywhere_raises(self, cluster):
        study = ScalingStudy(
            StrongStub(min_n=97), cluster, node_counts=(4, 96)
        )
        with pytest.raises(RuntimeError):
            study.run()


class TestWeakScalingConventions:
    def test_rate_based_speedup(self, cluster):
        """Weak speedup = base * rate_n / rate_base."""
        study = ScalingStudy(WeakStub(), cluster, node_counts=(1, 4, 16))
        sp = study.run().speedups()
        assert sp[1] == pytest.approx(1.0)
        # rate(n) = n / (1 + 0.01 n); speedup = rate(n)/rate(1).
        expected_16 = (16 / 1.16) / (1 / 1.01)
        assert sp[16] == pytest.approx(expected_16)

    def test_weak_efficiency_below_one_with_comm(self, cluster):
        study = ScalingStudy(WeakStub(), cluster, node_counts=(1, 96))
        eff = study.run().efficiencies()
        assert 0.5 < eff[96] < 1.0


class TestAppRunResult:
    def test_derived_quantities(self):
        r = AppRunResult("x", 4, time_s=2.0, flops=8e9, steps=4)
        assert r.gflops == pytest.approx(4.0)
        assert r.time_per_step_s == pytest.approx(0.5)

    def test_zero_time_guard(self):
        r = AppRunResult("x", 1, time_s=0.0, flops=1.0, steps=0)
        assert r.gflops == 0.0
