"""HPL tests: functional distributed LU correctness + headline anchors."""

import numpy as np
import pytest

from repro.apps.hpl import HPL, HPLConfig, hpl_solve_from_factors
from repro.cluster.cluster import tibidabo
from repro.cluster.power import ClusterPowerModel


class TestConfig:
    def test_flop_count(self):
        cfg = HPLConfig(n=1000, nb=100)
        assert cfg.total_flops == pytest.approx(2e9 / 3 + 2e6)
        assert cfg.n_panels == 10

    def test_uneven_panels(self):
        assert HPLConfig(n=100, nb=32).n_panels == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            HPLConfig(n=0)
        with pytest.raises(ValueError):
            HPLConfig(n=10, nb=20)


class TestFunctionalLU:
    """The distributed factorisation must solve real systems."""

    @pytest.mark.parametrize(
        "p,n,nb",
        [(1, 64, 16), (2, 96, 16), (3, 100, 16), (4, 128, 32), (8, 96, 8)],
    )
    def test_solves_linear_system(self, small_cluster, p, n, nb):
        hpl = HPL()
        a, lu, piv = hpl.factorise(small_cluster, p, n, nb=nb)
        b = np.sin(np.arange(n))
        x = hpl_solve_from_factors(lu, piv, b)
        ref = np.linalg.solve(a, b)
        assert np.max(np.abs(x - ref)) < 1e-6 * max(1.0, np.max(np.abs(ref)))

    def test_rank_count_does_not_change_result(self, small_cluster):
        hpl = HPL()
        n, nb = 96, 16
        b = np.arange(1.0, n + 1)
        xs = []
        for p in (1, 2, 4):
            a, lu, piv = hpl.factorise(small_cluster, p, n, nb=nb)
            xs.append(hpl_solve_from_factors(lu, piv, b))
        np.testing.assert_allclose(xs[0], xs[1], rtol=1e-8)
        np.testing.assert_allclose(xs[0], xs[2], rtol=1e-8)

    def test_pivoting_used(self, small_cluster):
        """Partial pivoting must actually swap rows on general input."""
        _, _, piv = HPL().factorise(small_cluster, 2, 64, nb=16, seed=1)
        assert any(int(r) != i for i, r in enumerate(piv))


class TestWeakScaling:
    def test_weak_n_grows_with_sqrt_nodes(self, cluster96):
        hpl = HPL()
        n1 = hpl.weak_n(cluster96, 1)
        n4 = hpl.weak_n(cluster96, 4)
        assert n4 == pytest.approx(2 * n1, rel=0.1)

    def test_matrix_fits_memory(self, cluster96):
        hpl = HPL()
        for nodes in (1, 16, 96):
            n = hpl.weak_n(cluster96, nodes)
            assert 8 * n * n <= nodes * cluster96.nodes[0].usable_memory_bytes()


class TestHeadline:
    """Section 4: 97 GFLOPS on 96 nodes, 51% efficiency, 120 MFLOPS/W."""

    @pytest.fixture(scope="class")
    def result(self):
        cluster = tibidabo(96, open_mx=True)
        hpl = HPL()
        return cluster, hpl, hpl.simulate(cluster, 96)

    def test_gflops(self, result):
        _, _, run = result
        assert run.gflops == pytest.approx(97.0, rel=0.10)

    def test_efficiency(self, result):
        cluster, hpl, run = result
        assert hpl.efficiency(cluster, run) == pytest.approx(0.51, abs=0.05)

    def test_mflops_per_watt(self, result):
        cluster, _, run = result
        mw = ClusterPowerModel().mflops_per_watt(cluster, run.gflops)
        assert mw == pytest.approx(120.0, rel=0.10)

    def test_openmx_beats_tcp_at_scale(self):
        hpl = HPL()
        tcp = hpl.simulate(tibidabo(32), 32)
        omx = hpl.simulate(tibidabo(32, open_mx=True), 32)
        assert omx.gflops > tcp.gflops

    def test_comm_fraction_grows_with_nodes(self):
        hpl = HPL()
        c = tibidabo(32, open_mx=True)
        small = hpl.simulate(c, 4)
        large = hpl.simulate(c, 32)
        assert large.comm_fraction > small.comm_fraction


class TestLookahead:
    """Section 6.3's latency-hiding ablation (depth-1 HPL lookahead)."""

    def test_lookahead_never_slower(self):
        hpl = HPL()
        for omx in (False, True):
            c = tibidabo(16, open_mx=omx)
            blocking = hpl.simulate(c, 16)
            overlap = hpl.simulate(c, 16, lookahead=True)
            assert overlap.time_s <= blocking.time_s * 1.001

    def test_lookahead_helps_slow_network_more(self):
        hpl = HPL()
        tcp_gain = (
            hpl.simulate(tibidabo(32), 32).time_s
            / hpl.simulate(tibidabo(32), 32, lookahead=True).time_s
        )
        omx_gain = (
            hpl.simulate(tibidabo(32, open_mx=True), 32).time_s
            / hpl.simulate(
                tibidabo(32, open_mx=True), 32, lookahead=True
            ).time_s
        )
        assert tcp_gain > omx_gain > 1.0

    def test_lookahead_bounded_by_compute(self):
        """Overlap cannot beat the pure-compute lower bound."""
        hpl = HPL()
        c = tibidabo(16, open_mx=True)
        run = hpl.simulate(c, 16, lookahead=True)
        compute_floor = run.flops / (
            sum(n.achieved_gflops("dgemm") for n in c.nodes[:16]) * 1e9
        )
        assert run.time_s >= compute_floor * 0.999


class TestProcessGrid:
    """A6: the 2D block-cyclic layout vs the 1D model."""

    def test_grid_shape_most_square(self):
        from repro.apps.hpl import _grid_shape

        assert _grid_shape(96) == (8, 12)
        assert _grid_shape(64) == (8, 8)
        assert _grid_shape(1) == (1, 1)
        assert _grid_shape(7) == (1, 7)  # prime: degenerates to 1D

    def test_2d_beats_1d_at_scale(self):
        hpl = HPL()
        c = tibidabo(48, open_mx=True)
        one_d = hpl.simulate(c, 48)
        two_d = hpl.simulate(c, 48, grid_2d=True)
        assert two_d.gflops > one_d.gflops

    def test_2d_equals_1d_on_one_node(self):
        hpl = HPL()
        c = tibidabo(4, open_mx=True)
        a = hpl.simulate(c, 1)
        b = hpl.simulate(c, 1, grid_2d=True)
        assert b.gflops == pytest.approx(a.gflops, rel=0.15)

    def test_2d_bounded_by_compute_ceiling(self):
        hpl = HPL()
        c = tibidabo(96, open_mx=True)
        run = hpl.simulate(c, 96, grid_2d=True)
        ceiling = sum(n.achieved_gflops("dgemm") for n in c.nodes)
        assert run.gflops < ceiling
