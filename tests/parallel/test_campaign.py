"""The sharded campaign runner: plan, equivalence, byte-identity.

The oracle throughout: the sharded/cached path must produce output
*byte-identical* (through ``json.dumps``) to the serial ``run_all``.
The serial campaign and one cold sharded campaign are module-scoped
fixtures — every test after them rides the warm cache.
"""

import json

import pytest

from repro.core.study import MobileSoCStudy
from repro.parallel.cache import ResultCache, unit_key
from repro.parallel.runner import run_campaign, run_units
from repro.parallel.units import (
    SWEEP_MODES,
    WorkUnit,
    campaign_units,
    execute_unit,
)

ORACLE_KEYS = ("figure3", "figure4", "figure6", "headline_hpl")


def canon(data) -> str:
    return json.dumps(data, sort_keys=True)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("repro-cache")


@pytest.fixture(scope="module")
def serial_results():
    return MobileSoCStudy().run_all(quick=True)


@pytest.fixture(scope="module")
def cold_report(cache_dir):
    return run_campaign(quick=True, jobs=2, cache_dir=cache_dir)


class TestPlan:
    def test_campaign_units_shape(self, cluster96):
        units = campaign_units(True, cluster96)
        kinds = [u.kind for u in units]
        assert kinds[0] == "headline"  # heaviest first, for pool packing
        assert kinds.count("sweep_base") == 1
        labels = [u.label() for u in units]
        assert len(set(labels)) == len(labels)  # no unit appears twice
        modes = {u.params["mode"] for u in units if u.kind == "sweep_point"}
        assert modes == set(SWEEP_MODES)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="work-unit kind"):
            execute_unit("nonsense", {})


class TestUnitEquivalence:
    def test_sweep_point_matches_study_method(self):
        study = MobileSoCStudy()
        via_unit = execute_unit(
            "sweep_point", {"mode": "single", "platform": "Tegra2", "freq": 1.0}
        )
        direct = study.sweep_point("single", "Tegra2", 1.0)
        assert canon(via_unit) == canon(direct)

    def test_sweep_base_matches_study_method(self):
        assert execute_unit("sweep_base", {}) == (
            MobileSoCStudy().sweep_base_energy()
        )


class TestRunUnits:
    UNITS = [
        WorkUnit("sweep_point", {"mode": "single", "platform": "Tegra2", "freq": 1.0}),
        WorkUnit("sweep_base", {}),
    ]

    def test_serial_and_pool_agree(self):
        serial = run_units(self.UNITS, jobs=1)
        pooled = run_units(self.UNITS, jobs=2)
        assert canon(serial) == canon(pooled)

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_units(self.UNITS, jobs=1, cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (0, 2)
        again = run_units(self.UNITS, jobs=1, cache=cache)
        assert (cache.stats.hits, cache.stats.misses) == (2, 2)
        assert canon(first) == canon(again)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_units([], jobs=0)


class TestCampaignByteIdentity:
    def test_sharded_matches_serial(self, serial_results, cold_report):
        for key in ORACLE_KEYS:
            assert canon(cold_report.results[key]) == canon(
                serial_results[key]
            ), key

    def test_cold_run_was_all_misses(self, cold_report):
        assert cold_report.cache_stats.hits == 0
        assert cold_report.cache_stats.misses == cold_report.n_units

    def test_warm_rerun_hits_everything(
        self, serial_results, cold_report, cache_dir
    ):
        warm = run_campaign(quick=True, jobs=2, cache_dir=cache_dir)
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hit_rate > 0.9  # the acceptance bar
        for key in ORACLE_KEYS:
            assert canon(warm.results[key]) == canon(serial_results[key]), key

    def test_run_all_jobs_delegates(
        self, serial_results, cold_report, cache_dir
    ):
        sharded = MobileSoCStudy().run_all(
            quick=True, jobs=2, cache_dir=cache_dir
        )
        assert sorted(sharded) == sorted(serial_results)
        for key in ORACLE_KEYS:
            assert canon(sharded[key]) == canon(serial_results[key]), key

    def test_report_describe_mentions_cache(self, cold_report):
        text = cold_report.describe()
        assert "work units" in text and "hit rate" in text

    def test_spawn_matches_serial(self, serial_results, tmp_path):
        """Force the ``spawn`` start method (the macOS/Windows default):
        freshly spawned interpreters must compute the same bits forked
        workers inherit — the campaign's correctness must not ride on
        fork-only state inheritance."""
        report = run_campaign(
            quick=True, jobs=2, cache_dir=tmp_path / "spawn-cache",
            start_method="spawn",
        )
        for key in ORACLE_KEYS:
            assert canon(report.results[key]) == canon(
                serial_results[key]
            ), key

    def test_code_change_invalidates_cache(self, cold_report, cache_dir):
        """A different fingerprint must never alias an existing entry."""
        unit = WorkUnit("sweep_base", {})
        cache = ResultCache(cache_dir)
        assert cache.get(unit_key(unit.kind, unit.params)) is not None
        stale = unit_key(unit.kind, unit.params, fingerprint="other-code")
        from repro.parallel.cache import MISS

        assert cache.get(stale) is MISS


class TestCliCampaign:
    def test_all_jobs_writes_identical_json(
        self, serial_results, cold_report, cache_dir, tmp_path, capsys
    ):
        """``repro all --jobs 2`` (warm cache) must write the same JSON
        oracle files as the serial results, byte for byte."""
        from repro.cli import _JSON_ARTEFACTS, main

        json_dir = tmp_path / "json"
        assert main(
            [
                "all", "--quick", "--jobs", "2",
                "--cache-dir", str(cache_dir),
                "--json-dir", str(json_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out  # the campaign report is printed
        for key, fname in _JSON_ARTEFACTS.items():
            expected = (
                json.dumps(serial_results[key], indent=2, sort_keys=True)
                + "\n"
            )
            assert (json_dir / fname).read_text() == expected, fname

    def test_all_rejects_bad_jobs(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as e:
            main(["all", "--jobs", "0"])
        assert e.value.code == 2
        assert "--jobs must be at least 1" in capsys.readouterr().err


class TestScalingStudyJobs:
    def test_pool_run_matches_serial(self, small_cluster):
        from repro.apps import APPLICATIONS
        from repro.apps.base import ScalingStudy

        app = APPLICATIONS["HPL"]
        counts = (2, 4, 8)
        serial = ScalingStudy(app, small_cluster, node_counts=counts).run()
        pooled = ScalingStudy(app, small_cluster, node_counts=counts).run(
            jobs=2
        )
        assert serial.results == pooled.results
        assert serial.speedups() == pooled.speedups()

    def test_rejects_bad_jobs(self, small_cluster):
        from repro.apps import APPLICATIONS
        from repro.apps.base import ScalingStudy

        with pytest.raises(ValueError, match="jobs"):
            ScalingStudy(APPLICATIONS["HPL"], small_cluster).run(jobs=0)
