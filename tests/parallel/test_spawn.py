"""The pool start-method contract (`_pool_context`).

Pre-fix the runner silently assumed ``fork``: there was no way to pick
a method, so the spawn path (macOS/Windows default) was never
exercised, and an unavailable method would have failed deep inside the
pool.  The campaign-level byte-identity proof under forced spawn lives
in ``test_campaign.py`` (it reuses the module-scoped serial oracle);
these tests pin the selection logic itself.
"""

import json
import multiprocessing

import pytest

from repro.parallel.runner import _pool_context, run_units
from repro.parallel.units import WorkUnit

UNITS = [
    WorkUnit("sweep_point", {"mode": "single", "platform": "Tegra2", "freq": 1.0}),
    WorkUnit("sweep_base", {}),
]


def canon(data) -> str:
    return json.dumps(data, sort_keys=True)


class TestPoolContext:
    def test_default_prefers_fork_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        ctx = _pool_context()
        if "fork" in multiprocessing.get_all_start_methods():
            assert ctx.get_start_method() == "fork"
        else:
            assert ctx.get_start_method() in multiprocessing.get_all_start_methods()

    def test_explicit_method_wins(self):
        assert _pool_context("spawn").get_start_method() == "spawn"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert _pool_context().get_start_method() == "spawn"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "nonsense")
        assert _pool_context("spawn").get_start_method() == "spawn"

    def test_unavailable_method_raises_with_choices(self):
        with pytest.raises(ValueError, match="choices"):
            _pool_context("nonsense")


class TestRunUnitsUnderSpawn:
    def test_pool_results_byte_identical_to_serial(self):
        spawned = run_units(UNITS, jobs=2, start_method="spawn")
        serial = run_units(UNITS, jobs=1)
        assert canon(spawned) == canon(serial)
