"""The content-addressed result cache: keys, round-trips, counters."""

import json

import pytest

from repro.obs import recorder
from repro.parallel.cache import (
    MISS,
    CacheStats,
    ResultCache,
    code_fingerprint,
    unit_key,
)


class TestUnitKey:
    def test_deterministic(self):
        a = unit_key("sweep_point", {"mode": "single", "platform": "Tegra2"})
        b = unit_key("sweep_point", {"platform": "Tegra2", "mode": "single"})
        assert a == b  # dict insertion order must not matter
        assert len(a) == 64 and int(a, 16) >= 0  # sha256 hex

    def test_sensitive_to_every_coordinate(self):
        base = unit_key("k", {"x": 1}, seed=0, fingerprint="f")
        assert unit_key("k2", {"x": 1}, seed=0, fingerprint="f") != base
        assert unit_key("k", {"x": 2}, seed=0, fingerprint="f") != base
        assert unit_key("k", {"x": 1}, seed=1, fingerprint="f") != base
        assert unit_key("k", {"x": 1}, seed=0, fingerprint="g") != base

    def test_float_vs_int_params_distinct(self):
        # 1 and 1.0 are == in Python but serialise differently; the key
        # must not conflate an int node count with a float frequency.
        assert unit_key("k", {"x": 1}) != unit_key("k", {"x": 1.0})

    def test_default_fingerprint_is_code_fingerprint(self):
        fp = code_fingerprint()
        assert len(fp) == 64
        assert unit_key("k", {}) == unit_key("k", {}, fingerprint=fp)


class TestResultCache:
    def test_miss_then_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key("k", {"x": 1}, fingerprint="f")
        assert cache.get(key) is MISS
        value = {"freq_ghz": 1.0, "speedup": 1.2345678901234567}
        cache.put(key, value, kind="k")
        assert cache.get(key) == value
        # Floats survive the JSON round-trip bit-exactly.
        assert cache.get(key)["speedup"] == value["speedup"]

    def test_none_is_a_cacheable_value(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key("k", {}, fingerprint="f")
        cache.put(key, None)
        assert cache.get(key) is None  # and is NOT the MISS sentinel

    def test_corrupt_object_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key("k", {}, fingerprint="f")
        cache.put(key, 42)
        path = cache._path(key)
        path.write_text(path.read_text()[:10])  # truncate mid-document
        assert cache.get(key) is MISS
        cache.put(key, 43)  # overwrites the corpse
        assert cache.get(key) == 43

    def test_alien_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key("k", {}, fingerprint="f")
        cache._path(key).parent.mkdir(parents=True)
        cache._path(key).write_text(json.dumps({"schema": 99, "value": 1}))
        assert cache.get(key) is MISS

    def test_stats_count_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key("k", {}, fingerprint="f")
        cache.get(key)
        cache.put(key, 1)
        cache.get(key)
        cache.get(key)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.total == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert "2 hits / 1 misses" in cache.stats.describe()

    def test_empty_stats(self):
        s = CacheStats()
        assert s.hit_rate == 0.0 and s.total == 0

    def test_obs_totals_bumped_while_recording(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key("k", {}, fingerprint="f")
        with recorder.recording() as rec:
            cache.get(key)          # miss
            cache.put(key, 1)
            cache.get(key)          # hit
        assert rec.totals.get("cache.miss") == 1.0
        assert rec.totals.get("cache.hit") == 1.0
        # and nothing leaks when tracing is off
        assert recorder.current() is None


class TestGetMany:
    def _keys(self, n):
        return [unit_key("k", {"i": i}, fingerprint="f") for i in range(n)]

    def test_order_preserved_with_miss_sentinels(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self._keys(4)
        cache.put(keys[1], "one")
        cache.put(keys[3], "three")
        values = cache.get_many(keys)
        assert values[0] is MISS and values[2] is MISS
        assert values[1] == "one" and values[3] == "three"

    def test_counts_aggregate_once_per_batch(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self._keys(5)
        for key in keys[:3]:
            cache.put(key, 1)
        with recorder.recording() as rec:
            cache.get_many(keys)
        assert cache.stats.hits == 3 and cache.stats.misses == 2
        assert rec.totals["cache.hit"] == 3.0
        assert rec.totals["cache.miss"] == 2.0

    def test_empty_batch_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        with recorder.recording() as rec:
            assert cache.get_many([]) == []
        assert cache.stats.total == 0
        assert "cache.hit" not in rec.totals

    def test_matches_get_semantics_for_corrupt_objects(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self._keys(2)
        cache.put(keys[0], "good")
        cache.put(keys[1], "bad")
        cache._path(keys[1]).write_text("{broken")
        assert cache.get_many(keys) == ["good", MISS]
        assert not cache._path(keys[1]).exists()  # corpse unlinked
