"""ResultCache bugfixes: the size cap and corrupt-object unlinking.

Pre-fix behaviours reproduced here:

* the object store grew without bound — no ``max_bytes``, no eviction;
* a corrupt/alien object file was left on disk, so *every* subsequent
  ``get`` re-read and re-failed on the same corpse;
* eviction pressure from one handle could unlink an object another
  handle committed microseconds earlier (mtime ties at filesystem
  granularity break by path) — fatal once the job tier treats a
  completed unit's cache entry as its restart checkpoint.
"""

import json
import os

import pytest

from repro.obs import recorder
from repro.parallel.cache import (
    DEFAULT_MAX_BYTES,
    MISS,
    ResultCache,
    unit_key,
)


def _key(i: int) -> str:
    return unit_key("k", {"i": i}, fingerprint="f")


class TestSizeCap:
    def test_default_cap_is_documented_constant(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.max_bytes == DEFAULT_MAX_BYTES == 256 * 1024 * 1024

    def test_zero_means_unlimited(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=0)
        for i in range(20):
            cache.put(_key(i), "x" * 512)
        assert cache.stats.evictions == 0
        assert all(cache.get(_key(i)) == "x" * 512 for i in range(20))

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=-1)

    def test_put_prunes_oldest_mtime_first(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=2_000)
        for i in range(6):
            cache.put(_key(i), "x" * 512)  # each object ~600 bytes
            # Distinct mtimes even on coarse-granularity filesystems.
            os.utime(cache._path(_key(i)), ns=(i * 10**9, i * 10**9))
        cache.put(_key(6), "x" * 512)
        assert cache.stats.evictions > 0
        # The oldest entries are gone, the newest survive.
        assert cache.get(_key(0)) is MISS
        assert cache.get(_key(6)) == "x" * 512
        survivors = [i for i in range(7) if cache.get(_key(i)) is not MISS]
        assert survivors == sorted(survivors)
        assert survivors and survivors[-1] == 6
        # Store is back under the cap.
        total = sum(p.stat().st_size for p in cache._object_files())
        assert total <= 2_000

    def test_evict_bumps_obs_counter(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1_000)
        with recorder.recording() as rec:
            for i in range(5):
                cache.put(_key(i), "x" * 512)
        assert rec.totals.get("cache.evict", 0) == cache.stats.evictions > 0

    def test_eviction_mentioned_in_describe(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1_000)
        for i in range(5):
            cache.put(_key(i), "x" * 512)
        assert "evicted" in cache.stats.describe()

    def test_overwrite_same_key_does_not_double_count(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10_000)
        for _ in range(50):
            cache.put(_key(0), "x" * 512)  # same object, rewritten
        assert cache.stats.evictions == 0
        assert cache._total_bytes is not None
        assert cache._total_bytes <= 1_000


class TestTouchOnRead:
    """Regression: eviction must be LRU, not write-time FIFO.

    Pre-fix, ``get()``/``get_many()`` never refreshed the object file's
    mtime, so under ``max_bytes`` pressure the *hottest* keys (written
    first, read constantly) were evicted first while cold ones survived.
    """

    def _clear_fresh_registry(self):
        from repro.parallel.cache import _fresh_lock, _fresh_paths

        with _fresh_lock:
            _fresh_paths.clear()

    def _aged_store(self, tmp_path, n=4, cap=2_500):
        """A store of ``n`` objects with strictly increasing write
        mtimes (key 0 written first), fresh exemptions retired."""
        cache = ResultCache(tmp_path, max_bytes=cap)
        for i in range(n):
            cache.put(_key(i), "x" * 512)
            os.utime(cache._path(_key(i)), ns=(i * 10**9, i * 10**9))
        self._clear_fresh_registry()
        return cache

    def test_hot_key_survives_eviction(self, tmp_path):
        """The failing-pre-fix shape: key 0 is the oldest WRITE but the
        hottest READ; eviction must take the coldest key instead."""
        cache = self._aged_store(tmp_path)
        assert cache.get(_key(0)) == "x" * 512  # hot: touch refreshes mtime
        cache.put(_key(9), "x" * 512)           # crosses the cap -> evict
        assert cache.stats.evictions > 0
        assert cache.get(_key(0)) == "x" * 512  # pre-fix: evicted first
        assert cache.get(_key(1)) is MISS       # the cold key paid instead

    def test_get_many_also_touches(self, tmp_path):
        cache = self._aged_store(tmp_path)
        values = cache.get_many([_key(0), _key(1)])
        assert values == ["x" * 512, "x" * 512]
        cache.put(_key(9), "x" * 512)
        # Keys 0 and 1 were both read: the never-read key 2 is now the
        # coldest and pays for the new object.
        assert cache.get(_key(0)) == "x" * 512
        assert cache.get(_key(1)) == "x" * 512
        assert cache.get(_key(2)) is MISS

    def test_read_refreshes_mtime_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key(0), {"v": 1})
        path = cache._path(_key(0))
        os.utime(path, ns=(0, 0))
        assert cache.get(_key(0)) == {"v": 1}
        assert path.stat().st_mtime_ns > 0

    def test_touch_tolerates_concurrent_unlink(self, tmp_path, monkeypatch):
        """The read-vs-evict race: another handle unlinks the file
        between our read and our touch.  The value was already parsed —
        the get must still return it."""
        cache = ResultCache(tmp_path)
        cache.put(_key(0), "v")

        def racing_utime(*args, **kwargs):
            raise OSError("raced with eviction")

        monkeypatch.setattr(os, "utime", racing_utime)
        assert cache.get(_key(0)) == "v"


class TestCorruptUnlink:
    def test_truncated_object_unlinked_on_first_get(self, tmp_path):
        """Regression: the second get must not re-read the corpse."""
        cache = ResultCache(tmp_path)
        key = _key(0)
        cache.put(key, {"v": 1})
        path = cache._path(key)
        path.write_text(path.read_text()[:10])  # truncate mid-document
        assert cache.get(key) is MISS
        assert not path.exists()  # the corpse is gone ...
        reads = []
        real_read_text = type(path).read_text

        def spying_read_text(self, *a, **kw):
            reads.append(self)
            return real_read_text(self, *a, **kw)

        type(path).read_text = spying_read_text
        try:
            assert cache.get(key) is MISS  # ... so the retry opens nothing
        finally:
            type(path).read_text = real_read_text
        assert reads == [path]  # one failed open attempt, no re-parse

    def test_alien_schema_unlinked(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(1)
        cache._path(key).parent.mkdir(parents=True)
        cache._path(key).write_text(json.dumps({"schema": 99, "value": 1}))
        assert cache.get(key) is MISS
        assert not cache._path(key).exists()

    def test_unlink_keeps_size_accounting_consistent(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=100_000)
        for i in range(3):
            cache.put(_key(i), "x" * 100)
        before = cache._total_bytes
        path = cache._path(_key(1))
        path.write_text("{broken")
        assert cache.get(_key(1)) is MISS
        assert cache._total_bytes < before


class TestFreshObjectExemption:
    """The concurrent-writer eviction race: a just-written object is
    exempt from eviction for exactly one round, whatever its mtime."""

    def _clear_fresh_registry(self):
        from repro.parallel.cache import _fresh_lock, _fresh_paths

        with _fresh_lock:
            _fresh_paths.clear()

    def test_fresh_object_survives_concurrent_eviction_round(self, tmp_path):
        """Pre-fix failure: writer B's brand-new object carries the
        oldest mtime (clock skew / coarse fs timestamps), so writer A's
        eviction round picks it as the first victim."""
        # Cap sized so the store only crosses it at writer A's LAST
        # put — otherwise earlier puts run eviction rounds of their own
        # and retire the exemption under test.
        writer_a = ResultCache(tmp_path, max_bytes=2_500)
        for i in range(3):
            writer_a.put(_key(i), "x" * 512)
            os.utime(writer_a._path(_key(i)), ns=(10**12, 10**12))
        # Those three are from "a previous round": retire their
        # exemptions the way a completed eviction round would.
        self._clear_fresh_registry()

        writer_b = ResultCache(tmp_path, max_bytes=2_500)
        writer_b.put(_key(10), "x" * 512)
        # Adversarial mtime: B's fresh object sorts OLDEST.
        os.utime(writer_b._path(_key(10)), ns=(0, 0))

        # Big enough to cross the cap on A's own ledger (per-handle
        # size accounting is incremental and does not see B's put).
        writer_a.put(_key(3), "x" * 1024)
        assert writer_a.stats.evictions > 0
        # B's just-committed object survived the round; aged ones paid.
        assert writer_b.get(_key(10)) == "x" * 512

    def test_exemption_lasts_exactly_one_round(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=2_500)
        for i in range(3):
            cache.put(_key(i), "x" * 512)
            os.utime(cache._path(_key(i)), ns=(10**12, 10**12))
        self._clear_fresh_registry()

        cache.put(_key(10), "x" * 512)          # under the cap: no round
        os.utime(cache._path(_key(10)), ns=(0, 0))
        cache.put(_key(3), "x" * 512)           # round 1: exempt, survives
        os.utime(cache._path(_key(3)), ns=(10**12, 10**12))
        assert cache.get(_key(10)) == "x" * 512
        # That get touched the object (LRU); re-age it so round 2 tests
        # the exemption's lifetime, not the key's recency.
        os.utime(cache._path(_key(10)), ns=(0, 0))
        cache.put(_key(4), "x" * 512)           # round 2: retired -> gone
        assert cache.get(_key(10)) is MISS

    def test_writer_can_always_read_back_its_own_put(self, tmp_path):
        """Interleaved writers on one directory under constant cap
        pressure: every put must be readable by its writer immediately
        afterwards."""
        a = ResultCache(tmp_path, max_bytes=1_500)
        b = ResultCache(tmp_path, max_bytes=1_500)
        for i in range(20):
            writer, key = (a, _key(i)) if i % 2 == 0 else (b, _key(i))
            writer.put(key, "x" * 512)
            assert writer.get(key) == "x" * 512, f"lost own put {i}"
