"""Property-based invariants of the simulated executor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.catalog import PLATFORMS
from repro.kernels.registry import KERNELS
from repro.timing.executor import SimulatedExecutor

PLATFORM_NAMES = sorted(PLATFORMS)
KERNEL_TAGS = sorted(KERNELS)


@given(
    plat=st.sampled_from(PLATFORM_NAMES),
    tag=st.sampled_from(KERNEL_TAGS),
    freq=st.floats(min_value=0.3, max_value=3.0),
)
@settings(max_examples=60, deadline=None)
def test_time_positive_and_finite(plat, tag, freq):
    run = SimulatedExecutor(PLATFORMS[plat]).time_kernel(KERNELS[tag], freq)
    assert 0 < run.time_s < 1e6
    assert run.compute_time_s >= 0 and run.memory_time_s >= 0
    assert run.time_s >= max(run.compute_time_s, run.memory_time_s) * 0.999


@given(
    plat=st.sampled_from(PLATFORM_NAMES),
    tag=st.sampled_from(KERNEL_TAGS),
    f1=st.floats(min_value=0.3, max_value=1.5),
    factor=st.floats(min_value=1.1, max_value=2.5),
)
@settings(max_examples=60, deadline=None)
def test_more_frequency_never_slower(plat, tag, f1, factor):
    ex = SimulatedExecutor(PLATFORMS[plat])
    k = KERNELS[tag]
    assert ex.time_kernel(k, f1 * factor).time_s <= (
        ex.time_kernel(k, f1).time_s * 1.0001
    )


@given(
    plat=st.sampled_from(PLATFORM_NAMES),
    tag=st.sampled_from(KERNEL_TAGS),
)
@settings(max_examples=40, deadline=None)
def test_multicore_never_slower_than_serial(plat, tag):
    p = PLATFORMS[plat]
    ex = SimulatedExecutor(p)
    k = KERNELS[tag]
    t1 = ex.time_kernel(k, 1.0, cores=1).time_s
    tn = ex.time_kernel(k, 1.0, cores=p.soc.n_cores).time_s
    assert tn <= t1 * 1.0001


@given(
    tag=st.sampled_from(KERNEL_TAGS),
    passes=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_passes_scale_time_linearly(tag, passes):
    ex = SimulatedExecutor(PLATFORMS["Tegra2"])
    k = KERNELS[tag]
    one = ex.time_kernel(k, 1.0, passes=1).time_s
    many = ex.time_kernel(k, 1.0, passes=passes).time_s
    assert many == pytest.approx(one * passes, rel=1e-9)


@given(
    plat=st.sampled_from(PLATFORM_NAMES),
    tag=st.sampled_from(KERNEL_TAGS),
    size_factor=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_bigger_problems_take_longer(plat, tag, size_factor):
    ex = SimulatedExecutor(PLATFORMS[plat])
    k = KERNELS[tag]
    base_size = max(8, k.default_size() // 4)
    t_small = ex.time_kernel(k, 1.0, size=base_size, passes=1).time_s
    t_big = ex.time_kernel(
        k, 1.0, size=base_size * (size_factor + 1), passes=1
    ).time_s
    assert t_big > t_small
