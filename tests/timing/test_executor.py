"""Tests for the simulated executor — the Figure 3/4 engine.

The class ``TestPaperAnchors`` pins the model to the ratios the paper
publishes; if calibration drifts, these fail.
"""

import numpy as np
import pytest

from repro.kernels.registry import all_kernels, get_kernel
from repro.timing.executor import SimulatedExecutor


def geomean(xs):
    return float(np.exp(np.mean(np.log(xs))))


def suite_speedup(base_platform, platform, freq, cores=1, base_cores=1):
    ks = all_kernels()
    base = SimulatedExecutor(base_platform)
    ex = SimulatedExecutor(platform)
    return geomean(
        [
            base.time_kernel(k, 1.0, cores=base_cores).time_s
            / ex.time_kernel(k, freq, cores=cores).time_s
            for k in ks
        ]
    )


class TestIterationCalibration:
    def test_tegra2_iterations_near_three_seconds(self, t2, kernels):
        """The published energies/iteration imply ~3 s Tegra 2
        iterations; every kernel must land in [2.4, 3.6] s."""
        ex = SimulatedExecutor(t2)
        for k in kernels:
            t = ex.time_kernel(k, 1.0).time_s
            assert 2.4 <= t <= 3.6, (k.tag, t)


class TestPaperAnchors:
    def test_tegra3_nine_percent_faster(self, t2, t3):
        s = suite_speedup(t2, t3, 1.0)
        assert s == pytest.approx(1.09, abs=0.04)

    def test_exynos_thirty_percent_faster(self, t2, exynos):
        s = suite_speedup(t2, exynos, 1.0)
        assert s == pytest.approx(1.30, abs=0.08)

    def test_exynos_twentytwo_percent_over_tegra3(self, t3, exynos):
        s = suite_speedup(t3, exynos, 1.0)
        assert s == pytest.approx(1.22, abs=0.06)

    def test_i7_twice_exynos_at_1ghz(self, t2, exynos, i7):
        ratio = suite_speedup(t2, i7, 1.0) / suite_speedup(t2, exynos, 1.0)
        assert ratio == pytest.approx(2.0, abs=0.25)

    def test_max_frequency_ladder(self, t2, t3, exynos, i7):
        """Tegra3@max = 1.36x, Exynos@max = 2.3x, i7@max = 3x Exynos."""
        assert suite_speedup(t2, t3, 1.3) == pytest.approx(1.36, abs=0.12)
        assert suite_speedup(t2, exynos, 1.7) == pytest.approx(2.3, abs=0.2)
        ratio = suite_speedup(t2, i7, 2.4) / suite_speedup(t2, exynos, 1.7)
        assert ratio == pytest.approx(3.0, abs=0.35)

    def test_tegra2_eight_times_slower_than_i7(self, t2, i7):
        """Section 4: 'almost eight times slower ... at their maximum
        operating frequencies'."""
        s = suite_speedup(t2, i7, 2.4)
        assert 6.0 <= s <= 8.5


class TestFrequencyScaling:
    def test_performance_linear_in_frequency(self, t2, kernels):
        """Section 3.1.1: 'performance improves linearly as the
        frequency is increased' — cache-resident working sets."""
        ex = SimulatedExecutor(t2)
        for k in kernels:
            t_half = ex.time_kernel(k, 0.5).time_s
            t_full = ex.time_kernel(k, 1.0).time_s
            assert t_half / t_full == pytest.approx(2.0, rel=0.05), k.tag

    def test_invalid_frequency(self, t2):
        with pytest.raises(ValueError):
            SimulatedExecutor(t2).time_kernel(get_kernel("vecop"), 0.0)


class TestMulticore:
    def test_speedup_bounded_by_cores(self, platforms, kernels):
        for p in platforms.values():
            ex = SimulatedExecutor(p)
            n = p.soc.n_cores
            for k in kernels:
                t1 = ex.time_kernel(k, 1.0, cores=1).time_s
                tn = ex.time_kernel(k, 1.0, cores=n).time_s
                assert t1 / tn <= n + 1e-6, (p.name, k.tag)
                assert t1 / tn >= 1.0, (p.name, k.tag)

    def test_multicore_improves_all_kernels(self, t2, kernels):
        """Section 3.1.2: multithreading improved performance in all
        cases."""
        ex = SimulatedExecutor(t2)
        for k in kernels:
            t1 = ex.time_kernel(k, 1.0, cores=1).time_s
            t2c = ex.time_kernel(k, 1.0, cores=2).time_s
            assert t2c < t1, k.tag

    def test_amcd_scales_nearly_perfectly(self, i7):
        """Embarrassingly parallel: near-ideal multicore scaling."""
        ex = SimulatedExecutor(i7)
        k = get_kernel("amcd")
        t1 = ex.time_kernel(k, 2.4, cores=1).time_s
        t4 = ex.time_kernel(k, 2.4, cores=4).time_s
        assert t1 / t4 > 3.6

    def test_cores_validated(self, t2):
        with pytest.raises(ValueError):
            SimulatedExecutor(t2).time_kernel(get_kernel("vecop"), 1.0, cores=3)


class TestBoundClassification:
    def test_dmmm_compute_bound_everywhere(self, platforms):
        for p in platforms.values():
            run = SimulatedExecutor(p).time_kernel(get_kernel("dmmm"), 1.0)
            assert run.bound == "compute", p.name

    def test_vecop_memory_bound_on_arm(self, t2, exynos):
        for p in (t2, exynos):
            run = SimulatedExecutor(p).time_kernel(get_kernel("vecop"), 1.0)
            assert run.bound == "memory", p.name

    def test_achieved_gflops_below_peak(self, platforms, kernels):
        for p in platforms.values():
            ex = SimulatedExecutor(p)
            for k in kernels:
                run = ex.time_kernel(k, 1.0, cores=1)
                assert run.achieved_gflops <= p.soc.core.peak_gflops(1.0)

    def test_memory_utilisation_in_unit_range(self, t2, kernels):
        ex = SimulatedExecutor(t2)
        for k in kernels:
            run = ex.time_kernel(k, 1.0)
            assert 0.0 <= run.memory_bw_utilisation <= 1.0


class TestABI:
    def test_softfp_slows_arm_only(self, t2, i7):
        """Section 6.2: soft-float calling conventions reduce FP
        performance on ARMv7; x86 is unaffected."""
        k = get_kernel("dmmm")
        hard = SimulatedExecutor(t2, abi="hardfp").time_kernel(k, 1.0).time_s
        soft = SimulatedExecutor(t2, abi="softfp").time_kernel(k, 1.0).time_s
        assert soft > hard * 1.05
        hard_i7 = SimulatedExecutor(i7, abi="hardfp").time_kernel(k, 1.0).time_s
        soft_i7 = SimulatedExecutor(i7, abi="softfp").time_kernel(k, 1.0).time_s
        assert soft_i7 == pytest.approx(hard_i7)

    def test_invalid_abi(self, t2):
        with pytest.raises(ValueError):
            SimulatedExecutor(t2, abi="mixed")


class TestStreamingRegime:
    def test_oversized_working_set_uses_dram(self, t2):
        """A working set beyond the LLC must switch to the (slower,
        frequency-independent) DRAM regime."""
        ex = SimulatedExecutor(t2)
        k = get_kernel("vecop")
        big = 4_000_000  # 96 MB working set
        prof = k.profile(big)
        assert not ex.is_resident(prof)
        t1 = ex.time_kernel(k, 1.0, size=big, passes=1).time_s
        t_half = ex.time_kernel(k, 0.5, size=big, passes=1).time_s
        # Memory-bound streaming barely cares about CPU frequency.
        assert t_half / t1 < 1.3

    def test_resident_faster_per_byte_than_streaming(self, t2):
        ex = SimulatedExecutor(t2)
        k = get_kernel("vecop")
        small = ex.time_kernel(k, 1.0, size=12_000, passes=1)
        big = ex.time_kernel(k, 1.0, size=4_000_000, passes=1)
        per_byte_small = small.time_s / (12_000 * 24)
        per_byte_big = big.time_s / (4_000_000 * 24)
        assert per_byte_small < per_byte_big


class TestMemoEviction:
    """Regression: the executor memo keys kernels by *identity*, so a
    kernel re-registered under the same tag leaves the memo serving the
    replaced object's runs (and pinning it alive) until evicted."""

    def _fresh_vecop(self):
        from repro.kernels.vecop import VecOp

        return VecOp()

    def test_reregistration_requires_replace_flag(self):
        from repro.kernels import registry

        with pytest.raises(ValueError):
            registry.register_kernel(self._fresh_vecop())

    def test_evict_after_reregistration(self, t2):
        from repro.kernels import registry

        ex = SimulatedExecutor(t2)
        old = registry.get_kernel("vecop")
        old_run = ex.time_kernel(old, 1.0)
        ex.time_kernel(old, 0.76, cores=2)
        clone = self._fresh_vecop()
        registry.register_kernel(clone, replace=True)
        try:
            assert registry.get_kernel("vecop") is clone
            # The stale identity still hits the memo — the hazard.
            assert ex.time_kernel(old, 1.0) is old_run
            dropped = ex.evict_kernel("vecop")
            assert dropped == 2
            assert not any(key[0].tag == "vecop" for key in ex._memo)
            # Retiming the replacement reproduces the same numbers (the
            # model is a pure function of tag + profile, not identity).
            fresh = ex.time_kernel(clone, 1.0)
            assert fresh is not old_run
            assert fresh == old_run
        finally:
            registry.register_kernel(old, replace=True)

    def test_evict_by_object_only_drops_that_identity(self, t2):
        ex = SimulatedExecutor(t2)
        vecop = get_kernel("vecop")
        dmmm = get_kernel("dmmm")
        ex.time_kernel(vecop, 1.0)
        ex.time_kernel(dmmm, 1.0)
        assert ex.evict_kernel(vecop) == 1
        assert ex.evict_kernel(vecop) == 0  # idempotent
        assert any(key[0].tag == "dmmm" for key in ex._memo)

    def test_batch_repopulates_after_eviction(self, t2):
        """time_kernel_batch and time_kernel agree across an eviction."""
        ex = SimulatedExecutor(t2)
        k = get_kernel("vecop")
        before = ex.time_kernel_batch(k, [0.456, 1.0])
        ex.evict_kernel("vecop")
        after = ex.time_kernel_batch(k, [0.456, 1.0])
        assert after == before
        assert after[0] is not before[0]
