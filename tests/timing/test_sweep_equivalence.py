"""Sweep-equivalence suite: the vectorized sweep == the scalar oracle.

The Figure 3/4 frequency sweep evaluates as NumPy array ops over the
operating-point axis (``SimulatedExecutor.time_kernel_batch``,
``PowerMeter.integrate_batch``, ``MobileSoCStudy.sweep_points``); the
original one-point-at-a-time walk is preserved verbatim as the reference
oracle (``_sweep_point_scalar`` / ``_sweep_base_energy_scalar``, or
``REPRO_SCALAR_SWEEP=1`` process-wide).  This suite drives both paths
over randomized platform/frequency/seed grids plus the full golden
figure set and asserts **float-for-float identical** results — ``==``,
never ``approx`` — and unchanged ``.repro-cache`` keys and object
bytes.  Any drift between the two paths fails here before it can
perturb a golden figure.
"""

from __future__ import annotations

import json
import pathlib
import random

import numpy as np
import pytest

from repro.apps import APPLICATIONS
from repro.arch.catalog import PLATFORMS
from repro.cluster.cluster import tibidabo
from repro.core.study import FIG6_QUICK_COUNTS, MobileSoCStudy
from repro.net.nic import PCIE, USB3
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack
from repro.parallel import units as punits
from repro.parallel.cache import ResultCache, unit_key
from repro.timing.executor import SimulatedExecutor
from repro.timing.measurement import (
    PowerMeter,
    measure_kernel,
    measure_kernel_batch,
)

DATA = pathlib.Path(__file__).resolve().parent.parent / "data"
GOLDENS = DATA / "goldens"

#: Fingerprint pin for key-shape tests: the real fingerprint hashes the
#: package source (any code change rotates it by design), so key
#: *stability* is asserted against a constant.
PINNED_FP = "0" * 64


def _random_freq_grid(rng: random.Random, platform) -> list[float]:
    """A randomized frequency grid: DVFS points, off-grid frequencies,
    shuffled order, and duplicates (the memo-interop case)."""
    freqs = list(platform.soc.dvfs.frequencies())
    freqs += [round(rng.uniform(0.3, 3.0), 3) for _ in range(4)]
    freqs.append(freqs[0])  # duplicate
    rng.shuffle(freqs)
    return freqs


# ---------------------------------------------------------------------------
# Executor level: time_kernel_batch == time_kernel, bit for bit.
# ---------------------------------------------------------------------------
class TestExecutorBatch:
    @pytest.mark.parametrize("case", range(6))
    def test_time_kernel_batch_matches_scalar(self, case, kernels):
        rng = random.Random(1000 + case)
        platform = rng.choice(list(PLATFORMS.values()))
        cores = rng.choice([1, platform.soc.n_cores])
        freqs = _random_freq_grid(rng, platform)
        scalar_ex = SimulatedExecutor(platform)
        batch_ex = SimulatedExecutor(platform)
        for k in kernels:
            want = [scalar_ex.time_kernel(k, f, cores=cores) for f in freqs]
            got = batch_ex.time_kernel_batch(k, freqs, cores=cores)
            assert got == want  # frozen dataclasses: all fields, exact

    def test_batch_seeds_the_scalar_memo(self, t2, kernels):
        ex = SimulatedExecutor(t2)
        k = kernels[0]
        runs = ex.time_kernel_batch(k, [0.456, 1.0], cores=1)
        # A later scalar call must return the very same frozen object.
        assert ex.time_kernel(k, 1.0, cores=1) is runs[1]

    def test_batch_serves_existing_memo_entries(self, t2, kernels):
        ex = SimulatedExecutor(t2)
        k = kernels[0]
        scalar_run = ex.time_kernel(k, 1.0, cores=2)
        runs = ex.time_kernel_batch(k, [1.0, 0.76], cores=2)
        assert runs[0] is scalar_run

    def test_batch_validates_like_scalar(self, t2, kernels):
        ex = SimulatedExecutor(t2)
        with pytest.raises(ValueError):
            ex.time_kernel_batch(kernels[0], [1.0, -0.5])
        with pytest.raises(ValueError):
            ex.time_kernel_batch(kernels[0], [1.0], cores=99)

    @pytest.mark.parametrize("case", range(4))
    def test_roofline_batch_matches_scalar(self, case, kernels):
        rng = random.Random(2000 + case)
        platform = rng.choice(list(PLATFORMS.values()))
        cores = rng.choice([1, platform.soc.n_cores])
        freqs = _random_freq_grid(rng, platform)
        ex = SimulatedExecutor(platform)
        for k in kernels:
            profile = k.profile(k.default_size())
            batch = ex.roofline_batch(freqs, cores, profile)
            assert len(batch) == len(freqs)
            for i, f in enumerate(freqs):
                scalar = ex.roofline(f, cores, profile)
                assert batch.at(i) == scalar
                assert float(batch.peak_gflops[i]) == scalar.peak_gflops
                assert (
                    float(batch.bandwidth_gbs[i]) == scalar.bandwidth_gbs
                )
                assert float(
                    batch.time_seconds(profile.flops, profile.cache_traffic)[i]
                ) == scalar.time_seconds(profile.flops, profile.cache_traffic)
                assert float(
                    batch.attainable_gflops(1.7)[i]
                ) == scalar.attainable_gflops(1.7)

    def test_effective_bandwidth_batch_matches_scalar(self, kernels):
        for platform in PLATFORMS.values():
            ex = SimulatedExecutor(platform)
            freqs = list(platform.soc.dvfs.frequencies())
            for k in kernels:
                profile = k.profile(k.default_size())
                for cores in (1, platform.soc.n_cores):
                    bw = ex.effective_bandwidth_gbs_batch(
                        freqs, cores, profile
                    )
                    for i, f in enumerate(freqs):
                        assert float(bw[i]) == ex.effective_bandwidth_gbs(
                            f, cores, profile
                        )

    def test_efficiency_table_matches_scalar_lookup(self, kernels):
        from repro.timing import calibration

        for platform in PLATFORMS.values():
            ex = SimulatedExecutor(platform)
            table = ex.efficiency_table(kernels)
            assert table is ex.efficiency_table(kernels)  # cached
            for i, k in enumerate(kernels):
                want = calibration.fp_efficiency(
                    platform.soc.core.name,
                    k.profile(k.default_size()).characteristics,
                )
                assert float(table[i]) == want


# ---------------------------------------------------------------------------
# Meter level: one batched draw == the sequential per-kernel draws.
# ---------------------------------------------------------------------------
class TestMeterBatch:
    @pytest.mark.parametrize("seed", [0, 7, 12345])
    def test_integrate_batch_matches_sequential(self, seed):
        rng = random.Random(seed)
        powers = [rng.uniform(0.5, 40.0) for _ in range(9)]
        durations = [rng.uniform(0.01, 8.0) for _ in range(9)]
        scalar_meter = PowerMeter(seed=seed)
        batch_meter = PowerMeter(seed=seed)
        want = [
            scalar_meter.integrate(p, d) for p, d in zip(powers, durations)
        ]
        got = batch_meter.integrate_batch(powers, durations)
        assert got == want
        # The RNG streams must also end in the same state.
        assert scalar_meter._rng.normal() == batch_meter._rng.normal()

    def test_integrate_batch_validates(self):
        meter = PowerMeter(seed=0)
        with pytest.raises(ValueError):
            meter.integrate_batch([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            meter.integrate_batch([1.0], [0.0])

    def test_measure_kernel_batch_matches_scalar(self, t2, kernels):
        ex = SimulatedExecutor(t2)
        scalar_meter = PowerMeter(seed=99)
        batch_meter = PowerMeter(seed=99)
        want = [
            measure_kernel(
                t2, k, 1.0, cores=2, meter=scalar_meter, executor=ex
            )
            for k in kernels
        ]
        got = measure_kernel_batch(
            t2, kernels, 1.0, cores=2, meter=batch_meter, executor=ex
        )
        assert got == want  # (run, EnergyMeasurement) pairs, exact


# ---------------------------------------------------------------------------
# Study level: sweep_points == the scalar sweep_point loop, any grid.
# ---------------------------------------------------------------------------
class TestSweepEquivalence:
    @pytest.mark.parametrize("study_seed", [0, 7])
    @pytest.mark.parametrize("mode", ["single", "multi"])
    def test_sweep_points_matches_scalar_loop(self, mode, study_seed):
        rng = random.Random(31 * study_seed + (mode == "multi"))
        vec = MobileSoCStudy(seed=study_seed)
        oracle = MobileSoCStudy(seed=study_seed)
        plan = vec.sweep_plan()
        points = rng.sample(plan, k=9)
        points.append(points[0])  # duplicate operating point
        rng.shuffle(points)
        got = vec.sweep_points(mode, points)
        want = [
            oracle._sweep_point_scalar(mode, name, freq)
            for name, freq in points
        ]
        assert got == want

    def test_sweep_points_full_plan_default(self):
        vec = MobileSoCStudy()
        oracle = MobileSoCStudy()
        got = vec.sweep_points("single")
        plan = vec.sweep_plan()
        assert len(got) == len(plan)
        want = [
            oracle._sweep_point_scalar("single", name, freq)
            for name, freq in plan
        ]
        assert got == want

    @pytest.mark.parametrize("study_seed", [0, 3])
    def test_sweep_base_energy_matches_scalar(self, study_seed):
        vec = MobileSoCStudy(seed=study_seed)
        oracle = MobileSoCStudy(seed=study_seed)
        assert vec.sweep_base_energy() == oracle._sweep_base_energy_scalar()

    def test_sweep_point_env_escape_hatch(self, monkeypatch):
        """REPRO_SCALAR_SWEEP=1 must route the public entry points to
        the oracle — and the oracle must agree with the default path."""
        vec = MobileSoCStudy()
        default = vec.sweep_point("single", "Tegra2", 0.456)
        monkeypatch.setenv("REPRO_SCALAR_SWEEP", "1")
        forced = MobileSoCStudy().sweep_point("single", "Tegra2", 0.456)
        assert forced == default

    def test_sweep_points_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            MobileSoCStudy().sweep_points("turbo")


# ---------------------------------------------------------------------------
# Figure 6 app points: analytic fast paths == the discrete-event oracle.
# ---------------------------------------------------------------------------
class TestFigure6Equivalence:
    @pytest.mark.parametrize("app_name", sorted(APPLICATIONS))
    def test_app_points_match_des_oracle(self, app_name, monkeypatch):
        app = APPLICATIONS[app_name]
        cluster = tibidabo(16)
        counts = [n for n in (4, 16) if n >= app.min_nodes(cluster)]
        if not counts:
            pytest.skip(f"{app_name} needs more than 16 nodes")
        fast = [app.simulate(cluster, n) for n in counts]
        monkeypatch.setenv("REPRO_SCALAR_SWEEP", "1")
        slow = [app.simulate(tibidabo(16), n) for n in counts]
        assert fast == slow  # AppRunResult dataclasses, exact


# ---------------------------------------------------------------------------
# Protocol curves: the array pass == the per-size scalar walk.
# ---------------------------------------------------------------------------
class TestLatencyCurveBatch:
    STACKS = [
        (TCP_IP, PCIE, "Cortex-A9", 1.0),
        (OPEN_MX, PCIE, "Cortex-A9", 1.0),
        (OPEN_MX, USB3, "Cortex-A15", 1.4),
    ]

    #: Sizes straddling the Open-MX rendezvous threshold, plus 0.
    SIZES = (0, 1, 64, 4096, 32767, 32768, 32769, 1 << 20)

    @pytest.mark.parametrize("config", range(len(STACKS)))
    def test_latency_curve_matches_scalar(self, config):
        proto, attach, core, freq = self.STACKS[config]
        batch_stack = ProtocolStack(proto, attach, core_name=core, freq_ghz=freq)
        scalar_stack = ProtocolStack(proto, attach, core_name=core, freq_ghz=freq)
        curve = batch_stack.latency_curve_us(self.SIZES)
        for i, s in enumerate(self.SIZES):
            assert float(curve[i]) == scalar_stack.one_way_latency_us(s)
        # The array pass seeds the same per-size memo the scalar reads.
        assert batch_stack._lat_memo == scalar_stack._lat_memo

    def test_latency_curve_validates(self):
        stack = ProtocolStack(TCP_IP)
        with pytest.raises(ValueError):
            stack.latency_curve_us([-1])


# ---------------------------------------------------------------------------
# Cache keys and object bytes: a cache warmed pre-vectorization still
# hits post-vectorization (keys are functions of coordinates + code
# fingerprint only, and unit values are bit-identical either way).
# ---------------------------------------------------------------------------
class TestCacheStability:
    def test_unit_key_shape_is_pinned(self):
        """The key material (schema/kind/params/seed/fingerprint JSON)
        must not change shape: golden hashes under a pinned
        fingerprint.  A failure here means every deployed cache is
        silently invalidated — bump SCHEMA_VERSION instead."""
        assert (
            unit_key("sweep_base", {}, 0, fingerprint=PINNED_FP)
            == "4493313a54387c3629e7b343e3dd9b92a27dbc3475c1db759ffdddf30406250b"
        )
        assert (
            unit_key(
                "sweep_point",
                {"mode": "single", "platform": "Tegra2", "freq": 0.456},
                0,
                fingerprint=PINNED_FP,
            )
            == "6992386bedfd56a83151a40292ed74354d4b9eaae1a0fc487c9be95ef62ce71d"
        )

    def test_object_bytes_scalar_vs_vectorized(self, tmp_path, monkeypatch):
        """Execute representative units under both paths and compare the
        stored object files byte for byte."""
        probe = MobileSoCStudy()
        plan = probe.sweep_plan()
        units = [
            ("sweep_base", {}),
            ("sweep_point", {"mode": "single", "platform": plan[0][0],
                             "freq": plan[0][1]}),
            ("sweep_point", {"mode": "multi", "platform": plan[-1][0],
                             "freq": plan[-1][1]}),
            ("fig6_point", {"app": "HPL", "n": 4, "max_nodes": 4}),
            ("headline", {"n_nodes": 16}),
        ]
        roots = {}
        for label, scalar in (("vec", False), ("scalar", True)):
            if scalar:
                monkeypatch.setenv("REPRO_SCALAR_SWEEP", "1")
            else:
                monkeypatch.delenv("REPRO_SCALAR_SWEEP", raising=False)
            # Fresh worker-side memos so each pass recomputes from cold.
            monkeypatch.setattr(punits, "_studies", {})
            monkeypatch.setattr(punits, "_clusters", {})
            root = tmp_path / label
            cache = ResultCache(root, max_bytes=0)
            for kind, params in units:
                key = unit_key(kind, params, 0, fingerprint=PINNED_FP)
                cache.put(key, punits.execute_unit(kind, params, 0), kind=kind)
            roots[label] = root
        vec_files = sorted(
            p.relative_to(roots["vec"]) for p in roots["vec"].rglob("*.json")
        )
        scalar_files = sorted(
            p.relative_to(roots["scalar"])
            for p in roots["scalar"].rglob("*.json")
        )
        assert vec_files == scalar_files  # identical keys -> identical paths
        assert vec_files  # sanity: something was stored
        for rel in vec_files:
            assert (roots["vec"] / rel).read_bytes() == (
                roots["scalar"] / rel
            ).read_bytes()


# ---------------------------------------------------------------------------
# Golden figures: the vectorized campaign reproduces the committed JSON
# byte for byte (regenerate with --update-goldens after an *intended*
# model change).
# ---------------------------------------------------------------------------
class TestGoldenFigures:
    def _produced(self):
        study = MobileSoCStudy()
        return {
            "figure3.json": study.figure3(),
            "figure4.json": study.figure4(),
            "figure6.json": study.figure6(FIG6_QUICK_COUNTS),
            "headline.json": study.headline_hpl(),
        }

    def test_campaign_matches_committed_goldens(self, update_goldens):
        produced = self._produced()
        GOLDENS.mkdir(parents=True, exist_ok=True)
        diverged = []
        for fname, obj in sorted(produced.items()):
            # Same serialisation as `repro all --json-dir` (cli.py).
            text = json.dumps(obj, indent=2, sort_keys=True) + "\n"
            path = GOLDENS / fname
            if update_goldens:
                path.write_text(text)
                continue
            assert path.exists(), (
                f"golden {fname} missing — rerun with --update-goldens"
            )
            if text != path.read_text():
                diverged.append(fname)
        if update_goldens:
            pytest.skip("campaign goldens updated")
        assert not diverged, (
            f"campaign JSON diverged from committed goldens: {diverged}; "
            "if the model change is intentional, rerun with "
            "--update-goldens"
        )

    def test_goldens_are_nontrivial(self):
        for fname in (
            "figure3.json", "figure4.json", "figure6.json", "headline.json"
        ):
            doc = json.loads((GOLDENS / fname).read_text())
            assert doc  # non-empty
        headline = json.loads((GOLDENS / "headline.json").read_text())
        assert set(headline) >= {"gflops", "efficiency", "mflops_per_watt"}
