"""Tests for the power-meter measurement model (the WT230 procedure)."""

import numpy as np
import pytest

from repro.kernels.registry import all_kernels, get_kernel
from repro.timing.measurement import (
    EnergyMeasurement,
    PowerMeter,
    measure_kernel,
)


class TestPowerMeter:
    def test_sampling_rate(self):
        meter = PowerMeter(sample_hz=10.0)
        trace = meter.sample_trace(8.0, 3.0)
        assert trace.shape[0] == 30

    def test_precision_noise_scale(self):
        meter = PowerMeter(precision=0.001, seed=1)
        trace = meter.sample_trace(100.0, 1000.0)
        assert np.std(trace) == pytest.approx(0.1, rel=0.2)

    def test_energy_close_to_p_times_t(self):
        meter = PowerMeter(seed=0)
        energy, n = meter.integrate(8.0, 3.0)
        assert energy == pytest.approx(24.0, rel=0.005)
        assert n == 30

    def test_short_runs_have_few_samples(self):
        """A 0.05 s region yields a single sample — why the paper runs
        enough iterations 'to get an accurate energy consumption'."""
        meter = PowerMeter()
        _, n = meter.integrate(8.0, 0.05)
        assert n == 1

    def test_deterministic_given_seed(self):
        a = PowerMeter(seed=42).integrate(10.0, 5.0)
        b = PowerMeter(seed=42).integrate(10.0, 5.0)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerMeter(sample_hz=0)
        with pytest.raises(ValueError):
            PowerMeter().sample_trace(8.0, 0)


class TestEnergyAnchors:
    """Absolute energies per iteration, Section 3.1.1 (±15%)."""

    @pytest.mark.parametrize(
        "platform,paper_joules",
        [
            ("Tegra2", 23.93),
            ("Tegra3", 19.62),
            ("Exynos5250", 16.95),
            ("Corei7-2760QM", 28.57),
        ],
    )
    def test_energy_per_iteration(self, platforms, platform, paper_joules):
        meter = PowerMeter(seed=0)
        energies = [
            measure_kernel(platforms[platform], k, 1.0, meter=meter)[1].energy_j
            for k in all_kernels()
        ]
        assert float(np.mean(energies)) == pytest.approx(
            paper_joules, rel=0.15
        )

    def test_arm_ordering(self, platforms):
        """Exynos < Tegra3 < Tegra2 < i7 in energy to solution."""
        meter = PowerMeter(seed=0)

        def mean_energy(name):
            return float(
                np.mean(
                    [
                        measure_kernel(platforms[name], k, 1.0, meter=meter)[
                            1
                        ].energy_j
                        for k in all_kernels()
                    ]
                )
            )

        e = {n: mean_energy(n) for n in platforms}
        assert (
            e["Exynos5250"] < e["Tegra3"] < e["Tegra2"] < e["Corei7-2760QM"]
        )

    def test_multicore_reduces_energy(self, platforms):
        """Section 3.1.2: the OpenMP versions improve energy on every
        platform; Tegra 2 by ~1.7x."""
        meter = PowerMeter(seed=0)
        for name, p in platforms.items():
            n = p.soc.n_cores
            serial = np.mean(
                [
                    measure_kernel(p, k, 1.0, cores=1, meter=meter)[1].energy_j
                    for k in all_kernels()
                ]
            )
            multi = np.mean(
                [
                    measure_kernel(p, k, 1.0, cores=n, meter=meter)[1].energy_j
                    for k in all_kernels()
                ]
            )
            assert multi < serial, name
        t2 = platforms["Tegra2"]
        gain = np.mean(
            [
                measure_kernel(t2, k, 1.0, cores=1, meter=meter)[1].energy_j
                for k in all_kernels()
            ]
        ) / np.mean(
            [
                measure_kernel(t2, k, 1.0, cores=2, meter=meter)[1].energy_j
                for k in all_kernels()
            ]
        )
        assert gain == pytest.approx(1.7, abs=0.2)

    def test_energy_improves_with_frequency(self, t2):
        """Figure 3b: per-iteration energy falls as frequency rises
        (board power dominates)."""
        meter = PowerMeter(seed=0)
        k = get_kernel("dmmm")
        energies = [
            measure_kernel(t2, k, f, meter=meter)[1].energy_j
            for f in t2.soc.dvfs.frequencies()
        ]
        assert all(b < a for a, b in zip(energies, energies[1:]))


class TestEnergyMeasurement:
    def test_per_iteration(self):
        m = EnergyMeasurement("p", "k", 10.0, 50.0, 5.0, 100)
        assert m.energy_per_iteration(5) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            m.energy_per_iteration(0)

    def test_green500_metric(self):
        # 1 GFLOP in 1 s at 5 W = 200 MFLOPS/W.
        m = EnergyMeasurement("p", "k", 1.0, 5.0, 5.0, 10)
        assert m.efficiency_mflops_per_watt(1e9) == pytest.approx(200.0)

    def test_measure_kernel_validates_iterations(self, t2):
        with pytest.raises(ValueError):
            measure_kernel(t2, get_kernel("vecop"), 1.0, iterations=0)
