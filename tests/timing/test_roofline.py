"""Tests for the roofline model."""

import pytest
from hypothesis import given, strategies as st

from repro.timing.roofline import Roofline


class TestRoofline:
    def test_ridge_point(self):
        r = Roofline(peak_gflops=10.0, bandwidth_gbs=2.0)
        assert r.ridge_intensity == pytest.approx(5.0)

    def test_memory_bound_below_ridge(self):
        r = Roofline(10.0, 2.0)
        assert r.is_memory_bound(1.0)
        assert not r.is_memory_bound(10.0)

    def test_attainable_capped_at_peak(self):
        r = Roofline(10.0, 2.0)
        assert r.attainable_gflops(100.0) == 10.0

    def test_attainable_linear_below_ridge(self):
        r = Roofline(10.0, 2.0)
        assert r.attainable_gflops(1.0) == pytest.approx(2.0)
        assert r.attainable_gflops(2.5) == pytest.approx(5.0)

    def test_time_is_max_of_both(self):
        r = Roofline(1.0, 1.0)  # 1 GFLOP/s, 1 GB/s
        assert r.time_seconds(2e9, 1e9) == pytest.approx(2.0)
        assert r.time_seconds(1e9, 3e9) == pytest.approx(3.0)

    @given(
        st.floats(min_value=0.01, max_value=1e3),
        st.floats(min_value=0.01, max_value=1e3),
        st.floats(min_value=0.0, max_value=1e4),
    )
    def test_attainable_never_exceeds_either_roof(self, peak, bw, intensity):
        r = Roofline(peak, bw)
        a = r.attainable_gflops(intensity)
        assert a <= peak + 1e-9
        assert a <= bw * intensity + 1e-9 or intensity == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Roofline(0, 1)
        with pytest.raises(ValueError):
            Roofline(1, 1).attainable_gflops(-1)
        with pytest.raises(ValueError):
            Roofline(1, 1).time_seconds(-1, 0)
