"""Tests for phase-resolved power traces."""

import numpy as np
import pytest

from repro.apps import APPLICATIONS
from repro.cluster.cluster import tibidabo
from repro.kernels.registry import get_kernel
from repro.timing.executor import SimulatedExecutor
from repro.timing.measurement import PowerMeter
from repro.timing.power_trace import (
    Phase,
    PowerTrace,
    app_power_trace,
    initialisation_bias,
    meter_trace,
)


def simple_trace():
    return (
        PowerTrace()
        .add("init", 2.0, 4.0, measured=False)
        .add("compute", 6.0, 8.0)
        .add("comm", 2.0, 7.0)
    )


class TestPowerTrace:
    def test_durations(self):
        t = simple_trace()
        assert t.total_duration_s == 10.0
        assert t.measured_duration_s == 8.0

    def test_true_energy(self):
        t = simple_trace()
        assert t.true_energy_j() == pytest.approx(6 * 8 + 2 * 7)
        assert t.true_energy_j(measured_only=False) == pytest.approx(
            8 + 48 + 14
        )

    def test_mean_power(self):
        t = simple_trace()
        assert t.mean_power_w() == pytest.approx(62.0 / 8.0)

    def test_sampling_reproduces_levels(self):
        t = simple_trace()
        samples = t.sample(sample_hz=10.0)
        assert samples.shape[0] == 100
        assert set(np.unique(samples)) == {4.0, 8.0, 7.0}
        assert samples[0] == 4.0
        assert samples[50] == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Phase("p", 0.0, 1.0)
        with pytest.raises(ValueError):
            Phase("p", 1.0, -1.0)
        with pytest.raises(ValueError):
            PowerTrace().mean_power_w()
        with pytest.raises(ValueError):
            simple_trace().sample(0)


class TestMeteredIntegration:
    def test_meter_close_to_truth(self):
        t = simple_trace()
        energy = meter_trace(t, PowerMeter(seed=1))
        assert energy == pytest.approx(t.true_energy_j(), rel=0.02)

    def test_unmeasured_phases_excluded(self):
        t = simple_trace()
        with_init = meter_trace(t, PowerMeter(seed=1), measured_only=False)
        without = meter_trace(t, PowerMeter(seed=1), measured_only=True)
        assert with_init > without

    def test_initialisation_bias(self):
        t = simple_trace()
        # Including init adds 8 J on top of 62 J -> ~12.9%.
        assert initialisation_bias(t) == pytest.approx(8.0 / 62.0)


class TestAppTraces:
    def test_kernel_run_trace(self, t2):
        run = SimulatedExecutor(t2).time_kernel(get_kernel("dmmm"), 1.0)
        trace = app_power_trace(t2, run, 1.0, active_cores=1)
        assert trace.total_duration_s == pytest.approx(run.time_s)
        assert trace.true_energy_j() > 0

    def test_app_run_trace_has_comm_phase(self, cluster96):
        run = APPLICATIONS["HYDRO"].simulate(cluster96, 32)
        t2 = cluster96.nodes[0].platform
        trace = app_power_trace(t2, run, 1.0, active_cores=2)
        names = [p.name for p in trace.phases]
        assert "compute" in names and "communication" in names
        comm = next(p for p in trace.phases if p.name == "communication")
        comp = next(p for p in trace.phases if p.name == "compute")
        assert comm.power_w < comp.power_w

    def test_nfs_init_phase_excluded_like_the_paper(self, t2):
        """Section 3.1: initialisation (NFS-biased) excluded from the
        energy figures; the bias of including it is positive."""
        run = SimulatedExecutor(t2).time_kernel(get_kernel("fft"), 1.0)
        trace = app_power_trace(t2, run, 1.0, 1, init_s=5.0)
        assert trace.phases[0].measured is False
        assert initialisation_bias(trace) > 0
