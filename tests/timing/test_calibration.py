"""Tests for the calibration tables."""

import pytest

from repro.kernels.base import AccessPattern, KernelCharacteristics
from repro.kernels.registry import KERNELS
from repro.timing import calibration


class TestFPEfficiency:
    def test_bounded(self):
        for uarch in calibration.FP_EFFICIENCY_BASE:
            for simd in (0.0, 0.5, 1.0):
                for br in (0.0, 0.5, 1.0):
                    eff = calibration.fp_efficiency(
                        uarch,
                        KernelCharacteristics(
                            simd_fraction=simd, branch_intensity=br
                        ),
                    )
                    assert 0.0 < eff <= 1.0

    def test_achieved_ladder_at_scalar_code(self):
        """Achieved FLOPs/cycle (base x peak) must reproduce the paper's
        single-core ladder: A9 < A15 < SNB, with A15 ~1.3x A9 and SNB
        ~2x A15."""
        peaks = {"Cortex-A9": 1.0, "Cortex-A15": 2.0, "SandyBridge": 8.0}
        ach = {
            u: calibration.FP_EFFICIENCY_BASE[u] * peaks[u] for u in peaks
        }
        assert ach["Cortex-A15"] / ach["Cortex-A9"] == pytest.approx(
            1.31, abs=0.05
        )
        assert ach["SandyBridge"] / ach["Cortex-A15"] == pytest.approx(
            2.0, abs=0.1
        )

    def test_wider_machines_achieve_smaller_fraction(self):
        b = calibration.FP_EFFICIENCY_BASE
        assert b["SandyBridge"] < b["Cortex-A15"] < b["Cortex-A9"]

    def test_simd_helps_avx_most(self):
        ch = KernelCharacteristics(simd_fraction=1.0)
        gain = {
            u: calibration.fp_efficiency(u, ch)
            / calibration.fp_efficiency(u, KernelCharacteristics())
            for u in calibration.FP_EFFICIENCY_BASE
        }
        assert gain["Cortex-A9"] == pytest.approx(1.0)  # no FP64 NEON
        assert gain["SandyBridge"] > gain["Cortex-A15"]

    def test_branches_hurt_a9_most(self):
        ch = KernelCharacteristics(branch_intensity=1.0)
        loss = {
            u: calibration.fp_efficiency(u, KernelCharacteristics())
            / calibration.fp_efficiency(u, ch)
            for u in ("Cortex-A9", "SandyBridge")
        }
        assert loss["Cortex-A9"] > loss["SandyBridge"]

    def test_unknown_uarch_raises(self):
        with pytest.raises(KeyError):
            calibration.fp_efficiency("Bonnell", KernelCharacteristics())


class TestPatternFactors:
    def test_all_patterns_covered(self):
        for table in (
            calibration.PATTERN_BANDWIDTH_FACTOR,
            calibration.PATTERN_L2_FACTOR,
        ):
            assert set(table) == set(AccessPattern)
            for v in table.values():
                assert 0.0 < v <= 1.0

    def test_sequential_is_best(self):
        for table in (
            calibration.PATTERN_BANDWIDTH_FACTOR,
            calibration.PATTERN_L2_FACTOR,
        ):
            assert table[AccessPattern.SEQUENTIAL] == max(table.values())

    def test_random_is_worst(self):
        assert calibration.PATTERN_BANDWIDTH_FACTOR[
            AccessPattern.RANDOM
        ] == min(calibration.PATTERN_BANDWIDTH_FACTOR.values())

    def test_caches_tolerate_strides_better_than_dram(self):
        for pat in (AccessPattern.STRIDED, AccessPattern.RANDOM):
            assert (
                calibration.PATTERN_L2_FACTOR[pat]
                >= calibration.PATTERN_BANDWIDTH_FACTOR[pat]
            )


class TestPasses:
    def test_every_kernel_calibrated(self):
        assert set(calibration.PASSES_PER_ITERATION) == set(KERNELS)

    def test_passes_positive(self):
        for v in calibration.PASSES_PER_ITERATION.values():
            assert isinstance(v, int) and v > 0

    def test_unknown_kernel_defaults_to_one(self):
        assert calibration.passes_for("nonexistent") == 1
