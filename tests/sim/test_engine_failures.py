"""Engine failure primitives: Event.fail, failure propagation through
joins, Process.throw, SimFailure containment, and run_until."""

import pytest

from repro.sim.engine import Engine, Event, Interrupt, SimFailure


class Boom(SimFailure):
    pass


class TestEventFail:
    def test_fail_sets_triggered_and_failed(self):
        eng = Engine()
        ev = eng.event()
        exc = Boom("x")
        ev.fail(exc)
        assert ev.triggered
        assert ev.failed is exc

    def test_fail_twice_rejected(self):
        eng = Engine()
        ev = eng.event()
        ev.fail(Boom())
        with pytest.raises(RuntimeError):
            ev.fail(Boom())
        ev2 = eng.event()
        ev2.succeed(1)
        with pytest.raises(RuntimeError):
            ev2.fail(Boom())

    def test_waiter_has_exception_thrown(self):
        eng = Engine()
        ev = eng.event()
        log = []

        def proc():
            try:
                yield ev
            except Boom:
                log.append(("caught", eng.now))

        eng.process(proc())
        eng.timeout(2.0).callbacks.append(lambda _e: ev.fail(Boom()))
        eng.run()
        assert log == [("caught", 2.0)]

    def test_waiting_on_already_failed_event_throws(self):
        eng = Engine()
        ev = eng.event()
        ev.fail(Boom())
        log = []

        def proc():
            try:
                yield ev
            except Boom:
                log.append("caught")

        eng.process(proc())
        eng.run()
        assert log == ["caught"]


class TestJoinFailurePropagation:
    def test_all_of_fails_with_first_constituent_failure(self):
        eng = Engine()
        e1, e2 = eng.event(), eng.event()
        log = []

        def proc():
            try:
                yield eng.all_of([e1, e2])
            except Boom:
                log.append(eng.now)

        eng.process(proc())
        eng.timeout(1.0).callbacks.append(lambda _e: e1.fail(Boom()))
        # e2 fires AFTER the join already failed; must not re-fire it.
        eng.timeout(2.0).callbacks.append(lambda _e: e2.succeed(5))
        eng.run()
        assert log == [1.0]

    def test_all_of_with_prefailed_constituent(self):
        eng = Engine()
        e1 = eng.event()
        e1.fail(Boom())
        joined = eng.all_of([e1, eng.timeout(1.0)])
        assert joined.triggered
        assert isinstance(joined.failed, Boom)

    def test_all_of_success_unaffected(self):
        eng = Engine()
        joined = eng.all_of([eng.timeout(1.0, "a"), eng.timeout(2.0, "b")])
        eng.run()
        assert joined.value == ["a", "b"]

    def test_any_of_failure_first_propagates(self):
        eng = Engine()
        ev = eng.event()
        log = []

        def proc():
            try:
                yield eng.any_of([ev, eng.timeout(5.0)])
            except Boom:
                log.append(eng.now)

        eng.process(proc())
        eng.timeout(1.0).callbacks.append(lambda _e: ev.fail(Boom()))
        eng.run()
        assert log == [1.0]

    def test_any_of_success_first_ignores_later_failure(self):
        eng = Engine()
        ev = eng.event()

        def proc():
            got = yield eng.any_of([eng.timeout(1.0, "fast"), ev])
            return got

        p = eng.process(proc())
        eng.timeout(2.0).callbacks.append(lambda _e: ev.fail(Boom()))
        eng.run()
        assert p.result == "fast"

    def test_any_of_prefailed_constituent(self):
        eng = Engine()
        ev = eng.event()
        ev.fail(Boom())
        joined = eng.any_of([ev, eng.timeout(1.0)])
        assert joined.triggered
        assert isinstance(joined.failed, Boom)


class TestProcessThrow:
    def test_throw_into_waiting_process(self):
        eng = Engine()
        log = []

        def victim():
            try:
                yield eng.timeout(100.0)
            except Boom:
                log.append(("died", eng.now))
                raise

        p = eng.process(victim())

        def killer():
            yield eng.timeout(3.0)
            p.throw(Boom("killed"))

        eng.process(killer())
        eng.run()
        assert log == [("died", 3.0)]
        assert p.done
        assert isinstance(p.failure, Boom)

    def test_throw_on_done_process_is_noop(self):
        eng = Engine()

        def quick():
            yield eng.timeout(1.0)
            return "done"

        p = eng.process(quick())
        eng.run()
        assert p.done
        p.throw(Boom())  # must not raise or resurrect
        eng.run()
        assert p.result == "done"

    def test_interrupt_still_works(self):
        eng = Engine()
        log = []

        def victim():
            try:
                yield eng.timeout(100.0)
            except Interrupt as i:
                log.append(i.cause)

        p = eng.process(victim())

        def killer():
            yield eng.timeout(1.0)
            p.interrupt("reason")

        eng.process(killer())
        eng.run()
        assert log == ["reason"]


class TestSimFailureContainment:
    def test_simfailure_is_contained(self):
        """A SimFailure kills only its process; the engine keeps going."""
        eng = Engine()

        def dies():
            yield eng.timeout(1.0)
            raise Boom("modelled fault")

        def lives():
            yield eng.timeout(2.0)
            return "alive"

        dead = eng.process(dies())
        ok = eng.process(lives())
        eng.run()  # must not raise
        assert isinstance(dead.failure, Boom)
        assert dead.done
        assert isinstance(dead.completion.failed, Boom)
        assert ok.result == "alive"

    def test_programming_error_still_aborts(self):
        eng = Engine()

        def buggy():
            yield eng.timeout(1.0)
            raise ValueError("bug")

        eng.process(buggy())
        with pytest.raises(ValueError, match="bug"):
            eng.run()

    def test_joiner_sees_contained_failure(self):
        eng = Engine()

        def dies():
            yield eng.timeout(1.0)
            raise Boom()

        dead = eng.process(dies())
        log = []

        def joiner():
            try:
                yield dead
            except Boom:
                log.append("propagated")

        eng.process(joiner())
        eng.run()
        assert log == ["propagated"]


class TestRunUntil:
    def test_stops_at_event_and_abandons_heap(self):
        eng = Engine()
        fired = []

        def job():
            yield eng.timeout(1.0)
            return "done"

        p = eng.process(job())
        eng.timeout(100.0).callbacks.append(lambda _e: fired.append(100))
        t = eng.run_until(p.completion)
        assert t == 1.0
        assert eng.now == 1.0
        assert p.result == "done"
        assert fired == []  # the 100 s timer was abandoned, not fired

    def test_stops_on_failure_too(self):
        eng = Engine()

        def dies():
            yield eng.timeout(1.0)
            raise Boom()

        p = eng.process(dies())
        eng.timeout(50.0)
        t = eng.run_until(p.completion)
        assert t == 1.0
        assert isinstance(p.failure, Boom)

    def test_returns_when_heap_drains_without_event(self):
        eng = Engine()
        ev = eng.event()  # never fired
        eng.timeout(2.0)
        t = eng.run_until(ev)
        assert t == 2.0
        assert not ev.triggered
