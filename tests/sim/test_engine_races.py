"""Regression tests for event-loop races and degenerate inputs.

Two of these reproduce confirmed bugs that aborted or deadlocked
fault-injection runs:

* a ``Process.throw``/``interrupt`` racing a same-timestamp wakeup that
  completes the process double-stepped the finished generator and let
  the exception escape ``Engine.run``;
* ``any_of([])`` returned an event that can never fire, silently
  deadlocking any waiter.

The third aligns ``run(until=t)``'s early-drain behaviour with its
early-exit branch (``now`` must always end at ``t``).
"""

import pytest

from repro.sim.engine import Engine, Interrupt


class TestThrowRacesWakeup:
    def test_throw_after_same_time_completion_does_not_escape(self):
        """Repro from the issue: succeed an event a process is waiting
        on, then throw into it before the queued step fires.  The
        wakeup completes the process, so the queued throw must be
        dropped — not stepped into the finished generator (which let
        the exception escape and abort the whole run)."""
        eng = Engine()
        ev = eng.event()

        def waiter():
            got = yield ev
            return got  # completes on the wakeup

        def driver(target):
            yield eng.timeout(1.0)
            ev.succeed("payload")  # queues the waiter's step at t=1
            target.throw(RuntimeError("boom"))  # queued behind it

        p = eng.process(waiter())
        eng.process(driver(p))
        eng.run()  # must not raise
        assert p.done
        assert p.result == "payload"
        assert p.failure is None

    def test_interrupt_racing_completion_is_dropped(self):
        """Same race through the interrupt() convenience wrapper."""
        eng = Engine()
        ev = eng.event()

        def waiter():
            yield ev
            return "ok"

        def driver(target):
            yield eng.timeout(2.0)
            ev.succeed()
            target.interrupt("too late")

        p = eng.process(waiter())
        eng.process(driver(p))
        eng.run()
        assert p.result == "ok"

    def test_throw_after_rearm_withdraws_stale_wait(self):
        """If the wakeup does NOT complete the process but re-arms it on
        a second event, the queued throw must withdraw the process from
        that event's waiter list — otherwise the second event firing
        later double-steps a wait that no longer exists."""
        eng = Engine()
        ev1, ev2, ev3 = eng.event(), eng.event(), eng.event()
        resumes = []

        def waiter():
            yield ev1
            try:
                yield ev2  # re-armed here when the throw dispatches
                resumes.append("ev2")
            except Interrupt:
                resumes.append("interrupt")
                got = yield ev3
                resumes.append(got)
                return "recovered"

        def driver(target):
            yield eng.timeout(1.0)
            ev1.succeed()  # wakeup queued ...
            target.interrupt("race")  # ... throw queued behind it
            yield eng.timeout(1.0)
            ev2.succeed("stale")  # must NOT step the process again
            yield eng.timeout(1.0)
            ev3.succeed("fresh")

        p = eng.process(waiter())
        eng.process(driver(p))
        eng.run()
        assert resumes == ["interrupt", "fresh"]
        assert p.result == "recovered"

    def test_two_throws_racing_one_completion(self):
        """A second queued throw behind one that finishes the process is
        also dropped."""
        eng = Engine()
        ev = eng.event()

        def waiter():
            try:
                yield ev
            except Interrupt:
                return "first-interrupt"

        def driver(target):
            yield eng.timeout(1.0)
            target.interrupt("one")
            target.interrupt("two")

        p = eng.process(waiter())
        eng.process(driver(p))
        eng.run()
        assert p.result == "first-interrupt"


class TestEmptyJoins:
    def test_any_of_empty_raises(self):
        """any_of([]) can never fire; returning a dead event silently
        deadlocked the waiter, so it must be rejected loudly."""
        eng = Engine()
        with pytest.raises(ValueError, match="any_of"):
            eng.any_of([])

    def test_any_of_empty_generator_raises(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.any_of(e for e in ())

    def test_all_of_empty_succeeds_immediately(self):
        """The vacuous join: documented, supported semantics."""
        eng = Engine()
        joined = eng.all_of([])
        assert joined.triggered
        assert joined.value == []
        assert joined.failed is None


class TestRunUntilClock:
    def test_run_until_advances_clock_when_heap_drains_early(self):
        """run(until=t) with all work finishing before t must still
        leave now == t, matching the early-exit branch."""
        eng = Engine()
        eng.timeout(1.0)
        assert eng.run(until=5.0) == 5.0
        assert eng.now == 5.0

    def test_run_until_on_empty_heap_advances_clock(self):
        eng = Engine()
        assert eng.run(until=3.0) == 3.0
        assert eng.now == 3.0

    def test_run_until_traced_matches_untraced(self):
        from repro.obs.recorder import recording

        with recording():
            eng = Engine()
            eng.timeout(1.0)
            assert eng.run(until=5.0) == 5.0
            assert eng.now == 5.0

    def test_unbounded_run_still_stops_at_last_event(self):
        eng = Engine()
        eng.timeout(2.0)
        assert eng.run() == 2.0

    def test_resume_after_early_drain(self):
        """Work scheduled after an early-drained bounded run starts from
        the advanced clock."""
        eng = Engine()
        eng.timeout(1.0)
        eng.run(until=10.0)
        fired = []
        ev = eng.timeout(1.0)
        ev.callbacks.append(lambda e: fired.append(eng.now))
        eng.run()
        assert fired == [11.0]
