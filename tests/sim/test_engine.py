"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, Interrupt


class TestEvents:
    def test_timeout_ordering(self):
        eng = Engine()
        log = []

        def proc(name, delay):
            yield eng.timeout(delay)
            log.append((name, eng.now))

        eng.process(proc("b", 2.0))
        eng.process(proc("a", 1.0))
        eng.run()
        assert log == [("a", 1.0), ("b", 2.0)]

    def test_ties_resolve_in_schedule_order(self):
        eng = Engine()
        log = []

        def proc(name):
            yield eng.timeout(1.0)
            log.append(name)

        for name in "abc":
            eng.process(proc(name))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_event_value_passthrough(self):
        eng = Engine()
        out = {}

        def proc():
            v = yield eng.timeout(0.5, value="payload")
            out["v"] = v

        eng.process(proc())
        eng.run()
        assert out["v"] == "payload"

    def test_event_cannot_fire_twice(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_waiting_on_triggered_event_resumes_immediately(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("done")
        out = {}

        def proc():
            out["v"] = yield ev

        eng.process(proc())
        eng.run()
        assert out["v"] == "done"

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().timeout(-1)


class TestProcesses:
    def test_return_value_on_completion(self):
        eng = Engine()

        def proc():
            yield eng.timeout(1.0)
            return 42

        p = eng.process(proc())
        eng.run()
        assert p.done
        assert p.result == 42

    def test_waiting_on_another_process(self):
        eng = Engine()

        def child():
            yield eng.timeout(2.0)
            return "child-result"

        def parent():
            c = eng.process(child())
            v = yield c
            return v

        p = eng.process(parent())
        eng.run()
        assert p.result == "child-result"

    def test_all_of_join(self):
        eng = Engine()

        def child(d):
            yield eng.timeout(d)
            return d

        def parent():
            kids = [eng.process(child(d)) for d in (3.0, 1.0, 2.0)]
            vals = yield eng.all_of(kids)
            return vals

        p = eng.process(parent())
        eng.run()
        assert p.result == [3.0, 1.0, 2.0]
        assert eng.now == 3.0

    def test_all_of_already_triggered(self):
        eng = Engine()
        evs = [eng.event() for _ in range(2)]
        for i, e in enumerate(evs):
            e.succeed(i)
        joined = eng.all_of(evs)
        assert joined.triggered
        assert joined.value == [0, 1]

    def test_yielding_garbage_raises(self):
        eng = Engine()

        def proc():
            yield "not-an-event"

        eng.process(proc())
        with pytest.raises(TypeError):
            eng.run()

    def test_interrupt(self):
        eng = Engine()
        caught = {}

        def sleeper():
            try:
                yield eng.timeout(100.0)
            except Interrupt as exc:
                caught["cause"] = exc.cause
                return "interrupted"

        def killer(target):
            yield eng.timeout(1.0)
            target.interrupt("stop")

        p = eng.process(sleeper())
        eng.process(killer(p))
        eng.run()
        assert caught["cause"] == "stop"
        assert p.result == "interrupted"
        # The process finished at t=1 even though its abandoned timer
        # still fires later (timers are not cancelled, as in SimPy).
        assert p.done


class TestRunControl:
    def test_run_until(self):
        eng = Engine()
        log = []

        def proc():
            for _ in range(5):
                yield eng.timeout(1.0)
                log.append(eng.now)

        eng.process(proc())
        eng.run(until=2.5)
        assert log == [1.0, 2.0]
        assert eng.now == 2.5
        eng.run()
        assert log == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_determinism(self):
        def build():
            eng = Engine()
            order = []

            def proc(name, delays):
                for d in delays:
                    yield eng.timeout(d)
                    order.append((name, eng.now))

            eng.process(proc("x", [0.5, 0.5, 1.0]))
            eng.process(proc("y", [1.0, 0.5]))
            eng.run()
            return order

        assert build() == build()


class TestAnyOf:
    def test_first_event_wins(self):
        eng = Engine()

        def child(d):
            yield eng.timeout(d)
            return d

        def parent():
            kids = [eng.process(child(d)) for d in (3.0, 1.0, 2.0)]
            first = yield eng.any_of(kids)
            return first, eng.now

        p = eng.process(parent())
        eng.run()
        assert p.result[0] == 1.0
        # Parent resumed at the first completion even though the run
        # continues to drain the remaining timers.
        assert p.result[1] == 1.0

    def test_already_triggered(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("early")
        joined = eng.any_of([ev, eng.event()])
        assert joined.triggered and joined.value == "early"

    def test_later_firings_ignored(self):
        eng = Engine()
        a, b = eng.event(), eng.event()
        joined = eng.any_of([a, b])
        a.succeed(1)
        b.succeed(2)
        assert joined.value == 1
