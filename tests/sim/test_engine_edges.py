"""Edge-case tests for the event engine: ordering of zero-delay
timeouts vs. readied waiters, interrupts mid-wait, degenerate
``all_of``/``any_of`` inputs, and past-scheduling rejection."""

import pytest

from repro.sim.engine import Engine, Interrupt


class TestTimeoutZeroOrdering:
    def test_timeout_zero_fires_before_later_ready(self):
        """A timeout(0) pushed before an event's waiters are readied
        keeps its FIFO position: heap ties break by sequence number, and
        ``_ready`` pushes at the *current* sequence, not ahead of it."""
        eng = Engine()
        log = []
        ev = eng.event()

        def waiter():
            yield ev
            log.append("waiter")

        def driver():
            t0 = eng.timeout(0.0)  # scheduled first ...
            ev.succeed()  # ... then the waiter is readied
            yield t0
            log.append("driver")

        eng.process(waiter())
        eng.process(driver())
        eng.run()
        # waiter's _ready was pushed after t0's succeed but before the
        # driver's own resume; all at t=0, strictly in push order.
        assert log == ["waiter", "driver"]
        assert eng.now == 0.0

    def test_ready_before_timeout_zero_keeps_order(self):
        """Symmetric case: succeed first, then create the timeout(0) —
        the readied waiter must now run first."""
        eng = Engine()
        log = []
        ev = eng.event()

        def waiter():
            yield ev
            log.append("waiter")

        def driver():
            ev.succeed()
            yield eng.timeout(0.0)
            log.append("driver")

        eng.process(waiter())
        eng.process(driver())
        eng.run()
        assert log == ["waiter", "driver"]


class TestInterruptWhileWaiting:
    def test_interrupted_waiter_not_resumed_when_event_fires(self):
        """The interrupt withdraws the process from the event's waiter
        list; the event firing later must not step the process again."""
        eng = Engine()
        ev = eng.event()
        resumes = []

        def sleeper():
            try:
                yield ev
                resumes.append("value")
            except Interrupt:
                resumes.append("interrupt")
                # Keep living past the interrupt so a double resume
                # would be observable as a second append.
                yield eng.timeout(5.0)
                resumes.append("woke")

        def driver(target):
            yield eng.timeout(1.0)
            target.interrupt("bail")
            yield eng.timeout(1.0)
            ev.succeed("late")  # fires after the interrupt

        p = eng.process(sleeper())
        eng.process(driver(p))
        eng.run()
        assert resumes == ["interrupt", "woke"]
        assert p.done

    def test_interrupt_while_waiting_on_timeout(self):
        eng = Engine()

        def sleeper():
            try:
                yield eng.timeout(100.0)
            except Interrupt as exc:
                return ("stopped", exc.cause, eng.now)

        def killer(target):
            yield eng.timeout(2.0)
            target.interrupt("now")

        p = eng.process(sleeper())
        eng.process(killer(p))
        eng.run()
        assert p.result == ("stopped", "now", 2.0)

    def test_interrupt_done_process_is_noop(self):
        eng = Engine()

        def quick():
            yield eng.timeout(0.5)
            return "ok"

        p = eng.process(quick())
        eng.run()
        p.interrupt("too late")
        eng.run()
        assert p.result == "ok"


class TestJoinEdges:
    def test_all_of_mixed_triggered_and_pending(self):
        eng = Engine()
        done = eng.event()
        done.succeed("early")
        pending = eng.event()
        joined = eng.all_of([done, pending])
        assert not joined.triggered
        pending.succeed("late")
        assert joined.triggered
        assert joined.value == ["early", "late"]

    def test_all_of_duplicate_events(self):
        eng = Engine()
        ev = eng.event()
        joined = eng.all_of([ev, ev, ev])
        ev.succeed(7)
        assert joined.triggered
        assert joined.value == [7, 7, 7]

    def test_all_of_empty(self):
        eng = Engine()
        joined = eng.all_of([])
        assert joined.triggered
        assert joined.value == []

    def test_any_of_duplicate_events(self):
        eng = Engine()
        ev = eng.event()
        joined = eng.any_of([ev, ev])
        ev.succeed(3)
        assert joined.triggered
        assert joined.value == 3

    def test_any_of_mixed_triggered_first_wins(self):
        eng = Engine()
        fresh = eng.event()
        done = eng.event()
        done.succeed("winner")
        joined = eng.any_of([fresh, done])
        assert joined.triggered
        assert joined.value == "winner"
        # No callback was ever installed on the still-pending event.
        assert fresh.callbacks == []

    def test_any_of_losers_release_the_join(self):
        """The leak fix: once the first event fires, the losing events
        must no longer hold a callback referencing the joined event."""
        eng = Engine()
        fast = eng.event()
        slow_a, slow_b = eng.event(), eng.event()
        joined = eng.any_of([fast, slow_a, slow_b])
        assert len(slow_a.callbacks) == 1
        fast.succeed("won")
        assert joined.value == "won"
        assert slow_a.callbacks == []
        assert slow_b.callbacks == []
        assert fast.callbacks == []  # fired events drop their lists too
        # Losers firing later is harmless.
        slow_a.succeed("late")
        slow_b.succeed("later")
        assert joined.value == "won"

    def test_any_of_duplicate_losers_fully_removed(self):
        eng = Engine()
        fast = eng.event()
        slow = eng.event()
        joined = eng.any_of([fast, slow, slow])
        fast.succeed(1)
        assert slow.callbacks == []
        slow.succeed(2)
        assert joined.value == 1


class TestPastScheduling:
    def test_push_in_the_past_rejected(self):
        eng = Engine()
        eng.timeout(2.0)
        eng.run()
        assert eng.now == 2.0
        with pytest.raises(ValueError, match="past"):
            eng._push(1.0, lambda: None)

    def test_push_at_now_allowed(self):
        eng = Engine()
        eng.timeout(1.0)
        eng.run()
        eng._push(eng.now, lambda: None)  # "now" is never "the past"
        eng.run()

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Engine().timeout(-0.1)
