"""Timer cancellation: heap hygiene for the ``recv(timeout=)`` pattern.

Pre-fix, every timed receive that was satisfied by a message left its
losing watchdog timer armed in the scheduler heap.  Two observable
bugs, both reproduced here against the old behaviour:

* the heap grew without bound in long-running apps (one dead entry per
  timed receive, pinned until its far-future expiry), and
* ``Engine.run``'s drain — and therefore a run's makespan — stretched
  out to the *last dead watchdog* instead of the last real event.
"""

import pytest

from repro.mpi.api import MPIWorld, SyntheticPayload, UniformNetwork
from repro.net.protocol import TCP_IP, ProtocolStack
from repro.sim.engine import Engine


class TestEventCancel:
    def test_cancel_marks_and_is_idempotent(self):
        eng = Engine()
        t = eng.timeout(100.0)
        t.cancel()
        assert t.cancelled and not t.triggered
        t.cancel()  # idempotent
        assert eng._cancelled == 1

    def test_cancelled_timer_never_fires_and_does_not_advance_clock(self):
        eng = Engine()
        fired = []
        watchdog = eng.timeout(1000.0)
        watchdog.callbacks.append(lambda ev: fired.append("watchdog"))
        eng.timeout(1.0).callbacks.append(lambda ev: fired.append("real"))
        watchdog.cancel()
        eng.run()
        assert fired == ["real"]
        assert eng.now == pytest.approx(1.0)  # not 1000.0

    def test_cancel_after_trigger_is_a_noop(self):
        eng = Engine()
        t = eng.timeout(0.5)
        eng.run()
        assert t.triggered
        t.cancel()
        assert not t.cancelled
        assert eng._cancelled == 0

    def test_succeed_on_cancelled_event_rejected(self):
        eng = Engine()
        t = eng.timeout(5.0)
        t.cancel()
        with pytest.raises(RuntimeError, match="cancelled"):
            t.succeed()
        with pytest.raises(RuntimeError, match="cancelled"):
            t.fail(ValueError("x"))

    def test_run_until_skips_cancelled_timers(self):
        eng = Engine()
        watchdog = eng.timeout(1000.0)
        done = eng.timeout(2.0)
        watchdog.cancel()
        eng.run_until(done)
        assert eng.now == pytest.approx(2.0)


class TestHeapHygiene:
    def test_heap_stays_bounded_under_cancel_churn(self):
        """The recv(timeout=) shape: a long-lived loop arming a
        far-future watchdog per iteration and cancelling it on the
        fast-path completion.  Pre-fix the heap ended the loop with one
        dead entry per iteration (~5000); with lazy deletion plus
        compaction it stays O(live timers)."""
        eng = Engine()
        iters = 5_000
        peak = 0

        def worker():
            nonlocal peak
            for _ in range(iters):
                watchdog = eng.timeout(1e6)
                yield eng.timeout(0.001)  # the "message" always wins
                watchdog.cancel()
                peak = max(peak, len(eng._heap))

        eng.process(worker())
        eng.run()
        assert peak < 256, f"heap grew to {peak} entries"
        assert eng._heap == []
        assert eng.now == pytest.approx(iters * 0.001)  # not 1e6

    def test_compaction_preserves_dispatch_order(self):
        """Compaction re-heapifies the entry list; (time, seq) is a
        total order so firing order must be unchanged."""
        eng = Engine()
        fired: list[int] = []
        keep = []
        for i in range(200):
            t = eng.timeout(1.0 + i * 0.01, value=i)
            t.callbacks.append(lambda ev: fired.append(ev.value))
            keep.append(t)
        # Cancel every other timer; enough to trip the >64 threshold.
        for i, t in enumerate(keep):
            if i % 2:
                t.cancel()
        eng.run()
        assert fired == [i for i in range(200) if i % 2 == 0]


class TestRecvTimeoutHeap:
    def test_satisfied_timed_recvs_leave_no_dead_timers(self):
        """MPI-level regression: 100 timed receives, each satisfied
        promptly, must not stretch the makespan to the watchdog horizon
        (pre-fix: makespan_s == 100.0, the timeout value)."""
        stack = ProtocolStack(TCP_IP, core_name="Cortex-A9", freq_ghz=1.0)
        w = MPIWorld(2, UniformNetwork(stack))
        rounds = 100

        def prog(ctx):
            peer = 1 - ctx.rank
            for _ in range(rounds):
                if ctx.rank == 0:
                    msg = yield from ctx.recv(peer, timeout=100.0)
                    assert msg.nbytes == 64
                else:
                    yield from ctx.send(peer, SyntheticPayload(64))
                    yield ctx.compute(1e-6)
            return ctx.now

        res = w.run(prog)
        assert res.makespan_s < 1.0  # pre-fix: 100.0
        assert w.engine._heap == []
