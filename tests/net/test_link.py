"""Tests for physical link models."""

import pytest

from repro.net.link import FAST_ETHERNET, GBE, INFINIBAND_40G, TEN_GBE, Link


class TestStandardLinks:
    def test_gbe_raw_rate_is_125_mbs(self):
        """Section 4.1: 'the maximum bandwidth that can be achieved on
        the 1GbE link is 125 MB/s'."""
        assert GBE.raw_bandwidth_mbs == pytest.approx(125.0)

    def test_payload_below_raw(self):
        for link in (FAST_ETHERNET, GBE, TEN_GBE, INFINIBAND_40G):
            assert link.payload_bandwidth_mbs < link.raw_bandwidth_mbs

    def test_ordering(self):
        rates = [
            FAST_ETHERNET.bandwidth_gbps,
            GBE.bandwidth_gbps,
            TEN_GBE.bandwidth_gbps,
            INFINIBAND_40G.bandwidth_gbps,
        ]
        assert rates == sorted(rates)

    def test_wire_time_per_byte(self):
        assert GBE.wire_ns_per_byte() == pytest.approx(8.0)
        assert TEN_GBE.wire_ns_per_byte() == pytest.approx(0.8)

    def test_frame_time(self):
        # 1500 B at 8 ns/B = 12 µs.
        assert GBE.frame_time_us() == pytest.approx(12.0)
        assert GBE.frame_time_us(150) == pytest.approx(1.2)

    def test_frame_time_capped_at_mtu(self):
        assert GBE.frame_time_us(1 << 20) == GBE.frame_time_us(1500)


class TestValidation:
    def test_invalid_links(self):
        with pytest.raises(ValueError):
            Link("bad", 0.0)
        with pytest.raises(ValueError):
            Link("bad", 1.0, efficiency=0.0)
        with pytest.raises(ValueError):
            Link("bad", 1.0, mtu_bytes=0)
