"""Tests pinning the protocol stacks to Figure 7."""

import pytest

from repro.net.link import GBE, TEN_GBE
from repro.net.nic import ONBOARD, PCIE, USB3, attachment_for
from repro.net.protocol import (
    CPU_PROTOCOL_SPEED,
    OPEN_MX,
    TCP_IP,
    Protocol,
    ProtocolStack,
)


def stack(proto=TCP_IP, att=PCIE, core="Cortex-A9", freq=1.0):
    return ProtocolStack(proto, att, core_name=core, freq_ghz=freq)


class TestFigure7Latency:
    """Small-message one-way latencies (±12%)."""

    @pytest.mark.parametrize(
        "proto,att,core,freq,paper_us",
        [
            (TCP_IP, PCIE, "Cortex-A9", 1.0, 100.0),
            (OPEN_MX, PCIE, "Cortex-A9", 1.0, 65.0),
            (TCP_IP, USB3, "Cortex-A15", 1.0, 125.0),
            (OPEN_MX, USB3, "Cortex-A15", 1.0, 93.0),
        ],
    )
    def test_latency_calibration(self, proto, att, core, freq, paper_us):
        s = stack(proto, att, core, freq)
        assert s.small_message_latency_us() == pytest.approx(
            paper_us, rel=0.12
        )

    def test_exynos_frequency_cuts_latency_ten_percent(self):
        """Section 4.1: raising Exynos from 1.0 to 1.4 GHz reduces
        latency ~10% — most of the cost is hardware/USB."""
        lat_1_0 = stack(TCP_IP, USB3, "Cortex-A15", 1.0).small_message_latency_us()
        lat_1_4 = stack(TCP_IP, USB3, "Cortex-A15", 1.4).small_message_latency_us()
        assert (lat_1_0 - lat_1_4) / lat_1_0 == pytest.approx(0.10, abs=0.03)

    def test_openmx_always_beats_tcp(self):
        for att, core in ((PCIE, "Cortex-A9"), (USB3, "Cortex-A15")):
            assert (
                stack(OPEN_MX, att, core).small_message_latency_us()
                < stack(TCP_IP, att, core).small_message_latency_us()
            )

    def test_usb_attachment_penalty(self):
        """Exynos latency higher than Tegra despite the faster core —
        everything crosses the USB stack."""
        assert (
            stack(TCP_IP, USB3, "Cortex-A15").small_message_latency_us()
            > stack(TCP_IP, PCIE, "Cortex-A9").small_message_latency_us()
        )


class TestFigure7Bandwidth:
    """Large-message effective bandwidth (±20%)."""

    @pytest.mark.parametrize(
        "proto,att,core,freq,paper_mbs",
        [
            (TCP_IP, PCIE, "Cortex-A9", 1.0, 65.0),
            (OPEN_MX, PCIE, "Cortex-A9", 1.0, 117.0),
            (TCP_IP, USB3, "Cortex-A15", 1.0, 63.0),
            (OPEN_MX, USB3, "Cortex-A15", 1.0, 69.0),
            (OPEN_MX, USB3, "Cortex-A15", 1.4, 75.0),
        ],
    )
    def test_bandwidth_calibration(self, proto, att, core, freq, paper_mbs):
        s = stack(proto, att, core, freq)
        assert s.effective_bandwidth_mbs(1 << 22) == pytest.approx(
            paper_mbs, rel=0.20
        )

    def test_openmx_reaches_93_percent_of_wire(self):
        """Section 4.1: Open-MX on Tegra 2 hits 117 MB/s = 93% of the
        125 MB/s theoretical maximum."""
        s = stack(OPEN_MX, PCIE, "Cortex-A9", 1.0)
        frac = s.effective_bandwidth_mbs(1 << 24) / GBE.raw_bandwidth_mbs
        assert frac == pytest.approx(0.93, abs=0.05)

    def test_tcp_wastes_forty_percent(self):
        """'utilizing less than 60% of the available bandwidth'."""
        s = stack(TCP_IP, PCIE, "Cortex-A9", 1.0)
        frac = s.effective_bandwidth_mbs(1 << 24) / GBE.raw_bandwidth_mbs
        assert frac < 0.60

    def test_bandwidth_grows_with_message_size(self):
        s = stack()
        sizes = [1 << i for i in range(4, 24, 4)]
        bws = [s.effective_bandwidth_mbs(n) for n in sizes]
        assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))

    def test_asymptotic_bandwidth_below_link(self):
        for proto in (TCP_IP, OPEN_MX):
            for att in (PCIE, USB3, ONBOARD):
                for core in CPU_PROTOCOL_SPEED:
                    s = ProtocolStack(proto, att, core_name=core)
                    assert (
                        s.asymptotic_bandwidth_mbs() <= GBE.raw_bandwidth_mbs
                    )


class TestRendezvous:
    def test_threshold_is_32k(self):
        assert OPEN_MX.rendezvous_bytes == 32 * 1024

    def test_latency_jump_at_threshold(self):
        s = stack(OPEN_MX, PCIE, "Cortex-A9")
        below = s.one_way_latency_us(OPEN_MX.rendezvous_bytes - 256)
        above = s.one_way_latency_us(OPEN_MX.rendezvous_bytes)
        assert above > below  # extra control round-trip

    def test_rendezvous_lowers_per_byte_cost(self):
        s = stack(OPEN_MX, PCIE, "Cortex-A9")
        assert s.ns_per_byte(1 << 20) < s.ns_per_byte(1 << 10)

    def test_tcp_never_rendezvous(self):
        assert TCP_IP.rendezvous_bytes is None
        s = stack(TCP_IP, PCIE, "Cortex-A9")
        assert s.ns_per_byte(1 << 20) == s.ns_per_byte(16)


class TestStackMechanics:
    def test_cpu_occupancy_below_latency(self):
        s = stack()
        assert s.cpu_occupancy_s(1024) <= s.one_way_latency_us(1024) * 1e-6

    def test_faster_core_less_software_time(self):
        slow = stack(core="Cortex-A9").software_latency_us()
        fast = stack(core="SandyBridge").software_latency_us()
        assert fast < slow

    def test_ten_gbe_shifts_the_roof(self):
        s1 = ProtocolStack(OPEN_MX, PCIE, link=GBE, core_name="SandyBridge")
        s10 = ProtocolStack(OPEN_MX, PCIE, link=TEN_GBE, core_name="SandyBridge")
        assert (
            s10.asymptotic_bandwidth_mbs() > 4 * s1.asymptotic_bandwidth_mbs()
        )

    def test_describe(self):
        assert "Open-MX" in stack(OPEN_MX).describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            stack(freq=0)
        with pytest.raises(KeyError):
            ProtocolStack(TCP_IP, PCIE, core_name="Itanium")
        with pytest.raises(ValueError):
            stack().one_way_latency_us(-1)
        with pytest.raises(ValueError):
            stack().effective_bandwidth_mbs(0)
        with pytest.raises(ValueError):
            Protocol("bad", -1, 0, 0, 0)

    def test_attachment_lookup(self):
        assert attachment_for("pcie") is PCIE
        assert attachment_for("USB3") is USB3
        with pytest.raises(KeyError):
            attachment_for("thunderbolt")
