"""Tests for the Energy Efficient Ethernet model ([36])."""

import pytest

from repro.net.eee import EEELink


class TestEnergy:
    def test_idle_link_saves_most_phy_power(self):
        eee = EEELink()
        assert eee.energy_saving_fraction(0.0) == pytest.approx(0.9)

    def test_busy_link_saves_nothing(self):
        assert EEELink().energy_saving_fraction(1.0) == pytest.approx(0.0)

    def test_saving_monotone_in_idleness(self):
        eee = EEELink()
        savings = [eee.energy_saving_fraction(u) for u in (0.0, 0.3, 0.7, 1.0)]
        assert savings == sorted(savings, reverse=True)

    def test_utilisation_validated(self):
        with pytest.raises(ValueError):
            EEELink().phy_power_w(1.5)


class TestLatencyCost:
    def test_wakeup_adds_execution_time(self):
        eee = EEELink()
        penalty = eee.execution_time_penalty(base_latency_us=65.0)
        assert penalty > 0.05  # wake-up on every message hurts

    def test_awake_link_costs_nothing(self):
        eee = EEELink()
        assert eee.execution_time_penalty(65.0, asleep=False) == 0.0

    def test_slower_nodes_hide_the_wakeup(self):
        eee = EEELink()
        snb = eee.execution_time_penalty(65.0, relative_cpu_speed=1.0)
        arndale = eee.execution_time_penalty(65.0, relative_cpu_speed=0.5)
        assert arndale < snb

    def test_hpc_verdict_is_negative(self):
        """The [36] conclusion: for latency-sensitive HPC traffic the
        PHY saving does not pay for the execution-time cost."""
        eee = EEELink()
        assert not eee.worth_it(
            utilisation=0.2, base_latency_us=65.0, relative_cpu_speed=1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            EEELink(phy_lpi_w=1.0, phy_active_w=0.5)
        with pytest.raises(ValueError):
            EEELink(wake_us=-1)
        with pytest.raises(ValueError):
            EEELink().execution_time_penalty(-1)
