"""Tests for switches and the Tibidabo tree topology."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.switch import Switch
from repro.net.topology import TreeTopology


class TestSwitch:
    def test_oversubscription_twelve_to_one(self):
        assert Switch().oversubscription == pytest.approx(12.0)

    def test_uplink_bandwidth(self):
        assert Switch().uplink_bandwidth_gbps == pytest.approx(4.0)

    def test_traversal_latency(self):
        sw = Switch()
        assert sw.traversal_us(64) == pytest.approx(3.0 + 64 * 8e-3)

    def test_traversal_capped_at_mtu(self):
        sw = Switch()
        assert sw.traversal_us(1 << 20) == sw.traversal_us(1500)

    def test_uplink_fair_share(self):
        sw = Switch()
        assert sw.uplink_share_mbs(1) == pytest.approx(
            sw.link.payload_bandwidth_mbs
        )
        assert sw.uplink_share_mbs(48) < sw.uplink_share_mbs(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Switch(ports=0)
        with pytest.raises(ValueError):
            Switch().uplink_share_mbs(0)
        with pytest.raises(ValueError):
            Switch().traversal_us(-1)


class TestTibidaboTopology:
    """Section 4: 192 nodes, 48-port switches, 8 Gb/s bisection,
    maximum three hops."""

    def test_leaf_count(self):
        assert TreeTopology(192).n_leaves == 4

    def test_bisection_bandwidth_8gbps(self):
        assert TreeTopology(192).bisection_bandwidth_gbps() == pytest.approx(
            8.0
        )

    def test_max_three_hops(self):
        assert TreeTopology(192).max_hops() == 3

    def test_hop_values(self):
        t = TreeTopology(192)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 1) == 1  # same leaf
        assert t.hops(0, 47) == 1
        assert t.hops(0, 48) == 3  # across the core
        assert t.hops(0, 191) == 3

    def test_single_leaf_cluster(self):
        t = TreeTopology(8)
        assert t.n_leaves == 1
        assert t.max_hops() == 1
        assert t.hops(0, 7) == 1
        assert t.bisection_bandwidth_gbps() == pytest.approx(4.0)

    def test_path_latency_scales_with_hops(self):
        t = TreeTopology(192)
        assert t.path_latency_us(0, 48) == pytest.approx(
            3 * t.path_latency_us(0, 1)
        )

    def test_crosses_core(self):
        t = TreeTopology(192)
        assert not t.crosses_core(0, 47)
        assert t.crosses_core(0, 48)

    @given(
        st.integers(min_value=2, max_value=192),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_hops_symmetric_and_bounded(self, n, data):
        t = TreeTopology(n)
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert t.hops(a, b) == t.hops(b, a)
        assert t.hops(a, b) in (0, 1, 3)
        assert t.hops(a, b) <= t.max_hops()

    def test_node_out_of_range(self):
        with pytest.raises(ValueError):
            TreeTopology(10).hops(0, 10)

    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            TreeTopology(0)
