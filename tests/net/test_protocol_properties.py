"""Property-based invariants of the protocol stacks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.link import FAST_ETHERNET, GBE, INFINIBAND_40G, TEN_GBE
from repro.net.nic import ONBOARD, PCIE, USB3
from repro.net.protocol import (
    CPU_PROTOCOL_SPEED,
    OPEN_MX,
    TCP_IP,
    ProtocolStack,
)

stacks = st.builds(
    ProtocolStack,
    protocol=st.sampled_from([TCP_IP, OPEN_MX]),
    attachment=st.sampled_from([PCIE, USB3, ONBOARD]),
    link=st.sampled_from([FAST_ETHERNET, GBE, TEN_GBE, INFINIBAND_40G]),
    core_name=st.sampled_from(sorted(CPU_PROTOCOL_SPEED)),
    freq_ghz=st.floats(min_value=0.3, max_value=3.5),
)


@given(stack=stacks, a=st.integers(0, 1 << 22), b=st.integers(0, 1 << 22))
@settings(max_examples=80, deadline=None)
def test_latency_monotone_in_size(stack, a, b):
    small, big = sorted((a, b))
    assert stack.one_way_latency_us(small) <= (
        stack.one_way_latency_us(big) + 1e-9
    )


@given(stack=stacks, size=st.integers(1, 1 << 24))
@settings(max_examples=80, deadline=None)
def test_bandwidth_never_exceeds_wire(stack, size):
    assert (
        stack.effective_bandwidth_mbs(size)
        <= stack.link.raw_bandwidth_mbs + 1e-9
    )


@given(stack=stacks, size=st.integers(0, 1 << 24))
@settings(max_examples=60, deadline=None)
def test_latency_bounded_below_by_hardware(stack, size):
    assert stack.one_way_latency_us(size) >= stack.hardware_latency_us()


@given(stack=stacks, size=st.integers(0, 1 << 20))
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_latency(stack, size):
    assert (
        stack.cpu_occupancy_s(size)
        <= stack.one_way_latency_us(size) * 1e-6 + 1e-12
    )


@given(
    stack=stacks,
    size=st.integers(0, 1 << 20),
    boost=st.floats(min_value=1.05, max_value=3.0),
)
@settings(max_examples=60, deadline=None)
def test_faster_cpu_never_hurts(stack, size, boost):
    faster = ProtocolStack(
        stack.protocol,
        stack.attachment,
        link=stack.link,
        core_name=stack.core_name,
        freq_ghz=stack.freq_ghz * boost,
    )
    assert faster.one_way_latency_us(size) <= (
        stack.one_way_latency_us(size) + 1e-9
    )


@given(size=st.integers(1, 1 << 24))
@settings(max_examples=60, deadline=None)
def test_openmx_dominates_tcp_everywhere(size):
    """On identical hardware Open-MX is never slower than TCP/IP, at any
    message size (the Figure 7 ordering as a universal property)."""
    tcp = ProtocolStack(TCP_IP, PCIE, core_name="Cortex-A9")
    omx = ProtocolStack(OPEN_MX, PCIE, core_name="Cortex-A9")
    assert omx.one_way_latency_us(size) <= tcp.one_way_latency_us(size)
