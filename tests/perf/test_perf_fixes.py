"""Regression tests for the perf-harness latent bugs and the sharded
``repro bench --jobs N`` path."""

import json

import pytest

from repro.perf.bench import BenchResult, suite_doc, validate_bench_doc
from repro.perf.compare import load_baseline, results_by_name


def _doc(suite, *names):
    return suite_doc(
        suite, [BenchResult(n, 1, 1.0, 1.0, 1, 1024) for n in names]
    )


class TestResultsByNameCollision:
    def test_duplicate_across_docs_raises(self):
        """Pre-fix a duplicate name silently shadowed the earlier
        measurement, so the regression gate checked the wrong number."""
        with pytest.raises(ValueError, match="duplicate benchmark"):
            results_by_name([_doc("s1", "shared.x"), _doc("s2", "shared.x")])

    def test_error_names_both_suites(self):
        with pytest.raises(ValueError, match="'s1'.*'s2'"):
            results_by_name([_doc("s1", "shared.x"), _doc("s2", "shared.x")])

    def test_distinct_names_still_flatten(self):
        flat = results_by_name([_doc("s1", "s1.a"), _doc("s2", "s2.b")])
        assert set(flat) == {"s1.a", "s2.b"}


class TestCorruptBaseline:
    def test_truncated_json_gets_actionable_error(self, tmp_path):
        """Pre-fix a corrupt baseline surfaced as a raw JSONDecodeError
        with no hint of which file or how to recover."""
        path = tmp_path / "baseline.json"
        path.write_text('{"schema_version": 1, "benchmarks": {"a"')
        with pytest.raises(ValueError, match="update-baseline") as e:
            load_baseline(path)
        assert str(path) in str(e.value)
        assert isinstance(e.value.__cause__, json.JSONDecodeError)

    def test_missing_file_error_unchanged(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="update-baseline"):
            load_baseline(tmp_path / "nope.json")


class TestSuiteUnits:
    def test_unit_names_cover_every_suite_benchmark(self):
        from repro.perf.suites import SHARDABLE_SUITES, SUITES, suite_unit_names

        for suite in SHARDABLE_SUITES:
            assert suite in SUITES
            names = suite_unit_names(suite, repeats=1, quick=True)
            assert names and len(set(names)) == len(names)
            assert all(n.startswith(f"{suite}.") for n in names)

    def test_unknown_suite_rejected(self):
        from repro.perf.suites import run_suite_unit, suite_unit_names

        with pytest.raises(ValueError, match="work units"):
            suite_unit_names("campaign")
        with pytest.raises(ValueError, match="work units"):
            run_suite_unit("campaign", "x")
        with pytest.raises(ValueError, match="no benchmark"):
            run_suite_unit("mpi", "mpi.nope")

    def test_engine_unit_carries_live_seed_ref(self):
        from repro.perf.suites import run_suite_unit

        result, seed_ops = run_suite_unit(
            "engine", "engine.timeouts", repeats=1, quick=True
        )
        assert result.name == "engine.timeouts"
        assert seed_ops is not None and seed_ops > 0

    def test_mpi_unit_has_no_seed_ref(self):
        from repro.perf.suites import run_suite_unit

        result, seed_ops = run_suite_unit(
            "mpi", "mpi.pingpong_small", repeats=1, quick=True
        )
        assert result.ops > 0 and seed_ops is None


class TestBenchJobsCli:
    def test_sharded_run_writes_valid_docs(self, tmp_path):
        from repro.perf.cli import bench_main

        assert bench_main(
            ["engine", "mpi", "--quick", "--jobs", "2",
             "--out-dir", str(tmp_path), "--repeats", "1"]
        ) == 0
        for suite in ("engine", "mpi"):
            doc = json.loads((tmp_path / f"BENCH_{suite}.json").read_text())
            validate_bench_doc(doc)
        engine = json.loads((tmp_path / "BENCH_engine.json").read_text())
        # the live seed comparison survives sharding
        assert "speedup_vs_seed" in engine["benchmarks"][0]
        names = [r["name"] for r in engine["benchmarks"]]
        assert names == [  # deterministic merge order, not completion order
            "engine.timer_cascade", "engine.event_chain", "engine.timeouts",
        ]

    def test_bad_jobs_rejected(self, capsys):
        from repro.perf.cli import bench_main

        with pytest.raises(SystemExit) as e:
            bench_main(["engine", "--jobs", "0"])
        assert e.value.code == 2
