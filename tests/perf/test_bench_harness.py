"""The perf-regression harness itself: result records, the
``BENCH_*.json`` schema, the tolerance gate, and the CLI.

These tests never assert absolute performance (CI machines vary); they
assert the *machinery* — documents validate, the gate trips exactly
when it should, and running benchmarks perturbs nothing (tracing stays
off, golden traces stay byte-identical).
"""

import json

import pytest

from repro.perf.bench import (
    BenchResult,
    peak_rss_bytes,
    run_bench,
    suite_doc,
    validate_bench_doc,
)
from repro.perf.compare import (
    Comparison,
    check_against_baseline,
    compare_to_baseline,
    results_by_name,
)


def _counting_fn(ops=100):
    def fn():
        total = 0
        for i in range(1000):
            total += i
        return ops

    return fn


class TestRunBench:
    def test_result_fields(self):
        r = run_bench("t.bench", _counting_fn(250), repeats=2)
        assert r.name == "t.bench"
        assert r.ops == 250
        assert r.wall_s > 0
        assert r.ops_per_s == pytest.approx(250 / r.wall_s)
        assert r.repeats == 2
        assert r.peak_rss_bytes > 0

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_bench("t", _counting_fn(), repeats=0)

    def test_rejects_zero_ops(self):
        with pytest.raises(ValueError, match="no operations"):
            run_bench("t", lambda: 0)

    def test_warmup_runs_fn_once_more(self):
        calls = []

        def fn():
            calls.append(1)
            return 1

        run_bench("t", fn, repeats=2, warmup=True)
        assert len(calls) == 3
        calls.clear()
        run_bench("t", fn, repeats=2, warmup=False)
        assert len(calls) == 2

    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1024 * 1024  # a Python process is >1 MiB


class TestSuiteDoc:
    def _results(self):
        return [
            BenchResult("s.a", 100, 0.5, 200.0, 3, 10_000_000),
            BenchResult("s.b", 100, 0.25, 400.0, 3, 10_000_000),
        ]

    def test_doc_validates(self):
        doc = suite_doc("s", self._results())
        validate_bench_doc(doc)  # does not raise
        assert doc["suite"] == "s"
        assert len(doc["benchmarks"]) == 2
        assert "geomean_speedup_vs_seed" not in doc

    def test_seed_refs_add_speedups(self):
        doc = suite_doc("s", self._results(), {"s.a": 100.0, "s.b": 100.0})
        recs = {r["name"]: r for r in doc["benchmarks"]}
        assert recs["s.a"]["speedup_vs_seed"] == pytest.approx(2.0)
        assert recs["s.b"]["speedup_vs_seed"] == pytest.approx(4.0)
        # geomean of 2x and 4x
        assert doc["geomean_speedup_vs_seed"] == pytest.approx(8.0 ** 0.5)
        validate_bench_doc(doc)

    def test_partial_seed_refs(self):
        doc = suite_doc("s", self._results(), {"s.a": 100.0})
        recs = {r["name"]: r for r in doc["benchmarks"]}
        assert "speedup_vs_seed" in recs["s.a"]
        assert "speedup_vs_seed" not in recs["s.b"]

    def test_extras_flow_into_record_and_validate(self):
        # The serve suite attaches hit_ratio and tail latencies this way.
        res = BenchResult(
            "s.a", 100, 0.5, 200.0, 1, 10_000_000,
            extras={"hit_ratio": 0.97, "p99_latency_s": 0.041},
        )
        rec = res.as_record(seed_ops_per_s=100.0)
        assert rec["hit_ratio"] == pytest.approx(0.97)
        assert rec["p99_latency_s"] == pytest.approx(0.041)
        # Extras never clobber the core fields or the seed comparison.
        assert rec["ops_per_s"] == pytest.approx(200.0)
        assert rec["speedup_vs_seed"] == pytest.approx(2.0)
        validate_bench_doc(suite_doc("s", [res]))

    def test_extras_cannot_shadow_core_fields(self):
        res = BenchResult(
            "s.a", 100, 0.5, 200.0, 1, 10_000_000,
            extras={"ops_per_s": 1.0},
        )
        assert res.as_record()["ops_per_s"] == pytest.approx(200.0)


class TestValidateBenchDoc:
    def _good(self):
        return suite_doc("s", [BenchResult("s.a", 1, 0.1, 10.0, 1, 1024)])

    def test_wrong_schema_version(self):
        doc = self._good()
        doc["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_bench_doc(doc)

    def test_not_an_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_bench_doc([1, 2])

    def test_empty_benchmarks(self):
        doc = self._good()
        doc["benchmarks"] = []
        with pytest.raises(ValueError, match="non-empty list"):
            validate_bench_doc(doc)

    def test_duplicate_names(self):
        doc = self._good()
        doc["benchmarks"].append(dict(doc["benchmarks"][0]))
        with pytest.raises(ValueError, match="duplicated"):
            validate_bench_doc(doc)

    def test_nonpositive_rate(self):
        doc = self._good()
        doc["benchmarks"][0]["ops_per_s"] = 0.0
        with pytest.raises(ValueError, match="ops_per_s"):
            validate_bench_doc(doc)

    def test_missing_field(self):
        doc = self._good()
        del doc["benchmarks"][0]["wall_s"]
        with pytest.raises(ValueError, match="wall_s"):
            validate_bench_doc(doc)

    def test_reports_every_problem(self):
        doc = self._good()
        doc["suite"] = ""
        doc["benchmarks"][0]["ops"] = -3
        with pytest.raises(ValueError) as e:
            validate_bench_doc(doc)
        msg = str(e.value)
        assert "suite" in msg and "ops" in msg


class TestToleranceGate:
    BASE = {
        "schema_version": 1,
        "default_tolerance": 0.2,
        "benchmarks": {"a": 1000.0, "b": 500.0},
    }

    def test_exactly_at_tolerance_passes(self):
        # 20% drop is the boundary: ratio 0.80 is NOT < 0.80.
        ok, _ = check_against_baseline(
            {"a": 800.0, "b": 500.0}, dict(self.BASE)
        )
        assert ok

    def test_just_past_tolerance_fails(self):
        ok, lines = check_against_baseline(
            {"a": 799.0, "b": 500.0}, dict(self.BASE)
        )
        assert not ok
        assert any("REGRESSED" in ln and ln.startswith("a") for ln in lines)

    def test_improvement_passes(self):
        ok, _ = check_against_baseline(
            {"a": 5000.0, "b": 5000.0}, dict(self.BASE)
        )
        assert ok

    def test_missing_benchmark_fails(self):
        ok, lines = check_against_baseline({"a": 1000.0}, dict(self.BASE))
        assert not ok
        assert any("MISSING" in ln for ln in lines)

    def test_new_benchmark_ignored(self):
        ok, _ = check_against_baseline(
            {"a": 1000.0, "b": 500.0, "brand_new": 1.0}, dict(self.BASE)
        )
        assert ok

    def test_explicit_tolerance_overrides_doc(self):
        current = {"a": 700.0, "b": 500.0}  # 30% drop on a
        assert not check_against_baseline(current, dict(self.BASE))[0]
        assert check_against_baseline(
            current, dict(self.BASE), tolerance=0.4
        )[0]

    def test_per_benchmark_tolerance_override(self):
        base = dict(self.BASE)
        base["tolerances"] = {"a": 0.5}
        ok, _ = check_against_baseline({"a": 600.0, "b": 500.0}, base)
        assert ok  # 40% drop on a allowed by its 50% override
        ok, _ = check_against_baseline({"a": 600.0, "b": 350.0}, base)
        assert not ok  # b still gated at the 20% default

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_against_baseline({}, dict(self.BASE), tolerance=1.5)

    def test_bad_baseline_entry_rejected(self):
        base = dict(self.BASE)
        base["benchmarks"] = {"a": -5.0}
        with pytest.raises(ValueError, match="positive"):
            compare_to_baseline({}, base)

    def test_comparison_ratio(self):
        c = Comparison("x", 100.0, 50.0)
        assert c.ratio == pytest.approx(0.5)
        assert c.regressed(0.2) and not c.regressed(0.6)
        missing = Comparison("x", 100.0, None)
        assert missing.ratio == 0.0 and missing.regressed(0.2)

    def test_results_by_name_flattens(self):
        docs = [
            suite_doc("s1", [BenchResult("s1.a", 1, 1.0, 1.0, 1, 1)]),
            suite_doc("s2", [BenchResult("s2.b", 2, 1.0, 2.0, 1, 1)]),
        ]
        assert results_by_name(docs) == {"s1.a": 1.0, "s2.b": 2.0}


class TestCommittedBaseline:
    def test_committed_baseline_loads_and_is_sane(self):
        from repro.perf.compare import BASELINE_PATH, load_baseline

        doc = load_baseline(BASELINE_PATH)
        assert doc["schema_version"] == 1
        assert doc["benchmarks"]
        for name, ops in doc["benchmarks"].items():
            assert ops > 0, name
        for name, tol in doc.get("tolerances", {}).items():
            assert 0.0 <= tol < 1.0, name
            assert name in doc["benchmarks"], f"tolerance for unknown {name}"


class TestSuitesAndCli:
    def test_engine_suite_quick_produces_valid_doc(self):
        from repro.perf.suites import engine_suite

        results = engine_suite(repeats=1, quick=True)
        doc = suite_doc("engine", results)
        validate_bench_doc(doc)
        names = [r.name for r in results]
        assert names == [
            "engine.timer_cascade", "engine.event_chain", "engine.timeouts",
        ]

    def test_engine_suite_with_seed_measures_live(self):
        from repro.perf.suites import engine_suite_with_seed, load_seed_engine_cls

        assert load_seed_engine_cls() is not None  # reference copy committed
        results, seed_ref = engine_suite_with_seed(repeats=1, quick=True)
        assert set(seed_ref) == {r.name for r in results}
        assert all(v > 0 for v in seed_ref.values())

    def test_bench_cli_writes_valid_json(self, tmp_path, capsys):
        from repro.perf.cli import bench_main

        assert bench_main(
            ["engine", "--quick", "--out-dir", str(tmp_path), "--repeats", "1"]
        ) == 0
        doc = json.loads((tmp_path / "BENCH_engine.json").read_text())
        validate_bench_doc(doc)
        assert doc["suite"] == "engine"
        assert "speedup_vs_seed" in doc["benchmarks"][0]
        assert "BENCH_engine.json" in capsys.readouterr().out

    def test_bench_cli_check_fails_on_regression(self, tmp_path):
        from repro.perf.cli import bench_main

        impossible = {
            "schema_version": 1,
            "default_tolerance": 0.2,
            "benchmarks": {"engine.timer_cascade": 1e15},
        }
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps(impossible))
        rc = bench_main(
            [
                "engine", "--quick", "--repeats", "1",
                "--out-dir", str(tmp_path), "--check", "--baseline", str(bad),
            ]
        )
        assert rc == 1

    def test_bench_cli_subset_check_ignores_other_suites(self, tmp_path):
        # A baseline covering all suites must not fail an engine-only
        # run over the un-run mpi/apps entries.
        from repro.perf.cli import bench_main

        base = {
            "schema_version": 1,
            "default_tolerance": 0.99,
            "benchmarks": {
                "engine.timer_cascade": 1.0,
                "engine.event_chain": 1.0,
                "engine.timeouts": 1.0,
                "mpi.pingpong_small": 1e15,
                "apps.hpl96_headline": 1e15,
            },
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(base))
        rc = bench_main(
            ["engine", "--quick", "--repeats", "1",
             "--out-dir", str(tmp_path), "--check", "--baseline", str(path)]
        )
        assert rc == 0

    def test_bench_cli_dispatch_through_main(self, tmp_path):
        from repro.cli import main

        assert main(
            ["bench", "engine", "--quick", "--out-dir", str(tmp_path),
             "--repeats", "1"]
        ) == 0
        assert (tmp_path / "BENCH_engine.json").exists()

    def test_update_baseline_roundtrip(self, tmp_path):
        from repro.perf.cli import bench_main

        path = tmp_path / "baseline.json"
        assert bench_main(
            ["engine", "--quick", "--repeats", "1",
             "--out-dir", str(tmp_path),
             "--update-baseline", "--baseline", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        assert "engine.timer_cascade" in doc["benchmarks"]
        # A self-recorded baseline must pass its own gate immediately.
        rc = bench_main(
            ["engine", "--quick", "--repeats", "2",
             "--out-dir", str(tmp_path),
             "--check", "--baseline", str(path), "--tolerance", "0.9"]
        )
        assert rc == 0


class TestBenchesAreInert:
    """Running benchmarks must not flip any global switch or perturb
    the deterministic scenarios the golden traces certify."""

    def test_tracing_stays_off(self):
        from repro.obs import recorder
        from repro.perf.suites import engine_suite

        assert recorder.current() is None
        engine_suite(repeats=1, quick=True)
        assert recorder.current() is None

    def test_golden_trace_identical_after_benchmarks(self):
        import pathlib

        from repro.obs.replay import scenario_canonical_text
        from repro.perf.suites import engine_suite, mpi_suite

        engine_suite(repeats=1, quick=True)
        mpi_suite(repeats=1, quick=True)
        golden = (
            pathlib.Path(__file__).resolve().parent.parent
            / "data" / "pingpong4.trace"
        ).read_text()
        assert scenario_canonical_text("pingpong", seed=0) == golden
