"""H1 — the Section 4 headline: HPL weak scaling on Tibidabo delivering
97 GFLOPS on 96 nodes at 51% efficiency and 120 MFLOPS/W, compared
against the June 2013 Green500 reference points."""

import pytest
from conftest import emit

from repro.cluster.power import GREEN500_REFERENCES, ClusterPowerModel
from repro.cluster.cluster import tibidabo


def test_headline_hpl_96_nodes(benchmark, study):
    head = benchmark(study.headline_hpl)
    emit(
        "Headline: HPL on 96 Tibidabo nodes",
        f"GFLOPS          : {head['gflops']:.1f}   (paper:  97)\n"
        f"HPL efficiency  : {head['efficiency']:.1%}   (paper: 51%)\n"
        f"MFLOPS/W        : {head['mflops_per_watt']:.1f}  (paper: 120)\n"
        f"cluster power   : {head['total_power_w']:.0f} W",
    )
    benchmark.extra_info.update(
        {k: round(v, 2) for k, v in head.items()}
    )
    assert head["gflops"] == pytest.approx(97.0, rel=0.10)
    assert head["efficiency"] == pytest.approx(0.51, abs=0.05)
    assert head["mflops_per_watt"] == pytest.approx(120.0, rel=0.10)


def test_green500_positioning(benchmark, study):
    """'competitive with AMD Opteron 6174 and Intel Xeon E5660-based
    clusters, nineteen times lower than BlueGene/Q, almost 27 times
    lower than the number one GPU-accelerated system'."""
    head = study.headline_hpl()
    pm = ClusterPowerModel()
    cluster = tibidabo(96, open_mx=True)

    def gaps():
        measured = head["mflops_per_watt"]
        return {
            ref: pm.gap_to(ref, measured)
            for ref in GREEN500_REFERENCES
            if ref != "Tibidabo (paper)"
        }

    result = benchmark(gaps)
    emit(
        "Green500 positioning (x lower than reference)",
        "\n".join(f"{k}: {v:.1f}x" for k, v in result.items()),
    )
    assert result["BlueGene/Q (best homogeneous)"] == pytest.approx(
        19.0, rel=0.15
    )
    assert result["Eurotech Eurora (K20 GPU, #1)"] == pytest.approx(
        27.0, rel=0.15
    )
    assert result["AMD Opteron 6174 cluster"] == pytest.approx(1.0, rel=0.15)


def test_weak_scaling_gflops_curve(benchmark):
    """The GFLOPS growth of the weak-scaled HPL runs."""
    from repro.apps.hpl import HPL

    hpl = HPL()

    def sweep():
        out = {}
        for n in (1, 4, 16, 48, 96):
            cluster = tibidabo(96, open_mx=True)
            run = hpl.simulate(cluster, n)
            out[n] = (run.gflops, hpl.efficiency(cluster.subcluster(n), run))
        return out

    curve = benchmark(sweep)
    emit(
        "HPL weak scaling",
        "\n".join(
            f"{n:3d} nodes: {g:6.2f} GFLOPS  eff={e:.1%}"
            for n, (g, e) in curve.items()
        ),
    )
    gflops = [g for g, _ in curve.values()]
    assert all(b > a for a, b in zip(gflops, gflops[1:]))
