"""A1 ablation — NIC attachment: what if the Arndale's NIC sat on PCIe
instead of USB 3.0 (and vice versa for Tegra)?

Quantifies Section 6.3's complaint about missing integrated I/O: the
attachment alone explains most of the Exynos latency disadvantage.
"""

from conftest import emit

from repro.net.nic import ONBOARD, PCIE, USB3
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack


def test_nic_attachment_ablation(benchmark):
    def sweep():
        out = {}
        for core, freq in (("Cortex-A9", 1.0), ("Cortex-A15", 1.0)):
            for att in (PCIE, USB3, ONBOARD):
                s = ProtocolStack(TCP_IP, att, core_name=core, freq_ghz=freq)
                out[(core, att.name)] = (
                    s.small_message_latency_us(),
                    s.effective_bandwidth_mbs(1 << 22),
                )
        return out

    data = benchmark(sweep)
    emit(
        "Ablation A1: NIC attachment (TCP/IP, 1 GHz)",
        "\n".join(
            f"{core:11s} via {att:8s}: {lat:6.1f}us  {bw:6.1f}MB/s"
            for (core, att), (lat, bw) in data.items()
        ),
    )

    # Swapping the Exynos to PCIe removes most of its latency deficit.
    usb = data[("Cortex-A15", "USB3.0")][0]
    pcie = data[("Cortex-A15", "PCIe")][0]
    tegra = data[("Cortex-A9", "PCIe")][0]
    assert pcie < usb
    assert pcie < tegra  # faster core wins once the attachment is equal
    # On-chip (integrated) controllers — the Section 6.3 ask — win again.
    assert data[("Cortex-A15", "onboard")][0] < pcie


def test_attachment_bandwidth_effect(benchmark):
    def sweep():
        return {
            att.name: ProtocolStack(
                OPEN_MX, att, core_name="Cortex-A15", freq_ghz=1.0
            ).effective_bandwidth_mbs(1 << 22)
            for att in (PCIE, USB3)
        }

    bw = benchmark(sweep)
    emit(
        "Ablation A1b: Open-MX bandwidth by attachment (A15 @1 GHz)",
        "\n".join(f"{k}: {v:.1f} MB/s" for k, v in bw.items()),
    )
    # The USB per-byte software cost caps Exynos bandwidth (Fig. 7e).
    assert bw["PCIe"] > bw["USB3.0"] * 1.3
