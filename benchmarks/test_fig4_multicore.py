"""Figure 4 — multi-core (OpenMP) performance and energy over the
frequency sweep (baseline: Tegra 2 @ 1 GHz serial)."""

import pytest
from conftest import emit

from repro.analysis.figures import render_figure


def test_figure4_multicore_sweep(benchmark, study):
    f4 = benchmark(study.figure4)
    f3 = study.figure3()

    lines = []
    for plat, pts in f4.items():
        for p in pts:
            lines.append(
                f"{plat:14s} @{p['freq_ghz']:4.2f}GHz  "
                f"speedup={p['speedup']:5.2f}  "
                f"energy={p['energy_norm']:5.2f}"
            )
    emit("Figure 4: multi-core frequency sweep", "\n".join(lines))
    emit("Figure 4 (chart)", render_figure("figure4", f4))

    # Multithreading improves both time and energy on every platform
    # (Section 3.1.2), at every shared operating point.
    for plat in f4:
        f3_by_freq = {p["freq_ghz"]: p for p in f3[plat]}
        for p in f4[plat]:
            serial = f3_by_freq[p["freq_ghz"]]
            assert p["speedup"] > serial["speedup"], plat
            assert p["energy_norm"] < serial["energy_norm"], plat

    # Tegra 2's OpenMP version uses ~1.7x less energy than serial.
    gain = f3["Tegra2"][-1]["energy_norm"] / f4["Tegra2"][-1]["energy_norm"]
    benchmark.extra_info["tegra2_energy_gain"] = round(gain, 2)
    assert gain == pytest.approx(1.7, abs=0.25)
