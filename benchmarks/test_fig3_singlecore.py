"""Figure 3 — single-core performance and energy over the frequency
sweep (baseline: Tegra 2 @ 1 GHz)."""

import pytest
from conftest import emit

from repro.analysis.figures import render_figure


def test_figure3_single_core_sweep(benchmark, study):
    data = benchmark(study.figure3)

    lines = []
    for plat, pts in data.items():
        for p in pts:
            lines.append(
                f"{plat:14s} @{p['freq_ghz']:4.2f}GHz  "
                f"speedup={p['speedup']:5.2f}  "
                f"energy={p['energy_norm']:5.2f}"
            )
    emit("Figure 3: single-core frequency sweep", "\n".join(lines))
    emit("Figure 3 (chart)", render_figure("figure3", data))

    at = lambda plat, f: next(
        p for p in data[plat] if abs(p["freq_ghz"] - f) < 1e-9
    )
    benchmark.extra_info["tegra3_vs_tegra2_1ghz"] = round(
        at("Tegra3", 1.0)["speedup"], 3
    )
    benchmark.extra_info["exynos_vs_tegra2_1ghz"] = round(
        at("Exynos5250", 1.0)["speedup"], 3
    )

    # Paper: +9% (Tegra 3), +30% (Exynos) at 1 GHz; 2.3x at max.
    assert at("Tegra3", 1.0)["speedup"] == pytest.approx(1.09, abs=0.05)
    assert at("Exynos5250", 1.0)["speedup"] == pytest.approx(1.30, abs=0.09)
    assert at("Exynos5250", 1.7)["speedup"] == pytest.approx(2.3, abs=0.25)
    # Performance rises linearly, energy falls, on every platform.
    for plat, pts in data.items():
        sp = [p["speedup"] for p in pts]
        en = [p["energy_norm"] for p in pts]
        assert sp == sorted(sp), plat
        assert en == sorted(en, reverse=True), plat
