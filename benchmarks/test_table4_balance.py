"""Table 4 — network bytes/FLOPS ratios (FP64, GPU excluded)."""

import pytest
from conftest import emit

from repro.analysis.tables import render_table4

PAPER_TABLE4 = {
    "Tegra2": {"1GbE": 0.06, "10GbE": 0.63, "40Gb InfiniBand": 2.50},
    "Tegra3": {"1GbE": 0.02, "10GbE": 0.24, "40Gb InfiniBand": 0.96},
    "Exynos5250": {"1GbE": 0.02, "10GbE": 0.18, "40Gb InfiniBand": 0.74},
    "Corei7-2760QM": {"1GbE": 0.00, "10GbE": 0.02, "40Gb InfiniBand": 0.07},
}


def test_table4_bytes_per_flop(benchmark, study):
    data = benchmark(study.table4)
    emit("Table 4: network bytes/FLOPS ratios", render_table4())

    benchmark.extra_info["table"] = {
        p: {l: round(v, 2) for l, v in row.items()} for p, row in data.items()
    }
    for platform, row in PAPER_TABLE4.items():
        for link, paper in row.items():
            assert round(data[platform][link], 2) == pytest.approx(
                paper, abs=0.02
            ), (platform, link)
    # The balance argument (Section 4.1): "a 1GbE network interface for
    # a Tegra 3 or Exynos 5250 has a bytes/FLOPS ratio close to that of a
    # dual-socket Intel Sandy Bridge" (with InfiniBand).
    snb_dual_ib = data["Corei7-2760QM"]["40Gb InfiniBand"] / 2.0
    for mobile in ("Tegra3", "Exynos5250"):
        ratio = data[mobile]["1GbE"] / snb_dual_ib
        assert 0.4 < ratio < 2.5, mobile
