"""Figure 5 — STREAM memory bandwidth, single core and full SoC."""

import pytest
from conftest import emit

from repro.core.results import render_table


def test_figure5_stream_bandwidth(benchmark, study):
    data = benchmark(study.figure5)

    ops = ("Copy", "Scale", "Add", "Triad")
    for mode in ("single", "multi"):
        rows = [
            [plat] + [round(d[mode][op], 2) for op in ops]
            for plat, d in data.items()
        ]
        emit(
            f"Figure 5 ({'a' if mode == 'single' else 'b'}): "
            f"{mode}-core STREAM bandwidth (GB/s)",
            render_table(["Platform"] + list(ops), rows),
        )

    effs = {p: round(d["efficiency_vs_peak"], 2) for p, d in data.items()}
    benchmark.extra_info["efficiency_vs_peak"] = effs
    emit("Efficiency vs peak", str(effs))

    # Section 3.2's published efficiencies.
    assert effs["Tegra2"] == pytest.approx(0.62, abs=0.02)
    assert effs["Tegra3"] == pytest.approx(0.27, abs=0.02)
    assert effs["Exynos5250"] == pytest.approx(0.52, abs=0.02)
    assert effs["Corei7-2760QM"] == pytest.approx(0.57, abs=0.02)
    # ~4.5x Tegra -> Exynos improvement.
    ratio = data["Exynos5250"]["multi"]["Triad"] / data["Tegra2"]["multi"]["Triad"]
    assert ratio == pytest.approx(4.5, abs=0.6)
