"""A6 ablation — process-grid layout: the 1D column-cyclic HPL model vs
the 2D block-cyclic grid production HPL uses.

The A5 ablation showed the 1D layout hits algorithmic serialisation
(panel factorisation on the critical path, coarse block imbalance)
before the network matters; the 2D grid removes both — quantifying how
much of the paper's 51% efficiency is layout rather than silicon."""

from conftest import emit

from repro.apps.hpl import HPL, _grid_shape
from repro.cluster.cluster import tibidabo


def test_process_grid_ablation(benchmark):
    hpl = HPL()

    def sweep():
        out = {}
        for nodes in (16, 48, 96):
            cluster = tibidabo(nodes, open_mx=True)
            one_d = hpl.simulate(cluster, nodes)
            two_d = hpl.simulate(cluster, nodes, grid_2d=True)
            out[nodes] = {
                "1D": (one_d.gflops, hpl.efficiency(cluster, one_d)),
                "2D": (two_d.gflops, hpl.efficiency(cluster, two_d)),
                "grid": _grid_shape(nodes),
            }
        return out

    data = benchmark(sweep)
    lines = []
    for nodes, d in data.items():
        p, q = d["grid"]
        lines.append(
            f"{nodes:3d} nodes: 1D {d['1D'][0]:6.1f} GFLOPS "
            f"({d['1D'][1]:.0%})   2D {p}x{q} {d['2D'][0]:6.1f} GFLOPS "
            f"({d['2D'][1]:.0%})"
        )
    emit("Ablation A6: HPL process-grid layout", "\n".join(lines))
    benchmark.extra_info["eff_96"] = {
        k: round(v, 3) for k, v in
        {"1D": data[96]["1D"][1], "2D": data[96]["2D"][1]}.items()
    }

    # The 2D grid wins at scale, increasingly so.
    for nodes in (48, 96):
        assert data[nodes]["2D"][0] > data[nodes]["1D"][0]
    gain_48 = data[48]["2D"][0] / data[48]["1D"][0]
    gain_96 = data[96]["2D"][0] / data[96]["1D"][0]
    assert gain_96 >= gain_48 * 0.98
    # Production-layout efficiency lands in HPL's real-world band.
    assert 0.55 <= data[96]["2D"][1] <= 0.80
