"""Figure 1 — TOP500 systems by architecture class, 1993-2013."""

from conftest import emit

from repro.analysis.figures import render_figure
from repro.core.top500 import dominant_class


def test_figure1_top500_share(benchmark, study):
    data = benchmark(study.figure1)
    years, x86 = data["x86"]
    _, risc = data["risc"]
    _, vector = data["vector"]

    benchmark.extra_info["x86_2013"] = x86[-1]
    benchmark.extra_info["vector_1993"] = vector[0]

    rows = "\n".join(
        f"{y}: x86={a:3d} risc={b:3d} vector={c:3d}"
        for y, a, b, c in zip(years, x86, risc, vector)
    )
    emit("Figure 1: TOP500 share by architecture", rows)
    emit("Figure 1 (chart)", render_figure("figure1", data))

    # The narrative the figure carries.
    assert dominant_class(1993) == "vector"
    assert dominant_class(2003) in ("risc", "x86")
    assert dominant_class(2013) == "x86"
    assert x86[-1] > 400 and vector[-1] <= 5
