"""H3 — Section 6's quantitative reliability claims: the 30%% daily DRAM
error probability, thermal limits of fanless boards, and PCIe fault
exposure of cluster jobs."""

import pytest
from conftest import emit

from repro.cluster.reliability import (
    DramErrorModel,
    PCIeFaultInjector,
    ThermalModel,
)


def test_dram_error_exposure(benchmark):
    """'a 1,500 node system, with 2 DIMMs per node, has a 30% error
    probability on any given day' (Section 6.3)."""

    def sweep():
        return {
            rate: DramErrorModel(rate).system_daily_error_probability(1500, 2)
            for rate in (0.04, 0.045, 0.10, 0.20)
        }

    probs = benchmark(sweep)
    emit(
        "DRAM daily error probability, 1500 nodes x 2 DIMMs",
        "\n".join(f"annual DIMM rate {r:.0%}: {p:.1%}" for r, p in probs.items()),
    )
    benchmark.extra_info["p_at_4.5pct"] = round(probs[0.045], 3)
    assert probs[0.045] == pytest.approx(0.30, abs=0.04)
    assert probs[0.20] > probs[0.04]


def test_job_failure_without_ecc(benchmark):
    model = DramErrorModel(0.10)

    def curve():
        return {
            n: model.job_failure_probability(n, 24.0, ecc=False)
            for n in (96, 192, 1500)
        }

    probs = benchmark(curve)
    emit(
        "24-hour job failure probability (no ECC)",
        "\n".join(f"{n:5d} nodes: {p:.1%}" for n, p in probs.items()),
    )
    assert model.job_failure_probability(1500, 24.0, ecc=True) == 0.0
    assert probs[1500] > probs[96]


def test_thermal_budget_of_dev_boards(benchmark):
    """Section 6.1: sustained max-frequency load destabilises the
    heatsink-less boards."""
    tm = ThermalModel()

    def profile():
        return {
            p: tm.time_to_instability_s(p) for p in (3.0, 5.0, 6.5, 8.0)
        }

    times = benchmark(profile)
    emit(
        "Time to thermal instability (fanless board)",
        "\n".join(
            f"{p:.1f} W: {t:8.0f} s" if t != float("inf") else f"{p:.1f} W: stable"
            for p, t in times.items()
        )
        + f"\nmax sustainable power: {tm.max_sustainable_power_w():.2f} W",
    )
    assert times[3.0] == float("inf")
    assert times[8.0] < times[6.5]


def test_pcie_fault_exposure(benchmark):
    """Section 6.1: flaky Tegra PCIe — survival probability of cluster
    jobs under the fault injector."""
    inj = PCIeFaultInjector(mtbf_hours_under_load=200.0)

    def survival():
        return {
            (n, h): inj.expected_job_survival(n, h)
            for n in (16, 96, 192)
            for h in (1.0, 12.0)
        }

    probs = benchmark(survival)
    emit(
        "Job survival vs PCIe hangs (MTBF 200h/node)",
        "\n".join(
            f"{n:4d} nodes x {h:4.0f}h: {p:.1%}" for (n, h), p in probs.items()
        ),
    )
    assert probs[(192, 12.0)] < probs[(16, 1.0)]
