"""The wider IMB suite (Section 4.1 used the Intel MPI Benchmarks):
SendRecv, Exchange and Allreduce over the calibrated stacks, plus an
energy-optimal DVFS ablation."""

import pytest
from conftest import emit

from repro.mpi.benchmarks import (
    allreduce_benchmark,
    exchange_benchmark,
    sendrecv_benchmark,
)
from repro.net.nic import PCIE, USB3
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack


def test_imb_extended_suite(benchmark):
    configs = {
        "Tegra2/TCP": ProtocolStack(TCP_IP, PCIE, core_name="Cortex-A9"),
        "Tegra2/OMX": ProtocolStack(OPEN_MX, PCIE, core_name="Cortex-A9"),
        "Exynos5/OMX": ProtocolStack(OPEN_MX, USB3, core_name="Cortex-A15"),
    }

    def run():
        out = {}
        for label, stack in configs.items():
            out[label] = {
                "SendRecv(1KB)": sendrecv_benchmark(stack, 8, 1024, 5),
                "Exchange(1KB)": exchange_benchmark(stack, 8, 1024, 5),
                "Allreduce(8B,x16)": allreduce_benchmark(stack, 16),
            }
        return out

    data = benchmark(run)
    lines = []
    for label, d in data.items():
        for bench_name, t in d.items():
            lines.append(f"{label:12s} {bench_name:18s}: {t:8.1f} us")
    emit("IMB suite over the calibrated stacks", "\n".join(lines))

    # Open-MX wins every benchmark on the same hardware.
    for bench_name in data["Tegra2/TCP"]:
        assert data["Tegra2/OMX"][bench_name] < data["Tegra2/TCP"][bench_name]
    # An Allreduce at 16 ranks over TCP costs ~ log2(16) x latency:
    # exactly the per-message software cost the paper wants off the CPU.
    assert data["Tegra2/TCP"]["Allreduce(8B,x16)"] > 4 * 100.0 * 0.9


def test_dvfs_energy_optimum(benchmark, study):
    """Ablation: where on the DVFS curve is energy-to-solution minimal?
    On every platform the answer is the *highest* frequency — the
    board-dominated power structure of Section 3.1.2."""

    def find_optima():
        f3 = study.figure3()
        return {
            plat: min(pts, key=lambda p: p["energy_norm"])["freq_ghz"]
            for plat, pts in f3.items()
        }

    optima = benchmark(find_optima)
    emit(
        "Energy-optimal operating point (single core)",
        "\n".join(f"{plat}: {f} GHz" for plat, f in optima.items()),
    )
    expected_fmax = {
        "Tegra2": 1.0,
        "Tegra3": 1.3,
        "Exynos5250": 1.7,
        "Corei7-2760QM": 2.4,
    }
    for plat, fmax in expected_fmax.items():
        assert optima[plat] == pytest.approx(fmax)
