"""E13 — the companion energy-to-solution study [13]: Tibidabo vs an
Intel Nehalem cluster on PDE-class solvers ("4 times increase in
simulation time ... up to 3 times lower energy-to-solution")."""

import pytest
from conftest import emit

from repro.core.energy_study import energy_to_solution, pde_solver_campaign


def test_specfem_energy_to_solution(benchmark):
    r = benchmark(
        energy_to_solution, "SPECFEM3D", arm_nodes=96, x86_nodes=16
    )
    emit(
        "E13: SPECFEM3D — Tibidabo(96) vs Nehalem(16)",
        f"time ratio   : {r.time_ratio:.2f}x slower on ARM (paper: ~4x)\n"
        f"energy ratio : {r.energy_ratio:.2f}x lower on ARM "
        f"(paper: 'up to 3 times')\n"
        f"ARM power    : {r.arm_power_w:.0f} W, x86 power: {r.x86_power_w:.0f} W",
    )
    benchmark.extra_info["time_ratio"] = round(r.time_ratio, 2)
    benchmark.extra_info["energy_ratio"] = round(r.energy_ratio, 2)
    assert 3.0 <= r.time_ratio <= 5.0
    assert 2.0 <= r.energy_ratio <= 3.5


def test_pde_campaign(benchmark):
    results = benchmark(pde_solver_campaign)
    emit(
        "E13 campaign: three solver classes",
        "\n".join(
            f"{app:10s} time {r.time_ratio:4.1f}x slower, "
            f"energy {r.energy_ratio:4.1f}x lower"
            for app, r in results.items()
        ),
    )
    # Direction holds for every solver class: slower but cheaper.
    for app, r in results.items():
        assert r.time_ratio > 1.0, app
        assert r.energy_ratio > 1.0, app
    # The PDE solvers land in the published band.
    assert results["SPECFEM3D"].energy_ratio == pytest.approx(3.0, abs=0.5)
    assert results["HYDRO"].energy_ratio == pytest.approx(3.0, abs=0.5)
