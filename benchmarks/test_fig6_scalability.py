"""Figure 6 + Table 3 — scalability of the five production applications
on Tibidabo (weak scaling for HPL, strong for the rest)."""

from conftest import emit

from repro.analysis.figures import render_figure
from repro.analysis.tables import render_table3


def test_figure6_application_scalability(benchmark, study):
    data = benchmark(
        study.figure6, node_counts=(1, 2, 4, 8, 16, 24, 32, 48, 64, 96)
    )

    emit("Table 3: applications for scalability evaluation", render_table3())
    lines = []
    for app, sp in data.items():
        curve = "  ".join(f"{n}:{s:5.1f}" for n, s in sorted(sp.items()))
        lines.append(f"{app:10s} {curve}")
    emit("Figure 6: speed-up on Tibidabo", "\n".join(lines))
    emit("Figure 6 (chart)", render_figure("figure6", data))

    benchmark.extra_info["speedup_at_96"] = {
        app: round(sp.get(96, float("nan")), 1) for app, sp in data.items()
    }

    # The Section 4 narrative, as assertions:
    assert data["SPECFEM3D"][96] / 96 >= 0.85      # good strong scaling
    assert data["HYDRO"][16] / 16 >= 0.85          # linear until 16...
    assert data["HYDRO"][96] / 96 <= 0.70          # ...then bends
    assert data["PEPC"][24] == 24                  # assumed-linear anchor
    assert data["PEPC"][96] / 96 <= 0.75           # relatively poor
    assert data["GROMACS"][2] == 2                 # two-node input
    assert data["HPL"][96] / 96 >= 0.5             # good weak scaling
