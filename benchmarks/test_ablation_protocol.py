"""A2 ablation — protocol software: where do TCP/IP's 35 µs and 40% of
bandwidth go?  Decomposes the Open-MX win into per-message software
cost, fixed cost, and per-byte (copy/packet) cost, and quantifies the
effect of a hypothetical hardware protocol-offload engine (the KeyStone
II feature the paper points to in Section 4.1)."""

import dataclasses

from conftest import emit

from repro.net.nic import PCIE
from repro.net.protocol import OPEN_MX, TCP_IP, Protocol, ProtocolStack


def test_protocol_cost_decomposition(benchmark):
    def decompose():
        out = {}
        for proto in (TCP_IP, OPEN_MX):
            s = ProtocolStack(proto, PCIE, core_name="Cortex-A9")
            out[proto.name] = {
                "software_us": s.software_latency_us(),
                "hardware_us": s.hardware_latency_us(),
                "ns_per_byte": s.ns_per_byte(1 << 20),
                "copies": proto.copies,
            }
        return out

    data = benchmark(decompose)
    lines = []
    for name, d in data.items():
        lines.append(
            f"{name:8s} sw={d['software_us']:5.1f}us "
            f"hw={d['hardware_us']:5.1f}us "
            f"per-byte={d['ns_per_byte']:5.2f}ns copies={d['copies']}"
        )
    emit("Ablation A2: protocol cost decomposition (Tegra 2)", "\n".join(lines))

    tcp, omx = data["TCP/IP"], data["Open-MX"]
    assert omx["software_us"] < tcp["software_us"]
    # Compare the *software* per-byte cost (both include the 8 ns/B wire).
    wire = 8.0
    assert omx["ns_per_byte"] - wire < (tcp["ns_per_byte"] - wire) / 3
    assert omx["copies"] < tcp["copies"]


def test_hardware_offload_projection(benchmark):
    """A protocol-offload engine moves the per-message software cost
    into (cheap, fixed) hardware — modelled by zeroing the CPU-scaled
    terms.  This is the Section 4.1 recommendation."""

    def project():
        offloaded = dataclasses.replace(
            TCP_IP, sw_overhead_us=2.0, sw_ns_per_byte=0.2
        )
        out = {}
        for name, proto in (("TCP/IP", TCP_IP), ("TCP+offload", offloaded)):
            s = ProtocolStack(proto, PCIE, core_name="Cortex-A9")
            out[name] = (
                s.small_message_latency_us(),
                s.effective_bandwidth_mbs(1 << 22),
            )
        return out

    data = benchmark(project)
    emit(
        "Ablation A2b: hardware protocol offload",
        "\n".join(
            f"{k:12s}: {lat:6.1f}us  {bw:6.1f}MB/s"
            for k, (lat, bw) in data.items()
        ),
    )
    lat_plain, bw_plain = data["TCP/IP"]
    lat_off, bw_off = data["TCP+offload"]
    assert lat_off < lat_plain * 0.7
    assert bw_off > bw_plain * 1.4


def test_zero_copy_sweep(benchmark):
    """Bandwidth as a function of copy count (rendezvous zero-copy is
    the end point of this sweep)."""

    def sweep():
        out = {}
        for copies, per_byte in ((2, 5.9), (1, 3.0), (0, 0.44)):
            proto = Protocol(
                name=f"{copies}-copy",
                sw_overhead_us=30.0,
                fixed_overhead_us=20.0,
                sw_ns_per_byte=per_byte,
                copies=copies,
            )
            s = ProtocolStack(proto, PCIE, core_name="Cortex-A9")
            out[copies] = s.effective_bandwidth_mbs(1 << 22)
        return out

    data = benchmark(sweep)
    emit(
        "Ablation A2c: copies vs bandwidth (Tegra 2, 4 MiB messages)",
        "\n".join(f"{k} copies: {v:6.1f} MB/s" for k, v in data.items()),
    )
    assert data[0] > data[1] > data[2]
