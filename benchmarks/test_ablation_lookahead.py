"""A4 ablation — latency hiding (Section 6.3): "These overheads can be
alleviated to some extent using latency-hiding programming techniques
and runtimes [10]" (OmpSs).

HPL with depth-1 lookahead (panel broadcast overlapped with the trailing
update) against the blocking schedule, for both messaging stacks."""

from conftest import emit

from repro.apps.hpl import HPL
from repro.cluster.cluster import tibidabo
from repro.cluster.power import ClusterPowerModel


def test_lookahead_recovers_communication_time(benchmark):
    hpl = HPL()
    pm = ClusterPowerModel()

    def sweep():
        out = {}
        for label, omx in (("TCP/IP", False), ("Open-MX", True)):
            for la in (False, True):
                cluster = tibidabo(96, open_mx=omx)
                run = hpl.simulate(cluster, 96, lookahead=la)
                out[(label, la)] = (
                    run.gflops,
                    hpl.efficiency(cluster, run),
                    pm.mflops_per_watt(cluster, run.gflops),
                )
        return out

    data = benchmark(sweep)
    lines = []
    for (proto, la), (gf, eff, mw) in data.items():
        lines.append(
            f"{proto:8s} lookahead={str(la):5s}: {gf:6.1f} GFLOPS  "
            f"eff={eff:.1%}  {mw:5.0f} MFLOPS/W"
        )
    emit("Ablation A4: HPL with latency hiding (96 nodes)", "\n".join(lines))
    benchmark.extra_info["gflops"] = {
        f"{p}/la={la}": round(v[0], 1) for (p, la), v in data.items()
    }

    # Overlap helps both stacks...
    assert data[("TCP/IP", True)][0] > data[("TCP/IP", False)][0]
    assert data[("Open-MX", True)][0] > data[("Open-MX", False)][0]
    # ...and helps the slow stack the most: hiding latency largely
    # neutralises the protocol difference (the Section 6.3 argument that
    # runtimes can compensate for weak interconnect hardware).
    gain_tcp = data[("TCP/IP", True)][0] / data[("TCP/IP", False)][0]
    gain_omx = data[("Open-MX", True)][0] / data[("Open-MX", False)][0]
    assert gain_tcp > gain_omx
    remaining_gap = (
        data[("Open-MX", True)][0] / data[("TCP/IP", True)][0]
    )
    blocking_gap = (
        data[("Open-MX", False)][0] / data[("TCP/IP", False)][0]
    )
    assert remaining_gap < blocking_gap
