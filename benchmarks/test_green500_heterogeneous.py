"""Green500 list positioning (Sections 2 and 4) and the heterogeneous-
cluster proposal of the FAWN follow-up ([25], Section 2)."""

import pytest
from conftest import emit

from repro.arch.catalog import get_platform
from repro.arch.servers import nehalem_node
from repro.cluster.heterogeneous import (
    HeterogeneousCluster,
    NodeGroup,
    best_mix_under_power_cap,
)
from repro.core.green500 import (
    megaproto_claim,
    rank_june_2013,
    tibidabo_positioning,
)


def test_green500_positions(benchmark, study):
    def run():
        head = study.headline_hpl()
        return {
            "megaproto": megaproto_claim(),
            "tibidabo": tibidabo_positioning(head["mflops_per_watt"]),
        }

    data = benchmark(run)
    mp_rank, mp_holds = data["megaproto"]
    tb = data["tibidabo"]
    emit(
        "Green500 positioning",
        f"MegaProto (100 MFLOPS/W) on Nov 2007 list : rank ~{mp_rank:.0f} "
        f"(paper: 'between 45 and 70')\n"
        f"Tibidabo ({tb['mflops_per_watt']:.0f} MFLOPS/W) on June 2013 "
        f"list: rank ~{tb['estimated_rank']:.0f}, "
        f"{tb['gap_to_best']:.0f}x under #1",
    )
    assert mp_holds
    assert 45 <= mp_rank <= 70
    assert 350 <= tb["estimated_rank"] <= 470
    assert tb["gap_to_best"] == pytest.approx(27.0, rel=0.05)


def test_heterogeneous_cluster_study(benchmark):
    """[25]: homogeneous wimpy clusters struggle; mixing requires
    heterogeneity-aware partitioning."""
    tegra = NodeGroup(get_platform("Tegra2"), 32, 1.0, node_watts=6.3)
    xeon = NodeGroup(nehalem_node(), 2, 2.93, node_watts=330.0)

    def run():
        mixed = HeterogeneousCluster([tegra, xeon])
        return {
            "static_eff": mixed.static_efficiency(),
            "mixed_gflops_per_watt": mixed.gflops_per_watt(),
            "arm_only_gflops_per_watt": HeterogeneousCluster(
                [tegra]
            ).gflops_per_watt(),
            "best_mix_700w": best_mix_under_power_cap(
                NodeGroup(nehalem_node(), 1, 2.93, 330.0),
                NodeGroup(get_platform("Tegra2"), 1, 1.0, 6.3),
                power_cap_w=700.0,
            ),
        }

    data = benchmark(run)
    mix = data["best_mix_700w"]
    emit(
        "Heterogeneous-cluster study (32 Tegra2 + 2 Nehalem)",
        f"unweighted-split efficiency : {data['static_eff']:.0%} "
        "(the [25] homogeneity trap)\n"
        f"mixed GFLOPS/W              : {data['mixed_gflops_per_watt']:.3f}\n"
        f"ARM-only GFLOPS/W           : {data['arm_only_gflops_per_watt']:.3f}\n"
        f"best mix under 700 W        : {mix['n_fast']:.0f} Xeon + "
        f"{mix['n_slow']:.0f} Tegra ({mix['gflops']:.0f} GFLOPS)",
    )
    assert data["static_eff"] < 0.5
    assert data["arm_only_gflops_per_watt"] > data["mixed_gflops_per_watt"]
