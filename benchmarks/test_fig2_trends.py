"""Figures 2a/2b — peak FP64 trends: vector vs commodity, server vs
mobile, with exponential regressions."""

from conftest import emit

from repro.analysis.figures import render_figure


def test_figure2a_vector_vs_micro(benchmark, study):
    data = benchmark(study.figure2a)
    gap = data["gap_1995"]
    benchmark.extra_info["gap_1995"] = round(gap, 2)
    benchmark.extra_info["micro_growth"] = round(
        data["micro_fit"].growth_per_year, 3
    )
    emit(
        "Figure 2a: vector vs commodity microprocessor",
        f"vector growth/yr: {data['vector_fit'].growth_per_year:.2f}\n"
        f"micro  growth/yr: {data['micro_fit'].growth_per_year:.2f}\n"
        f"gap in 1995     : {gap:.1f}x  (paper: 'around ten times')",
    )
    emit("Figure 2a (chart)", render_figure("figure2a", data))
    assert 5.0 <= gap <= 15.0
    assert data["micro_fit"].growth_per_year > data["vector_fit"].growth_per_year


def test_figure2b_server_vs_mobile(benchmark, study):
    data = benchmark(study.figure2b)
    benchmark.extra_info["gap_2013"] = round(data["gap_2013"], 1)
    benchmark.extra_info["crossover_year"] = round(data["crossover_year"], 1)
    benchmark.extra_info["price_ratio"] = round(data["price_ratio"], 1)
    emit(
        "Figure 2b: server vs mobile SoC",
        f"server growth/yr : {data['server_fit'].growth_per_year:.2f}\n"
        f"mobile growth/yr : {data['mobile_fit'].growth_per_year:.2f}\n"
        f"gap in 2013      : {data['gap_2013']:.1f}x (paper: ~10x, 'quickly closing')\n"
        f"trend crossover  : {data['crossover_year']:.0f}\n"
        f"price ratio      : {data['price_ratio']:.0f}x (paper: ~70x)",
    )
    emit("Figure 2b (chart)", render_figure("figure2b", data))
    assert data["mobile_fit"].growth_per_year > data["server_fit"].growth_per_year
    assert data["price_ratio"] > 70
