"""H4 — HPL strong scaling vs input size (the paper's earlier study
[35], recalled in Section 4: "a change in the input set size affects the
scalability — the bigger the input set the better the scalability")."""

from conftest import emit

from repro.apps.hpl import HPL
from repro.cluster.cluster import tibidabo


def test_hpl_strong_scaling_vs_input_size(benchmark):
    hpl = HPL()
    cluster = tibidabo(32)

    def sweep():
        return {
            mem: hpl.strong_scaling_study(cluster, memory_nodes=mem)
            for mem in (1, 2, 4)
        }

    curves = benchmark(sweep)
    lines = []
    for mem, sp in curves.items():
        series = "  ".join(f"{p}:{s:4.1f}" for p, s in sorted(sp.items()))
        lines.append(f"input fits {mem} node(s): {series}  "
                     f"(eff@32 = {sp[32]/32:.0%})")
    emit("HPL strong scaling on 32 nodes, input size sweep [35]",
         "\n".join(lines))

    benchmark.extra_info["eff_at_32"] = {
        mem: round(sp[32] / 32, 3) for mem, sp in curves.items()
    }
    # The [35] finding, as an ordering.
    assert curves[1][32] < curves[2][32] < curves[4][32]
    # And each curve is monotone in node count.
    for sp in curves.values():
        vals = [sp[p] for p in sorted(sp)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))


def test_tracing_finds_nothing_on_clean_runs(benchmark):
    """The post-mortem trace analysis of Section 4 over a healthy run:
    no stalls (the original study found NFS timeouts this way)."""
    from repro.obs.messages import traced_world
    from repro.mpi.collectives import allreduce
    from repro.mpi.api import SyntheticPayload

    cluster = tibidabo(16)

    def run():
        world, tracer = traced_world(16, cluster.network())

        def prog(ctx):
            for _ in range(4):
                right = (ctx.rank + 1) % ctx.size
                left = (ctx.rank - 1) % ctx.size
                yield from ctx.exchange(
                    [(right, SyntheticPayload(8192), 1)], [(left, 1)]
                )
                yield from allreduce(ctx, 1.0)
            return None

        world.run(prog)
        return tracer.analysis(16)

    analysis = benchmark(run)
    emit("Post-mortem trace analysis (clean 16-node run)", analysis.summary())
    assert len(analysis.records) > 100
    assert analysis.stalls() == []
