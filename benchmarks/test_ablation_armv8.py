"""A3 ablation — the ARMv8 projection (Sections 1 and 3.1.2): FP64 in
the NEON unit doubles per-cycle throughput at the same micro-
architecture.  We rebuild the Figure 2b projection point and re-run the
single-SoC comparison and a hypothetical ARMv8 Tibidabo."""

import pytest
from conftest import emit

from repro.arch.catalog import armv8_projection, get_platform
from repro.cluster.cluster import build_cluster
from repro.cluster.power import ClusterPowerModel
from repro.apps.hpl import HPL


def test_armv8_projection_point(benchmark, study):
    out = benchmark(study.armv8_outlook)
    emit(
        "Ablation A3: ARMv8 projection",
        f"Exynos 5250 peak : {out['exynos_peak_gflops']:.1f} GFLOPS\n"
        f"ARMv8 4c @2GHz   : {out['armv8_peak_gflops']:.1f} GFLOPS\n"
        f"per-core-per-GHz : {out['per_core_per_ghz_ratio']:.1f}x",
    )
    assert out["per_core_per_ghz_ratio"] == pytest.approx(2.0)
    assert out["armv8_peak_gflops"] == pytest.approx(32.0)


def test_armv8_closes_the_gap(benchmark):
    """The projection point sits ~2.4x under the contemporary server
    chip instead of ~10x: the Figure 2b convergence claim."""

    def gap():
        xeon_peak = 166.4  # Xeon E5-2670 (Figure 2b server point)
        return {
            "tegra2_gap": xeon_peak / get_platform("Tegra2").peak_gflops(),
            "armv8_gap": xeon_peak / armv8_projection().peak_gflops(),
        }

    gaps = benchmark(gap)
    emit(
        "Ablation A3b: gap to Xeon E5-2670",
        "\n".join(f"{k}: {v:.1f}x" for k, v in gaps.items()),
    )
    assert gaps["tegra2_gap"] > 80
    assert gaps["armv8_gap"] < 6


def test_armv8_tibidabo_rerun(benchmark):
    """Tibidabo rebuilt with ARMv8 nodes: HPL throughput and energy
    efficiency move an order of magnitude."""
    hpl = HPL()

    def run():
        cluster = build_cluster(
            "Tibidabo-v8", 96, platform=armv8_projection(), freq_ghz=2.0
        )
        r = hpl.simulate(cluster, 96)
        pm = ClusterPowerModel()
        return {
            "gflops": r.gflops,
            "efficiency": hpl.efficiency(cluster, r),
            "mflops_per_watt": pm.mflops_per_watt(cluster, r.gflops),
        }

    out = benchmark(run)
    emit(
        "Ablation A3c: ARMv8 Tibidabo (96 nodes @2 GHz)",
        f"GFLOPS    : {out['gflops']:.0f} (Tegra 2 build: ~97)\n"
        f"efficiency: {out['efficiency']:.1%}\n"
        f"MFLOPS/W  : {out['mflops_per_watt']:.0f} (Tegra 2 build: ~120)",
    )
    assert out["gflops"] > 300  # an order-of-magnitude-class jump
    assert out["mflops_per_watt"] > 250  # vs ~120 for the Tegra 2 build
