"""Section 6.3 — the HPC-readiness checklist over the Table 1 platforms
and the Section 2 server-SoC comparators."""

from conftest import emit

from repro.arch.catalog import PLATFORMS
from repro.arch.features import Feature, assess, readiness_matrix
from repro.arch.servers import SERVER_PLATFORMS
from repro.core.results import render_table


def test_readiness_matrix(benchmark):
    platforms = list(PLATFORMS.values()) + list(SERVER_PLATFORMS.values())
    matrix = benchmark(readiness_matrix, platforms)

    headers = ["Platform"] + [f.name.lower() for f in Feature]
    rows = [
        [plat] + ["yes" if row[f.value] else "-" for f in Feature]
        for plat, row in matrix.items()
    ]
    emit("Section 6.3: HPC-readiness matrix", render_table(headers, rows))

    scores = {p.name: assess(p).readiness_score for p in platforms}
    benchmark.extra_info["scores"] = {
        k: round(v, 2) for k, v in scores.items()
    }

    # The paper's conclusion, computable: every mobile SoC fails every
    # criterion; the server-class SoCs built on the same IP pass most.
    for name in ("Tegra2", "Tegra3", "Exynos5250"):
        assert scores[name] == 0.0
    for name in ("EnergyCore-ECX1000", "X-Gene", "KeyStone-II"):
        assert scores[name] >= 0.65
    # "All these limitations are design decisions": the same ARM IP with
    # the features added (KeyStone II) nearly completes the checklist.
    assert scores["KeyStone-II"] >= scores["Exynos5250"] + 0.5


def test_design_decision_argument(benchmark):
    """ECC, 10GbE and offload appear exactly in the parts that chose to
    pay for them — same cores, different integration choices."""

    def evidence():
        out = {}
        for name, p in SERVER_PLATFORMS.items():
            a = assess(p)
            out[name] = {
                "core": p.soc.core.name,
                "ecc": Feature.ECC_MEMORY in a.supported,
                "fast_io": Feature.FAST_INTERCONNECT_IO in a.supported,
            }
        return out

    data = benchmark(evidence)
    emit(
        "Same IP, different choices",
        "\n".join(
            f"{k:20s} core={v['core']:12s} ecc={v['ecc']} 10GbE+={v['fast_io']}"
            for k, v in data.items()
        ),
    )
    # Calxeda: literally a Cortex-A9 (the Tegra core) with ECC + 10GbE.
    assert data["EnergyCore-ECX1000"]["core"] == "Cortex-A9"
    assert data["EnergyCore-ECX1000"]["ecc"]
    # KeyStone II: a Cortex-A15 (the Exynos core) with offload + ECC.
    assert data["KeyStone-II"]["core"] == "Cortex-A15"
