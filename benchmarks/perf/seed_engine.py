# FROZEN REFERENCE — the event engine exactly as shipped by the seed
# tree (pre slotted-heap optimisation), kept verbatim for the perf
# harness: `python -m repro bench engine` times the same benchmark
# bodies against this scheduler and the live one back-to-back, so the
# `speedup_vs_seed` figures in BENCH_engine.json are measured on the
# machine at hand rather than read from a table (immune to host-speed
# differences and load noise).  Do not modify and do not import from
# src/.
"""A minimal deterministic discrete-event engine.

Design:

* :class:`Event` — a one-shot occurrence that fires at a scheduled time
  (or when explicitly succeeded) and carries an optional value.
* :class:`Process` — wraps a generator.  The generator yields events;
  the process sleeps until the yielded event fires, then is resumed with
  the event's value.  A process is itself awaitable (its completion is
  an event), enabling fork/join structures.
* :class:`Engine` — the event heap and clock.  Ties are broken by a
  monotonically increasing sequence number, so runs are deterministic.

The engine is single-threaded and allocation-light: a 192-rank MPI
program with tens of thousands of messages simulates in well under a
second, which is what the Figure 6 scalability sweeps need.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.obs.recorder import current as _obs_current


class Interrupt(Exception):
    """Raised inside a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class SimFailure(Exception):
    """Base class for *modelled* failures (a crashed peer, a receive
    timeout, an injected fault).

    A process that dies of a ``SimFailure`` is contained: the process is
    marked failed and its completion event fails, but the engine keeps
    running — the failure propagates along wait edges instead of tearing
    down the whole simulation.  Any other exception escaping a process
    is a programming error and still aborts the run loudly.
    """


class Event:
    """A one-shot event; processes wait on it by yielding it.

    An event either *succeeds* (fires with a value) or *fails* (fires
    with an exception that is thrown into every waiter).  ``triggered``
    covers both; ``failed`` is the exception or ``None``.
    """

    __slots__ = ("engine", "triggered", "value", "failed", "_waiters", "callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self.failed: BaseException | None = None
        self._waiters: list[Process] = []
        self.callbacks: list[Callable[[Event], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event immediately (at the current simulation time).

        Callback and waiter lists are dropped once run, so a fired event
        holds no references into joins or processes that outlive it.
        """
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._ready(proc, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event as *failed*: every waiter has ``exc`` thrown
        into it at the current simulation time, and join callbacks see
        ``self.failed`` set.  Used to surface rank deaths to peers."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.failed = exc
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine._schedule_throw(proc, exc)
        return self

    def add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            if self.failed is not None:
                self.engine._schedule_throw(proc, self.failed)
            else:
                self.engine._ready(proc, self.value)
        else:
            self._waiters.append(proc)

    def remove_waiter(self, proc: "Process") -> None:
        """Withdraw a waiting process (used by :meth:`Process.interrupt`).

        O(n) in the number of waiters on this event — a linear scan.
        Fine at the simulator's fan-ins (an event rarely has more than a
        handful of waiters; the heavy fan-in constructs ``all_of`` /
        ``any_of`` use callbacks, not waiters).  If interrupt-heavy
        workloads ever wait thousands of processes on one event, replace
        the list with an ordered dict keyed by process.
        """
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def remove_callback(self, cb: Callable[["Event"], None]) -> None:
        """Remove every occurrence of ``cb`` (O(n) in callback count)."""
        self.callbacks = [c for c in self.callbacks if c is not cb]


class Process:
    """A running generator-based simulated process."""

    __slots__ = (
        "engine", "gen", "name", "done", "result", "failure",
        "_completion", "_waiting_on",
    )

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or repr(gen)
        self.done = False
        self.result: Any = None
        self.failure: SimFailure | None = None
        self._completion = Event(engine)
        self._waiting_on: Event | None = None

    @property
    def completion(self) -> Event:
        """Event fired (with the return value) when the process finishes."""
        return self._completion

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        self.throw(Interrupt(cause))

    def throw(self, exc: BaseException) -> None:
        """Throw an arbitrary exception into the process at the current
        time (the cancellation primitive fault injection kills ranks
        with).  A no-op on finished processes."""
        if self.done:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self.engine._schedule_throw(self, exc)

    def _step(self, value: Any = None, exc: BaseException | None = None) -> None:
        rec = self.engine._rec
        if rec is not None:
            rec.instant(f"step:{self.name}", "engine", self.engine.now)
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self._completion.succeed(stop.value)
            return
        except SimFailure as failure:
            # A modelled fault killed the process: contain it.  The
            # failed completion event propagates the failure to joiners
            # (e.g. a rank waiting on a spawned panel pipeline).
            self.done = True
            self.failure = failure
            self._completion.fail(failure)
            return
        if isinstance(target, Process):
            target = target.completion
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes must yield Event or Process objects"
            )
        self._waiting_on = target
        target.add_waiter(self)


class Engine:
    """The simulation clock and scheduler.

    An engine constructed while :func:`repro.obs.recorder.enable` is in
    effect captures the active recorder for its lifetime and emits
    schedule/fire/step events into it; otherwise ``_rec`` is ``None``
    and every hook reduces to one ``is None`` check.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._active = 0  # live (not finished) processes
        self._rec = _obs_current()

    # -- low-level scheduling --------------------------------------------
    def _push(self, time: float, fn: Callable[[], None]) -> None:
        if time < self.now - 1e-15:
            raise ValueError("cannot schedule in the past")
        if self._rec is not None:
            self._rec.bump("engine.scheduled")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def _ready(self, proc: Process, value: Any) -> None:
        self._push(self.now, lambda: proc._step(value))

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        self._push(self.now, lambda: proc._step(exc=exc))

    # -- public API --------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        ev = Event(self)
        self._push(self.now + delay, lambda: ev.succeed(value))
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a simulated process (runs from now)."""
        proc = Process(self, gen, name=name)
        self._active += 1
        proc.completion.callbacks.append(lambda _ev: self._finished())
        self._push(self.now, lambda: proc._step(None))
        return proc

    def _finished(self) -> None:
        self._active -= 1

    def all_of(self, events: Iterable[Event | Process]) -> Event:
        """An event that fires when every given event has fired.

        If any constituent *fails*, the join fails immediately with the
        same exception — a rank waiting on a batch of sends/receives
        learns of a dead peer at failure time, not at drain time.
        """
        evs = [e.completion if isinstance(e, Process) else e for e in events]
        joined = Event(self)
        for e in evs:
            if e.failed is not None:
                joined.fail(e.failed)
                return joined
        pending = sum(1 for e in evs if not e.triggered)
        if pending == 0:
            joined.succeed([e.value for e in evs])
            return joined
        state = {"pending": pending}

        def on_fire(ev: Event) -> None:
            if joined.triggered:
                return
            if ev.failed is not None:
                joined.fail(ev.failed)
                return
            state["pending"] -= 1
            if state["pending"] == 0:
                joined.succeed([e.value for e in evs])

        for e in evs:
            if not e.triggered:
                e.callbacks.append(on_fire)
        return joined

    def any_of(self, events: Iterable[Event | Process]) -> Event:
        """An event that fires when the FIRST of the given events fires,
        carrying that event's value.  Later firings are ignored.

        On first fire the join callback is removed from every *losing*
        event, so long-lived losers (e.g. a 100 s watchdog timeout that
        lost to a fast receive) do not pin the joined event — and
        everything reachable from it — until they eventually fire.
        Removal is O(total callbacks across the losers), paid once.
        """
        evs = [e.completion if isinstance(e, Process) else e for e in events]
        joined = Event(self)
        for e in evs:
            if e.triggered:
                if e.failed is not None:
                    joined.fail(e.failed)
                else:
                    joined.succeed(e.value)
                return joined

        def on_fire(ev: Event) -> None:
            if not joined.triggered:
                if ev.failed is not None:
                    joined.fail(ev.failed)
                else:
                    joined.succeed(ev.value)
                for other in evs:
                    # The winner's lists were already dropped by its
                    # succeed(); duplicates of a loser are all removed.
                    if other is not ev and not other.triggered:
                        other.remove_callback(on_fire)

        for e in evs:
            e.callbacks.append(on_fire)
        return joined

    def run(self, until: float | None = None) -> float:
        """Execute events until the heap drains (or ``until`` is reached).
        Returns the final simulation time."""
        if self._rec is not None:
            return self._run_traced(until)
        while self._heap:
            time, _seq, fn = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            fn()
        return self.now

    def run_until(self, event: Event) -> float:
        """Execute events until ``event`` triggers (succeeds or fails)
        or the heap drains.  Unfired heap entries — in-flight transfers,
        a fault daemon's future crash timer — are abandoned, which is
        exactly what a fault-tolerant runner wants: the clock stops when
        the job completes (or dies), not when the last watchdog expires.
        """
        rec = self._rec
        while self._heap and not event.triggered:
            time, seq, fn = heapq.heappop(self._heap)
            self.now = time
            if rec is not None:
                rec.instant("fire", "engine", time, seq=seq)
            fn()
        return self.now

    def _run_traced(self, until: float | None) -> float:
        """The :meth:`run` loop with a fire instant per dispatched event
        — kept separate so the untraced loop stays branch-free."""
        rec = self._rec
        while self._heap:
            time, seq, fn = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            rec.instant("fire", "engine", time, seq=seq)
            fn()
        return self.now
