"""Section 5 — the software stack: Figure 8 inventory, deployment
resolution, and the quantified cost of the ABI/kernel traps."""

from conftest import emit

from repro.arch.catalog import get_platform
from repro.stack import Deployment, figure8_layout
from repro.stack.deployment import stack_penalty_summary


def test_figure8_stack(benchmark):
    layout = benchmark(figure8_layout)
    emit(
        "Figure 8: software stack deployed on the ARM clusters",
        "\n".join(
            f"{layer:22s}: {', '.join(comps)}"
            for layer, comps in layout.items()
        ),
    )
    assert "mercurium" in layout["compiler"]
    assert "slurm" in layout["cluster management"]
    assert {"atlas", "fftw", "hdf5"} <= set(layout["scientific library"])


def test_baseline_deployment(benchmark):
    dep = Deployment(get_platform("Tegra2"))
    report = benchmark(dep.hpc_baseline)
    emit(
        "Tibidabo node deployment",
        f"components : {len(report.install_order)}\n"
        f"abi        : {report.abi}\n"
        f"notes      :\n  " + "\n  ".join(report.build_notes),
    )
    assert report.abi == "hardfp"
    assert report.production_ready
    # ATLAS's two Section 5 requirements surface as build notes.
    assert any("pinned" in n for n in report.build_notes)
    assert any("source modifications" in n for n in report.build_notes)


def test_accelerator_stack_penalties(benchmark):
    """CUDA's armel ABI and OpenCL's old kernel both cost CPU speed —
    Section 5's 'experimental' caveats, quantified."""

    def sweep():
        return {
            plat: stack_penalty_summary(get_platform(plat))
            for plat in ("Tegra3", "Exynos5250")
        }

    data = benchmark(sweep)
    lines = []
    for plat, pens in data.items():
        for config, rel in pens.items():
            lines.append(f"{plat:12s} {config:20s}: {rel:.2f}x")
    emit("Accelerator-stack CPU penalties (DGEMM-relative)", "\n".join(lines))

    benchmark.extra_info["penalties"] = {
        p: {k: round(v, 3) for k, v in d.items()} for p, d in data.items()
    }
    # armel costs ~10% CPU; the 1 GHz kernel cap costs the 1.7 GHz
    # Exynos ~40%.
    assert data["Exynos5250"]["cuda(armel)@fmax"] < 0.95
    assert data["Exynos5250"]["opencl-kernel@cap"] < 0.65
    assert (
        data["Exynos5250"]["opencl-kernel@cap"]
        < data["Tegra3"]["opencl-kernel@cap"]
    )
