"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a figure's series
or a table's rows), records the key numbers in ``benchmark.extra_info``
(so they land in pytest-benchmark's report), and prints the rendered
artefact.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.study import MobileSoCStudy


@pytest.fixture(scope="session")
def study():
    return MobileSoCStudy()


def emit(title: str, body: str) -> None:
    """Print a labelled artefact block."""
    bar = "=" * len(title)
    print(f"\n{title}\n{bar}\n{body}\n")
