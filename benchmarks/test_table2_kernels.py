"""Table 2 — the micro-kernel suite, plus functional verification and
pytest-benchmark timings of the real NumPy kernels."""

import pytest
from conftest import emit

from repro.analysis.tables import render_table2
from repro.kernels.registry import KERNELS, get_kernel


def test_table2_suite(benchmark, study):
    rows = benchmark(study.table2)
    emit("Table 2: micro-kernels used for platform evaluation",
         render_table2())
    assert len(rows) == 11
    assert [r["Kernel tag"] for r in rows] == [
        "vecop", "dmmm", "3dstc", "2dcon", "fft", "red",
        "hist", "msort", "nbody", "amcd", "spvm",
    ]


@pytest.mark.parametrize("tag", sorted(KERNELS))
def test_kernel_numpy_throughput(benchmark, tag):
    """Wall-clock pytest-benchmark of the actual NumPy implementation
    (the functional half of the suite) at a test-friendly size."""
    k = get_kernel(tag)
    size = k.verification_size()
    data = k.make_input(size, seed=0)
    benchmark.extra_info["size"] = size
    benchmark(k.run, data)
