"""A5 ablation — interconnect upgrade: what would the 10 GbE / InfiniBand
interfaces the mobile SoCs lack (Section 6.3) actually buy Tibidabo?
Plus the EEE trade-off behind the cited latency study [36]."""

from conftest import emit

from repro.apps import APPLICATIONS
from repro.apps.hpl import HPL
from repro.cluster.cluster import build_cluster
from repro.net.eee import EEELink
from repro.net.link import GBE, INFINIBAND_40G, TEN_GBE
from repro.net.protocol import OPEN_MX


def _tibidabo_with(link):
    return build_cluster(
        "Tibidabo-upgraded", 96, platform="Tegra2", freq_ghz=1.0,
        protocol=OPEN_MX, link=link,
    )


def test_interconnect_upgrade(benchmark):
    hpl = HPL()
    hydro = APPLICATIONS["HYDRO"]

    def sweep():
        out = {}
        for link in (GBE, TEN_GBE, INFINIBAND_40G):
            cluster = _tibidabo_with(link)
            out[link.name] = {
                "hpl_gflops": hpl.simulate(cluster, 96).gflops,
                "hydro_t_step_ms": hydro.simulate(cluster, 96).time_per_step_s
                * 1e3,
            }
        return out

    data = benchmark(sweep)
    lines = [
        f"{name:16s}: HPL {d['hpl_gflops']:6.1f} GFLOPS   "
        f"HYDRO {d['hydro_t_step_ms']:6.2f} ms/step"
        for name, d in data.items()
    ]
    emit("Ablation A5: Tibidabo with upgraded interconnect", "\n".join(lines))
    benchmark.extra_info["hpl_gflops"] = {
        k: round(d["hpl_gflops"], 1) for k, d in data.items()
    }

    # HPL gains from 10 GbE, but only a few percent: once the wire is
    # fast, the 1D algorithm's own limits (panel factorisation on the
    # critical path, block-cyclic imbalance) take over — upgraded
    # plumbing does not fix algorithmic serialisation.
    assert data["10GbE"]["hpl_gflops"] > data["1GbE"]["hpl_gflops"] * 1.03
    # Diminishing returns beyond 10 GbE.
    gain_10 = data["10GbE"]["hpl_gflops"] / data["1GbE"]["hpl_gflops"]
    gain_ib = (
        data["40Gb InfiniBand"]["hpl_gflops"] / data["10GbE"]["hpl_gflops"]
    )
    assert gain_ib < gain_10
    # Latency-bound HYDRO barely moves: its cost is per-message software,
    # which a fatter pipe does not fix (the Section 4.1 lesson).
    assert (
        data["10GbE"]["hydro_t_step_ms"]
        > data["1GbE"]["hydro_t_step_ms"] * 0.85
    )


def test_eee_tradeoff(benchmark):
    """[36]: Energy Efficient Ethernet's wake-up latency vs PHY savings."""
    eee = EEELink()

    def sweep():
        return {
            "saving_idle": eee.energy_saving_fraction(0.1),
            "exec_penalty_snb": eee.execution_time_penalty(65.0, 1.0),
            "exec_penalty_arndale": eee.execution_time_penalty(65.0, 0.5),
            "worth_it_hpc": eee.worth_it(0.2, 65.0),
        }

    data = benchmark(sweep)
    emit(
        "EEE trade-off (802.3az on the cluster links)",
        f"PHY energy saved at 10% load : {data['saving_idle']:.0%}\n"
        f"execution-time cost (SNB)    : +{data['exec_penalty_snb']:.0%}\n"
        f"execution-time cost (Arndale): +{data['exec_penalty_arndale']:.0%}\n"
        f"worth enabling for HPC?      : {data['worth_it_hpc']}",
    )
    assert data["saving_idle"] > 0.7
    assert not data["worth_it_hpc"]
