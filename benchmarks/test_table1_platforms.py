"""Table 1 — platforms under evaluation."""

import pytest
from conftest import emit

from repro.analysis.tables import render_table1
from repro.arch.catalog import get_platform


def test_table1_platforms(benchmark, study):
    rows = benchmark(study.table1)
    emit("Table 1: platforms under evaluation", render_table1())

    by_soc = {r["SoC"]: r for r in rows}
    benchmark.extra_info["peaks"] = {
        name: by_soc[name]["FP-64 GFLOPS"] for name in by_soc
    }
    # Published peak FP64 GFLOPS.
    assert by_soc["Tegra2"]["FP-64 GFLOPS"] == pytest.approx(2.0)
    assert by_soc["Tegra3"]["FP-64 GFLOPS"] == pytest.approx(5.2)
    assert by_soc["Exynos5250"]["FP-64 GFLOPS"] == pytest.approx(6.8)
    assert by_soc["Corei7-2760QM"]["FP-64 GFLOPS"] == pytest.approx(76.8)
    # Published peak memory bandwidths.
    for name, bw in (
        ("Tegra2", 2.6), ("Tegra3", 5.86),
        ("Exynos5250", 12.8), ("Corei7-2760QM", 25.6),
    ):
        assert get_platform(name).soc.memory.peak_bandwidth_gbs == bw
