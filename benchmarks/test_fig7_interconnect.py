"""Figure 7 — interconnect latency and effective bandwidth for the six
configurations (Tegra 2 / Exynos 5 x TCP/IP / Open-MX x frequency),
plus the Section 4.1 latency-penalty estimates (H2)."""

import pytest
from conftest import emit

from repro.analysis.figures import render_figure


PAPER_LATENCY = {
    "Tegra2 TCP/IP 1.0GHz": 100.0,
    "Tegra2 OpenMX 1.0GHz": 65.0,
    "Exynos5 TCP/IP 1.0GHz": 125.0,
    "Exynos5 OpenMX 1.0GHz": 93.0,
}

PAPER_BANDWIDTH = {
    "Tegra2 TCP/IP 1.0GHz": 65.0,
    "Tegra2 OpenMX 1.0GHz": 117.0,
    "Exynos5 TCP/IP 1.0GHz": 63.0,
    "Exynos5 OpenMX 1.0GHz": 69.0,
    "Exynos5 OpenMX 1.4GHz": 75.0,
}


def test_figure7_interconnect(benchmark, study):
    data = benchmark(study.figure7)

    lines = []
    for label, d in data.items():
        lines.append(
            f"{label:24s} latency={d['small_message_latency_us']:6.1f}us  "
            f"peak bw={max(d['bandwidth_mbs'].values()):6.1f}MB/s"
        )
    emit("Figure 7: ping-pong latency / effective bandwidth", "\n".join(lines))
    emit("Figure 7 (charts)", render_figure("figure7", data))

    benchmark.extra_info["latency_us"] = {
        k: round(v["small_message_latency_us"], 1) for k, v in data.items()
    }

    for label, paper in PAPER_LATENCY.items():
        assert data[label]["small_message_latency_us"] == pytest.approx(
            paper, rel=0.12
        ), label
    for label, paper in PAPER_BANDWIDTH.items():
        assert max(data[label]["bandwidth_mbs"].values()) == pytest.approx(
            paper, rel=0.20
        ), label
    # Raising the Exynos clock 1.0 -> 1.4 GHz cuts latency ~10%.
    drop = 1 - (
        data["Exynos5 TCP/IP 1.4GHz"]["small_message_latency_us"]
        / data["Exynos5 TCP/IP 1.0GHz"]["small_message_latency_us"]
    )
    assert drop == pytest.approx(0.10, abs=0.03)


def test_latency_penalty_estimates(benchmark, study):
    pen = benchmark(study.latency_penalties)
    emit(
        "Section 4.1: latency -> execution-time penalty",
        "\n".join(f"{k}: +{v:.0%}" for k, v in pen.items()),
    )
    benchmark.extra_info.update({k: round(v, 3) for k, v in pen.items()})
    # Saravanan et al. reference points and the paper's Arndale estimates.
    assert pen["snb_100us"] == pytest.approx(0.90, abs=0.02)
    assert pen["snb_65us"] == pytest.approx(0.60, abs=0.03)
    assert pen["arndale_100us"] == pytest.approx(0.50, abs=0.08)
    assert pen["arndale_65us"] == pytest.approx(0.40, abs=0.06)
