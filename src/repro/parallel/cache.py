"""Content-addressed on-disk result cache for campaign work units.

Keys are SHA-256 hashes over the unit's coordinates (kind + params +
study seed) and a fingerprint of the ``repro`` package source, so

* the same operating point always lands on the same object file, from
  any process on any machine, and
* any change to the model code invalidates the whole cache at once —
  there is no staleness to reason about, only misses.

Values are stored as JSON (floats round-trip exactly through Python's
``json``), one object file per unit under ``<root>/objects/<k[:2]>/``,
written atomically via rename.  Hits and misses are counted on the
cache object and, when the observability layer is recording, bumped
onto the active :class:`~repro.obs.recorder.TraceRecorder` as the
``cache.hit`` / ``cache.miss`` totals (evictions as ``cache.evict``).

The store is size-capped: once the object files exceed ``max_bytes``
(default :data:`DEFAULT_MAX_BYTES` = 256 MiB; ``0`` = unlimited) a
``put`` prunes oldest-mtime-first until back under the cap, so a
long-lived serving process cannot grow the cache without bound.
Reads refresh the object file's mtime (touch-on-read), so
oldest-mtime-first is genuine LRU: under size pressure the coldest
keys pay, never the hottest.
Objects written since the previous eviction round are exempt for one
round: with several writers on one directory (the serving front end's
probe/batch handles, the job tier), eviction pressure from one writer
must not be able to unlink an object another writer committed
microseconds ago — the job tier's resume contract treats a completed
unit's cache entry as its checkpoint.  Corrupt or alien object files
are treated as misses *and unlinked* — leaving the corpse on disk made
every subsequent ``get`` re-read and re-fail on it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.obs.recorder import current as _obs_current

SCHEMA_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Default size cap for the object store (``0`` = unlimited).  256 MiB
#: holds hundreds of thousands of campaign unit values — far beyond a
#: full campaign — while bounding a serving process's disk footprint.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()

#: Process-wide registry of object paths written since the last eviction
#: round, shared by every :class:`ResultCache` handle on this process —
#: an eviction round (any handle's) skips them and then retires them, so
#: a just-written object survives at least one round of concurrent
#: ``max_bytes`` pressure.  Bounded; entries beyond the bound lose their
#: exemption oldest-first.
_FRESH_LIMIT = 4096
_fresh_paths: OrderedDict[str, None] = OrderedDict()
_fresh_lock = threading.Lock()


def _mark_fresh(path: Path) -> None:
    with _fresh_lock:
        _fresh_paths[str(path)] = None
        _fresh_paths.move_to_end(str(path))
        while len(_fresh_paths) > _FRESH_LIMIT:
            _fresh_paths.popitem(last=False)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro``
    package (paths and contents) — the code half of every cache key."""
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def unit_key(
    kind: str,
    params: dict[str, Any],
    seed: int = 0,
    fingerprint: str | None = None,
) -> str:
    """The content address of one work unit's result."""
    material = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "params": params,
            "seed": seed,
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache object's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def describe(self) -> str:
        text = (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate)"
        )
        if self.evictions:
            text += f", {self.evictions} evicted"
        return text


class ResultCache:
    """The on-disk store.  Corrupt or alien object files are treated as
    misses and unlinked, so the next ``get`` does not re-read them.

    :param root: cache directory (created on first ``put``).
    :param max_bytes: size cap for the object store; ``put`` prunes
        oldest-mtime-first once the total exceeds it.  ``0`` disables
        the cap.  Default: :data:`DEFAULT_MAX_BYTES`.
    """

    def __init__(
        self,
        root: str | Path = DEFAULT_CACHE_DIR,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (0 = unlimited)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._total_bytes: int | None = None  # lazy; None = not yet scanned

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _count(self, hit: bool) -> None:
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        rec = _obs_current()
        if rec is not None:
            rec.bump("cache.hit" if hit else "cache.miss")

    def _object_files(self) -> list[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return [p for p in objects.glob("*/*.json") if p.is_file()]

    def _discard(self, path: Path) -> None:
        """Unlink a corrupt/alien object file (racing removal is fine)."""
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return
        if self._total_bytes is not None:
            self._total_bytes = max(0, self._total_bytes - size)

    def _load(self, key: str) -> Any:
        """Uncounted read: the value for ``key`` or :data:`MISS`."""
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return MISS
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION \
                or "value" not in doc:
            # Corrupt or alien: a miss — and the corpse must go, or
            # every later get would re-read and re-fail on it.
            self._discard(path)
            return MISS
        try:
            # Touch-on-read: eviction is oldest-mtime-first, so without
            # this a hot key kept its write-time mtime and size pressure
            # evicted the most-requested objects first (FIFO masquerading
            # as LRU).  A concurrent unlink (another handle's eviction or
            # corrupt-object discard) between the read and the touch is
            # fine — the value was already parsed.
            os.utime(path)
        except OSError:
            pass
        return doc["value"]

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or the :data:`MISS` sentinel."""
        value = self._load(key)
        self._count(hit=value is not MISS)
        return value

    def get_many(self, keys: list[str]) -> list[Any]:
        """Batched probe: the value (or :data:`MISS`) for every key.

        One pass, one stats/obs update per outcome class instead of one
        per key — the campaign runner and the job tier's resume probe
        touch hundreds of keys back to back, and per-key counter bumps
        were a measurable fraction of an all-hits probe.
        """
        values = [self._load(key) for key in keys]
        hits = sum(1 for v in values if v is not MISS)
        misses = len(values) - hits
        self.stats.hits += hits
        self.stats.misses += misses
        rec = _obs_current()
        if rec is not None:
            if hits:
                rec.bump("cache.hit", hits)
            if misses:
                rec.bump("cache.miss", misses)
        return values

    def put(self, key: str, value: Any, kind: str = "") -> None:
        """Store ``value`` (must be JSON-serialisable) atomically, then
        prune oldest-mtime-first if the store exceeds ``max_bytes``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"schema": SCHEMA_VERSION, "kind": kind, "value": value}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
            try:
                old_size = path.stat().st_size
            except OSError:
                old_size = 0
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _mark_fresh(path)
        if self.max_bytes:
            if self._total_bytes is None:
                self._total_bytes = sum(
                    p.stat().st_size for p in self._object_files()
                )
            else:
                self._total_bytes += path.stat().st_size - old_size
            if self._total_bytes > self.max_bytes:
                self._evict()

    def _evict(self) -> None:
        """Prune object files oldest-mtime-first until under the cap.

        Ties (same mtime at filesystem granularity) break by path, so
        eviction order is deterministic.  Objects written (by any
        handle in this process) since the previous eviction round are
        exempt for this round: mtime order alone let one writer's
        pressure unlink an object another writer had committed
        microseconds earlier — the concurrent-writer race the serving
        layers hit once probe, batch and job caches shared a directory.
        An all-fresh store may therefore stay over the cap for a round;
        the next round (when those objects have aged out of the
        registry) collects them.
        """
        rec = _obs_current()
        with _fresh_lock:
            fresh = set(_fresh_paths)
        aged = sorted(
            ((p.stat().st_mtime_ns, p) for p in self._object_files()),
            key=lambda pair: (pair[0], str(pair[1])),
        )
        total = sum(p.stat().st_size for _, p in aged)
        for _, victim in aged:
            if total <= self.max_bytes:
                break
            if str(victim) in fresh:
                continue  # exempt for this round
            try:
                size = victim.stat().st_size
                victim.unlink()
            except OSError:
                continue  # raced with another process; nothing to count
            total -= size
            self.stats.evictions += 1
            if rec is not None:
                rec.bump("cache.evict")
        self._total_bytes = total
        # Retire this round's exemptions: each object is "new" for
        # exactly one eviction round.
        with _fresh_lock:
            for path in fresh:
                _fresh_paths.pop(path, None)
