"""Content-addressed on-disk result cache for campaign work units.

Keys are SHA-256 hashes over the unit's coordinates (kind + params +
study seed) and a fingerprint of the ``repro`` package source, so

* the same operating point always lands on the same object file, from
  any process on any machine, and
* any change to the model code invalidates the whole cache at once —
  there is no staleness to reason about, only misses.

Values are stored as JSON (floats round-trip exactly through Python's
``json``), one object file per unit under ``<root>/objects/<k[:2]>/``,
written atomically via rename.  Hits and misses are counted on the
cache object and, when the observability layer is recording, bumped
onto the active :class:`~repro.obs.recorder.TraceRecorder` as the
``cache.hit`` / ``cache.miss`` totals.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.obs.recorder import current as _obs_current

SCHEMA_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro``
    package (paths and contents) — the code half of every cache key."""
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def unit_key(
    kind: str,
    params: dict[str, Any],
    seed: int = 0,
    fingerprint: str | None = None,
) -> str:
    """The content address of one work unit's result."""
    material = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "params": params,
            "seed": seed,
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache object's lifetime."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate)"
        )


class ResultCache:
    """The on-disk store.  Corrupt or alien object files are treated as
    misses and silently overwritten on the next ``put``."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _count(self, hit: bool) -> None:
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        rec = _obs_current()
        if rec is not None:
            rec.bump("cache.hit" if hit else "cache.miss")

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or the :data:`MISS` sentinel."""
        try:
            doc = json.loads(self._path(key).read_text())
        except (OSError, json.JSONDecodeError):
            self._count(hit=False)
            return MISS
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION \
                or "value" not in doc:
            self._count(hit=False)
            return MISS
        self._count(hit=True)
        return doc["value"]

    def put(self, key: str, value: Any, kind: str = "") -> None:
        """Store ``value`` (must be JSON-serialisable) atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"schema": SCHEMA_VERSION, "kind": kind, "value": value}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
