"""The sharded campaign runner: pool execution + deterministic merge.

Execution model
---------------

1. Build the unit plan (:func:`repro.parallel.units.campaign_units`).
2. Probe the result cache for every unit in the parent — single reader
   and single writer, so no cross-process cache locking is needed.
3. Run the misses across a ``multiprocessing`` pool (``chunksize=1``;
   heavy units are listed first so workers drain evenly).  ``jobs=1``
   executes misses in-process, same code path minus the pool.
4. Merge by *plan order*, never completion order: platform order is the
   catalog's, frequency order the DVFS table's, Figure 6 order the
   application registry's.  The merged dict is byte-identical (through
   ``json.dumps``) to :meth:`MobileSoCStudy.run_all` serial output.

The cheap artefacts (figures 1/2/5/7, the tables, the outlooks) are
computed directly in the parent — they cost microseconds and some carry
non-JSON-serialisable points, so sharding or caching them would buy
nothing and complicate the cache contract.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.parallel.cache import (
    DEFAULT_CACHE_DIR,
    MISS,
    CacheStats,
    ResultCache,
    unit_key,
)
from repro.parallel.units import (
    WorkUnit,
    app_run_result,
    campaign_units,
    execute_unit,
    pool_entry,
)


@dataclass(frozen=True)
class UnitFailure:
    """A unit that raised instead of returning a value.

    ``run_units(safe=True)`` returns one of these in the failed unit's
    slot instead of propagating the exception and losing the rest of
    the batch — the job tier needs per-unit failure isolation to retry
    or quarantine exactly the poison unit.  Never cached.
    """

    error: str


def safe_pool_entry(job: tuple[str, dict[str, Any], int]) -> tuple[str, Any]:
    """Pool target that captures per-unit exceptions as data (a raised
    exception in ``pool.map`` poisons the whole batch)."""
    try:
        return ("ok", pool_entry(job))
    except Exception as exc:  # noqa: BLE001 - the point is containment
        return ("err", f"{type(exc).__name__}: {exc}")


def _pool_context(start_method: str | None = None):
    """The multiprocessing context for a worker pool.

    ``start_method`` picks the context explicitly; otherwise the
    ``REPRO_START_METHOD`` environment variable does, and failing both
    we prefer ``fork`` (workers inherit warm imports) with a fall back
    to the platform default (``spawn`` on macOS/Windows).  The campaign
    is correct — byte-identical — under every method: work units are
    pure functions of ``(kind, params, seed)`` plus the package source,
    so a freshly spawned interpreter computes the same bits a forked
    one inherits.  An unavailable method raises ``ValueError`` naming
    the platform's choices instead of failing inside the pool.
    """
    if start_method is None:
        start_method = os.environ.get("REPRO_START_METHOD") or None
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in methods else None
    elif start_method not in methods:
        raise ValueError(
            f"start method {start_method!r} unavailable on this platform "
            f"(choices: {', '.join(methods)})"
        )
    return multiprocessing.get_context(start_method)


def probe_units(
    units: list[WorkUnit],
    cache: ResultCache | None,
    seed: int = 0,
) -> tuple[list[Any], list[int]]:
    """Resolve whatever the cache already holds: ``(values, todo)``
    where ``values`` carries the hits in unit order (misses ``None``)
    and ``todo`` lists the miss indices.  One batched probe
    (:meth:`ResultCache.get_many`), not a per-unit ``get`` — this is
    also the job tier's restart-resume hook: completed units land in
    the cache, so the probe *is* the checkpoint read."""
    values: list[Any] = [None] * len(units)
    if cache is None:
        return values, list(range(len(units)))
    hits = cache.get_many(
        [unit_key(u.kind, u.params, seed) for u in units]
    )
    todo: list[int] = []
    for i, hit in enumerate(hits):
        if hit is MISS:
            todo.append(i)
        else:
            values[i] = hit
    return values, todo


def run_units(
    units: list[WorkUnit],
    jobs: int = 1,
    cache: ResultCache | None = None,
    seed: int = 0,
    start_method: str | None = None,
    pool=None,
    safe: bool = False,
    on_result=None,
) -> list[Any]:
    """Execute ``units``, returning their values in input order.

    Cache hits are resolved in the parent; only misses reach the pool.
    ``pool`` reuses a caller-owned worker pool instead of creating one
    per call — long-lived callers (the serving front end) pre-fork
    theirs while the process is still single-threaded, because forking
    from a threaded process can hand workers a lock some other thread
    held at fork time, deadlocking them before they take a task.

    ``safe=True`` captures each unit's exception as a
    :class:`UnitFailure` in its slot (never cached) instead of raising
    and discarding the batch.  ``on_result(index, value)`` is invoked
    for every unit as it resolves — cache hits immediately, fresh
    values in unit order as the pool yields them — so a caller can
    checkpoint progress mid-batch instead of only at the end.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    values, todo = probe_units(units, cache, seed)
    if on_result is not None:
        todo_set = set(todo)
        for i in range(len(units)):
            if i not in todo_set:
                on_result(i, values[i])
    if todo:
        entry = safe_pool_entry if safe else pool_entry
        jobs_args = [(units[i].kind, units[i].params, seed) for i in todo]
        if pool is not None and len(todo) > 1:
            fresh = pool.imap(entry, jobs_args, chunksize=1)
        elif jobs == 1 or len(todo) == 1:
            fresh = map(entry, jobs_args)
        else:
            own_pool = _pool_context(start_method).Pool(min(jobs, len(todo)))
            fresh = own_pool.imap(entry, jobs_args, chunksize=1)
        try:
            for i, value in zip(todo, fresh):
                if safe:
                    tag, payload = value
                    value = (
                        payload if tag == "ok" else UnitFailure(payload)
                    )
                values[i] = value
                if cache is not None and not isinstance(value, UnitFailure):
                    cache.put(
                        unit_key(units[i].kind, units[i].params, seed),
                        value,
                        kind=units[i].kind,
                    )
                if on_result is not None:
                    on_result(i, value)
        finally:
            if pool is None and not (jobs == 1 or len(todo) == 1):
                own_pool.close()
                own_pool.join()
    return values


@dataclass
class CampaignReport:
    """A merged campaign plus the execution telemetry around it."""

    results: dict[str, Any]
    jobs: int
    quick: bool
    wall_s: float
    n_units: int
    cache_stats: CacheStats = field(default_factory=CacheStats)
    cache_dir: Path | None = None

    def describe(self) -> str:
        lines = [
            f"campaign: {self.n_units} work units in {self.wall_s:.2f} s "
            f"with {self.jobs} worker(s)"
            + (" [quick]" if self.quick else "")
        ]
        if self.cache_dir is not None:
            lines.append(
                f"cache {self.cache_dir}: {self.cache_stats.describe()}"
            )
        return "\n".join(lines)


def run_campaign(
    quick: bool = False,
    jobs: int = 2,
    cache_dir: str | Path | None = DEFAULT_CACHE_DIR,
    study=None,
    seed: int | None = None,
    start_method: str | None = None,
) -> CampaignReport:
    """Run the full campaign sharded; see the module docstring.

    ``study`` (optional) supplies the seed, computes the cheap
    in-parent artefacts, and gets its figure memos pre-seeded so later
    rendering of figures 3/4/6 and the headline is free.
    """
    from repro.cluster.cluster import tibidabo
    from repro.core.study import (
        FIG6_FULL_COUNTS,
        FIG6_QUICK_COUNTS,
        MobileSoCStudy,
    )

    t0 = time.perf_counter()
    if study is None:
        study = MobileSoCStudy(seed=seed if seed is not None else 0)
    elif seed is not None and seed != study.seed:
        raise ValueError("seed disagrees with the supplied study's")
    counts = FIG6_QUICK_COUNTS if quick else FIG6_FULL_COUNTS
    cluster = tibidabo(max(counts))
    units = campaign_units(quick, cluster, study)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    values = run_units(
        units, jobs=jobs, cache=cache, seed=study.seed,
        start_method=start_method,
    )
    results = _merge_campaign(study, cluster, counts, units, values)
    return CampaignReport(
        results=results,
        jobs=jobs,
        quick=quick,
        wall_s=time.perf_counter() - t0,
        n_units=len(units),
        cache_stats=cache.stats if cache is not None else CacheStats(),
        cache_dir=Path(cache_dir) if cache_dir is not None else None,
    )


def _merge_campaign(
    study,
    cluster,
    counts: tuple[int, ...],
    units: list[WorkUnit],
    values: list[Any],
) -> dict[str, Any]:
    """Assemble the ``run_all``-shaped dict from unit values, in the
    exact order and with the exact arithmetic of the serial path."""
    from repro.apps import APPLICATIONS, ScalingStudy
    from repro.core.study import figure6_counts

    by: dict[tuple[str, tuple], Any] = {
        (u.kind, tuple(sorted(u.params.items()))): v
        for u, v in zip(units, values)
    }

    def lookup(kind: str, **params: Any) -> Any:
        return by[(kind, tuple(sorted(params.items())))]

    base_energy = lookup("sweep_base")
    figures34: dict[str, dict[str, list[dict[str, float]]]] = {}
    for figure, mode in (("figure3", "single"), ("figure4", "multi")):
        out: dict[str, list[dict[str, float]]] = {}
        for name, platform in study.platforms.items():
            series = []
            for freq in platform.soc.dvfs.frequencies():
                pt = lookup("sweep_point", mode=mode, platform=name, freq=freq)
                series.append(
                    {
                        "freq_ghz": pt["freq_ghz"],
                        "speedup": pt["speedup"],
                        "energy_norm": pt["energy_j"] / base_energy,
                    }
                )
            out[name] = series
        figures34[figure] = out

    figure6: dict[str, dict[int, float]] = {}
    max_nodes = max(counts)
    for name, app in APPLICATIONS.items():
        app_counts = figure6_counts(app, cluster, counts)
        if app_counts is None:
            continue
        scaling = ScalingStudy(app, cluster, node_counts=app_counts)
        for n in app_counts:
            scaling.results[n] = app_run_result(
                lookup("fig6_point", app=name, n=n, max_nodes=max_nodes)
            )
        figure6[name] = scaling.speedups()

    headline = lookup("headline", n_nodes=96)

    # Pre-seed the study's memos so rendering after the campaign reuses
    # the sharded results instead of recomputing serially.
    study._results_memo[("figure3",)] = figures34["figure3"]
    study._results_memo[("figure4",)] = figures34["figure4"]
    study._results_memo[("figure6", tuple(counts))] = figure6
    study._results_memo[("headline_hpl", 96)] = headline

    return {
        "figure1": study.figure1(),
        "figure2a": study.figure2a(),
        "figure2b": study.figure2b(),
        "table1": study.table1(),
        "table2": study.table2(),
        "figure3": figures34["figure3"],
        "figure4": figures34["figure4"],
        "figure5": study.figure5(),
        "figure6": figure6,
        "figure7": study.figure7(),
        "table4": study.table4(),
        "headline_hpl": headline,
        "latency_penalties": study.latency_penalties(),
        "armv8_outlook": study.armv8_outlook(),
    }


# ---------------------------------------------------------------------------
# Generic scaling-study sharding (no cache: an arbitrary cluster has no
# stable content address; the campaign's Figure 6 path, which pins the
# Tibidabo spec, is the cached one).
# ---------------------------------------------------------------------------

def _scaling_entry(job: tuple[Any, Any, int, dict[str, Any]]):
    app, cluster, n, overrides = job
    return n, app.simulate(cluster, n, **overrides)


def simulate_across_pool(
    app, cluster, node_counts: list[int], jobs: int, overrides: dict[str, Any]
) -> dict[int, Any]:
    """Run ``app`` at each node count across a pool; deterministic
    (node-count-ordered) result dict."""
    if jobs < 2 or len(node_counts) < 2:
        return {
            n: app.simulate(cluster, n, **overrides)
            for n in node_counts
        }
    jobs_args = [
        (app, cluster, n, overrides)
        for n in sorted(node_counts, reverse=True)  # heavy first
    ]
    with _pool_context().Pool(min(jobs, len(jobs_args))) as pool:
        done = dict(pool.map(_scaling_entry, jobs_args, chunksize=1))
    return {n: done[n] for n in node_counts}
