"""Campaign work units: decomposition and worker-side execution.

A :class:`WorkUnit` is one independent piece of the paper's campaign:

``sweep_base``
    the Tegra 2 @1 GHz serial baseline energy (Figures 3/4 denominator)
``sweep_point``
    one Figure 3/4 operating point — ``mode`` (single/multi) x
    ``platform`` x ``freq``
``fig6_point``
    one Figure 6 point — ``app`` x ``n`` nodes on a ``max_nodes``
    Tibidabo build
``headline``
    the 96-node HPL headline run

Every unit returns plain JSON-serialisable data (the cache contract),
and its value is a pure function of ``(kind, params, seed)`` plus the
package source — the runner exploits exactly that for content-addressed
caching.  Heavy units are listed first so a pool drains well; merge
order never depends on list order, only on the deterministic plans.

Workers keep one study/cluster per process (module-level memos below),
so kernel-timing memoisation still amortises across the units a worker
happens to execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.apps import APPLICATIONS
from repro.apps.base import AppRunResult
from repro.core.study import (
    FIG6_FULL_COUNTS,
    FIG6_QUICK_COUNTS,
    MobileSoCStudy,
    figure6_counts,
)

SWEEP_MODES = ("single", "multi")


@dataclass(frozen=True)
class WorkUnit:
    """One independent, cacheable piece of the campaign."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind}({inner})"


def campaign_units(quick: bool, cluster, study=None) -> list[WorkUnit]:
    """The full campaign's unit list (heaviest first, for pool packing).

    ``cluster`` is the Figure 6 Tibidabo build — needed to resolve each
    application's minimum node count exactly the way the serial path
    does.
    """
    counts = FIG6_QUICK_COUNTS if quick else FIG6_FULL_COUNTS
    max_nodes = max(counts)
    units: list[WorkUnit] = [WorkUnit("headline", {"n_nodes": 96})]
    for name, app in APPLICATIONS.items():
        app_counts = figure6_counts(app, cluster, counts)
        if app_counts is None:
            continue
        for n in sorted(app_counts, reverse=True):
            units.append(
                WorkUnit("fig6_point", {"app": name, "n": n, "max_nodes": max_nodes})
            )
    units.append(WorkUnit("sweep_base", {}))
    plan = (study if study is not None else _plan_study()).sweep_plan()
    for mode in SWEEP_MODES:
        for platform, freq in plan:
            units.append(
                WorkUnit(
                    "sweep_point",
                    {"mode": mode, "platform": platform, "freq": freq},
                )
            )
    return units


# ---------------------------------------------------------------------------
# Worker-side execution.  One memoized study per (process, seed) and one
# cluster per (max_nodes) keep executor/timing memos warm across the
# units a worker runs; results stay deterministic either way.
# ---------------------------------------------------------------------------

_studies: dict[int, MobileSoCStudy] = {}
_clusters: dict[int, Any] = {}


def _plan_study(seed: int = 0) -> MobileSoCStudy:
    study = _studies.get(seed)
    if study is None:
        study = _studies[seed] = MobileSoCStudy(seed=seed)
    return study


def _cluster_for(max_nodes: int):
    from repro.cluster.cluster import tibidabo

    cluster = _clusters.get(max_nodes)
    if cluster is None:
        cluster = _clusters[max_nodes] = tibidabo(max_nodes)
    return cluster


def execute_unit(kind: str, params: dict[str, Any], seed: int = 0) -> Any:
    """Run one work unit and return its JSON-serialisable value."""
    study = _plan_study(seed)
    if kind == "sweep_base":
        return study.sweep_base_energy()
    if kind == "sweep_point":
        return study.sweep_point(params["mode"], params["platform"], params["freq"])
    if kind == "fig6_point":
        app = APPLICATIONS[params["app"]]
        result = app.simulate(_cluster_for(params["max_nodes"]), params["n"])
        return {
            "app": result.app,
            "n_nodes": result.n_nodes,
            "time_s": result.time_s,
            "flops": result.flops,
            "steps": result.steps,
            "comm_fraction": result.comm_fraction,
        }
    if kind == "headline":
        return study.headline_hpl(params["n_nodes"])
    raise ValueError(f"unknown work-unit kind {kind!r}")


def pool_entry(job: tuple[str, dict[str, Any], int]) -> Any:
    """Top-level pool target (picklable under any start method)."""
    kind, params, seed = job
    return execute_unit(kind, params, seed)


def app_run_result(value: dict[str, Any]) -> AppRunResult:
    """Rehydrate a ``fig6_point`` unit value (possibly from the JSON
    cache) into the dataclass the scaling-study maths expects."""
    return AppRunResult(
        app=value["app"],
        n_nodes=int(value["n_nodes"]),
        time_s=value["time_s"],
        flops=value["flops"],
        steps=int(value["steps"]),
        comm_fraction=value["comm_fraction"],
    )
