"""Sharded campaign execution with a persistent result cache.

The paper's campaign is embarrassingly parallel: every Figure 3/4
operating point (platform x frequency x core mode), every Figure 6
point (application x node count) and the headline HPL run is a pure
function of the model code and its coordinates.  This package

* decomposes the campaign into those :class:`~repro.parallel.units.WorkUnit`\\ s,
* executes cache misses across a ``multiprocessing`` pool
  (:mod:`repro.parallel.runner`) with a deterministic merge, and
* memoises unit results in a content-addressed on-disk cache
  (:mod:`repro.parallel.cache`, ``.repro-cache/`` by default) keyed by
  the unit coordinates *and* a fingerprint of the package source, so a
  code change invalidates everything automatically.

The merged output is byte-identical to the serial path: each unit owns
its own deterministically seeded RNG (see
:meth:`repro.core.study.MobileSoCStudy.sweep_point`), floats survive
the JSON cache round-trip exactly, and merge order is fixed by the unit
plan, never by completion order.  DESIGN.md section 10 carries the full
argument.
"""

from repro.parallel.cache import CacheStats, ResultCache, code_fingerprint, unit_key
from repro.parallel.runner import CampaignReport, run_campaign, run_units
from repro.parallel.units import WorkUnit, campaign_units, execute_unit

__all__ = [
    "CacheStats",
    "CampaignReport",
    "ResultCache",
    "WorkUnit",
    "campaign_units",
    "code_fingerprint",
    "execute_unit",
    "run_campaign",
    "run_units",
    "unit_key",
]
