"""High-Performance LINPACK (Dongarra et al.) — the TOP500 benchmark.

Two modes over the same algorithm (right-looking block LU with partial
pivoting, 1D block-cyclic column distribution):

* **functional** — real NumPy panels flow between ranks through the
  simulated MPI; the factorisation is verified against
  ``numpy.linalg.solve`` by the test suite.  (1D column distribution is
  HPL-simplified but preserves the compute/communication structure:
  panel factorisation -> panel broadcast -> trailing update.)
* **model** — the same message/compute schedule with synthetic payloads,
  fast enough for the 96-node weak-scaling sweep of Figure 6 and the
  97 GFLOPS / 51% / 120 MFLOPS/W headline (Section 4).

Weak scaling sizes the matrix to a fixed fraction of each node's memory,
exactly how HPL is run in practice.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.apps.base import Application, AppRunResult
from repro.cluster.cluster import Cluster
from repro.mpi.api import (
    MPIWorld,
    RankContext,
    RankStats,
    SyntheticPayload,
)
from repro.mpi.collectives import bcast, gather
from repro.obs.recorder import current as _obs_current


@dataclass(frozen=True)
class HPLConfig:
    """Problem configuration.

    :param n: global matrix order.
    :param nb: panel (block) width.
    """

    n: int
    nb: int = 128

    def __post_init__(self) -> None:
        if self.n <= 0 or self.nb <= 0:
            raise ValueError("n and nb must be positive")
        if self.nb > self.n:
            raise ValueError("block cannot exceed the matrix")

    @property
    def n_panels(self) -> int:
        return -(-self.n // self.nb)

    @property
    def total_flops(self) -> float:
        """The canonical HPL FLOP count ``2/3 n^3 + 2 n^2``."""
        return 2.0 * self.n**3 / 3.0 + 2.0 * self.n**2


def _owner(panel: int, p: int) -> int:
    """Block-cyclic owner of a column panel."""
    return panel % p


def _local_panels(rank: int, p: int, n_panels: int) -> list[int]:
    return [j for j in range(n_panels) if _owner(j, p) == rank]


def _trailing_table(rank: int, p: int, cfg: HPLConfig) -> list[int]:
    """``table[k + 1]`` is the total column width of this rank's local
    panels strictly right of panel ``k`` — the per-step trailing-update
    extent.  Integer suffix sums, so each entry equals the naive
    ``sum(min(nb, n - j*nb) for local j > k)`` exactly; precomputing the
    table turns the per-panel rescan quadratic in ``n_panels`` into a
    single linear pass per rank."""
    n, nb = cfg.n, cfg.nb
    table = [0] * (cfg.n_panels + 1)
    for j in range(cfg.n_panels - 1, -1, -1):
        width = min(nb, n - j * nb) if _owner(j, p) == rank else 0
        table[j] = table[j + 1] + width
    return table


# ---------------------------------------------------------------------------
# Model mode: synthetic payloads, exact message/compute schedule.
# ---------------------------------------------------------------------------

def _model_rank(ctx: RankContext, cfg: HPLConfig) -> Generator:
    p = ctx.size
    nb = cfg.nb
    trailing = _trailing_table(ctx.rank, p, cfg)
    for k in range(cfg.n_panels):
        rows = cfg.n - k * nb
        cur_nb = min(nb, rows)
        owner = _owner(k, p)
        # Panel factorisation on the owner: ~ rows * nb^2 FLOPs.
        if ctx.rank == owner:
            yield ctx.compute_flops(rows * cur_nb * cur_nb)
        # Broadcast the factored panel (L + pivots) to everyone.
        payload = SyntheticPayload(rows * cur_nb * 8 + cur_nb * 4)
        yield from bcast(ctx, payload, root=owner, tag=k % 16)
        # Trailing update on the local column panels right of k.
        my_trailing = trailing[k + 1]
        if my_trailing:
            # TRSM + GEMM: ~ 2 * rows * nb * local_trailing_cols FLOPs.
            yield ctx.compute_flops(2.0 * rows * cur_nb * my_trailing)
    return ctx.now


def _model_rank_lookahead(ctx: RankContext, cfg: HPLConfig) -> Generator:
    """Model mode with depth-1 lookahead (communication/computation
    overlap): the broadcast of panel k+1 proceeds concurrently with the
    trailing update for panel k.

    This is the latency-hiding behaviour Section 6.3 says "can be
    alleviated ... using latency-hiding programming techniques and
    runtimes [10]" (OmpSs) — and what tuned HPL does with its lookahead
    parameter.  The panel pipeline is spawned as a concurrent simulated
    process per panel; a rank therefore overlaps its own update with the
    next panel's factorisation/broadcast (slightly optimistic about core
    contention, which is what a task runtime approximates anyway).
    """
    engine = ctx.world.engine
    p = ctx.size
    nb = cfg.nb

    def panel_pipeline(k: int) -> Generator:
        rows = cfg.n - k * nb
        cur_nb = min(nb, rows)
        owner = _owner(k, p)
        if ctx.rank == owner:
            yield ctx.compute_flops(rows * cur_nb * cur_nb)
        payload = SyntheticPayload(rows * cur_nb * 8 + cur_nb * 4)
        yield from bcast(ctx, payload, root=owner, tag=k % 64)
        return None

    current = engine.process(panel_pipeline(0), name=f"panel0.{ctx.rank}")
    trailing = _trailing_table(ctx.rank, p, cfg)
    for k in range(cfg.n_panels):
        yield current  # panel k factored and received everywhere
        if k + 1 < cfg.n_panels:
            current = engine.process(
                panel_pipeline(k + 1), name=f"panel{k + 1}.{ctx.rank}"
            )
        rows = cfg.n - k * nb
        cur_nb = min(nb, rows)
        my_trailing = trailing[k + 1]
        if my_trailing:
            yield ctx.compute_flops(2.0 * rows * cur_nb * my_trailing)
    return ctx.now


def _model_schedule(
    cfg: HPLConfig,
    size: int,
    network: Any,
    gflops: list[float],
) -> tuple[float, list[RankStats]]:
    """Event-free evaluation of the :func:`_model_rank` schedule.

    The 1D model's event graph is a pure forward recurrence: each rank's
    clock advances through compute spans and binomial-broadcast hops
    whose delays are fixed functions of (stack, hops, size), so the
    discrete-event engine's heap, generators and Event objects buy
    nothing — walking the panels in order and the broadcast tree in
    virtual-rank order (parents before children) visits every event in
    dependency order.

    **Bit-identity contract** (enforced by
    ``tests/timing/test_sweep_equivalence.py``): every float here is
    produced by the same operations, in the same order, on the same
    operands as the engine path — compute spans as ``flops / (g * 1e9)``
    added to the rank clock, message arrival as ``send_time + transfer``,
    a receive resuming at the arrival time iff it is later than the
    posting time (equal floats either way at a tie, exactly like the
    mailbox race), and per-rank stats accumulated in program order.
    The makespan is the max over final rank clocks, which is the last
    event the engine would have dispatched.
    """
    nb, n = cfg.nb, cfg.n
    now = [0.0] * size
    stats = [RankStats() for _ in range(size)]
    trailing = [_trailing_table(r, size, cfg) for r in range(size)]
    transfer = network.transfer_time_s
    occupancy = network.sender_occupancy_s
    arrival = [0.0] * size
    for k in range(cfg.n_panels):
        rows = n - k * nb
        cur_nb = min(nb, rows)
        owner = _owner(k, size)
        nbytes = rows * cur_nb * 8 + cur_nb * 4
        # Panel factorisation on the owner.
        g = gflops[owner]
        d = (rows * cur_nb * cur_nb) / (g * 1e9)
        stats[owner].compute_s += d
        now[owner] += d
        # Binomial broadcast, parents before children (vrank order).
        for vr in range(size):
            r = (vr + owner) % size
            if vr == 0:
                mask = 1
            else:
                recv_mask = 1
                while recv_mask * 2 <= vr:
                    recv_mask <<= 1
                t0 = now[r]
                arr = arrival[r]
                resume = arr if arr > t0 else t0
                stats[r].comm_wait_s += resume - t0
                now[r] = resume
                mask = recv_mask << 1
            while mask < size:
                if vr < mask and vr + mask < size:
                    dst = (vr + mask + owner) % size
                    occ = occupancy(r, dst, nbytes)
                    xfer = transfer(r, dst, nbytes)
                    st = stats[r]
                    st.messages_sent += 1
                    st.bytes_sent += nbytes
                    arrival[dst] = now[r] + xfer
                    now[r] = now[r] + occ
                mask <<= 1
            # Trailing update on this rank's local panels right of k.
            my_trailing = trailing[r][k + 1]
            if my_trailing:
                g = gflops[r]
                d = (2.0 * rows * cur_nb * my_trailing) / (g * 1e9)
                stats[r].compute_s += d
                now[r] += d
    return max(now), stats


# ---------------------------------------------------------------------------
# Functional mode: real numerics.
# ---------------------------------------------------------------------------

def _functional_rank(ctx: RankContext, cfg: HPLConfig, seed: int) -> Generator:
    """Distributed LU with partial pivoting on real data.

    Each rank owns the column panels ``j`` with ``j % p == rank`` (full
    column height).  Returns ``(local_panels, pivots)`` where pivots is
    the global row-swap sequence (only meaningful on completion).
    """
    p = ctx.size
    n, nb = cfg.n, cfg.nb
    rng = np.random.default_rng(seed)
    full = rng.standard_normal((n, n))  # general: exercises pivoting
    mine = {j: full[:, j * nb : min((j + 1) * nb, n)].copy()
            for j in _local_panels(ctx.rank, p, cfg.n_panels)}
    pivots: list[int] = []

    for k in range(cfg.n_panels):
        k0 = k * nb
        cur_nb = min(nb, n - k0)
        owner = _owner(k, p)
        if ctx.rank == owner:
            panel = mine[k]
            piv_k = []
            for col in range(cur_nb):
                g = k0 + col
                r = g + int(np.argmax(np.abs(panel[g:, col])))
                piv_k.append(r)
                if r != g:
                    panel[[g, r], :] = panel[[r, g], :]
                pivot = panel[g, col]
                panel[g + 1 :, col] /= pivot
                if col + 1 < cur_nb:
                    panel[g + 1 :, col + 1 :] -= np.outer(
                        panel[g + 1 :, col], panel[g, col + 1 :]
                    )
            yield ctx.compute_flops((n - k0) * cur_nb * cur_nb)
            packet = (np.array(piv_k), panel[k0:, :].copy())
        else:
            packet = None
        piv_k, lpanel = yield from bcast(ctx, packet, root=owner, tag=k % 16)
        pivots.extend(int(r) for r in piv_k)

        # Apply the panel's row swaps to every local column block —
        # including the already-factored ones to the LEFT of the panel
        # (LAPACK laswp semantics: L must see the same row order) —
        # then update the trailing blocks.
        tri = lpanel[:cur_nb, :]  # unit-lower L11 (with U11 above diag)
        l21 = lpanel[cur_nb:, :]  # L21
        updated = 0.0
        for j, block in mine.items():
            if j != k:  # the owner's panel swapped itself in-place
                for c, r in enumerate(piv_k):
                    g = k0 + c
                    if r != g:
                        block[[g, r], :] = block[[r, g], :]
            if j <= k:
                continue
            a12 = block[k0 : k0 + cur_nb, :]
            # U12 = L11^{-1} A12 (unit lower triangular solve).
            for c in range(cur_nb):
                a12[c + 1 :, :] -= np.outer(tri[c + 1 :cur_nb, c], a12[c, :])
            if l21.shape[0]:
                block[k0 + cur_nb :, :] -= l21 @ a12
            updated += block.shape[1]
        if updated:
            yield ctx.compute_flops(2.0 * (n - k0) * cur_nb * updated)

    gathered = yield from gather(ctx, mine, root=0)
    if ctx.rank != 0:
        return None
    lu = np.empty((n, n))
    for part in gathered:
        for j, block in part.items():
            lu[:, j * nb : j * nb + block.shape[1]] = block
    return lu, np.array(pivots)


def rank_program(
    functional: bool = False,
    lookahead: bool = False,
    grid_2d: bool = False,
):
    """The raw rank generator for a given HPL mode — the hook used by
    harnesses that drive the ranks themselves rather than through
    :meth:`HPL.simulate` (the fault-tolerant
    :class:`~repro.fault.runner.ResilientRunner` in particular).

    Call as ``world.run(rank_program(...), cfg[, seed])`` — functional
    mode takes ``(cfg, seed)``, the model modes take ``(cfg,)``.
    """
    if functional:
        return _functional_rank
    if grid_2d:
        return _model_rank_2d
    if lookahead:
        return _model_rank_lookahead
    return _model_rank


def hpl_solve_from_factors(
    lu: np.ndarray, pivots: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Solve ``A x = b`` from the distributed factorisation output."""
    n = lu.shape[0]
    x = b.astype(float).copy()
    for i, r in enumerate(pivots):
        if r != i:
            x[[i, r]] = x[[r, i]]
    for i in range(1, n):  # forward substitution, unit lower
        x[i] -= lu[i, :i] @ x[:i]
    for i in range(n - 1, -1, -1):  # back substitution
        x[i] = (x[i] - lu[i, i + 1 :] @ x[i + 1 :]) / lu[i, i]
    return x


class HPL(Application):
    name = "HPL"
    description = "High-Performance LINPACK"
    scaling = "weak"

    #: Fraction of usable node memory given to the matrix.
    MEMORY_FILL = 0.60

    def min_nodes(self, cluster: Cluster) -> int:
        return 1

    def weak_n(self, cluster: Cluster, n_nodes: int) -> int:
        """Matrix order filling ``MEMORY_FILL`` of aggregate memory."""
        per_node = cluster.nodes[0].usable_memory_bytes() * self.MEMORY_FILL
        n = int(math.sqrt(n_nodes * per_node / 8.0))
        return max(256, (n // 128) * 128)

    def simulate(
        self,
        cluster: Cluster,
        n_nodes: int,
        n: int | None = None,
        nb: int = 128,
        functional: bool = False,
        lookahead: bool = False,
        grid_2d: bool = False,
        seed: int = 0,
        **_: Any,
    ) -> AppRunResult:
        cfg = HPLConfig(
            n=self.weak_n(cluster, n_nodes) if n is None else n, nb=nb
        )
        sub = cluster.subcluster(n_nodes)
        if (
            not (functional or grid_2d or lookahead)
            and _obs_current() is None
            and not os.environ.get("REPRO_SCALAR_SWEEP")
        ):
            # Event-free fast path for the plain 1D model: same floats,
            # same schedule, no engine (see _model_schedule).  A live
            # recorder or REPRO_SCALAR_SWEEP=1 forces the engine-backed
            # oracle, which also carries the trace instrumentation.
            gflops = [
                float(node.achieved_gflops("dgemm")) for node in sub.nodes
            ]
            makespan, stats = _model_schedule(
                cfg, n_nodes, sub.network(), gflops
            )
        else:
            world = sub.make_world(workload="dgemm")
            if functional:
                result = world.run(_functional_rank, cfg, seed)
            elif grid_2d:
                result = world.run(_model_rank_2d, cfg)
            elif lookahead:
                result = world.run(_model_rank_lookahead, cfg)
            else:
                result = world.run(_model_rank, cfg)
            makespan = result.makespan_s
            stats = result.stats
        wait = sum(s.comm_wait_s for s in stats)
        busy = sum(s.compute_s for s in stats)
        return AppRunResult(
            app=self.name,
            n_nodes=n_nodes,
            time_s=makespan,
            flops=cfg.total_flops,
            steps=cfg.n_panels,
            comm_fraction=wait / (wait + busy) if wait + busy else 0.0,
        )

    def factorise(
        self, cluster: Cluster, n_nodes: int, n: int, nb: int = 32, seed: int = 0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Functional run returning ``(A, LU, pivots)`` for verification."""
        cfg = HPLConfig(n=n, nb=nb)
        world = cluster.subcluster(n_nodes).make_world(workload="dgemm")
        result = world.run(_functional_rank, cfg, seed)
        lu, pivots = result.results[0]
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        return a, lu, pivots

    def efficiency(self, cluster: Cluster, result: AppRunResult) -> float:
        """Achieved GFLOPS over peak of the nodes used."""
        peak = sum(
            node.peak_gflops() for node in cluster.nodes[: result.n_nodes]
        )
        return result.gflops / peak

    def strong_scaling_study(
        self,
        cluster: Cluster,
        node_counts: tuple[int, ...] = (4, 8, 16, 32),
        memory_nodes: int = 1,
        nb: int = 128,
    ) -> dict[int, float]:
        """Strong-scaling speed-up curve with a FIXED matrix sized to the
        memory of ``memory_nodes`` nodes — the paper's earlier experiment
        [35] ("input sets that fit in the memory of one to four nodes";
        "the bigger the input set the better the scalability").

        Returns node count -> speed-up relative to the smallest count.
        """
        if memory_nodes <= 0:
            raise ValueError("memory_nodes must be positive")
        n = self.weak_n(cluster, memory_nodes)
        times = {
            p: self.simulate(cluster, p, n=n, nb=nb).time_s
            for p in node_counts
        }
        base = min(times)
        return {p: base * times[base] / t for p, t in times.items()}


# ---------------------------------------------------------------------------
# 2D block-cyclic model (the production-HPL process grid).
# ---------------------------------------------------------------------------

def _grid_shape(p: int) -> tuple[int, int]:
    """Most-square P x Q factorisation with P <= Q (HPL's guidance)."""
    best = (1, p)
    for rows in range(1, int(math.isqrt(p)) + 1):
        if p % rows == 0:
            best = (rows, p // rows)
    return best


def _model_rank_2d(ctx: RankContext, cfg: HPLConfig) -> Generator:
    """Model mode on a P x Q process grid (2D block-cyclic), the layout
    production HPL uses.  Versus the 1D column layout it (a) splits the
    panel factorisation across P row-ranks, (b) shrinks every broadcast
    payload by the grid factor, and (c) balances the trailing update in
    both dimensions — removing exactly the serialisation the A5 ablation
    exposes in the 1D model.

    Communicators are emulated with rank arithmetic: rank = pr * Q + pc.
    """
    size = ctx.size
    P, Q = _grid_shape(size)
    pr, pc = divmod(ctx.rank, Q)
    nb = cfg.nb
    n_panels = cfg.n_panels

    for k in range(n_panels):
        rows = cfg.n - k * nb
        cur_nb = min(nb, rows)
        owner_col = k % Q
        owner_row = k % P
        my_rows = rows / P  # block-cyclic share of the trailing rows
        tag = 128 + (k % 32)

        # (a) Panel factorisation: the owner COLUMN factorises together;
        # each of its P ranks holds rows/P of the panel and they exchange
        # pivot candidates per column (modelled as one small allreduce-
        # like exchange along the column + local work).
        if pc == owner_col:
            yield ctx.compute_flops(my_rows * cur_nb * cur_nb)
            if P > 1:
                # pivot search exchange along the column (ring of P).
                up = (pr - 1) % P * Q + pc
                down = (pr + 1) % P * Q + pc
                pivot_msgs = SyntheticPayload(cur_nb * 16)
                yield from ctx.exchange(
                    [(down, pivot_msgs, tag)], [(up, tag)]
                )

        # (b) Broadcast the panel along each process ROW (root: owner
        # column member of that row).  Payload: my_rows x nb.
        panel_bytes = int(my_rows * cur_nb * 8) + cur_nb * 4
        yield from _row_bcast(
            ctx, P, Q, pr, pc, owner_col, SyntheticPayload(panel_bytes),
            tag + 32,
        )

        # (c) U broadcast along each process COLUMN (root: owner row),
        # payload: nb x local trailing cols.
        local_cols = (cfg.n - (k + 1) * nb) / Q
        if local_cols > 0:
            u_bytes = int(cur_nb * local_cols * 8)
            yield from _col_bcast(
                ctx, P, Q, pr, pc, owner_row, SyntheticPayload(u_bytes),
                tag + 64,
            )
            # Trailing update: each rank owns my_rows x local_cols.
            yield ctx.compute_flops(2.0 * my_rows * cur_nb * local_cols)
    return ctx.now


def _row_bcast(ctx, P, Q, pr, pc, root_col, payload, tag):
    """Binomial broadcast within this rank's process row."""
    if Q == 1:
        return
    vr = (pc - root_col) % Q
    if vr != 0:
        recv_mask = 1
        while recv_mask * 2 <= vr:
            recv_mask <<= 1
        src_pc = (vr - recv_mask + root_col) % Q
        yield from ctx.recv(pr * Q + src_pc, tag)
        mask = recv_mask << 1
    else:
        mask = 1
    while mask < Q:
        if vr < mask and vr + mask < Q:
            dst_pc = (vr + mask + root_col) % Q
            yield from ctx.send(pr * Q + dst_pc, payload, tag)
        mask <<= 1


def _col_bcast(ctx, P, Q, pr, pc, root_row, payload, tag):
    """Binomial broadcast within this rank's process column."""
    if P == 1:
        return
    vr = (pr - root_row) % P
    if vr != 0:
        recv_mask = 1
        while recv_mask * 2 <= vr:
            recv_mask <<= 1
        src_pr = (vr - recv_mask + root_row) % P
        yield from ctx.recv(src_pr * Q + pc, tag)
        mask = recv_mask << 1
    else:
        mask = 1
    while mask < P:
        if vr < mask and vr + mask < P:
            dst_pr = (vr + mask + root_row) % P
            yield from ctx.send(dst_pr * Q + pc, payload, tag)
        mask <<= 1
