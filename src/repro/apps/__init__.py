"""Production applications of the scalability study (Table 3).

=============  ====================================================
HPL            High-Performance LINPACK (weak scaling)
PEPC           Tree code for N-body problem (strong)
HYDRO          2D Eulerian hydrodynamics (strong)
GROMACS        Molecular dynamics (strong)
SPECFEM3D      3D seismic wave propagation, spectral elements (strong)
=============  ====================================================

Every application is an MPI program over the discrete-event simulator:
computation is charged through the node model, communication flows
through the same protocol/switch models the ping-pong benchmark
calibrates.  HPL additionally has a *functional* mode that runs a real
distributed block LU on NumPy data and is verified against
``numpy.linalg.solve``.
"""

from repro.apps.base import Application, AppRunResult, ScalingStudy
from repro.apps.hpl import HPL
from repro.apps.pepc import PEPC
from repro.apps.hydro import Hydro
from repro.apps.gromacs import Gromacs
from repro.apps.specfem3d import Specfem3D

#: Table 3 registry, paper order.
APPLICATIONS = {
    app.name: app
    for app in (HPL(), PEPC(), Hydro(), Gromacs(), Specfem3D())
}


def get_application(name: str) -> Application:
    """Look up a Table 3 application by name (case-insensitive)."""
    for key, app in APPLICATIONS.items():
        if key.lower() == name.lower():
            return app
    raise KeyError(
        f"unknown application {name!r}; available: {sorted(APPLICATIONS)}"
    )


__all__ = [
    "Application",
    "AppRunResult",
    "ScalingStudy",
    "HPL",
    "PEPC",
    "Hydro",
    "Gromacs",
    "Specfem3D",
    "APPLICATIONS",
    "get_application",
]
