"""Application abstraction and the scalability-study harness.

The paper's method (Section 4): weak scaling for HPL, strong scaling for
everything else; applications that cannot run below some node count
(memory) have their speed-up plotted "assuming linear scaling on the
smallest number of nodes that could execute the benchmark" — e.g. PEPC
needs 24 nodes, so its 24-node point is *defined* as 24.
:class:`ScalingStudy` implements exactly that convention.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class AppRunResult:
    """One application execution on ``n_nodes``."""

    app: str
    n_nodes: int
    time_s: float
    flops: float
    steps: int
    comm_fraction: float = 0.0

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0

    @property
    def time_per_step_s(self) -> float:
        return self.time_s / self.steps if self.steps else self.time_s


class Application(abc.ABC):
    """A Table 3 application."""

    #: Name as in Table 3.
    name: str = ""
    #: Description column of Table 3.
    description: str = ""
    #: ``"strong"`` or ``"weak"`` — the scaling mode the paper used.
    scaling: str = "strong"

    @abc.abstractmethod
    def min_nodes(self, cluster: Cluster) -> int:
        """Smallest node count whose aggregate memory fits the reference
        input set."""

    @abc.abstractmethod
    def simulate(
        self, cluster: Cluster, n_nodes: int, **overrides: Any
    ) -> AppRunResult:
        """Run the application on the first ``n_nodes`` of ``cluster``."""

    def runnable(self, cluster: Cluster, n_nodes: int) -> bool:
        return n_nodes >= self.min_nodes(cluster)


@dataclass
class ScalingStudy:
    """Speed-up curve builder using the paper's conventions."""

    app: Application
    cluster: Cluster
    node_counts: tuple[int, ...] = (4, 8, 16, 32, 64, 96)
    results: dict[int, AppRunResult] = field(default_factory=dict)

    def run(self, jobs: int = 1, **overrides: Any) -> "ScalingStudy":
        """Simulate every runnable node count.

        ``jobs > 1`` fans the independent (app, node-count) work units
        across a multiprocessing pool (see :mod:`repro.parallel`); each
        point is a pure function of its inputs, so the merged results
        are identical to the serial walk.
        """
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        runnable: list[int] = []
        for n in self.node_counts:
            if n > self.cluster.n_nodes:
                raise ValueError(
                    f"{n} nodes requested but cluster has "
                    f"{self.cluster.n_nodes}"
                )
            if self.app.runnable(self.cluster, n):
                runnable.append(n)
        if jobs > 1 and len(runnable) > 1:
            from repro.parallel.runner import simulate_across_pool

            self.results.update(
                simulate_across_pool(
                    self.app, self.cluster, runnable, jobs, overrides
                )
            )
        else:
            for n in runnable:
                self.results[n] = self.app.simulate(
                    self.cluster, n, **overrides
                )
        if not self.results:
            raise RuntimeError(
                f"{self.app.name} cannot run at any of {self.node_counts}"
            )
        return self

    @property
    def base_nodes(self) -> int:
        """Smallest node count that ran — the linear-scaling anchor."""
        return min(self.results)

    def speedups(self) -> dict[int, float]:
        """Speed-up per node count; the anchor point is *defined* to be
        its own node count (the paper's assumed-linear convention)."""
        base = self.results[self.base_nodes]
        if self.app.scaling == "weak":
            # Weak scaling: the problem grows with n, so speed-up is the
            # ratio of achieved rates (FLOP/s), anchored at base_nodes.
            return {
                n: self.base_nodes
                * (r.flops / r.time_s)
                / (base.flops / base.time_s)
                for n, r in sorted(self.results.items())
            }
        return {
            n: self.base_nodes * base.time_s / r.time_s
            for n, r in sorted(self.results.items())
        }

    def efficiencies(self) -> dict[int, float]:
        """Parallel efficiency (speed-up / ideal)."""
        return {n: s / n for n, s in self.speedups().items()}
