"""HYDRO — 2D Eulerian hydrodynamics (RAMSES-derived benchmark).

A Godunov-type finite-volume solver on a regular 2D grid, decomposed in
row slabs: each step exchanges two halo rows with the slab neighbours
and agrees on the global timestep with an allreduce.  The halo payload
is independent of the rank count while the slab work shrinks as 1/p, so
the method "starts losing linear strong scalability after 16 nodes"
(Section 4) as the latency-bound allreduce and halo latency catch up
with the per-rank compute.

A functional single-rank kernel (:func:`hydro_step`) implements a real
first-order Godunov update used by the correctness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.apps.base import Application, AppRunResult
from repro.cluster.cluster import Cluster
from repro.mpi.api import RankContext, SyntheticPayload
from repro.mpi.collectives import allreduce


@dataclass(frozen=True)
class HydroConfig:
    """Reference problem: an 800 x 800 Eulerian grid.

    :param grid: grid edge (cells).
    :param flops_per_cell: Godunov flux + update work per cell-step.
    :param steps: simulated timesteps.
    """

    grid: int = 800
    flops_per_cell: float = 150.0
    steps: int = 4

    def __post_init__(self) -> None:
        if self.grid <= 0 or self.steps <= 0:
            raise ValueError("grid and steps must be positive")

    @property
    def cells(self) -> float:
        return float(self.grid) ** 2

    @property
    def memory_bytes(self) -> float:
        return self.cells * 4 * 8  # four conserved variables

    @property
    def flops_per_step(self) -> float:
        return self.cells * self.flops_per_cell


def _hydro_rank(ctx: RankContext, cfg: HydroConfig) -> Generator:
    p = ctx.size
    halo = SyntheticPayload(cfg.grid * 2 * 8)  # two rows of FP64
    for _ in range(cfg.steps):
        # Halo exchange with both slab neighbours, posted concurrently
        # (non-periodic boundaries).
        sends, recvs = [], []
        if ctx.rank + 1 < p:
            sends.append((ctx.rank + 1, halo, 10))
            recvs.append((ctx.rank + 1, 11))
        if ctx.rank - 1 >= 0:
            sends.append((ctx.rank - 1, halo, 11))
            recvs.append((ctx.rank - 1, 10))
        if sends:
            yield from ctx.exchange(sends, recvs)
        # Flux computation + conservative update on the local slab.
        yield ctx.compute_flops(cfg.flops_per_step / p)
        # Global CFL timestep.
        yield from allreduce(ctx, 1e-3, op=min)
    return ctx.now


def hydro_step(
    density: np.ndarray, velocity: np.ndarray, dt: float, dx: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """One real first-order upwind step of the 2D advection form used by
    the functional tests (mass conservation, positivity)."""
    if density.shape != velocity.shape[:2] or velocity.shape[2] != 2:
        raise ValueError("velocity must be (nx, ny, 2)")
    if dt <= 0 or dx <= 0:
        raise ValueError("dt and dx must be positive")
    rho = density
    # Upwind fluxes on both axes, periodic boundaries.
    out = rho.copy()
    for axis in (0, 1):
        v = velocity[..., axis]
        vp = np.maximum(v, 0.0)
        vm = np.minimum(v, 0.0)
        flux = vp * rho + vm * np.roll(rho, -1, axis=axis)
        out = out - dt / dx * (flux - np.roll(flux, 1, axis=axis))
    return out, velocity


class Hydro(Application):
    name = "HYDRO"
    description = "2D Eulerian code for hydrodynamics"
    scaling = "strong"

    def __init__(self, config: HydroConfig | None = None) -> None:
        self.config = config or HydroConfig()

    def min_nodes(self, cluster: Cluster) -> int:
        per_node = cluster.nodes[0].usable_memory_bytes()
        return max(1, -(-int(self.config.memory_bytes) // per_node))

    def simulate(
        self, cluster: Cluster, n_nodes: int, **overrides: Any
    ) -> AppRunResult:
        cfg = (
            HydroConfig(**{**self.config.__dict__, **overrides})
            if overrides
            else self.config
        )
        world = cluster.subcluster(n_nodes).make_world(workload="stencil")
        result = world.run(_hydro_rank, cfg)
        wait = sum(s.comm_wait_s for s in result.stats)
        busy = sum(s.compute_s for s in result.stats)
        return AppRunResult(
            app=self.name,
            n_nodes=n_nodes,
            time_s=result.makespan_s,
            flops=cfg.flops_per_step * cfg.steps,
            steps=cfg.steps,
            comm_fraction=wait / (wait + busy) if wait + busy else 0.0,
        )
