"""SPECFEM3D_GLOBE — spectral-element seismic wave propagation
(Komatitsch & Tromp).

High-order spectral elements make the method compute-dense: thousands of
FLOPs per element per step against a face exchange of only a few
hundred bytes per boundary element.  That volume-to-surface ratio is why
"SPECFEM3D shows good strong scaling, using an input set that fits in
the memory of a single node" (Section 4) — it is the best-scaling code
in Figure 6, and the paper's earlier PDE study [13] found it linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.apps.base import Application, AppRunResult
from repro.cluster.cluster import Cluster
from repro.mpi.api import RankContext, SyntheticPayload


@dataclass(frozen=True)
class SpecfemConfig:
    """Reference problem: a regional-scale spectral-element mesh.

    :param n_elements: spectral elements.
    :param bytes_per_element: GLL-point state per element (5^3 points x
        displacement/velocity/acceleration x FP64, plus mesh arrays).
    :param flops_per_element: stiffness application per element-step.
    :param face_bytes_per_element: boundary payload per surface element.
    :param steps: simulated timesteps.
    """

    n_elements: float = 1.2e5
    bytes_per_element: float = 6000.0
    flops_per_element: float = 20000.0
    face_bytes_per_element: float = 200.0
    steps: int = 4

    def __post_init__(self) -> None:
        if self.n_elements <= 0 or self.steps <= 0:
            raise ValueError("elements and steps must be positive")

    @property
    def memory_bytes(self) -> float:
        return self.n_elements * self.bytes_per_element

    @property
    def flops_per_step(self) -> float:
        return self.n_elements * self.flops_per_element

    def face_bytes(self, n_ranks: int) -> int:
        local = self.n_elements / n_ranks
        return int(local ** (2.0 / 3.0) * self.face_bytes_per_element)


def _specfem_rank(ctx: RankContext, cfg: SpecfemConfig) -> Generator:
    p = ctx.size
    face = SyntheticPayload(cfg.face_bytes(p))
    for _ in range(cfg.steps):
        # Assemble boundary contributions with the two slab neighbours
        # (both directions posted concurrently).
        sends, recvs = [], []
        if ctx.rank + 1 < p:
            sends.append((ctx.rank + 1, face, 40))
            recvs.append((ctx.rank + 1, 41))
        if ctx.rank - 1 >= 0:
            sends.append((ctx.rank - 1, face, 41))
            recvs.append((ctx.rank - 1, 40))
        if sends:
            yield from ctx.exchange(sends, recvs)
        # Stiffness application + Newmark update (the compute bulk).
        yield ctx.compute_flops(cfg.flops_per_step / p)
    return ctx.now


class Specfem3D(Application):
    name = "SPECFEM3D"
    description = "3D seismic wave propagation (spectral element method)"
    scaling = "strong"

    def __init__(self, config: SpecfemConfig | None = None) -> None:
        self.config = config or SpecfemConfig()

    def min_nodes(self, cluster: Cluster) -> int:
        per_node = cluster.nodes[0].usable_memory_bytes()
        return max(1, -(-int(self.config.memory_bytes) // per_node))

    def simulate(
        self, cluster: Cluster, n_nodes: int, **overrides: Any
    ) -> AppRunResult:
        cfg = (
            SpecfemConfig(**{**self.config.__dict__, **overrides})
            if overrides
            else self.config
        )
        world = cluster.subcluster(n_nodes).make_world(workload="spectral")
        result = world.run(_specfem_rank, cfg)
        wait = sum(s.comm_wait_s for s in result.stats)
        busy = sum(s.compute_s for s in result.stats)
        return AppRunResult(
            app=self.name,
            n_nodes=n_nodes,
            time_s=result.makespan_s,
            flops=cfg.flops_per_step * cfg.steps,
            steps=cfg.steps,
            comm_fraction=wait / (wait + busy) if wait + busy else 0.0,
        )
