"""PEPC — a parallel tree code for the N-body problem (DEISA suite).

The Pretty Efficient Parallel Coulomb solver computes long-range forces
with a Barnes-Hut-style hashed oct-tree.  Its strong-scaling weakness at
small inputs (Section 4: "PEPC also shows relatively poor strong
scalability partly because the input set that we can fit on our cluster
is too small") comes from the global branch-node exchange: every rank
allgathers its tree branches each step, a cost that *grows* with rank
count while the per-rank force work shrinks.

The reference input needs at least 24 Tibidabo nodes (the paper plots
PEPC assuming linear scaling at 24).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.apps.base import Application, AppRunResult
from repro.cluster.cluster import Cluster
from repro.mpi.api import RankContext, SyntheticPayload
from repro.mpi.collectives import allgather, allreduce


@dataclass(frozen=True)
class PEPCConfig:
    """Reference problem: 90M charged particles.

    :param n_particles: particle count.
    :param bytes_per_particle: state + tree overhead per particle.
    :param flops_per_particle: force-evaluation work per particle per
        step (the tree walk visits O(log n) multipoles, each a multipole
        expansion evaluation).
    :param branch_bytes: per-rank branch-node payload of the global
        tree exchange.
    :param steps: simulated timesteps.
    """

    n_particles: float = 9.0e7
    bytes_per_particle: float = 211.0
    flops_per_particle: float = 6500.0
    branch_bytes: int = 3_000_000
    steps: int = 3

    def __post_init__(self) -> None:
        if self.n_particles <= 0 or self.steps <= 0:
            raise ValueError("particles and steps must be positive")

    @property
    def memory_bytes(self) -> float:
        return self.n_particles * self.bytes_per_particle

    @property
    def flops_per_step(self) -> float:
        return self.n_particles * self.flops_per_particle


def _pepc_rank(ctx: RankContext, cfg: PEPCConfig) -> Generator:
    p = ctx.size
    for _ in range(cfg.steps):
        # Local tree construction (~6% of the force work).
        yield ctx.compute_flops(0.06 * cfg.flops_per_step / p)
        # Global branch exchange: every rank learns every other domain's
        # top-level tree — the scaling bottleneck.
        yield from allgather(ctx, SyntheticPayload(cfg.branch_bytes))
        # Tree walk + force evaluation.
        yield ctx.compute_flops(cfg.flops_per_step / p)
        # Energy / load-balance diagnostics.
        yield from allreduce(ctx, 1.0)
    return ctx.now


class PEPC(Application):
    name = "PEPC"
    description = "Tree code for N-body problem"
    scaling = "strong"

    def __init__(self, config: PEPCConfig | None = None) -> None:
        self.config = config or PEPCConfig()

    def min_nodes(self, cluster: Cluster) -> int:
        per_node = cluster.nodes[0].usable_memory_bytes()
        return max(1, -(-int(self.config.memory_bytes) // per_node))

    def simulate(
        self, cluster: Cluster, n_nodes: int, **overrides: Any
    ) -> AppRunResult:
        cfg = (
            PEPCConfig(**{**self.config.__dict__, **overrides})
            if overrides
            else self.config
        )
        world = cluster.subcluster(n_nodes).make_world(workload="particle")
        result = world.run(_pepc_rank, cfg)
        wait = sum(s.comm_wait_s for s in result.stats)
        busy = sum(s.compute_s for s in result.stats)
        return AppRunResult(
            app=self.name,
            n_nodes=n_nodes,
            time_s=result.makespan_s,
            flops=cfg.flops_per_step * cfg.steps * 1.06,
            steps=cfg.steps,
            comm_fraction=wait / (wait + busy) if wait + busy else 0.0,
        )
