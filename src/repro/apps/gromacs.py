"""GROMACS — molecular dynamics (Berendsen et al.).

Short-range MD with domain decomposition: each step exchanges boundary
atoms with spatial neighbours twice (positions out, forces back) and
performs two small global reductions (energies, virial).  The halo is a
*surface* term, ``(atoms/rank)^(2/3)``, so the communication fraction
grows as ranks shrink the domains — which is why the paper ran it on an
input "that fits in the memory of two nodes" and notes "its scalability
improves as the input size is increased".

A functional Lennard-Jones kernel (:func:`lennard_jones`) backs the
correctness tests (symmetry, force antisymmetry, energy conservation
over a velocity-Verlet step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.apps.base import Application, AppRunResult
from repro.cluster.cluster import Cluster
from repro.mpi.api import RankContext, SyntheticPayload
from repro.mpi.collectives import allreduce


@dataclass(frozen=True)
class GromacsConfig:
    """Reference problem: a 1M-atom solvated system.

    :param n_atoms: atoms.
    :param bytes_per_atom: coordinates, velocities, neighbour lists.
    :param neighbors_per_atom: pair interactions within cutoff.
    :param flops_per_pair: LJ + Coulomb work per pair per step.
    :param halo_bytes_per_surface_atom: payload per exchanged atom.
    :param steps: simulated timesteps.
    """

    n_atoms: float = 1.0e6
    bytes_per_atom: float = 900.0
    neighbors_per_atom: float = 60.0
    flops_per_pair: float = 30.0
    halo_bytes_per_surface_atom: float = 100.0
    steps: int = 4

    def __post_init__(self) -> None:
        if self.n_atoms <= 0 or self.steps <= 0:
            raise ValueError("atoms and steps must be positive")

    @property
    def memory_bytes(self) -> float:
        return self.n_atoms * self.bytes_per_atom

    @property
    def flops_per_step(self) -> float:
        return self.n_atoms * self.neighbors_per_atom * self.flops_per_pair

    def halo_bytes(self, n_ranks: int) -> int:
        """Surface atoms of one domain times payload per atom."""
        local = self.n_atoms / n_ranks
        return int(local ** (2.0 / 3.0) * self.halo_bytes_per_surface_atom)


_NEIGHBOR_OFFSETS = (1, -1, 2, -2, 3, -3)  # 6 spatial neighbours


def _gromacs_rank(ctx: RankContext, cfg: GromacsConfig) -> Generator:
    p = ctx.size
    halo = SyntheticPayload(cfg.halo_bytes(p))
    for _ in range(cfg.steps):
        # Two exchange phases: positions out, forces back.
        for phase, tag in (("positions", 20), ("forces", 30)):
            for i, d in enumerate(_NEIGHBOR_OFFSETS):
                if p == 1:
                    break
                dst = (ctx.rank + d) % p
                src = (ctx.rank - d) % p
                yield from ctx.sendrecv(
                    dst, halo, src=src, send_tag=tag + i, recv_tag=tag + i
                )
        # Non-bonded force evaluation + integration.
        yield ctx.compute_flops(cfg.flops_per_step / p)
        # Global energy and virial reductions.
        yield from allreduce(ctx, 1.0)
        yield from allreduce(ctx, 1.0, tag=7)
    return ctx.now


def lennard_jones(
    pos: np.ndarray, epsilon: float = 1.0, sigma: float = 1.0
) -> tuple[float, np.ndarray]:
    """Total LJ energy and per-atom forces (functional test kernel)."""
    n = pos.shape[0]
    d = pos[None, :, :] - pos[:, None, :]
    r2 = np.einsum("ijk,ijk->ij", d, d)
    np.fill_diagonal(r2, np.inf)
    inv6 = (sigma**2 / r2) ** 3
    energy = 2.0 * epsilon * float(np.sum(inv6 * inv6 - inv6))
    # F_i = -grad_i U = sum_j 24 eps (2 (s/r)^12 - (s/r)^6) (r_i - r_j)/r^2;
    # with d = r_j - r_i the sign flips.
    coef = 24.0 * epsilon * (2.0 * inv6 * inv6 - inv6) / r2
    forces = -np.einsum("ij,ijk->ik", coef, d)
    return energy, forces


def velocity_verlet(
    pos: np.ndarray,
    vel: np.ndarray,
    dt: float,
    mass: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, float]:
    """One velocity-Verlet MD step with LJ forces; returns new positions,
    velocities, and total energy (kinetic + potential)."""
    if dt <= 0 or mass <= 0:
        raise ValueError("dt and mass must be positive")
    _, f0 = lennard_jones(pos)
    new_pos = pos + vel * dt + 0.5 * f0 / mass * dt * dt
    e_pot, f1 = lennard_jones(new_pos)
    new_vel = vel + 0.5 * (f0 + f1) / mass * dt
    e_kin = 0.5 * mass * float(np.sum(new_vel * new_vel))
    return new_pos, new_vel, e_kin + e_pot


class Gromacs(Application):
    name = "GROMACS"
    description = "Molecular dynamics"
    scaling = "strong"

    def __init__(self, config: GromacsConfig | None = None) -> None:
        self.config = config or GromacsConfig()

    def min_nodes(self, cluster: Cluster) -> int:
        per_node = cluster.nodes[0].usable_memory_bytes()
        return max(1, -(-int(self.config.memory_bytes) // per_node))

    def simulate(
        self, cluster: Cluster, n_nodes: int, **overrides: Any
    ) -> AppRunResult:
        cfg = (
            GromacsConfig(**{**self.config.__dict__, **overrides})
            if overrides
            else self.config
        )
        world = cluster.subcluster(n_nodes).make_world(workload="particle")
        result = world.run(_gromacs_rank, cfg)
        wait = sum(s.comm_wait_s for s in result.stats)
        busy = sum(s.compute_s for s in result.stats)
        return AppRunResult(
            app=self.name,
            n_nodes=n_nodes,
            time_s=result.makespan_s,
            flops=cfg.flops_per_step * cfg.steps,
            steps=cfg.steps,
            comm_fraction=wait / (wait + busy) if wait + busy else 0.0,
        )
