"""Checkpoint/restart policy — Daly's optimal-interval arithmetic.

For a job with system MTBF ``M`` and per-checkpoint cost ``delta``,
Daly's first-order optimum for the checkpoint interval is
``tau* = sqrt(2 delta M) - delta`` (valid for ``delta << M``; we clamp
to ``>= delta`` so a pathological MTBF never yields a non-positive
interval).  The system MTBF is composed from the paper's Section 6
failure sources: no-ECC DRAM errors (every one a potential crash) and
the flaky Tegra PCIe root complex.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def daly_interval_s(mtbf_s: float, checkpoint_cost_s: float) -> float:
    """Daly's first-order optimal checkpoint interval."""
    if mtbf_s <= 0:
        raise ValueError("MTBF must be positive")
    if checkpoint_cost_s <= 0:
        raise ValueError("checkpoint cost must be positive")
    tau = math.sqrt(2.0 * checkpoint_cost_s * mtbf_s) - checkpoint_cost_s
    return max(tau, checkpoint_cost_s)


def system_mtbf_s(
    n_nodes: int,
    dram=None,
    pcie=None,
    dimms_per_node: int = 2,
) -> float:
    """Compose a system MTBF from the Section-6 failure models.

    Failure rates add: ``rate = n_dimms * dram_rate + n_nodes / pcie_mtbf``.
    """
    if n_nodes <= 0:
        raise ValueError("need at least one node")
    rate_per_s = 0.0
    if dram is not None:
        p_day = dram.daily_dimm_error_probability()
        rate_per_s += (
            -math.log(1.0 - p_day) / 86400.0 * n_nodes * dimms_per_node
        )
    if pcie is not None:
        rate_per_s += n_nodes / (pcie.mtbf_hours_under_load * 3600.0)
    if rate_per_s <= 0.0:
        return math.inf
    return 1.0 / rate_per_s


@dataclass(frozen=True)
class CheckpointPolicy:
    """App-level checkpointing parameters.

    :param checkpoint_cost_s: wall time one checkpoint costs (flush the
        factor panels over the cluster's NFS — not cheap on 100 Mbit).
    :param restart_cost_s: wall time to detect the failure, reload the
        last checkpoint and relaunch.
    :param interval_s: fixed checkpoint interval; ``None`` selects the
        Daly optimum for the MTBF passed to :meth:`interval_for`.
    """

    checkpoint_cost_s: float
    restart_cost_s: float
    interval_s: float | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_cost_s < 0 or self.restart_cost_s < 0:
            raise ValueError("costs must be non-negative")
        if self.interval_s is not None and self.interval_s <= 0:
            raise ValueError("interval must be positive")

    def interval_for(self, mtbf_s: float | None = None) -> float:
        """The interval to run with: fixed if set, else Daly-optimal."""
        if self.interval_s is not None:
            return self.interval_s
        if mtbf_s is None or not math.isfinite(mtbf_s):
            raise ValueError(
                "no fixed interval and no finite MTBF to derive one from"
            )
        if self.checkpoint_cost_s == 0.0:
            raise ValueError("Daly interval needs a positive checkpoint cost")
        return daly_interval_s(mtbf_s, self.checkpoint_cost_s)
