"""Seeded fault plans — Section 6's failure modes as a timeline.

A :class:`FaultPlan` is an immutable, seed-deterministic list of
:class:`FaultEvent` records on the *wall-clock* axis of a job:

* ``pcie_hang`` — the flaky Tegra PCIe root complex stops responding
  under load (exponential, :class:`~repro.cluster.reliability.PCIeFaultInjector`
  MTBF); the node just dies, post-mortem impossible.
* ``dram_error`` — a no-ECC memory error lands in the job (rate from
  :class:`~repro.cluster.reliability.DramErrorModel`); on a mobile SoC
  every one is a potential crash, so the model crashes the node.
* ``thermal_shutdown`` — sustained load drives a heatsink-less board
  past ``t_unstable`` (:class:`~repro.cluster.reliability.ThermalModel`
  + the node power draw); a small per-node spread models board-to-board
  variation so a hot cluster degrades instead of collapsing at once.
* ``link_loss`` — a transient NIC/switch outage on one node; messages
  touching that node during the outage pay TCP-retransmission-style
  retry/backoff cost in :class:`~repro.fault.network.FaultyNetwork`.

Every stochastic class draws from its own child of one
``numpy.random.SeedSequence``, so adding a fault class (or disabling
one) never perturbs the streams of the others — the same discipline
:class:`PCIeFaultInjector` uses for its per-method streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

#: Fault kinds that kill the node outright.
CRASH_KINDS = frozenset({"pcie_hang", "dram_error", "thermal_shutdown"})


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault on the job's wall-clock axis."""

    time_s: float
    node: int
    kind: str
    duration_s: float = 0.0  # outage length for ``link_loss``

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.duration_s < 0:
            raise ValueError("fault times must be non-negative")
        if self.node < 0:
            raise ValueError("node must be non-negative")
        if self.kind not in CRASH_KINDS and self.kind != "link_loss":
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def is_crash(self) -> bool:
        return self.kind in CRASH_KINDS


class FaultPlan:
    """A sorted, immutable schedule of faults for one job."""

    def __init__(self, events: Iterable[FaultEvent], n_nodes: int,
                 horizon_s: float, seed: int = 0) -> None:
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        self.events: tuple[FaultEvent, ...] = tuple(sorted(events))
        self.n_nodes = n_nodes
        self.horizon_s = horizon_s
        self.seed = seed
        for ev in self.events:
            if ev.node >= n_nodes:
                raise ValueError(
                    f"fault on node {ev.node} but plan has {n_nodes} nodes"
                )
        #: earliest crash per node (a node dies once).
        self._crash_by_node: dict[int, FaultEvent] = {}
        for ev in self.events:
            if ev.is_crash and ev.node not in self._crash_by_node:
                self._crash_by_node[ev.node] = ev
        self._outages_by_node: dict[int, list[tuple[float, float]]] = {}
        for ev in self.events:
            if ev.kind == "link_loss":
                self._outages_by_node.setdefault(ev.node, []).append(
                    (ev.time_s, ev.time_s + ev.duration_s)
                )

    # -- queries -----------------------------------------------------------
    @property
    def node_crashes(self) -> list[FaultEvent]:
        """Earliest crash per node, in time order."""
        return sorted(self._crash_by_node.values())

    def first_crash_after(
        self, t: float, alive: Sequence[int] | None = None
    ) -> FaultEvent | None:
        """The next node crash strictly after wall time ``t`` (restricted
        to ``alive`` nodes if given)."""
        for ev in self.node_crashes:
            if ev.time_s <= t:
                continue
            if alive is not None and ev.node not in alive:
                continue
            return ev
        return None

    def outage_end(self, src: int, dst: int, t: float) -> float | None:
        """If the ``src``-``dst`` path is down at wall time ``t`` (either
        endpoint in a link outage), the time the last covering outage
        lifts; otherwise ``None``."""
        end: float | None = None
        for node in (src, dst):
            for t0, t1 in self._outages_by_node.get(node, ()):
                if t0 <= t < t1 and (end is None or t1 > end):
                    end = t1
        return end

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        crashes = len(self.node_crashes)
        outages = sum(len(v) for v in self._outages_by_node.values())
        return (
            f"FaultPlan(n_nodes={self.n_nodes}, horizon={self.horizon_s}s, "
            f"seed={self.seed}: {crashes} crashes, {outages} link outages)"
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def none(cls, n_nodes: int, horizon_s: float) -> "FaultPlan":
        """The fault-free plan (baseline runs)."""
        return cls((), n_nodes, horizon_s)

    @classmethod
    def generate(
        cls,
        n_nodes: int,
        horizon_s: float,
        seed: int = 0,
        *,
        pcie=None,
        dram=None,
        dimms_per_node: int = 2,
        thermal=None,
        node_power_w: float | Sequence[float] | None = None,
        link_loss_rate_hz: float = 0.0,
        link_outage_s: float = 0.05,
        crash_mtbf_s: float | None = None,
        crash_kind: str = "pcie_hang",
        extra: Iterable[FaultEvent] = (),
    ) -> "FaultPlan":
        """Draw a plan from the Section-6 reliability models.

        :param pcie: a :class:`PCIeFaultInjector`; its load-hang MTBF
            yields exponential per-node crash times (drawn here from the
            plan's own stream so plan generation never advances the
            injector's streams).
        :param dram: a :class:`DramErrorModel`; without ECC each error
            is a crash, at the model's per-DIMM-hour rate.
        :param thermal: a :class:`ThermalModel`, paired with
            ``node_power_w`` (scalar or per-node): nodes whose sustained
            power crosses the instability threshold shut down around
            ``time_to_instability_s`` (±10% per-node spread).
        :param link_loss_rate_hz: per-node rate of transient link
            outages, each lasting ~Exp(``link_outage_s``).
        :param crash_mtbf_s: generic per-node crash MTBF in seconds —
            the accelerated-fault-rate knob for campaigns that sweep
            failure rate directly rather than through a hardware model.
        :param crash_kind: the kind recorded for those generic crashes.
        :param extra: hand-placed events (e.g. a scripted mid-run crash).
        """
        root = np.random.SeedSequence(seed)
        pcie_ss, dram_ss, thermal_ss, link_ss, crash_ss = root.spawn(5)
        events: list[FaultEvent] = list(extra)

        if crash_mtbf_s is not None:
            if crash_mtbf_s <= 0:
                raise ValueError("crash MTBF must be positive")
            rng = np.random.default_rng(crash_ss)
            times = rng.exponential(crash_mtbf_s, n_nodes)
            events += [
                FaultEvent(float(t), i, crash_kind)
                for i, t in enumerate(times) if t < horizon_s
            ]

        if pcie is not None:
            rng = np.random.default_rng(pcie_ss)
            times = rng.exponential(
                pcie.mtbf_hours_under_load * 3600.0, n_nodes
            )
            events += [
                FaultEvent(float(t), i, "pcie_hang")
                for i, t in enumerate(times) if t < horizon_s
            ]

        if dram is not None:
            rng = np.random.default_rng(dram_ss)
            import math

            p_day = dram.daily_dimm_error_probability()
            rate_per_s = (
                -math.log(1.0 - p_day) / 86400.0 * dimms_per_node
            )
            times = rng.exponential(1.0 / rate_per_s, n_nodes)
            events += [
                FaultEvent(float(t), i, "dram_error")
                for i, t in enumerate(times) if t < horizon_s
            ]

        if thermal is not None:
            if node_power_w is None:
                raise ValueError("thermal faults need node_power_w")
            rng = np.random.default_rng(thermal_ss)
            powers = (
                [float(node_power_w)] * n_nodes
                if np.isscalar(node_power_w)
                else [float(p) for p in node_power_w]
            )
            if len(powers) != n_nodes:
                raise ValueError("node_power_w length must match n_nodes")
            spread = rng.uniform(0.9, 1.1, n_nodes)
            for i, p in enumerate(powers):
                t = thermal.time_to_instability_s(p) * spread[i]
                if np.isfinite(t) and t < horizon_s:
                    events.append(FaultEvent(float(t), i, "thermal_shutdown"))

        if link_loss_rate_hz > 0.0:
            rng = np.random.default_rng(link_ss)
            for node in range(n_nodes):
                n_out = rng.poisson(link_loss_rate_hz * horizon_s)
                if n_out == 0:
                    continue
                starts = np.sort(rng.uniform(0.0, horizon_s, n_out))
                durs = rng.exponential(link_outage_s, n_out)
                events += [
                    FaultEvent(float(t), node, "link_loss", float(d))
                    for t, d in zip(starts, durs)
                ]

        return cls(events, n_nodes, horizon_s, seed=seed)
