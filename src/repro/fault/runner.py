"""Fault-tolerant execution: run an MPI app to completion under faults.

The :class:`ResilientRunner` is the detect → time out → roll back →
restart → (optionally) shrink loop that a Tibidabo-class machine needs
to finish anything at scale, built live on the simulator:

1. Each *attempt* runs the real rank program on a fresh
   :class:`~repro.mpi.api.MPIWorld` whose network is wrapped in a
   :class:`~repro.fault.network.FaultyNetwork` and whose fault daemon
   kills the next crash victim at the planned time via
   :meth:`MPIWorld.kill_rank` — the crash surfaces as a live
   :class:`~repro.mpi.api.RankFailure` inside the run, not as a
   post-hoc analytic adjustment.
2. On failure the runner rolls back to the last checkpoint (checkpoints
   sit at multiples of the policy interval along the attempt's work
   axis), charges the lost work, the checkpoint I/O and the restart
   cost to the wall clock, and relaunches.  Restarting *replays* the
   deterministic simulation up to the checkpoint to rebuild rank state
   — the replayed span is not charged (a real restart loads it from
   disk, which is what ``restart_cost_s`` prices).
3. With ``shrink=True`` the next attempt runs on the survivors
   (:meth:`Cluster.without_nodes`), preserving the completed work
   fraction across the size change.

Accounting note: crashes are mapped onto the attempt's work axis as
``progress + (crash_wall - wall)``; checkpoint/restart overhead windows
are assumed crash-free (they are short relative to the compute
segments).  Every fault and recovery action emits obs instants/totals,
so a seeded run yields a byte-identical fault trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.cluster.cluster import Cluster
from repro.fault.checkpoint import CheckpointPolicy
from repro.fault.network import FaultyNetwork
from repro.fault.plan import FaultPlan
from repro.mpi.api import MPIRunResult, MPIWorld, RankFailure
from repro.obs.recorder import current as _obs_current


@dataclass(frozen=True)
class AttemptRecord:
    """One launch of the app (ending in completion or a crash)."""

    n_ranks: int
    start_wall_s: float
    end_wall_s: float
    progress_before_s: float
    progress_after_s: float
    crashed_node: int | None = None
    cause: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.crashed_node is None


@dataclass
class ResilientRunResult:
    """Outcome and overhead breakdown of a fault-tolerant run."""

    wall_s: float
    fault_free_s: float
    interval_s: float
    attempts: list[AttemptRecord] = field(default_factory=list)
    crashes: int = 0
    checkpoints: int = 0
    lost_work_s: float = 0.0
    checkpoint_overhead_s: float = 0.0
    restart_overhead_s: float = 0.0
    n_nodes_start: int = 0
    n_nodes_final: int = 0
    energy_j: float | None = None
    fault_free_energy_j: float | None = None
    mpi_result: MPIRunResult | None = None

    @property
    def overhead_s(self) -> float:
        return self.wall_s - self.fault_free_s

    @property
    def overhead_fraction(self) -> float:
        """Wall-clock overhead vs. the fault-free run."""
        return self.wall_s / self.fault_free_s - 1.0

    @property
    def energy_ratio(self) -> float | None:
        if not self.energy_j or not self.fault_free_energy_j:
            return None
        return self.energy_j / self.fault_free_energy_j


class ResilientRunner:
    """Run rank programs on ``cluster`` to completion under ``plan``.

    :param cluster: the full (pre-fault) machine.
    :param plan: the fault schedule (wall-clock axis, node ids are the
        cluster's node ids).
    :param policy: checkpoint/restart parameters.
    :param shrink: continue on the survivors after a crash instead of
        rebooting the failed node onto a spare.
    :param workload: achieved-GFLOPS class for the worlds built.
    :param mtbf_s: system MTBF handed to the policy when it has no
        fixed interval (Daly-optimal mode).
    :param power_model: optional :class:`ClusterPowerModel` for
        energy-to-solution accounting (integrated per wall segment at
        the segment's cluster size).
    """

    def __init__(
        self,
        cluster: Cluster,
        plan: FaultPlan,
        policy: CheckpointPolicy,
        *,
        shrink: bool = False,
        workload: str = "dgemm",
        mtbf_s: float | None = None,
        power_model: Any = None,
        net_kwargs: dict | None = None,
    ) -> None:
        self.cluster = cluster
        self.plan = plan
        self.policy = policy
        self.shrink = shrink
        self.workload = workload
        self.interval_s = policy.interval_for(mtbf_s)
        self.power_model = power_model
        self.net_kwargs = dict(net_kwargs or {})

    # ------------------------------------------------------------------
    def _make_world(self, cluster: Cluster) -> MPIWorld:
        return cluster.make_world(workload=self.workload)

    def _power_w(self, cluster: Cluster) -> float:
        if self.power_model is None:
            return 0.0
        return self.power_model.total_power_watts(cluster)

    @staticmethod
    def _fault_daemon(
        world: MPIWorld, rank: int, at_s: float, cause: str
    ) -> Generator:
        yield world.engine.timeout(at_s)
        world.kill_rank(rank, cause=cause)

    def run(
        self, rank_fn: Callable[..., Generator], *args: Any
    ) -> ResilientRunResult:
        """Drive ``rank_fn`` to completion, surviving the plan's faults."""
        tau = self.interval_s
        ckpt_cost = self.policy.checkpoint_cost_s
        restart_cost = self.policy.restart_cost_s
        rec = _obs_current()

        # Fault-free baseline: wall-clock and energy yardstick.
        baseline = self._make_world(self.cluster).run(rank_fn, *args)
        fault_free_s = baseline.makespan_s

        out = ResilientRunResult(
            wall_s=0.0,
            fault_free_s=fault_free_s,
            interval_s=tau,
            n_nodes_start=self.cluster.n_nodes,
            energy_j=0.0 if self.power_model is not None else None,
            fault_free_energy_j=(
                fault_free_s * self._power_w(self.cluster)
                if self.power_model is not None
                else None
            ),
        )

        cluster = self.cluster
        alive = [n.node_id for n in self.cluster.nodes]
        dead: set[int] = set()
        progress = 0.0  # checkpointed position on the attempt work axis
        total_s = fault_free_s  # length of that axis (current cluster)
        wall = 0.0

        while True:
            crash = self.plan.first_crash_after(wall, alive=alive)
            world = self._make_world(cluster)
            world.network = FaultyNetwork(
                world.network, self.plan, wall_offset_s=wall - progress,
                **self.net_kwargs,
            ).attach(world.engine)
            if crash is not None:
                # Map the wall-clock crash onto this attempt's work axis;
                # a crash "due" during an overhead window lands at the
                # resume point (the node is dead before we get going).
                at = max(progress, progress + (crash.time_s - wall))
                victim = alive.index(crash.node)
                world.spawn_daemon(
                    self._fault_daemon(world, victim, at, crash.kind),
                    name=f"faultd:{crash.kind}@{crash.node}",
                )
            try:
                result = world.run(rank_fn, *args)
            except RankFailure:
                x_c = world.engine.now
                executed = max(0.0, x_c - progress)
                ckpt = max(progress, math.floor(x_c / tau) * tau)
                n_ckpts = max(
                    0, math.floor(x_c / tau) - math.floor(progress / tau)
                )
                seg = executed + n_ckpts * ckpt_cost + restart_cost
                if out.energy_j is not None:
                    out.energy_j += seg * self._power_w(cluster)
                out.attempts.append(
                    AttemptRecord(
                        n_ranks=world.size,
                        start_wall_s=wall,
                        end_wall_s=wall + seg,
                        progress_before_s=progress,
                        progress_after_s=ckpt,
                        crashed_node=crash.node,
                        cause=crash.kind,
                    )
                )
                wall += seg
                out.crashes += 1
                out.checkpoints += n_ckpts
                out.lost_work_s += x_c - ckpt
                out.checkpoint_overhead_s += n_ckpts * ckpt_cost
                out.restart_overhead_s += restart_cost
                dead.add(crash.node)
                if rec is not None:
                    rec.instant(
                        "fault.crash", "fault", wall,
                        node=crash.node, kind=crash.kind,
                    )
                    rec.instant(
                        "fault.rollback", "fault", wall,
                        lost_s=x_c - ckpt, to_checkpoint_s=ckpt,
                    )
                    rec.bump("fault.crashes")
                    rec.bump("fault.lost_work_s", x_c - ckpt)
                if self.shrink:
                    frac = min(1.0, ckpt / total_s) if total_s > 0 else 0.0
                    alive = [n for n in alive if n != crash.node]
                    if not alive:
                        raise RuntimeError("no node survived the fault plan")
                    cluster = self.cluster.without_nodes(dead)
                    # Re-anchor progress on the shrunken machine's axis:
                    # the completed *fraction* of the job carries over.
                    shrunk = self._make_world(cluster).run(rank_fn, *args)
                    total_s = shrunk.makespan_s
                    progress = frac * total_s
                    if rec is not None:
                        rec.instant(
                            "fault.shrink", "fault", wall,
                            survivors=len(alive),
                        )
                else:
                    progress = ckpt
                continue
            # Success: charge the uncheckpointed tail (plus the periodic
            # checkpoints a live system would still have taken).
            makespan = result.makespan_s
            n_ckpts = max(
                0, math.floor(makespan / tau) - math.floor(progress / tau)
            )
            seg = (makespan - progress) + n_ckpts * ckpt_cost
            if out.energy_j is not None:
                out.energy_j += seg * self._power_w(cluster)
            out.attempts.append(
                AttemptRecord(
                    n_ranks=world.size,
                    start_wall_s=wall,
                    end_wall_s=wall + seg,
                    progress_before_s=progress,
                    progress_after_s=makespan,
                )
            )
            wall += seg
            out.checkpoints += n_ckpts
            out.checkpoint_overhead_s += n_ckpts * ckpt_cost
            out.wall_s = wall
            out.n_nodes_final = cluster.n_nodes
            out.mpi_result = result
            if rec is not None:
                rec.instant(
                    "fault.completed", "fault", wall,
                    attempts=len(out.attempts), crashes=out.crashes,
                )
                rec.bump("fault.checkpoints", out.checkpoints)
            return out
