"""A network wrapper that perturbs message timing per a fault plan.

:class:`FaultyNetwork` decorates any network model (``UniformNetwork``,
``ClusterNetwork``) with the transient-failure behaviour of Section 6:
while a link outage from the :class:`~repro.fault.plan.FaultPlan`
covers the send time, the sender behaves like TCP under loss — it
retransmits on an exponentially backed-off retransmission timer (RTO
doubling, as in RFC 6298) until a retransmission lands after the outage
lifts.  The message is therefore *delayed*, never silently reordered,
and the retry cost is a deterministic function of (send time, plan) —
byte-identical traces per seed.

Messages to a *crashed* node are priced normally (the sender cannot
know) and dropped at delivery by the dead :class:`RankContext`.
"""

from __future__ import annotations

from typing import Any

from repro.fault.plan import FaultPlan
from repro.obs.recorder import current as _obs_current


class FaultyNetwork:
    """Wrap ``inner`` with plan-driven link faults.

    :param inner: the healthy network model (delegated to for pricing).
    :param plan: the fault schedule, on the job's wall-clock axis.
    :param wall_offset_s: added to engine time to map *this attempt's*
        simulation clock onto the plan's wall-clock axis (a restarted
        attempt replays earlier app time while the wall has moved on).
    :param rto_s: initial retransmission timeout.
    :param rto_backoff: RTO multiplier per retry (TCP doubles).
    :param max_retries: retransmissions before the sender gives up and
        waits out the outage with one final RTO (keeps the delay finite
        and the connection alive, like a patient TCP stack).
    """

    def __init__(
        self,
        inner: Any,
        plan: FaultPlan,
        *,
        wall_offset_s: float = 0.0,
        rto_s: float = 0.2,
        rto_backoff: float = 2.0,
        max_retries: int = 8,
    ) -> None:
        if rto_s <= 0 or rto_backoff < 1.0:
            raise ValueError("RTO must be positive and backoff >= 1")
        if max_retries < 1:
            raise ValueError("need at least one retry")
        self.inner = inner
        self.plan = plan
        self.wall_offset_s = wall_offset_s
        self.rto_s = rto_s
        self.rto_backoff = rto_backoff
        self.max_retries = max_retries
        self._engine = None

    def attach(self, engine: Any) -> "FaultyNetwork":
        """Bind to the attempt's engine so link-state lookups use the
        current simulated time."""
        self._engine = engine
        return self

    # -- the network protocol the MPI world speaks -------------------------
    def transfer_time_s(self, src: int, dst: int, nbytes: int) -> float:
        base = self.inner.transfer_time_s(src, dst, nbytes)
        if src == dst or not self.plan.events:
            return base
        now = (self._engine.now if self._engine is not None else 0.0)
        wall = now + self.wall_offset_s
        end = self.plan.outage_end(src, dst, wall)
        if end is None:
            return base
        return base + self._retry_penalty_s(src, dst, wall, end)

    def sender_occupancy_s(self, src: int, dst: int, nbytes: int) -> float:
        return self.inner.sender_occupancy_s(src, dst, nbytes)

    def __getattr__(self, name: str) -> Any:
        # Everything else (stack_of, topology, ...) is the inner model's.
        return getattr(self.inner, name)

    # -- retry cost --------------------------------------------------------
    def _retry_penalty_s(
        self, src: int, dst: int, wall: float, outage_end: float
    ) -> float:
        """Cumulative backoff until a retransmission clears the outage."""
        waited = 0.0
        rto = self.rto_s
        retries = 0
        while wall + waited < outage_end and retries < self.max_retries:
            waited += rto
            rto *= self.rto_backoff
            retries += 1
        if wall + waited < outage_end:
            # Give-up point: idle out the rest of the outage + final RTO.
            waited = (outage_end - wall) + rto
        rec = _obs_current()
        if rec is not None:
            rec.bump("net.retransmissions", retries)
            rec.instant(
                "net.link_retry", "fault", wall,
                src=src, dst=dst, retries=retries, delay_s=waited,
            )
        return waited
