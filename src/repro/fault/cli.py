"""``python -m repro faults`` — HPL under injected faults.

Runs the fault-tolerance campaign on a simulated Tibidabo partition:
for each fault rate in the sweep, draw a seeded :class:`FaultPlan`,
run HPL to completion under :class:`ResilientRunner` (checkpoint/
restart, optional shrink-to-survivors) and report efficiency and
energy-to-solution against the fault-free run.

Fault rates are given as the system MTBF in multiples of the
fault-free makespan (``--mtbf-x 2`` = "one failure expected every two
job lengths") so the sweep is meaningful at any problem size.

Examples::

    python -m repro faults                       # default sweep, 8 nodes
    python -m repro faults --nodes 16 --mtbf-x 4 2 1 0.5
    python -m repro faults --shrink --link-rate-hz 0.5
    python -m repro faults --interval daly       # Daly-optimal interval
"""

from __future__ import annotations

import argparse
import math

from repro.apps.hpl import HPL, HPLConfig, rank_program
from repro.cluster.cluster import tibidabo
from repro.cluster.power import ClusterPowerModel
from repro.fault.checkpoint import CheckpointPolicy
from repro.fault.plan import FaultPlan
from repro.fault.runner import ResilientRunner


def faults_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description=(
            "HPL-under-faults campaign: sweep the fault rate, run the "
            "checkpoint/restart pipeline, report wall-clock overhead, "
            "efficiency and energy-to-solution."
        ),
    )
    parser.add_argument(
        "--nodes", type=int, default=8, help="Tibidabo nodes (default 8)"
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help="matrix order (default: weak-scaled to the node count)",
    )
    parser.add_argument("--nb", type=int, default=128, help="panel width")
    parser.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    parser.add_argument(
        "--mtbf-x", type=float, nargs="+", default=[8.0, 4.0, 2.0, 1.0],
        metavar="X",
        help="system MTBFs to sweep, in multiples of the fault-free "
             "makespan (default: 8 4 2 1)",
    )
    parser.add_argument(
        "--link-rate-hz", type=float, default=0.0,
        help="per-node transient link-outage rate (default 0)",
    )
    parser.add_argument(
        "--ckpt-ms", type=float, default=10.0,
        help="checkpoint cost, milliseconds (default 10)",
    )
    parser.add_argument(
        "--restart-ms", type=float, default=20.0,
        help="restart cost, milliseconds (default 20)",
    )
    parser.add_argument(
        "--interval", default="0.25",
        help="checkpoint interval as a fraction of the fault-free "
             "makespan, or 'daly' for the Daly optimum per MTBF "
             "(default 0.25)",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="continue on the survivors after a crash instead of "
             "restarting at full size",
    )
    args = parser.parse_args(argv)
    if args.nodes < 2:
        parser.error("--nodes must be >= 2")

    cluster = tibidabo(args.nodes)
    app = HPL()
    n = args.n if args.n is not None else app.weak_n(cluster, args.nodes)
    cfg = HPLConfig(n=n, nb=args.nb)
    power = ClusterPowerModel()

    base = cluster.make_world(workload="dgemm").run(rank_program(), cfg)
    t_ff = base.makespan_s
    peak = cluster.peak_gflops()
    gflops_ff = cfg.total_flops / t_ff / 1e9
    energy_ff = t_ff * power.total_power_watts(cluster)

    print(
        f"HPL under faults: {args.nodes} x {cluster.nodes[0].platform.name}, "
        f"n={n}, nb={args.nb}, seed {args.seed}"
        + (", shrink-to-survivors" if args.shrink else "")
    )
    print(
        f"fault-free: {t_ff:.3f} s, {gflops_ff:.2f} GFLOPS "
        f"({gflops_ff / peak:.0%} of peak), {energy_ff:.1f} J, "
        f"{cfg.total_flops / 1e6 / energy_ff:.0f} MFLOPS/W"
    )
    print(
        f"checkpoint {args.ckpt_ms:.0f} ms, restart {args.restart_ms:.0f} ms, "
        f"interval "
        + ("Daly-optimal" if args.interval == "daly"
           else f"{float(args.interval):.2f} x fault-free")
    )
    print()
    header = (
        f"{'MTBF(xT)':>9} {'crashes':>7} {'wall(s)':>8} {'overhead':>8} "
        f"{'GFLOPS':>7} {'eff':>5} {'energy(J)':>9} {'MFLOPS/W':>8}"
    )
    print(header)
    print("-" * len(header))

    for x in args.mtbf_x:
        if x <= 0:
            parser.error("--mtbf-x values must be positive")
        system_mtbf = x * t_ff
        node_mtbf = system_mtbf * args.nodes
        plan = FaultPlan.generate(
            args.nodes,
            horizon_s=max(50.0, 50.0 * x) * t_ff,
            seed=args.seed,
            crash_mtbf_s=node_mtbf,
            link_loss_rate_hz=args.link_rate_hz,
            link_outage_s=0.1 * t_ff,
        )
        if args.interval == "daly":
            policy = CheckpointPolicy(
                args.ckpt_ms / 1e3, args.restart_ms / 1e3
            )
        else:
            policy = CheckpointPolicy(
                args.ckpt_ms / 1e3, args.restart_ms / 1e3,
                interval_s=float(args.interval) * t_ff,
            )
        runner = ResilientRunner(
            cluster, plan, policy,
            shrink=args.shrink, mtbf_s=system_mtbf, power_model=power,
        )
        res = runner.run(rank_program(), cfg)
        gflops = cfg.total_flops / res.wall_s / 1e9
        energy = res.energy_j if res.energy_j else math.nan
        print(
            f"{x:>9.2g} {res.crashes:>7d} {res.wall_s:>8.3f} "
            f"{res.overhead_fraction:>7.1%} {gflops:>7.2f} "
            f"{gflops / peak:>5.0%} {energy:>9.1f} "
            f"{cfg.total_flops / 1e6 / energy:>8.0f}"
        )
    print()
    print(
        "overhead = wall-clock vs fault-free; same seed -> "
        "byte-identical fault schedule and results."
    )
    return 0
