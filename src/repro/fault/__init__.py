"""Live fault injection and fault-tolerant execution.

The public surface of the resilience subsystem:

* :class:`FaultPlan` / :class:`FaultEvent` — seeded fault timelines
  drawn from the Section-6 reliability models.
* :class:`FaultyNetwork` — link outages with TCP-style retry/backoff.
* :class:`CheckpointPolicy` + :func:`daly_interval_s` /
  :func:`system_mtbf_s` — checkpoint/restart arithmetic.
* :class:`ResilientRunner` — run an MPI app to completion under a
  plan, rolling back to checkpoints and optionally shrinking onto the
  survivors.

The failure exceptions themselves (:class:`SimFailure`,
:class:`RankFailure`, :class:`RecvTimeout`, :class:`DeadlockError`)
live with the layers that raise them; re-exported here for
convenience.
"""

from repro.fault.checkpoint import (
    CheckpointPolicy,
    daly_interval_s,
    system_mtbf_s,
)
from repro.fault.network import FaultyNetwork
from repro.fault.plan import CRASH_KINDS, FaultEvent, FaultPlan
from repro.fault.runner import (
    AttemptRecord,
    ResilientRunner,
    ResilientRunResult,
)
from repro.mpi.api import DeadlockError, RankFailure, RecvTimeout
from repro.sim.engine import SimFailure

__all__ = [
    "CRASH_KINDS",
    "AttemptRecord",
    "CheckpointPolicy",
    "DeadlockError",
    "FaultEvent",
    "FaultPlan",
    "FaultyNetwork",
    "RankFailure",
    "RecvTimeout",
    "ResilientRunner",
    "ResilientRunResult",
    "SimFailure",
    "daly_interval_s",
    "system_mtbf_s",
]
