"""The HPC software stack on ARM (Section 5 / Figure 8).

Models the stack the paper deployed on its clusters — compilers,
runtime libraries, scientific libraries, tools, scheduler, OS — with the
platform-specific constraints the paper reports:

* ARMv7 distributions default to **soft-float** calling conventions;
  HPC deployment requires custom ``hardfp`` images (Section 6.2),
* the experimental **CUDA** runtime exists only for the ``armel`` ABI,
  "at the cost of a lower CPU performance",
* the **OpenCL** stack for the Mali needs an old kernel without Exynos
  thermal support, capping the clock at 1 GHz,
* **ATLAS** auto-tuning requires the CPU frequency pinned to maximum.
"""

from repro.stack.components import (
    Component,
    ComponentKind,
    Maturity,
)
from repro.stack.registry import STACK, component, figure8_layout
from repro.stack.deployment import (
    Deployment,
    DeploymentError,
    DeploymentReport,
)

__all__ = [
    "Component",
    "ComponentKind",
    "Maturity",
    "STACK",
    "component",
    "figure8_layout",
    "Deployment",
    "DeploymentError",
    "DeploymentReport",
]
