"""The Figure 8 inventory: every component the paper deployed."""

from __future__ import annotations

from repro.stack.components import Component, ComponentKind, Maturity

_K = ComponentKind
_M = Maturity

_COMPONENTS: tuple[Component, ...] = (
    # -- operating system ---------------------------------------------------
    Component(
        "debian-armhf", _K.OPERATING_SYSTEM,
        # Custom hardfp deployment; kernels rebuilt from vendor sources,
        # non-preemptive scheduler, performance governor (Section 5).
        maturity=_M.NEEDS_PORT_WORK,
        supported_isas=("ARMv7", "ARMv8"),
    ),
    Component(
        "debian-armel", _K.OPERATING_SYSTEM,
        maturity=_M.PRODUCTION,
        supported_isas=("ARMv7",),
        forces_abi="softfp",  # soft-float ABI filesystem
    ),
    # -- compilers -----------------------------------------------------------
    Component("gcc", _K.COMPILER, requires=("debian-armhf",)),
    Component("gfortran", _K.COMPILER, requires=("gcc",)),
    Component("g++", _K.COMPILER, requires=("gcc",)),
    Component(
        "mercurium", _K.COMPILER,  # the OmpSs source-to-source compiler
        requires=("gcc", "nanos++"),
    ),
    # -- runtime libraries ----------------------------------------------------
    Component("libgomp", _K.RUNTIME, requires=("gcc",)),
    Component("nanos++", _K.RUNTIME, requires=("g++",)),
    Component("mpich2", _K.RUNTIME, requires=("gcc",)),
    Component("openmpi", _K.RUNTIME, requires=("gcc",)),
    Component("open-mx", _K.RUNTIME, requires=("openmpi",)),
    Component(
        "cuda-4.2", _K.RUNTIME,
        maturity=_M.EXPERIMENTAL,
        requires=("debian-armel",),
        supported_isas=("ARMv7",),
        forces_abi="softfp",  # armel-only runtime, lower CPU performance
    ),
    Component(
        "opencl-mali", _K.RUNTIME,
        maturity=_M.EXPERIMENTAL,
        requires=("debian-armhf",),
        supported_isas=("ARMv7",),
        caps_freq_ghz=1.0,  # old kernel lacks Exynos thermal support
    ),
    # -- scientific libraries --------------------------------------------------
    Component(
        "atlas", _K.SCIENTIFIC_LIBRARY,
        maturity=_M.NEEDS_PORT_WORK,
        requires=("gcc", "gfortran"),
        needs_pinned_frequency=True,  # auto-tuning needs stable clocks
        source_patches_required=True,  # ARM cpuinfo interface
    ),
    Component("fftw", _K.SCIENTIFIC_LIBRARY, requires=("gcc",)),
    Component("hdf5", _K.SCIENTIFIC_LIBRARY, requires=("gcc",)),
    # -- tools ------------------------------------------------------------------
    Component("paraver", _K.PERFORMANCE_TOOL, requires=("g++",)),
    Component("papi", _K.PERFORMANCE_TOOL, requires=("gcc",)),
    Component("scalasca", _K.PERFORMANCE_TOOL, requires=("mpich2",)),
    Component("allinea-ddt", _K.DEBUGGER, requires=("openmpi",)),
    # -- scheduler ----------------------------------------------------------------
    Component("slurm", _K.SCHEDULER, requires=("debian-armhf",)),
)

#: Name -> component.
STACK: dict[str, Component] = {c.name: c for c in _COMPONENTS}


def component(name: str) -> Component:
    """Look up a stack component."""
    try:
        return STACK[name]
    except KeyError:
        raise KeyError(
            f"unknown component {name!r}; available: {sorted(STACK)}"
        ) from None


def figure8_layout() -> dict[str, list[str]]:
    """The Figure 8 boxes: layer -> component names."""
    out: dict[str, list[str]] = {}
    for c in _COMPONENTS:
        out.setdefault(c.kind.value, []).append(c.name)
    return out
