"""Stack deployment: dependency resolution + platform constraints.

``Deployment(platform).install(names)`` resolves dependencies into a
topological install order, checks ISA support, and accumulates the
constraints the chosen components impose — ABI (the CUDA/armel trap),
frequency caps (the OpenCL kernel trap), and build-time requirements
(ATLAS's pinned clock).  The report's ``effective_*`` properties plug
straight into :class:`~repro.timing.executor.SimulatedExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.soc import Platform
from repro.stack.components import Component, Maturity
from repro.stack.registry import STACK, component


class DeploymentError(RuntimeError):
    """A component cannot be deployed on this platform."""


@dataclass
class DeploymentReport:
    """Outcome of resolving a component set on one platform."""

    platform: str
    install_order: list[str] = field(default_factory=list)
    abi: str = "hardfp"
    freq_cap_ghz: float | None = None
    build_notes: list[str] = field(default_factory=list)
    experimental: list[str] = field(default_factory=list)

    def effective_max_freq_ghz(self, platform_fmax: float) -> float:
        """Clock ceiling after stack constraints."""
        if self.freq_cap_ghz is None:
            return platform_fmax
        return min(platform_fmax, self.freq_cap_ghz)

    @property
    def production_ready(self) -> bool:
        """No experimental components in the deployment."""
        return not self.experimental


class Deployment:
    """Resolves and validates a software stack on a platform."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    # ------------------------------------------------------------------
    def resolve(self, names: list[str]) -> list[str]:
        """Topological install order (dependencies first) for ``names``
        and everything they require.  Detects dependency cycles."""
        order: list[str] = []
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise DeploymentError(f"dependency cycle through {name!r}")
            visiting.add(name)
            for dep in component(name).requires:
                visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in names:
            visit(name)
        return order

    def install(self, names: list[str]) -> DeploymentReport:
        """Deploy components (and dependencies) onto the platform."""
        isa = self.platform.soc.core.isa.name
        order = self.resolve(names)
        report = DeploymentReport(platform=self.platform.name)
        for name in order:
            c = component(name)
            if not c.supports(isa):
                raise DeploymentError(
                    f"{name} does not support {isa} "
                    f"(supports {', '.join(c.supported_isas)})"
                )
            self._apply(c, report)
            report.install_order.append(name)
        return report

    def _apply(self, c: Component, report: DeploymentReport) -> None:
        if c.maturity is Maturity.EXPERIMENTAL:
            report.experimental.append(c.name)
        if c.forces_abi is not None:
            if report.abi != "hardfp" and report.abi != c.forces_abi:
                raise DeploymentError(
                    f"{c.name} forces ABI {c.forces_abi!r} but the "
                    f"deployment is already pinned to {report.abi!r}"
                )
            report.abi = c.forces_abi
            if c.forces_abi == "softfp":
                report.build_notes.append(
                    f"{c.name}: armel/soft-float filesystem — FP values "
                    "pass through integer registers (Section 6.2 penalty)"
                )
        if c.caps_freq_ghz is not None:
            cap = c.caps_freq_ghz
            report.freq_cap_ghz = (
                cap
                if report.freq_cap_ghz is None
                else min(report.freq_cap_ghz, cap)
            )
            report.build_notes.append(
                f"{c.name}: kernel lacks thermal support — clock capped "
                f"at {cap} GHz (Section 5)"
            )
        if c.needs_pinned_frequency:
            report.build_notes.append(
                f"{c.name}: auto-tuning requires the frequency pinned to "
                "maximum during the build (Section 5)"
            )
        if c.source_patches_required:
            report.build_notes.append(
                f"{c.name}: required source modifications for the ARM "
                "Linux processor-identification interface (Section 5)"
            )

    # ------------------------------------------------------------------
    def hpc_baseline(self) -> DeploymentReport:
        """The stack every Tibidabo node ran (Figure 8, no accelerators)."""
        return self.install(
            [
                "slurm",
                "mpich2",
                "openmpi",
                "open-mx",
                "libgomp",
                "mercurium",
                "atlas",
                "fftw",
                "hdf5",
                "paraver",
                "papi",
                "scalasca",
                "allinea-ddt",
            ]
        )

    def with_cuda(self) -> DeploymentReport:
        """The CARMA configuration: experimental CUDA on armel."""
        return self.install(["cuda-4.2", "openmpi"])

    def with_opencl(self) -> DeploymentReport:
        """The Arndale OpenCL configuration (old kernel, 1 GHz cap)."""
        return self.install(["opencl-mali", "openmpi"])


def stack_penalty_summary(platform: Platform) -> dict[str, float]:
    """Quantify the Section 5 software-stack traps on one platform:
    relative DGEMM-class throughput under each deployment choice."""
    from repro.kernels.registry import get_kernel
    from repro.timing.executor import SimulatedExecutor

    k = get_kernel("dmmm")
    dep = Deployment(platform)
    fmax = platform.soc.max_freq_ghz

    base = SimulatedExecutor(platform, abi="hardfp").time_kernel(k, fmax)
    out = {"hardfp@fmax": 1.0}

    cuda = dep.with_cuda() if platform.soc.core.isa.name == "ARMv7" else None
    if cuda is not None:
        t = SimulatedExecutor(platform, abi=cuda.abi).time_kernel(k, fmax)
        out["cuda(armel)@fmax"] = base.time_s / t.time_s

    ocl = (
        dep.with_opencl() if platform.soc.core.isa.name == "ARMv7" else None
    )
    if ocl is not None:
        f = ocl.effective_max_freq_ghz(fmax)
        t = SimulatedExecutor(platform, abi=ocl.abi).time_kernel(k, f)
        out["opencl-kernel@cap"] = base.time_s / t.time_s
    return out
