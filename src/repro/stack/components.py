"""Software-stack component model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ComponentKind(enum.Enum):
    """Figure 8 layers."""

    COMPILER = "compiler"
    RUNTIME = "runtime library"
    SCIENTIFIC_LIBRARY = "scientific library"
    PERFORMANCE_TOOL = "performance analysis"
    DEBUGGER = "debugger"
    SCHEDULER = "cluster management"
    OPERATING_SYSTEM = "operating system"


class Maturity(enum.Enum):
    """How production-ready a component was on ARM in 2013."""

    PRODUCTION = "production"
    NEEDS_PORT_WORK = "needs porting work"  # e.g. ATLAS source changes
    EXPERIMENTAL = "experimental"  # CUDA/armel, OpenCL/Mali


@dataclass(frozen=True)
class Component:
    """One element of the software stack.

    :param requires: names of components that must be deployed first.
    :param supported_isas: ISA names the component runs on.
    :param maturity: production readiness on ARM (Section 5's theme).
    :param forces_abi: ABI this component pins the whole deployment to
        (the CUDA/armel situation), or ``None``.
    :param caps_freq_ghz: frequency ceiling its kernel requirement
        imposes (the OpenCL/Exynos thermal-support situation), or None.
    :param needs_pinned_frequency: build-time requirement (ATLAS
        auto-tuning).
    :param source_patches_required: the paper had to modify sources
        (ATLAS CPU-identification interface).
    """

    name: str
    kind: ComponentKind
    maturity: Maturity = Maturity.PRODUCTION
    requires: tuple[str, ...] = ()
    supported_isas: tuple[str, ...] = ("ARMv7", "ARMv8", "x86-64")
    forces_abi: str | None = None
    caps_freq_ghz: float | None = None
    needs_pinned_frequency: bool = False
    source_patches_required: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component needs a name")
        if self.caps_freq_ghz is not None and self.caps_freq_ghz <= 0:
            raise ValueError("frequency cap must be positive")

    def supports(self, isa_name: str) -> bool:
        return isa_name in self.supported_isas
