"""Historical datasets behind Figures 1, 2a and 2b.

Transcribed from the public TOP500 lists (June editions) and the
processor points named in the paper's charts.  Values are representative
peaks — the figures argue about *trends* (10x gaps, closing rates), not
individual datapoints, so ±20% transcription error on a log chart is
immaterial.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessorPoint:
    """One processor on a Figure 2 chart."""

    name: str
    year: float
    peak_mflops: float
    family: str  # "vector" | "micro" | "server" | "mobile"

    def __post_init__(self) -> None:
        if self.peak_mflops <= 0:
            raise ValueError("peak must be positive")


#: Figure 1 — number of TOP500 systems by architecture class, June lists.
#: Columns: x86, RISC microprocessor, vector/SIMD.
TOP500_SHARE: dict[int, tuple[int, int, int]] = {
    1993: (0, 156, 344),
    1994: (0, 214, 286),
    1995: (0, 270, 230),
    1996: (1, 320, 179),
    1997: (2, 400, 98),
    1998: (4, 420, 76),
    1999: (10, 440, 50),
    2000: (20, 440, 40),
    2001: (44, 424, 32),
    2002: (90, 384, 26),
    2003: (190, 288, 22),
    2004: (268, 216, 16),
    2005: (333, 157, 10),
    2006: (376, 116, 8),
    2007: (420, 74, 6),
    2008: (440, 56, 4),
    2009: (460, 37, 3),
    2010: (465, 33, 2),
    2011: (470, 28, 2),
    2012: (474, 24, 2),
    2013: (480, 19, 1),
}


#: Figure 2(a) — HPC-class vector processors (per-CPU peak, MFLOPS).
VECTOR_PROCESSORS: tuple[ProcessorPoint, ...] = (
    ProcessorPoint("Cray-1", 1976, 160, "vector"),
    ProcessorPoint("Cray X-MP", 1983, 235, "vector"),
    ProcessorPoint("Cray-2", 1985, 488, "vector"),
    ProcessorPoint("Cray Y-MP", 1988, 333, "vector"),
    ProcessorPoint("Cray C90", 1991, 1_000, "vector"),
    ProcessorPoint("NEC SX-3", 1992, 2_750, "vector"),
    ProcessorPoint("Cray T90", 1995, 1_800, "vector"),
    ProcessorPoint("NEC SX-4", 1995, 2_000, "vector"),
    ProcessorPoint("NEC SX-5", 1998, 8_000, "vector"),
)

#: Figure 2(a) — floating-point-capable commodity microprocessors.
MICRO_PROCESSORS: tuple[ProcessorPoint, ...] = (
    ProcessorPoint("Intel i860", 1989, 60, "micro"),
    ProcessorPoint("DEC Alpha EV4", 1992, 150, "micro"),
    ProcessorPoint("Intel Pentium", 1993, 66, "micro"),
    ProcessorPoint("Intel Pentium Pro", 1995, 200, "micro"),
    ProcessorPoint("DEC Alpha EV5", 1996, 600, "micro"),
    ProcessorPoint("IBM P2SC", 1996, 480, "micro"),
    ProcessorPoint("Intel Pentium II", 1997, 300, "micro"),
    ProcessorPoint("HP PA8200", 1997, 800, "micro"),
    ProcessorPoint("DEC Alpha EV6", 1998, 1_000, "micro"),
    ProcessorPoint("Intel Pentium III", 1999, 500, "micro"),
)

#: Figure 2(b) — server-class x86 / Alpha processors (per-chip peak).
SERVER_PROCESSORS: tuple[ProcessorPoint, ...] = (
    ProcessorPoint("DEC Alpha EV4", 1992, 150, "server"),
    ProcessorPoint("DEC Alpha EV56", 1996, 1_200, "server"),
    ProcessorPoint("DEC Alpha EV67", 1999, 1_466, "server"),
    ProcessorPoint("Intel Pentium 4", 2001, 3_000, "server"),
    ProcessorPoint("AMD Opteron 246", 2003, 4_400, "server"),
    ProcessorPoint("Intel Xeon 5160", 2006, 24_000, "server"),
    ProcessorPoint("AMD Opteron 2356", 2008, 37_000, "server"),
    ProcessorPoint("Intel Xeon X5570", 2009, 46_900, "server"),
    ProcessorPoint("AMD Opteron 6174", 2010, 105_600, "server"),
    ProcessorPoint("Intel Xeon E5-2670", 2012, 166_400, "server"),
)

#: Figure 2(b) — mobile SoC CPU complexes (per-chip FP64 peak), plus the
#: ARMv8 projection point the paper plots ("4-core ARMv8 @ 2GHz").
MOBILE_PROCESSORS: tuple[ProcessorPoint, ...] = (
    ProcessorPoint("NVIDIA Tegra 2", 2011, 2_000, "mobile"),
    ProcessorPoint("NVIDIA Tegra 3", 2012, 5_200, "mobile"),
    ProcessorPoint("Samsung Exynos 5250", 2012, 6_800, "mobile"),
    ProcessorPoint("Samsung Exynos 5410", 2013, 13_600, "mobile"),
    ProcessorPoint("NVIDIA Tegra 4", 2013, 13_600, "mobile"),
    ProcessorPoint("4-core ARMv8 @ 2GHz", 2015, 32_000, "mobile"),
)


def share_series(
    category: str,
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Figure 1 series for ``category`` in {"x86", "risc", "vector"}."""
    idx = {"x86": 0, "risc": 1, "vector": 2}
    try:
        col = idx[category.lower()]
    except KeyError:
        raise KeyError(
            f"unknown category {category!r}; known: {sorted(idx)}"
        ) from None
    years = tuple(sorted(TOP500_SHARE))
    return years, tuple(TOP500_SHARE[y][col] for y in years)


def dominant_class(year: int) -> str:
    """Which architecture class held the most TOP500 systems in ``year``."""
    if year not in TOP500_SHARE:
        raise KeyError(f"no data for {year}")
    counts = TOP500_SHARE[year]
    return ("x86", "risc", "vector")[counts.index(max(counts))]
