"""Exponential trend analysis — the regressions of Figures 2a/2b and the
commodity-economics arithmetic of Section 1.

The paper's argument: commodity microprocessors were ~10x slower than
vector CPUs through the 1990s yet displaced them because they were ~30x
cheaper; mobile SoCs are ~10x slower than server CPUs in 2013 but ~70x
cheaper — and their performance trend line is steeper, so the gap is
closing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.arch.catalog import (
    ATOM_S1260_PRICE_USD,
    TEGRA3_VOLUME_PRICE_USD,
    XEON_E5_2670_PRICE_USD,
)
from repro.core.top500 import ProcessorPoint


@dataclass(frozen=True)
class ExponentialFit:
    """A fitted ``mflops = a * growth^(year - year0)`` trend.

    :param year0: reference year.
    :param mflops_at_year0: trend value at the reference year.
    :param growth_per_year: annual multiplicative growth.
    :param r_squared: goodness of the log-linear fit.
    """

    year0: float
    mflops_at_year0: float
    growth_per_year: float
    r_squared: float

    def predict(self, year: float) -> float:
        """Trend value (MFLOPS) at ``year``."""
        return self.mflops_at_year0 * self.growth_per_year ** (
            year - self.year0
        )

    @property
    def doubling_time_years(self) -> float:
        """Years for the trend to double."""
        if self.growth_per_year <= 1.0:
            return math.inf
        return math.log(2.0) / math.log(self.growth_per_year)


def fit_exponential(
    points: Iterable[ProcessorPoint] | Sequence[tuple[float, float]],
) -> ExponentialFit:
    """Least-squares log-linear fit through (year, MFLOPS) points."""
    pts = [
        (p.year, p.peak_mflops) if isinstance(p, ProcessorPoint) else p
        for p in points
    ]
    if len(pts) < 2:
        raise ValueError("need at least two points to fit a trend")
    years = np.array([y for y, _ in pts], dtype=float)
    logs = np.log([m for _, m in pts])
    slope, intercept = np.polyfit(years, logs, 1)
    pred = slope * years + intercept
    ss_res = float(np.sum((logs - pred) ** 2))
    ss_tot = float(np.sum((logs - logs.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    year0 = float(years.mean())
    return ExponentialFit(
        year0=year0,
        mflops_at_year0=float(np.exp(slope * year0 + intercept)),
        growth_per_year=float(np.exp(slope)),
        r_squared=r2,
    )


def gap_ratio(
    fast: ExponentialFit, slow: ExponentialFit, year: float
) -> float:
    """How many times faster the ``fast`` trend is at ``year``."""
    return fast.predict(year) / slow.predict(year)


def crossover_year(
    chaser: ExponentialFit, leader: ExponentialFit
) -> float:
    """Year at which the ``chaser`` trend catches the ``leader``.

    Raises if the chaser grows no faster (no crossover ahead).
    """
    g_c = math.log(chaser.growth_per_year)
    g_l = math.log(leader.growth_per_year)
    if g_c <= g_l:
        raise ValueError("chaser does not grow faster; no crossover")
    # Solve chaser.predict(y) == leader.predict(y) in log space.
    num = (
        math.log(leader.mflops_at_year0)
        - math.log(chaser.mflops_at_year0)
        + g_c * chaser.year0
        - g_l * leader.year0
    )
    return num / (g_c - g_l)


def price_ratio_mobile_vs_hpc() -> float:
    """Section 1 footnote 5: Xeon E5-2670 list price over the Tegra 3
    volume price (~70x)."""
    return XEON_E5_2670_PRICE_USD / TEGRA3_VOLUME_PRICE_USD


def price_ratio_same_price_type() -> float:
    """The "fairer" list-price comparison the paper offers: Xeon over
    Intel Atom S1260 (~24x)."""
    return XEON_E5_2670_PRICE_USD / ATOM_S1260_PRICE_USD


def historical_cost_argument() -> dict[str, float]:
    """The Section 1 economics in one structure: performance gaps and
    price gaps for both transitions."""
    return {
        "vector_vs_micro_perf_gap_1990s": 10.0,  # "around ten times slower"
        "vector_vs_micro_price_gap": 30.0,  # "30 times cheaper"
        "server_vs_mobile_perf_gap_2013": 10.0,  # "still ten times slower"
        "server_vs_mobile_price_gap": price_ratio_mobile_vs_hpc(),
        "server_vs_atom_price_gap": price_ratio_same_price_type(),
    }
