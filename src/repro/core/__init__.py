"""The paper's primary contribution: the mobile-SoC-for-HPC study.

* :mod:`repro.core.top500` — historical datasets behind Figures 1, 2a, 2b,
* :mod:`repro.core.trends` — exponential regressions, gap and crossover
  analysis, and the commodity-economics cost ratios,
* :mod:`repro.core.metrics` — speedup/efficiency/energy metrics,
  bytes-per-FLOP balance (Table 4), and the latency-penalty model,
* :mod:`repro.core.study` — :class:`MobileSoCStudy`, the orchestrator
  that regenerates every figure and table,
* :mod:`repro.core.results` — typed records and text-table rendering.
"""

from repro.core.top500 import (
    TOP500_SHARE,
    VECTOR_PROCESSORS,
    MICRO_PROCESSORS,
    SERVER_PROCESSORS,
    MOBILE_PROCESSORS,
    ProcessorPoint,
)
from repro.core.trends import (
    ExponentialFit,
    fit_exponential,
    gap_ratio,
    crossover_year,
    price_ratio_mobile_vs_hpc,
)
from repro.core.metrics import (
    speedup,
    parallel_efficiency,
    energy_to_solution_j,
    mflops_per_watt,
    bytes_per_flop,
    bytes_per_flop_table,
    latency_penalty,
)
from repro.core.study import MobileSoCStudy
from repro.core.results import render_table

__all__ = [
    "TOP500_SHARE",
    "VECTOR_PROCESSORS",
    "MICRO_PROCESSORS",
    "SERVER_PROCESSORS",
    "MOBILE_PROCESSORS",
    "ProcessorPoint",
    "ExponentialFit",
    "fit_exponential",
    "gap_ratio",
    "crossover_year",
    "price_ratio_mobile_vs_hpc",
    "speedup",
    "parallel_efficiency",
    "energy_to_solution_j",
    "mflops_per_watt",
    "bytes_per_flop",
    "bytes_per_flop_table",
    "latency_penalty",
    "MobileSoCStudy",
    "render_table",
]
