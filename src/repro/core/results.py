"""Typed result records and plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table (the benches print these)."""
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a Figure 3/4 frequency sweep."""

    platform: str
    freq_ghz: float
    cores: int
    speedup_vs_baseline: float
    energy_vs_baseline: float


@dataclass
class Comparison:
    """A paper-vs-measured record for EXPERIMENTS.md."""

    artefact: str
    quantity: str
    paper_value: float
    measured_value: float
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> float:
        if self.paper_value == 0:
            return float("inf") if self.measured_value else 1.0
        return self.measured_value / self.paper_value

    def within(self, tolerance: float) -> bool:
        """Whether measured is within ``tolerance`` (relative) of paper."""
        return abs(self.ratio - 1.0) <= tolerance


@dataclass
class StudyReport:
    """Everything :class:`~repro.core.study.MobileSoCStudy` produces."""

    figures: dict[str, Any] = field(default_factory=dict)
    tables: dict[str, Any] = field(default_factory=dict)
    comparisons: list[Comparison] = field(default_factory=list)

    def add_comparison(self, c: Comparison) -> None:
        self.comparisons.append(c)

    def comparison_table(self) -> str:
        return render_table(
            ["artefact", "quantity", "paper", "measured", "ratio"],
            [
                (c.artefact, c.quantity, c.paper_value, c.measured_value, c.ratio)
                for c in self.comparisons
            ],
        )
