"""Evaluation metrics: speedups, energies, balance ratios, penalties.

Includes the two quantitative side-models of the paper:

* **Table 4** — network bytes/FLOPS balance (link payload rate over peak
  FP64, GPU excluded), showing a 1 GbE mobile SoC is as balanced as a
  dual-rail InfiniBand x86 box;
* the **latency penalty** estimate from Saravanan et al. [36]: on a
  Sandy-Bridge-class node, 100 µs of total communication latency costs
  ~90% extra execution time and 65 µs costs ~60% (geometric mean over
  nine MPI applications); scaled by single-core speed, an Arndale-class
  node pays roughly 50% / 40%.
"""

from __future__ import annotations

from repro.arch.soc import Platform
from repro.net.link import GBE, INFINIBAND_40G, TEN_GBE, Link


def speedup(t_base: float, t_new: float) -> float:
    """Classical speedup ``t_base / t_new``."""
    if t_base <= 0 or t_new <= 0:
        raise ValueError("times must be positive")
    return t_base / t_new


def parallel_efficiency(s: float, p: int) -> float:
    """Speedup over ideal."""
    if p <= 0:
        raise ValueError("need at least one processor")
    return s / p


def energy_to_solution_j(power_w: float, time_s: float) -> float:
    """Energy = average power x time."""
    if power_w < 0 or time_s < 0:
        raise ValueError("power and time must be non-negative")
    return power_w * time_s


def mflops_per_watt(gflops: float, power_w: float) -> float:
    """The Green500 ranking metric."""
    if power_w <= 0:
        raise ValueError("power must be positive")
    if gflops < 0:
        raise ValueError("GFLOPS must be non-negative")
    return gflops * 1e3 / power_w


# ---------------------------------------------------------------------------
# Table 4 — network bytes/FLOPS.
# ---------------------------------------------------------------------------

#: The three fabrics of Table 4.
TABLE4_LINKS: tuple[Link, ...] = (GBE, TEN_GBE, INFINIBAND_40G)


def bytes_per_flop(platform: Platform, link: Link) -> float:
    """Network balance: link payload bytes/s over peak FP64 FLOP/s
    (all CPU cores, GPU excluded — the paper's Table 4 convention,
    using the raw link rate)."""
    peak_flops = platform.peak_gflops() * 1e9
    link_bytes = link.bandwidth_gbps * 1e9 / 8.0
    return link_bytes / peak_flops


def bytes_per_flop_table(
    platforms: list[Platform], links: tuple[Link, ...] = TABLE4_LINKS
) -> dict[str, dict[str, float]]:
    """The full Table 4: platform -> link name -> bytes/FLOPS."""
    return {
        p.name: {ln.name: bytes_per_flop(p, ln) for ln in links}
        for p in platforms
    }


# ---------------------------------------------------------------------------
# Latency penalty (Saravanan, Carpenter, Ramirez — ISPASS 2013, cited [36]).
# ---------------------------------------------------------------------------

#: Penalty of 100 µs total latency on a Sandy-Bridge-class node.
_SNB_PENALTY_AT_100US = 0.90
#: Sub-linear latency exponent (fits the paper's 65 µs -> 60% point).
_LATENCY_EXPONENT = 0.94
#: Slower nodes hide latency better; penalty scales with cpu speed^0.75.
_SPEED_EXPONENT = 0.75


def latency_penalty(
    latency_us: float, relative_cpu_speed: float = 1.0
) -> float:
    """Fractional execution-time increase caused by ``latency_us`` of
    total per-message latency.

    :param latency_us: total communication latency (µs).
    :param relative_cpu_speed: node speed relative to the Sandy Bridge
        reference (Arndale-class: ~0.5).

    Reference behaviour: 100 µs -> ~0.90, 65 µs -> ~0.60 at speed 1;
    ~0.50 / ~0.35 at Arndale speed — the Section 4.1 estimates.
    """
    if latency_us < 0:
        raise ValueError("latency must be non-negative")
    if relative_cpu_speed <= 0:
        raise ValueError("relative speed must be positive")
    base = _SNB_PENALTY_AT_100US * (latency_us / 100.0) ** _LATENCY_EXPONENT
    return base * relative_cpu_speed**_SPEED_EXPONENT


def penalised_time(
    compute_time_s: float, latency_us: float, relative_cpu_speed: float = 1.0
) -> float:
    """Execution time including the latency penalty."""
    if compute_time_s < 0:
        raise ValueError("time must be non-negative")
    return compute_time_s * (
        1.0 + latency_penalty(latency_us, relative_cpu_speed)
    )
