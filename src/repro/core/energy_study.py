"""Energy-to-solution comparison — the paper's companion study [13].

Section 4 cites Göddeke et al. (J. Comp. Physics 2013): comparing
Tibidabo against an Intel Nehalem-based cluster on three classes of PDE
solvers (including SPECFEM3D), "while Tibidabo had a 4 times increase in
simulation time, it achieved up to 3 times lower energy-to-solution".

We reproduce the experiment's structure: the same application instance
is run (simulated) on both clusters, wall power is integrated over the
run, and the time/energy ratios reported.  The x86 cluster carries an
infrastructure overhead factor (InfiniBand fabric, chassis fans,
storage) that a bare ARM prototype does not have — the same asymmetry
the original measurement setup had.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import get_application
from repro.arch.servers import nehalem_node
from repro.cluster.cluster import Cluster, build_cluster, tibidabo
from repro.cluster.power import ClusterPowerModel
from repro.net.protocol import OPEN_MX


@dataclass(frozen=True)
class EnergyToSolutionResult:
    """Outcome of one cross-cluster comparison."""

    app: str
    arm_nodes: int
    x86_nodes: int
    arm_time_s: float
    x86_time_s: float
    arm_power_w: float
    x86_power_w: float

    @property
    def arm_energy_j(self) -> float:
        return self.arm_time_s * self.arm_power_w

    @property
    def x86_energy_j(self) -> float:
        return self.x86_time_s * self.x86_power_w

    @property
    def time_ratio(self) -> float:
        """How many times slower the ARM cluster is (paper [13]: ~4x)."""
        return self.arm_time_s / self.x86_time_s

    @property
    def energy_ratio(self) -> float:
        """How many times less energy the ARM cluster uses (paper [13]:
        'up to 3 times')."""
        return self.x86_energy_j / self.arm_energy_j


def _x86_cluster_power_w(
    cluster: Cluster, infrastructure_factor: float
) -> float:
    """Wall power of the x86 cluster: per-node platform power at full
    load times the fabric/chassis overhead factor."""
    node = cluster.nodes[0]
    soc = node.platform.soc
    per_node = soc.power.platform_power(
        node.freq_ghz, soc.n_cores, soc.n_cores, mem_bw_utilisation=0.5
    )
    return cluster.n_nodes * per_node * infrastructure_factor


def energy_to_solution(
    app_name: str = "SPECFEM3D",
    arm_nodes: int = 96,
    x86_nodes: int = 16,
    infrastructure_factor: float = 1.5,
    **app_overrides,
) -> EnergyToSolutionResult:
    """Run one application on Tibidabo and on a Nehalem cluster and
    compare time and energy to solution.

    :param infrastructure_factor: x86-side multiplier for InfiniBand
        switches, chassis fans and storage (the ARM prototype's switch
        power is in its own model).
    """
    if infrastructure_factor < 1.0:
        raise ValueError("infrastructure factor is a multiplier >= 1")
    app = get_application(app_name)

    arm = tibidabo(arm_nodes, open_mx=True)
    arm_run = app.simulate(arm, arm_nodes, **app_overrides)
    arm_power = ClusterPowerModel().total_power_watts(arm)

    x86 = build_cluster(
        "nehalem-cluster",
        x86_nodes,
        platform=nehalem_node(),
        protocol=OPEN_MX,
    )
    x86_run = app.simulate(x86, x86_nodes, **app_overrides)
    x86_power = _x86_cluster_power_w(x86, infrastructure_factor)

    return EnergyToSolutionResult(
        app=app_name,
        arm_nodes=arm_nodes,
        x86_nodes=x86_nodes,
        arm_time_s=arm_run.time_s,
        x86_time_s=x86_run.time_s,
        arm_power_w=arm_power,
        x86_power_w=x86_power,
    )


def pde_solver_campaign(
    arm_nodes: int = 96, x86_nodes: int = 16
) -> dict[str, EnergyToSolutionResult]:
    """The [13] campaign shape: several solver classes, one comparison
    each (we use the three applications with PDE-like structure)."""
    return {
        name: energy_to_solution(name, arm_nodes, x86_nodes)
        for name in ("SPECFEM3D", "HYDRO", "GROMACS")
    }
