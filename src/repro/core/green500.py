"""Green500 list positioning.

Two claims in the paper place systems on Green500 lists:

* Section 2, on MegaProto (100 MFLOPS/W in 2005): "It would have ranked
  between 45 and 70 in the first edition of the Green500 list
  (November 2007)".
* Section 4, on Tibidabo (120 MFLOPS/W): "competitive with AMD Opteron
  6174 and Intel Xeon E5660-based clusters" on the June 2013 list, 19x
  under BlueGene/Q and ~27x under the #1 Eurora system.

This module embeds anchor points of both list editions (rank ->
MFLOPS/W, transcribed from the public lists) and interpolates
log-linearly between them to estimate where a given efficiency would
rank — making both claims testable.
"""

from __future__ import annotations

import math

#: (rank, MFLOPS/W) anchors, November 2007 — the first Green500 list.
NOV_2007: tuple[tuple[int, float], ...] = (
    (1, 357.2),     # BlueGene/P solutions
    (5, 352.3),
    (10, 210.6),
    (20, 150.0),
    (30, 130.0),
    (45, 112.2),
    (70, 86.6),
    (100, 65.0),
    (200, 38.0),
    (300, 24.0),
    (400, 15.0),
    (500, 3.7),
)

#: (rank, MFLOPS/W) anchors, June 2013.
JUNE_2013: tuple[tuple[int, float], ...] = (
    (1, 3208.8),    # Eurotech Eurora (Xeon + K20)
    (5, 2700.0),
    (10, 2300.0),   # BlueGene/Q block
    (50, 1959.0),
    (100, 940.0),
    (150, 500.0),
    (200, 350.0),
    (300, 200.0),
    (400, 125.0),
    (450, 95.0),
    (500, 36.0),
)


def _interp_rank(
    anchors: tuple[tuple[int, float], ...], mflops_w: float
) -> float:
    """Log-linear interpolation of rank for a given efficiency."""
    if mflops_w <= 0:
        raise ValueError("efficiency must be positive")
    best_rank, best_eff = anchors[0]
    worst_rank, worst_eff = anchors[-1]
    if mflops_w >= best_eff:
        return float(best_rank)
    if mflops_w <= worst_eff:
        return float(worst_rank)
    for (r1, e1), (r2, e2) in zip(anchors, anchors[1:]):
        if e2 <= mflops_w <= e1:
            # Interpolate rank linearly in log-efficiency space.
            t = (math.log(e1) - math.log(mflops_w)) / (
                math.log(e1) - math.log(e2)
            )
            return r1 + t * (r2 - r1)
    raise RuntimeError("anchors not monotone")  # pragma: no cover


def rank_november_2007(mflops_w: float) -> float:
    """Estimated rank on the first Green500 list."""
    return _interp_rank(NOV_2007, mflops_w)


def rank_june_2013(mflops_w: float) -> float:
    """Estimated rank on the June 2013 Green500 list."""
    return _interp_rank(JUNE_2013, mflops_w)


def megaproto_claim() -> tuple[float, bool]:
    """Section 2's MegaProto claim: ~100 MFLOPS/W would rank 45-70 on
    the first list.  Returns (estimated rank, claim holds)."""
    rank = rank_november_2007(100.0)
    return rank, 45.0 <= rank <= 70.0


def tibidabo_positioning(mflops_w: float = 120.0) -> dict[str, float]:
    """Where Tibidabo's efficiency lands on the June 2013 list."""
    return {
        "mflops_per_watt": mflops_w,
        "estimated_rank": rank_june_2013(mflops_w),
        "list_best": JUNE_2013[0][1],
        "gap_to_best": JUNE_2013[0][1] / mflops_w,
    }
