"""The study orchestrator: one object that regenerates every artefact.

Each ``figureN``/``tableN`` method returns plain data structures (dicts
of series) that the benchmark harness prints and EXPERIMENTS.md records;
:meth:`MobileSoCStudy.run_all` executes the full campaign.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.apps import APPLICATIONS, ScalingStudy
from repro.apps.hpl import HPL
from repro.arch.catalog import PLATFORMS, armv8_projection, get_platform
from repro.cluster.cluster import tibidabo
from repro.cluster.power import ClusterPowerModel
from repro.core import metrics, top500, trends
from repro.kernels.registry import all_kernels, table2_rows
from repro.kernels.stream import StreamBenchmark
from repro.mpi.benchmarks import bandwidth_curve, latency_curve
from repro.net.nic import PCIE, USB3
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack
from repro.timing.executor import SimulatedExecutor
from repro.timing.measurement import (
    PowerMeter,
    measure_kernel,
    measure_kernel_batch,
)


def _scalar_sweep() -> bool:
    """Whether ``REPRO_SCALAR_SWEEP=1`` forces the scalar reference
    oracle instead of the vectorized sweep (checked at call time so a
    test can flip it per case)."""
    return bool(os.environ.get("REPRO_SCALAR_SWEEP"))

#: Figure 7 configurations: (label, protocol, attachment, core, freq).
FIG7_CONFIGS = (
    ("Tegra2 TCP/IP 1.0GHz", TCP_IP, PCIE, "Cortex-A9", 1.0),
    ("Tegra2 OpenMX 1.0GHz", OPEN_MX, PCIE, "Cortex-A9", 1.0),
    ("Exynos5 TCP/IP 1.0GHz", TCP_IP, USB3, "Cortex-A15", 1.0),
    ("Exynos5 OpenMX 1.0GHz", OPEN_MX, USB3, "Cortex-A15", 1.0),
    ("Exynos5 TCP/IP 1.4GHz", TCP_IP, USB3, "Cortex-A15", 1.4),
    ("Exynos5 OpenMX 1.4GHz", OPEN_MX, USB3, "Cortex-A15", 1.4),
)


#: Figure 6 node counts: the full campaign grid and the trimmed "quick"
#: grid (``run_all(quick=True)`` and the CI smoke campaign).
FIG6_FULL_COUNTS = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96)
FIG6_QUICK_COUNTS = (1, 4, 16, 48, 96)


def figure6_counts(
    app, cluster, node_counts: tuple[int, ...]
) -> tuple[int, ...] | None:
    """The node counts ``app`` actually runs at for a Figure 6 campaign
    over ``node_counts``, or ``None`` when the campaign scale cannot fit
    it at all.  Shared by the serial path and the sharded runner so both
    decompose the figure identically."""
    floor = app.min_nodes(cluster)
    counts = tuple(n for n in node_counts if n >= floor)
    if not counts:
        if floor > cluster.n_nodes:
            return None
        counts = (floor,)  # at least the anchor point
    return counts


def _geomean(xs: list[float]) -> float:
    if not xs:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(x <= 0 for x in xs):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(xs))))


class MobileSoCStudy:
    """Reproduces the complete SC'13 evaluation."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.platforms = dict(PLATFORMS)
        self.kernels = all_kernels()
        self.baseline = get_platform("Tegra2")
        # Executors are cached per platform so their memoized kernel
        # timings survive across figures — figure 3, figure 4, the
        # speedup tables and the comparison report all re-time the same
        # operating points.  Keyed by platform *name* with an equality
        # guard: a swapped-in platform model replaces (and releases) the
        # old executor, and the table stays bounded by the number of
        # platform names rather than growing one entry per object
        # identity (``id()`` keys resurrect after reuse and pin dropped
        # platform models alive through the executor's back-reference).
        self._executors: dict[str, SimulatedExecutor] = {}
        self._base_times: dict[str, float] | None = None
        # Memoized figure-level results; the parallel campaign runner
        # pre-seeds this so rendering after a sharded run is free.
        self._results_memo: dict[tuple, Any] = {}

    def _executor(self, platform) -> SimulatedExecutor:
        """The memoizing executor for ``platform`` (name-keyed with an
        equality guard, so a swapped platform model gets a fresh
        executor and the stale one is released)."""
        ex = self._executors.get(platform.name)
        if ex is None or ex.platform != platform:
            ex = SimulatedExecutor(platform)
            self._executors[platform.name] = ex
        return ex

    def baseline_times(self) -> dict[str, float]:
        """Tegra 2 @1 GHz serial per-kernel times — the denominator of
        every speedup in Figures 3/4; computed once per study."""
        if self._base_times is None:
            base_ex = self._executor(self.baseline)
            self._base_times = {
                k.tag: base_ex.time_kernel(k, 1.0, cores=1).time_s
                for k in self.kernels
            }
        return self._base_times

    # ------------------------------------------------------------------
    # Section 1 artefacts.
    # ------------------------------------------------------------------
    def figure1(self) -> dict[str, Any]:
        """TOP500 architecture-share series."""
        return {
            cat: top500.share_series(cat) for cat in ("x86", "risc", "vector")
        }

    def figure2a(self) -> dict[str, Any]:
        """Vector vs commodity micro trends, 1975-2000."""
        vec = trends.fit_exponential(top500.VECTOR_PROCESSORS)
        mic = trends.fit_exponential(top500.MICRO_PROCESSORS)
        return {
            "vector_points": top500.VECTOR_PROCESSORS,
            "micro_points": top500.MICRO_PROCESSORS,
            "vector_fit": vec,
            "micro_fit": mic,
            "gap_1995": trends.gap_ratio(vec, mic, 1995.0),
        }

    def figure2b(self) -> dict[str, Any]:
        """Server vs mobile trends, 1990-2015."""
        srv = trends.fit_exponential(top500.SERVER_PROCESSORS)
        mob = trends.fit_exponential(top500.MOBILE_PROCESSORS)
        return {
            "server_points": top500.SERVER_PROCESSORS,
            "mobile_points": top500.MOBILE_PROCESSORS,
            "server_fit": srv,
            "mobile_fit": mob,
            "gap_2013": trends.gap_ratio(srv, mob, 2013.0),
            "crossover_year": trends.crossover_year(mob, srv),
            "price_ratio": trends.price_ratio_mobile_vs_hpc(),
        }

    # ------------------------------------------------------------------
    # Section 3 artefacts.
    # ------------------------------------------------------------------
    def table1(self) -> list[dict[str, Any]]:
        return [p.describe() for p in self.platforms.values()]

    def table2(self) -> list[dict[str, str]]:
        return table2_rows()

    # -- sweep work units ----------------------------------------------
    # Figures 3/4 decompose into independent (mode, platform, freq)
    # operating points plus one baseline-energy point.  Every point owns
    # a PowerMeter seeded from a content hash of its coordinates, so a
    # point computes the same bits whether it runs in this process, a
    # pool worker, or straight out of the on-disk result cache — the
    # property the sharded campaign runner (repro.parallel) relies on.

    def _meter_seed(self, label: str) -> int:
        """Deterministic, process-independent meter seed for one
        measurement unit (hash-randomisation immune)."""
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def sweep_base_energy(self) -> float:
        """Mean per-kernel energy of Tegra 2 @1 GHz serial — the
        denominator of every ``energy_norm`` in Figures 3/4."""
        if _scalar_sweep():
            return self._sweep_base_energy_scalar()
        meter = PowerMeter(seed=self._meter_seed("sweep:base"))
        base_ex = self._executor(self.baseline)
        measured = measure_kernel_batch(
            self.baseline, self.kernels, 1.0, cores=1,
            meter=meter, executor=base_ex,
        )
        return float(np.mean([m.energy_j for _run, m in measured]))

    def _sweep_base_energy_scalar(self) -> float:
        """Scalar reference oracle for :meth:`sweep_base_energy` (one
        meter draw per kernel) — kept verbatim for the equivalence
        suite and the ``REPRO_SCALAR_SWEEP=1`` escape hatch."""
        meter = PowerMeter(seed=self._meter_seed("sweep:base"))
        base_ex = self._executor(self.baseline)
        return float(
            np.mean(
                [
                    measure_kernel(
                        self.baseline, k, 1.0, cores=1,
                        meter=meter, executor=base_ex,
                    )[1].energy_j
                    for k in self.kernels
                ]
            )
        )

    def sweep_point(
        self, mode: str, platform_name: str, freq_ghz: float
    ) -> dict[str, float]:
        """One Figure 3/4 operating point: geometric-mean speedup over
        the kernel suite plus the *absolute* mean energy (normalisation
        happens at merge time, against :meth:`sweep_base_energy`).

        Routes through the batched :meth:`sweep_points` path (the
        campaign units in :mod:`repro.parallel` therefore get the
        vectorized model by default, with unchanged unit granularity and
        cache keys); ``REPRO_SCALAR_SWEEP=1`` forces the scalar oracle.
        """
        if _scalar_sweep():
            return self._sweep_point_scalar(mode, platform_name, freq_ghz)
        return self.sweep_points(mode, [(platform_name, freq_ghz)])[0]

    def _sweep_point_scalar(
        self, mode: str, platform_name: str, freq_ghz: float
    ) -> dict[str, float]:
        """Scalar reference oracle for one operating point — the
        original one-frequency-at-a-time walk, kept verbatim so the
        equivalence suite has ground truth to diff the vectorized path
        against."""
        if mode not in ("single", "multi"):
            raise ValueError(f"unknown sweep mode {mode!r}")
        platform = self.platforms[platform_name]
        cores = 1 if mode == "single" else platform.soc.n_cores
        ex = self._executor(platform)
        base_times = self.baseline_times()
        meter = PowerMeter(
            seed=self._meter_seed(f"sweep:{mode}:{platform_name}:{freq_ghz!r}")
        )
        sp = _geomean(
            [
                base_times[k.tag]
                / ex.time_kernel(k, freq_ghz, cores=cores).time_s
                for k in self.kernels
            ]
        )
        energy = float(
            np.mean(
                [
                    measure_kernel(
                        platform, k, freq_ghz, cores=cores,
                        meter=meter, executor=ex,
                    )[1].energy_j
                    for k in self.kernels
                ]
            )
        )
        return {"freq_ghz": freq_ghz, "speedup": sp, "energy_j": energy}

    def sweep_points(
        self,
        mode: str,
        points: list[tuple[str, float]] | None = None,
    ) -> list[dict[str, float]]:
        """Batched Figure 3/4 evaluation over many operating points.

        ``points`` defaults to the full :meth:`sweep_plan` grid.  Points
        are grouped by platform and each kernel is timed once per group
        with :meth:`SimulatedExecutor.time_kernel_batch` — NumPy array
        ops over the operating-point (frequency) axis.  Energy keeps the
        per-point sha256-seeded meter streams exactly: each point owns
        its own :class:`PowerMeter`, which draws the whole kernel batch
        in one call.  Results are bit-identical to the scalar
        :meth:`sweep_point` loop, in ``points`` order (enforced by
        tests/timing/test_sweep_equivalence.py).
        """
        if mode not in ("single", "multi"):
            raise ValueError(f"unknown sweep mode {mode!r}")
        if points is None:
            points = self.sweep_plan()
        base_times = self.baseline_times()
        groups: dict[str, list[int]] = {}
        for i, (name, _freq) in enumerate(points):
            groups.setdefault(name, []).append(i)
        out: list[dict[str, float] | None] = [None] * len(points)
        for name, idxs in groups.items():
            platform = self.platforms[name]
            cores = 1 if mode == "single" else platform.soc.n_cores
            ex = self._executor(platform)
            freqs = [points[i][1] for i in idxs]
            runs_by_kernel = {
                k.tag: ex.time_kernel_batch(k, freqs, cores=cores)
                for k in self.kernels
            }
            for j, i in enumerate(idxs):
                freq = freqs[j]
                sp = _geomean(
                    [
                        base_times[k.tag]
                        / runs_by_kernel[k.tag][j].time_s
                        for k in self.kernels
                    ]
                )
                meter = PowerMeter(
                    seed=self._meter_seed(f"sweep:{mode}:{name}:{freq!r}")
                )
                measured = measure_kernel_batch(
                    platform, self.kernels, freq, cores=cores,
                    meter=meter, executor=ex,
                )
                energy = float(np.mean([m.energy_j for _run, m in measured]))
                out[i] = {
                    "freq_ghz": freq, "speedup": sp, "energy_j": energy,
                }
        return out

    def sweep_plan(self) -> list[tuple[str, float]]:
        """The (platform, frequency) grid of Figures 3/4, in the
        deterministic order the serial path walks it."""
        return [
            (name, freq)
            for name, platform in self.platforms.items()
            for freq in platform.soc.dvfs.frequencies()
        ]

    def _sweep(self, cores_mode: str) -> dict[str, list[dict[str, float]]]:
        """Frequency sweep shared by Figures 3 and 4.

        Baseline for both figures: Tegra 2 at 1 GHz *serial* (the Figure
        4 y-axis reaching ~16x only works against the serial baseline).
        Speedup is the geometric mean over the kernel suite; energy is
        the mean per-iteration energy normalised to the baseline's.
        """
        base_energy = self.sweep_base_energy()
        plan = self.sweep_plan()
        if _scalar_sweep():
            pts = [self.sweep_point(cores_mode, name, freq) for name, freq in plan]
        else:
            pts = self.sweep_points(cores_mode, plan)
        out: dict[str, list[dict[str, float]]] = {}
        for (name, _freq), pt in zip(plan, pts):
            out.setdefault(name, []).append(
                {
                    "freq_ghz": pt["freq_ghz"],
                    "speedup": pt["speedup"],
                    "energy_norm": pt["energy_j"] / base_energy,
                }
            )
        return out

    def speedup_vs_baseline(
        self, platform_name: str, freq_ghz: float, cores: int = 1
    ) -> float:
        """Geometric-mean kernel speedup of a platform operating point
        over Tegra 2 @1 GHz serial — the Figure 3 y-axis, computable at
        arbitrary frequencies (the i7 has no exact 1 GHz DVFS point)."""
        base_times = self.baseline_times()
        ex = self._executor(self.platforms[platform_name])
        return _geomean(
            [
                base_times[k.tag]
                / ex.time_kernel(k, freq_ghz, cores=cores).time_s
                for k in self.kernels
            ]
        )

    def per_kernel_speedups(
        self, platform_name: str, freq_ghz: float, cores: int = 1
    ) -> dict[str, float]:
        """Per-kernel speedup over Tegra 2 @1 GHz serial — the breakdown
        behind the Figure 3 averages.  Section 3.1.1 attributes Tegra 3's
        aggregate gain to "memory-intensive micro-kernels"; this view
        makes that attribution testable."""
        base_times = self.baseline_times()
        ex = self._executor(self.platforms[platform_name])
        return {
            k.tag: base_times[k.tag]
            / ex.time_kernel(k, freq_ghz, cores=cores).time_s
            for k in self.kernels
        }

    def figure3(self) -> dict[str, list[dict[str, float]]]:
        """Single-core performance/energy frequency sweep."""
        key = ("figure3",)
        if key not in self._results_memo:
            self._results_memo[key] = self._sweep("single")
        return self._results_memo[key]

    def figure4(self) -> dict[str, list[dict[str, float]]]:
        """Multi-core (OpenMP, all cores) frequency sweep."""
        key = ("figure4",)
        if key not in self._results_memo:
            self._results_memo[key] = self._sweep("multi")
        return self._results_memo[key]

    def figure5(self) -> dict[str, dict[str, Any]]:
        """STREAM bandwidth, single core and full SoC."""
        bench = StreamBenchmark()
        out: dict[str, dict[str, Any]] = {}
        for name, platform in self.platforms.items():
            out[name] = {
                "single": bench.simulate(platform, 1).bandwidth_gbs,
                "multi": bench.simulate_all_cores(platform).bandwidth_gbs,
                "efficiency_vs_peak": bench.efficiency_vs_peak(platform),
            }
        return out

    # ------------------------------------------------------------------
    # Section 4 artefacts.
    # ------------------------------------------------------------------
    def figure6(
        self,
        node_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96),
    ) -> dict[str, dict[int, float]]:
        """Application speed-up curves on Tibidabo."""
        key = ("figure6", tuple(node_counts))
        if key in self._results_memo:
            return self._results_memo[key]
        cluster = tibidabo(max(node_counts))
        out: dict[str, dict[int, float]] = {}
        for name, app in APPLICATIONS.items():
            counts = figure6_counts(app, cluster, node_counts)
            if counts is None:
                continue  # cannot run at this campaign scale at all
            study = ScalingStudy(app, cluster, node_counts=counts).run()
            out[name] = study.speedups()
        self._results_memo[key] = out
        return out

    def headline_hpl(self, n_nodes: int = 96) -> dict[str, float]:
        """The 97 GFLOPS / 51% / 120 MFLOPS/W result (Open-MX deployed,
        Section 4.1)."""
        key = ("headline_hpl", n_nodes)
        if key in self._results_memo:
            return self._results_memo[key]
        cluster = tibidabo(n_nodes, open_mx=True)
        hpl = HPL()
        run = hpl.simulate(cluster, n_nodes)
        power = ClusterPowerModel()
        result = {
            "n_nodes": float(n_nodes),
            "gflops": run.gflops,
            "efficiency": hpl.efficiency(cluster, run),
            "mflops_per_watt": power.mflops_per_watt(cluster, run.gflops),
            "total_power_w": power.total_power_watts(cluster),
        }
        self._results_memo[key] = result
        return result

    def figure7(self) -> dict[str, dict[str, Any]]:
        """Interconnect latency and bandwidth curves."""
        out: dict[str, dict[str, Any]] = {}
        for label, proto, attach, core, freq in FIG7_CONFIGS:
            stack = ProtocolStack(
                proto, attach, core_name=core, freq_ghz=freq
            )
            out[label] = {
                "latency_us": latency_curve(stack),
                "bandwidth_mbs": bandwidth_curve(stack),
                "small_message_latency_us": stack.small_message_latency_us(),
            }
        return out

    def table4(self) -> dict[str, dict[str, float]]:
        return metrics.bytes_per_flop_table(list(self.platforms.values()))

    def latency_penalties(self) -> dict[str, float]:
        """Section 4.1's execution-time penalty estimates."""
        return {
            "snb_100us": metrics.latency_penalty(100.0, 1.0),
            "snb_65us": metrics.latency_penalty(65.0, 1.0),
            "arndale_100us": metrics.latency_penalty(100.0, 0.5),
            "arndale_65us": metrics.latency_penalty(65.0, 0.5),
        }

    # ------------------------------------------------------------------
    def armv8_outlook(self) -> dict[str, float]:
        """Section 3.1.2 / Figure 2b projection: an ARMv8 A15-class core
        doubles FP64 per cycle."""
        a15 = get_platform("Exynos5250")
        v8 = armv8_projection()
        return {
            "exynos_peak_gflops": a15.peak_gflops(),
            "armv8_peak_gflops": v8.peak_gflops(),
            "per_core_per_ghz_ratio": (
                v8.soc.core.fp64_flops_per_cycle
                / a15.soc.core.fp64_flops_per_cycle
            ),
        }

    def run_all(
        self,
        quick: bool = False,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
    ) -> dict[str, Any]:
        """Execute the whole campaign; ``quick`` trims Figure 6.

        ``jobs > 1`` shards the campaign across a multiprocessing pool
        with an optional persistent result cache (see
        :mod:`repro.parallel`); the merged output is byte-identical to
        the serial path.  ``jobs == 1`` is exactly the serial path.
        """
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if jobs > 1:
            from repro.parallel.runner import run_campaign

            report = run_campaign(
                quick=quick, jobs=jobs, cache_dir=cache_dir, study=self
            )
            return report.results
        counts = FIG6_QUICK_COUNTS if quick else FIG6_FULL_COUNTS
        return {
            "figure1": self.figure1(),
            "figure2a": self.figure2a(),
            "figure2b": self.figure2b(),
            "table1": self.table1(),
            "table2": self.table2(),
            "figure3": self.figure3(),
            "figure4": self.figure4(),
            "figure5": self.figure5(),
            "figure6": self.figure6(counts),
            "figure7": self.figure7(),
            "table4": self.table4(),
            "headline_hpl": self.headline_hpl(),
            "latency_penalties": self.latency_penalties(),
            "armv8_outlook": self.armv8_outlook(),
        }
