"""The study orchestrator: one object that regenerates every artefact.

Each ``figureN``/``tableN`` method returns plain data structures (dicts
of series) that the benchmark harness prints and EXPERIMENTS.md records;
:meth:`MobileSoCStudy.run_all` executes the full campaign.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.apps import APPLICATIONS, ScalingStudy
from repro.apps.hpl import HPL
from repro.arch.catalog import PLATFORMS, armv8_projection, get_platform
from repro.cluster.cluster import tibidabo
from repro.cluster.power import ClusterPowerModel
from repro.core import metrics, top500, trends
from repro.kernels.registry import all_kernels, table2_rows
from repro.kernels.stream import StreamBenchmark
from repro.mpi.benchmarks import bandwidth_curve, latency_curve
from repro.net.nic import PCIE, USB3
from repro.net.protocol import OPEN_MX, TCP_IP, ProtocolStack
from repro.timing.executor import SimulatedExecutor
from repro.timing.measurement import PowerMeter, measure_kernel

#: Figure 7 configurations: (label, protocol, attachment, core, freq).
FIG7_CONFIGS = (
    ("Tegra2 TCP/IP 1.0GHz", TCP_IP, PCIE, "Cortex-A9", 1.0),
    ("Tegra2 OpenMX 1.0GHz", OPEN_MX, PCIE, "Cortex-A9", 1.0),
    ("Exynos5 TCP/IP 1.0GHz", TCP_IP, USB3, "Cortex-A15", 1.0),
    ("Exynos5 OpenMX 1.0GHz", OPEN_MX, USB3, "Cortex-A15", 1.0),
    ("Exynos5 TCP/IP 1.4GHz", TCP_IP, USB3, "Cortex-A15", 1.4),
    ("Exynos5 OpenMX 1.4GHz", OPEN_MX, USB3, "Cortex-A15", 1.4),
)


def _geomean(xs: list[float]) -> float:
    return float(np.exp(np.mean(np.log(xs))))


class MobileSoCStudy:
    """Reproduces the complete SC'13 evaluation."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.platforms = dict(PLATFORMS)
        self.kernels = all_kernels()
        self.baseline = get_platform("Tegra2")
        # Executors are cached per platform object so their memoized
        # kernel timings survive across figures — figure 3, figure 4,
        # the speedup tables and the comparison report all re-time the
        # same operating points.
        self._executors: dict[int, SimulatedExecutor] = {}
        self._base_times: dict[str, float] | None = None

    def _executor(self, platform) -> SimulatedExecutor:
        """The memoizing executor for ``platform`` (identity-keyed, so a
        swapped-out platform model gets a fresh executor)."""
        ex = self._executors.get(id(platform))
        if ex is None or ex.platform is not platform:
            ex = SimulatedExecutor(platform)
            self._executors[id(platform)] = ex
        return ex

    def baseline_times(self) -> dict[str, float]:
        """Tegra 2 @1 GHz serial per-kernel times — the denominator of
        every speedup in Figures 3/4; computed once per study."""
        if self._base_times is None:
            base_ex = self._executor(self.baseline)
            self._base_times = {
                k.tag: base_ex.time_kernel(k, 1.0, cores=1).time_s
                for k in self.kernels
            }
        return self._base_times

    # ------------------------------------------------------------------
    # Section 1 artefacts.
    # ------------------------------------------------------------------
    def figure1(self) -> dict[str, Any]:
        """TOP500 architecture-share series."""
        return {
            cat: top500.share_series(cat) for cat in ("x86", "risc", "vector")
        }

    def figure2a(self) -> dict[str, Any]:
        """Vector vs commodity micro trends, 1975-2000."""
        vec = trends.fit_exponential(top500.VECTOR_PROCESSORS)
        mic = trends.fit_exponential(top500.MICRO_PROCESSORS)
        return {
            "vector_points": top500.VECTOR_PROCESSORS,
            "micro_points": top500.MICRO_PROCESSORS,
            "vector_fit": vec,
            "micro_fit": mic,
            "gap_1995": trends.gap_ratio(vec, mic, 1995.0),
        }

    def figure2b(self) -> dict[str, Any]:
        """Server vs mobile trends, 1990-2015."""
        srv = trends.fit_exponential(top500.SERVER_PROCESSORS)
        mob = trends.fit_exponential(top500.MOBILE_PROCESSORS)
        return {
            "server_points": top500.SERVER_PROCESSORS,
            "mobile_points": top500.MOBILE_PROCESSORS,
            "server_fit": srv,
            "mobile_fit": mob,
            "gap_2013": trends.gap_ratio(srv, mob, 2013.0),
            "crossover_year": trends.crossover_year(mob, srv),
            "price_ratio": trends.price_ratio_mobile_vs_hpc(),
        }

    # ------------------------------------------------------------------
    # Section 3 artefacts.
    # ------------------------------------------------------------------
    def table1(self) -> list[dict[str, Any]]:
        return [p.describe() for p in self.platforms.values()]

    def table2(self) -> list[dict[str, str]]:
        return table2_rows()

    def _sweep(self, cores_mode: str) -> dict[str, list[dict[str, float]]]:
        """Frequency sweep shared by Figures 3 and 4.

        Baseline for both figures: Tegra 2 at 1 GHz *serial* (the Figure
        4 y-axis reaching ~16x only works against the serial baseline).
        Speedup is the geometric mean over the kernel suite; energy is
        the mean per-iteration energy normalised to the baseline's.
        """
        base_cores = 1
        meter = PowerMeter(seed=self.seed)
        base_ex = self._executor(self.baseline)
        base_times = self.baseline_times()
        base_energy = float(
            np.mean(
                [
                    measure_kernel(
                        self.baseline, k, 1.0, cores=base_cores,
                        meter=meter, executor=base_ex,
                    )[1].energy_j
                    for k in self.kernels
                ]
            )
        )
        out: dict[str, list[dict[str, float]]] = {}
        for name, platform in self.platforms.items():
            cores = 1 if cores_mode == "single" else platform.soc.n_cores
            ex = self._executor(platform)
            series = []
            for freq in platform.soc.dvfs.frequencies():
                sp = _geomean(
                    [
                        base_times[k.tag]
                        / ex.time_kernel(k, freq, cores=cores).time_s
                        for k in self.kernels
                    ]
                )
                energy = float(
                    np.mean(
                        [
                            measure_kernel(
                                platform, k, freq, cores=cores,
                                meter=meter, executor=ex,
                            )[1].energy_j
                            for k in self.kernels
                        ]
                    )
                )
                series.append(
                    {
                        "freq_ghz": freq,
                        "speedup": sp,
                        "energy_norm": energy / base_energy,
                    }
                )
            out[name] = series
        return out

    def speedup_vs_baseline(
        self, platform_name: str, freq_ghz: float, cores: int = 1
    ) -> float:
        """Geometric-mean kernel speedup of a platform operating point
        over Tegra 2 @1 GHz serial — the Figure 3 y-axis, computable at
        arbitrary frequencies (the i7 has no exact 1 GHz DVFS point)."""
        base_times = self.baseline_times()
        ex = self._executor(self.platforms[platform_name])
        return _geomean(
            [
                base_times[k.tag]
                / ex.time_kernel(k, freq_ghz, cores=cores).time_s
                for k in self.kernels
            ]
        )

    def per_kernel_speedups(
        self, platform_name: str, freq_ghz: float, cores: int = 1
    ) -> dict[str, float]:
        """Per-kernel speedup over Tegra 2 @1 GHz serial — the breakdown
        behind the Figure 3 averages.  Section 3.1.1 attributes Tegra 3's
        aggregate gain to "memory-intensive micro-kernels"; this view
        makes that attribution testable."""
        base_times = self.baseline_times()
        ex = self._executor(self.platforms[platform_name])
        return {
            k.tag: base_times[k.tag]
            / ex.time_kernel(k, freq_ghz, cores=cores).time_s
            for k in self.kernels
        }

    def figure3(self) -> dict[str, list[dict[str, float]]]:
        """Single-core performance/energy frequency sweep."""
        return self._sweep("single")

    def figure4(self) -> dict[str, list[dict[str, float]]]:
        """Multi-core (OpenMP, all cores) frequency sweep."""
        return self._sweep("multi")

    def figure5(self) -> dict[str, dict[str, Any]]:
        """STREAM bandwidth, single core and full SoC."""
        bench = StreamBenchmark()
        out: dict[str, dict[str, Any]] = {}
        for name, platform in self.platforms.items():
            out[name] = {
                "single": bench.simulate(platform, 1).bandwidth_gbs,
                "multi": bench.simulate_all_cores(platform).bandwidth_gbs,
                "efficiency_vs_peak": bench.efficiency_vs_peak(platform),
            }
        return out

    # ------------------------------------------------------------------
    # Section 4 artefacts.
    # ------------------------------------------------------------------
    def figure6(
        self,
        node_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 48, 64, 96),
    ) -> dict[str, dict[int, float]]:
        """Application speed-up curves on Tibidabo."""
        cluster = tibidabo(max(node_counts))
        out: dict[str, dict[int, float]] = {}
        for name, app in APPLICATIONS.items():
            floor = app.min_nodes(cluster)
            counts = tuple(n for n in node_counts if n >= floor)
            if not counts:
                if floor > cluster.n_nodes:
                    continue  # cannot run at this campaign scale at all
                counts = (floor,)  # at least the anchor point
            study = ScalingStudy(app, cluster, node_counts=counts).run()
            out[name] = study.speedups()
        return out

    def headline_hpl(self, n_nodes: int = 96) -> dict[str, float]:
        """The 97 GFLOPS / 51% / 120 MFLOPS/W result (Open-MX deployed,
        Section 4.1)."""
        cluster = tibidabo(n_nodes, open_mx=True)
        hpl = HPL()
        run = hpl.simulate(cluster, n_nodes)
        power = ClusterPowerModel()
        return {
            "n_nodes": float(n_nodes),
            "gflops": run.gflops,
            "efficiency": hpl.efficiency(cluster, run),
            "mflops_per_watt": power.mflops_per_watt(cluster, run.gflops),
            "total_power_w": power.total_power_watts(cluster),
        }

    def figure7(self) -> dict[str, dict[str, Any]]:
        """Interconnect latency and bandwidth curves."""
        out: dict[str, dict[str, Any]] = {}
        for label, proto, attach, core, freq in FIG7_CONFIGS:
            stack = ProtocolStack(
                proto, attach, core_name=core, freq_ghz=freq
            )
            out[label] = {
                "latency_us": latency_curve(stack),
                "bandwidth_mbs": bandwidth_curve(stack),
                "small_message_latency_us": stack.small_message_latency_us(),
            }
        return out

    def table4(self) -> dict[str, dict[str, float]]:
        return metrics.bytes_per_flop_table(list(self.platforms.values()))

    def latency_penalties(self) -> dict[str, float]:
        """Section 4.1's execution-time penalty estimates."""
        return {
            "snb_100us": metrics.latency_penalty(100.0, 1.0),
            "snb_65us": metrics.latency_penalty(65.0, 1.0),
            "arndale_100us": metrics.latency_penalty(100.0, 0.5),
            "arndale_65us": metrics.latency_penalty(65.0, 0.5),
        }

    # ------------------------------------------------------------------
    def armv8_outlook(self) -> dict[str, float]:
        """Section 3.1.2 / Figure 2b projection: an ARMv8 A15-class core
        doubles FP64 per cycle."""
        a15 = get_platform("Exynos5250")
        v8 = armv8_projection()
        return {
            "exynos_peak_gflops": a15.peak_gflops(),
            "armv8_peak_gflops": v8.peak_gflops(),
            "per_core_per_ghz_ratio": (
                v8.soc.core.fp64_flops_per_cycle
                / a15.soc.core.fp64_flops_per_cycle
            ),
        }

    def run_all(self, quick: bool = False) -> dict[str, Any]:
        """Execute the whole campaign; ``quick`` trims Figure 6."""
        counts = (1, 4, 16, 48, 96) if quick else (1, 2, 4, 8, 16, 24, 32, 48, 64, 96)
        return {
            "figure1": self.figure1(),
            "figure2a": self.figure2a(),
            "figure2b": self.figure2b(),
            "table1": self.table1(),
            "table2": self.table2(),
            "figure3": self.figure3(),
            "figure4": self.figure4(),
            "figure5": self.figure5(),
            "figure6": self.figure6(counts),
            "figure7": self.figure7(),
            "table4": self.table4(),
            "headline_hpl": self.headline_hpl(),
            "latency_penalties": self.latency_penalties(),
            "armv8_outlook": self.armv8_outlook(),
        }
