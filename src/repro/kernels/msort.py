"""``msort`` — generic merge sort (Table 2: "barrier operations").

Bottom-up iterative merge sort over FP64 keys.  Every doubling pass is a
parallel region ending in a barrier — ``log2(n)`` barriers per iteration,
the synchronisation stress the suite includes it for.
"""

from __future__ import annotations

import math

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)


def _merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stable two-way merge of two sorted arrays (vectorised)."""
    n, m = a.shape[0], b.shape[0]
    out = np.empty(n + m, dtype=a.dtype)
    # Positions of b's elements among a's (stable: b after equal a).
    pos_b = np.searchsorted(a, b, side="right") + np.arange(m)
    mask = np.zeros(n + m, dtype=bool)
    mask[pos_b] = True
    out[mask] = b
    out[~mask] = a
    return out


class MergeSort(Kernel):
    tag = "msort"
    full_name = "Generic merge sort"
    properties = "Barrier operations"

    def default_size(self) -> int:
        return 40_000  # 640 KiB (keys + buffer): resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.random(size)

    def run(self, x: np.ndarray) -> np.ndarray:
        runs = [np.asarray([v]) for v in x] if x.shape[0] <= 64 else [
            np.sort(c) for c in np.array_split(x, 64)
        ]
        # Bottom-up pairwise merging: one "parallel pass + barrier" per level.
        while len(runs) > 1:
            merged = [
                _merge(runs[i], runs[i + 1])
                if i + 1 < len(runs)
                else runs[i]
                for i in range(0, len(runs), 2)
            ]
            runs = merged
        return runs[0]

    def reference(self, x: np.ndarray) -> np.ndarray:
        return np.sort(x, kind="mergesort")

    def profile(self, size: int) -> OperationProfile:
        n = float(size)
        passes = math.ceil(math.log2(max(2, size)))
        return OperationProfile(
            flops=0.1 * n * passes,  # FP compares only
            bytes_from_dram=16.0 * n * passes,  # read + write per pass
            bytes_touched=16.0 * n * passes,
            bytes_cache_traffic=16.0 * n * passes,
            working_set_bytes=16.0 * n,
            mix=InstructionMix(
                {
                    OpClass.LOAD: 2.0 * n * passes,
                    OpClass.STORE: n * passes,
                    OpClass.INT_ALU: 2.0 * n * passes,
                    OpClass.BRANCH: n * passes,
                }
            ),
            pattern=AccessPattern.SEQUENTIAL,
            characteristics=KernelCharacteristics(
                simd_fraction=0.1,
                branch_intensity=0.5,
                parallel_fraction=0.96,
                barriers_per_iteration=passes,
            ),
        )
