"""``nbody`` — N-body calculation (Table 2: "irregular memory accesses").

One all-pairs gravitational acceleration step with Plummer softening.
The particle arrays fit in the shared L2, so the kernel is dominated by
gathers and the divide/sqrt chain rather than DRAM bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)

SOFTENING = 1e-3


class NBody(Kernel):
    tag = "nbody"
    full_name = "N-body calculation"
    properties = "Irregular memory accesses"

    def default_size(self) -> int:
        return 2048  # 64 KiB of particle state: resident everywhere

    def make_input(self, size: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(seed)
        pos = rng.standard_normal((size, 3))
        mass = rng.random(size) + 0.1
        return pos, mass

    def run(self, data: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        pos, mass = data
        # Pairwise displacement tensor, computed in blocks to keep the
        # temporary O(B*N) — the shape a tiled C implementation has.
        n = pos.shape[0]
        acc = np.zeros_like(pos)
        block = min(512, n)
        for i0 in range(0, n, block):
            pi = pos[i0 : i0 + block]
            d = pos[None, :, :] - pi[:, None, :]  # (B, N, 3)
            r2 = np.einsum("ijk,ijk->ij", d, d) + SOFTENING**2
            inv_r3 = r2**-1.5
            acc[i0 : i0 + block] = np.einsum(
                "ijk,ij,j->ik", d, inv_r3, mass
            )
        return acc

    def reference(self, data: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        pos, mass = data
        n = pos.shape[0]
        acc = np.zeros_like(pos)
        for i in range(n):
            for j in range(n):
                d = pos[j] - pos[i]
                r2 = float(d @ d) + SOFTENING**2
                acc[i] += mass[j] * d / r2**1.5
        return acc

    def verification_size(self) -> int:
        return 48

    def profile(self, size: int) -> OperationProfile:
        n = float(size)
        pairs = n * n
        return OperationProfile(
            flops=20.0 * pairs,  # 3 sub, 3 FMA dot, rsqrt chain, 3 FMA acc
            bytes_from_dram=64.0 * n,  # arrays fit in L2; stream once
            bytes_touched=32.0 * 8.0 * pairs / 8.0,
            bytes_cache_traffic=8.0 * pairs,  # j-gathers spill past L1
            working_set_bytes=32.0 * n,
            mix=InstructionMix(
                {
                    OpClass.FP_FMA: 7.0 * pairs,
                    OpClass.FP_ADD: 3.0 * pairs,
                    OpClass.FP_MUL: 2.0 * pairs,
                    OpClass.FP_DIV: 0.08 * pairs,  # rsqrt via div+nr steps
                    OpClass.LOAD: 4.0 * pairs,
                    OpClass.INT_ALU: 1.0 * pairs,
                    OpClass.BRANCH: 0.15 * pairs,
                }
            ),
            pattern=AccessPattern.RANDOM,
            characteristics=KernelCharacteristics(
                simd_fraction=0.5,
                parallel_fraction=0.995,
            ),
        )
