"""``2dcon`` — 2D convolution (Table 2: "spatial locality").

A dense 5x5 FP64 convolution over an ``N x N`` image.  The small filter is
register/cache resident; the image is streamed with high spatial locality,
placing the kernel between the bandwidth and compute roofs.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)


class Convolution2D(Kernel):
    tag = "2dcon"
    full_name = "2D convolution"
    properties = "Spatial locality"

    K = 5  # filter edge

    def default_size(self) -> int:
        return 240  # 16 B/px * 240^2 = 920 KiB: resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(seed)
        image = rng.random((size, size))
        filt = rng.random((self.K, self.K))
        filt /= filt.sum()
        return image, filt

    def run(self, data: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        image, filt = data
        k = filt.shape[0]
        n = image.shape[0]
        out_n = n - k + 1
        out = np.zeros((out_n, out_n), dtype=image.dtype)
        # Shift-and-accumulate: k*k vectorised passes with unit stride —
        # the same access structure a compiler produces for the C loop nest.
        for di in range(k):
            for dj in range(k):
                out += filt[di, dj] * image[di : di + out_n, dj : dj + out_n]
        return out

    def reference(self, data: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        from scipy.signal import convolve2d

        image, filt = data
        # 'valid' correlation == convolution with the flipped filter.
        return convolve2d(image, filt[::-1, ::-1], mode="valid")

    def verification_size(self) -> int:
        return 64

    def profile(self, size: int) -> OperationProfile:
        n = float(size)
        taps = float(self.K * self.K)
        pix = n * n
        return OperationProfile(
            flops=2.0 * taps * pix,
            bytes_from_dram=16.0 * pix,  # image in once, output out once
            bytes_touched=8.0 * (taps + 1.0) * pix,
            # row reuse keeps most taps in L1; ~6 streams reach L2.
            bytes_cache_traffic=8.0 * 6.0 * pix,
            working_set_bytes=16.0 * pix,
            mix=InstructionMix(
                {
                    OpClass.FP_FMA: taps * pix,
                    OpClass.LOAD: taps * pix / 2.0,
                    OpClass.STORE: pix,
                    OpClass.INT_ALU: 2.0 * pix,
                    OpClass.BRANCH: 0.2 * pix,
                }
            ),
            pattern=AccessPattern.BLOCKED,
            characteristics=KernelCharacteristics(
                simd_fraction=0.8,
                parallel_fraction=0.997,
            ),
        )
