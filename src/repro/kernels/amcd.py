"""``amcd`` — Markov Chain Monte Carlo (Table 2: "embarrassingly parallel:
peak compute performance").

Independent Metropolis chains sampling a standard normal target.  Chains
never communicate, the state is a handful of registers, and the hot loop
is exp/multiply/compare — the suite's pure compute-throughput probe.
The accept/reject branch is data-dependent, which is why the profile
carries a non-zero branch intensity.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)

STEP = 0.8
N_CHAINS = 64


class MarkovChainMonteCarlo(Kernel):
    tag = "amcd"
    full_name = "Markov Chain Monte Carlo method"
    properties = "Embarrassingly parallel: peak compute performance"

    def default_size(self) -> int:
        return 500_000  # total Metropolis steps across all chains

    def make_input(self, size: int, seed: int = 0) -> dict:
        steps = max(1, size // N_CHAINS)
        rng = np.random.default_rng(seed)
        return {
            "proposals": rng.standard_normal((steps, N_CHAINS)) * STEP,
            "uniforms": rng.random((steps, N_CHAINS)),
            "x0": np.zeros(N_CHAINS),
        }

    def _chain(self, data: dict) -> tuple[np.ndarray, np.ndarray]:
        x = data["x0"].copy()
        acc = np.zeros(N_CHAINS)
        second_moment = np.zeros(N_CHAINS)
        for prop, u in zip(data["proposals"], data["uniforms"]):
            cand = x + prop
            # Metropolis ratio for a standard normal target.
            log_alpha = 0.5 * (x * x - cand * cand)
            take = np.log(u) < log_alpha
            x = np.where(take, cand, x)
            acc += take
            second_moment += x * x
        return second_moment / data["proposals"].shape[0], acc

    def run(self, data: dict) -> tuple[np.ndarray, np.ndarray]:
        return self._chain(data)

    def reference(self, data: dict) -> tuple[np.ndarray, np.ndarray]:
        # Scalar re-implementation, chain by chain.
        steps = data["proposals"].shape[0]
        m2 = np.zeros(N_CHAINS)
        acc = np.zeros(N_CHAINS)
        for c in range(N_CHAINS):
            x = float(data["x0"][c])
            for s in range(steps):
                cand = x + float(data["proposals"][s, c])
                log_alpha = 0.5 * (x * x - cand * cand)
                if np.log(float(data["uniforms"][s, c])) < log_alpha:
                    x = cand
                    acc[c] += 1
                m2[c] += x * x
        return m2 / steps, acc

    def verification_size(self) -> int:
        return N_CHAINS * 50

    def profile(self, size: int) -> OperationProfile:
        n = float(size)  # total steps
        return OperationProfile(
            flops=14.0 * n,  # add, 2 squares, sub/scale, log, compare, acc
            bytes_from_dram=16.0 * n,  # pre-drawn randoms stream in
            bytes_touched=16.0 * n,
            bytes_cache_traffic=16.0 * n,
            working_set_bytes=8.0 * N_CHAINS * 4,
            mix=InstructionMix(
                {
                    OpClass.FP_FMA: 3.0 * n,
                    OpClass.FP_ADD: 3.0 * n,
                    OpClass.FP_MUL: 4.0 * n,
                    OpClass.FP_DIV: 0.05 * n,  # inside log approximation
                    OpClass.LOAD: 2.0 * n,
                    OpClass.INT_ALU: 1.0 * n,
                    OpClass.BRANCH: 1.0 * n,
                }
            ),
            pattern=AccessPattern.SEQUENTIAL,
            characteristics=KernelCharacteristics(
                simd_fraction=0.0,  # data-dependent branch defeats SIMD
                branch_intensity=0.5,
                parallel_fraction=1.0,  # embarrassingly parallel
            ),
        )
