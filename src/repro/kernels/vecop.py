"""``vecop`` — vector operation (Table 2: "common operation in regular
numerical codes").

Computes the DAXPY-like update ``z = alpha * x + y`` over contiguous FP64
vectors: two FLOPs and 24 bytes of streaming traffic per element, i.e. an
arithmetic intensity of 1/12 — firmly memory-bound on every platform,
which is exactly why it is in the suite.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)


class VecOp(Kernel):
    tag = "vecop"
    full_name = "Vector operation"
    properties = "Common operation in regular numerical codes"

    ALPHA = 2.5

    def default_size(self) -> int:
        return 12_000  # 288 KiB working set: resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(seed)
        return rng.random(size), rng.random(size)

    def run(self, data: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        x, y = data
        out = np.empty_like(x)
        np.multiply(x, self.ALPHA, out=out)
        out += y
        return out

    def reference(self, data: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        x, y = data
        return np.array([self.ALPHA * xi + yi for xi, yi in zip(x, y)])

    def profile(self, size: int) -> OperationProfile:
        n = float(size)
        return OperationProfile(
            flops=2.0 * n,
            bytes_from_dram=24.0 * n,  # read x, y; write z (streaming)
            bytes_touched=24.0 * n,
            bytes_cache_traffic=24.0 * n,  # no L1 reuse
            working_set_bytes=24.0 * n,
            mix=InstructionMix(
                {
                    OpClass.FP_FMA: n,
                    OpClass.LOAD: 2.0 * n,
                    OpClass.STORE: n,
                    OpClass.INT_ALU: 0.25 * n,
                    OpClass.BRANCH: 0.06 * n,
                }
            ),
            pattern=AccessPattern.SEQUENTIAL,
            characteristics=KernelCharacteristics(
                simd_fraction=0.9,
                parallel_fraction=0.998,
            ),
        )
