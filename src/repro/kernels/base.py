"""Kernel abstraction: functional implementation + operation profile."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.arch.isa import InstructionMix


class AccessPattern(enum.Enum):
    """Dominant memory-access pattern of a kernel.

    The timing model maps each pattern to a bandwidth-derating factor
    (sequential streams run at full effective bandwidth; random gathers
    are latency-bound).
    """

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    BLOCKED = "blocked"  # tiled, cache-resident reuse
    RANDOM = "random"
    MIXED = "mixed"


@dataclass(frozen=True)
class KernelCharacteristics:
    """Qualitative knobs that modulate achieved throughput per kernel.

    :param simd_fraction: fraction of the FP work a vectorising compiler
        exploits SIMD for (the paper's kernels ran "out of the box").
    :param branch_intensity: 0 (straight-line) .. 1 (branch per element).
    :param parallel_fraction: Amdahl parallel fraction for the OpenMP
        version.
    :param load_imbalance: multiplicative penalty on parallel time
        (spvm's raison d'être in Table 2).
    :param barriers_per_iteration: synchronisation points per iteration
        (msort's raison d'être in Table 2).
    """

    simd_fraction: float = 0.0
    branch_intensity: float = 0.0
    parallel_fraction: float = 0.99
    load_imbalance: float = 1.0
    barriers_per_iteration: int = 0

    def __post_init__(self) -> None:
        for name in ("simd_fraction", "branch_intensity", "parallel_fraction"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")
        if self.load_imbalance < 1.0:
            raise ValueError("load_imbalance is a multiplier >= 1")


@dataclass(frozen=True)
class OperationProfile:
    """Machine-facing description of one kernel *iteration*.

    :param flops: floating-point operations per iteration.
    :param bytes_from_dram: memory traffic that reaches DRAM when the
        working set does *not* fit on chip (the streaming regime used by
        STREAM-like runs and the oversized-input tests).
    :param bytes_touched: total load/store traffic at the register
        interface (before cache filtering).
    :param bytes_cache_traffic: traffic that reaches the last-level
        cache after L1 filtering — the memory roof for the suite's
        cache-resident default sizes.  Defaults to ``bytes_touched``.
    :param working_set_bytes: resident footprint.  The executor compares
        it with the platform LLC to choose the cache or DRAM regime.
    :param mix: dynamic instruction mix.
    :param pattern: dominant access pattern.
    :param characteristics: qualitative modifiers.
    """

    flops: float
    bytes_from_dram: float
    bytes_touched: float
    working_set_bytes: float
    mix: InstructionMix
    pattern: AccessPattern
    characteristics: KernelCharacteristics = field(
        default_factory=KernelCharacteristics
    )
    bytes_cache_traffic: float | None = None

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_from_dram < 0:
            raise ValueError("flops and bytes must be non-negative")
        if self.bytes_from_dram > self.bytes_touched + 1e-9:
            raise ValueError("DRAM traffic cannot exceed touched bytes")
        if self.bytes_cache_traffic is not None and self.bytes_cache_traffic < 0:
            raise ValueError("cache traffic must be non-negative")

    @property
    def cache_traffic(self) -> float:
        """LLC-level traffic (``bytes_cache_traffic`` or the register
        traffic when the kernel declared no L1 filtering)."""
        return (
            self.bytes_touched
            if self.bytes_cache_traffic is None
            else self.bytes_cache_traffic
        )

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte (the roofline x-axis).  ``inf`` when the
        kernel's working set never leaves cache."""
        if self.bytes_from_dram == 0:
            return float("inf")
        return self.flops / self.bytes_from_dram


class Kernel(abc.ABC):
    """One micro-kernel of the Table 2 suite."""

    #: Short tag used in the paper's Table 2 (e.g. ``"vecop"``).
    tag: str = ""
    #: Full name column of Table 2.
    full_name: str = ""
    #: Properties column of Table 2.
    properties: str = ""

    @abc.abstractmethod
    def default_size(self) -> int:
        """Problem size used for the platform evaluation (identical on
        every platform, per Section 3.1)."""

    @abc.abstractmethod
    def make_input(self, size: int, seed: int = 0) -> Any:
        """Deterministic input generator."""

    @abc.abstractmethod
    def run(self, data: Any) -> Any:
        """Execute the kernel (vectorised NumPy implementation)."""

    @abc.abstractmethod
    def reference(self, data: Any) -> Any:
        """Independent reference implementation used for verification."""

    @abc.abstractmethod
    def profile(self, size: int) -> OperationProfile:
        """Operation profile for one iteration at ``size``."""

    def verify(self, size: int | None = None, seed: int = 0) -> bool:
        """Run both implementations and compare outputs."""
        n = self.verification_size() if size is None else size
        data = self.make_input(n, seed=seed)
        got = self.run(data)
        want = self.reference(data)
        return _outputs_match(got, want)

    def verification_size(self) -> int:
        """A small size suitable for reference comparison in tests."""
        return max(64, self.default_size() // 256)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Kernel {self.tag}>"


def _outputs_match(got: Any, want: Any, rtol: float = 1e-9) -> bool:
    if isinstance(got, tuple) and isinstance(want, tuple):
        return len(got) == len(want) and all(
            _outputs_match(g, w, rtol) for g, w in zip(got, want)
        )
    got_arr = np.asarray(got)
    want_arr = np.asarray(want)
    if got_arr.shape != want_arr.shape:
        return False
    if got_arr.dtype.kind in "iu" and want_arr.dtype.kind in "iu":
        return bool(np.array_equal(got_arr, want_arr))
    return bool(np.allclose(got_arr, want_arr, rtol=rtol, atol=1e-12))
