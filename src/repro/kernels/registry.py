"""Registry mapping Table 2 kernel tags to implementations."""

from __future__ import annotations

from repro.kernels.amcd import MarkovChainMonteCarlo
from repro.kernels.base import Kernel
from repro.kernels.conv2d import Convolution2D
from repro.kernels.dmmm import DenseMatMul
from repro.kernels.fft import FFT1D
from repro.kernels.histogram import Histogram
from repro.kernels.msort import MergeSort
from repro.kernels.nbody import NBody
from repro.kernels.reduction import Reduction
from repro.kernels.spmv import SparseMatVec
from repro.kernels.stencil3d import Stencil3D
from repro.kernels.vecop import VecOp

#: Table 2 order.
KERNELS: dict[str, Kernel] = {
    k.tag: k
    for k in (
        VecOp(),
        DenseMatMul(),
        Stencil3D(),
        Convolution2D(),
        FFT1D(),
        Reduction(),
        Histogram(),
        MergeSort(),
        NBody(),
        MarkovChainMonteCarlo(),
        SparseMatVec(),
    )
}


def register_kernel(kernel: Kernel, replace: bool = False) -> None:
    """Add a kernel to the registry under its tag.

    ``replace=True`` swaps in a new implementation for an existing tag.
    Executors memoize runs by kernel *identity*, so after a replacement
    any live :class:`~repro.timing.executor.SimulatedExecutor` must drop
    the old object's entries via ``evict_kernel`` — otherwise it keeps
    serving the replaced implementation's timings under the same tag.
    """
    if kernel.tag in KERNELS and not replace:
        raise ValueError(
            f"kernel {kernel.tag!r} already registered; pass replace=True"
        )
    KERNELS[kernel.tag] = kernel


def get_kernel(tag: str) -> Kernel:
    """Look up a kernel by its Table 2 tag."""
    try:
        return KERNELS[tag]
    except KeyError:
        raise KeyError(
            f"unknown kernel {tag!r}; available: {sorted(KERNELS)}"
        ) from None


def all_kernels() -> list[Kernel]:
    """The full suite in Table 2 order."""
    return list(KERNELS.values())


def table2_rows() -> list[dict[str, str]]:
    """Rows of Table 2 (tag / full name / properties)."""
    return [
        {
            "Kernel tag": k.tag,
            "Full name": k.full_name,
            "Properties": k.properties,
        }
        for k in KERNELS.values()
    ]
