"""``hist`` — histogram calculation (Table 2: "histogram with local
privatisation, requires reduction stage").

Bins ``n`` FP64 samples into 256 buckets.  The parallel version gives each
thread a private copy of the (cache-resident) bin array and merges them in
a final reduction stage — the structure the profile encodes via a barrier
and a sub-unit parallel fraction.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)


class Histogram(Kernel):
    tag = "hist"
    full_name = "Histogram calculation"
    properties = "Histogram with local privatisation, requires reduction stage"

    BINS = 256

    def default_size(self) -> int:
        return 100_000  # 800 KiB of samples: resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.random(size)

    def run(self, x: np.ndarray) -> np.ndarray:
        # Privatised histogram: chunked np.bincount + merge, mirroring the
        # per-thread private copies of the OpenMP version.
        chunks = np.array_split(x, 4)
        partials = [
            np.bincount(
                np.minimum(
                    (c * self.BINS).astype(np.intp), self.BINS - 1
                ),
                minlength=self.BINS,
            )
            for c in chunks
        ]
        out = partials[0]
        for p in partials[1:]:
            out = out + p
        return out

    def reference(self, x: np.ndarray) -> np.ndarray:
        counts, _ = np.histogram(x, bins=self.BINS, range=(0.0, 1.0))
        # np.histogram puts x == 1.0 in the last bin too; inputs are < 1.
        return counts

    def profile(self, size: int) -> OperationProfile:
        n = float(size)
        return OperationProfile(
            flops=n,  # one scale op per sample
            bytes_from_dram=8.0 * n,  # samples stream; bins stay in L1
            bytes_touched=8.0 * n + 16.0 * n,
            bytes_cache_traffic=12.0 * n,  # samples + bin-line churn
            working_set_bytes=8.0 * n,
            mix=InstructionMix(
                {
                    OpClass.FP_MUL: n,
                    OpClass.LOAD: 2.0 * n,
                    OpClass.STORE: n,
                    OpClass.INT_ALU: 2.0 * n,
                    OpClass.BRANCH: 0.5 * n,
                }
            ),
            pattern=AccessPattern.MIXED,
            characteristics=KernelCharacteristics(
                simd_fraction=0.2,  # scatter increment defeats SIMD
                branch_intensity=0.3,
                parallel_fraction=0.985,
                barriers_per_iteration=1,
            ),
        )
