"""``spvm`` — sparse matrix-vector multiplication (Table 2: "load
imbalance").

CSR SpMV with a power-law row-degree distribution, so a static row
partition hands different threads very different work — the load-imbalance
stress the suite includes it for.  The column gather of ``x`` is the
irregular-bandwidth component.

The paper spells the tag "spvm" ("Sparce Vector-Matrix Multiplication");
we keep that tag for fidelity.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)

AVG_NNZ_PER_ROW = 16


class SparseMatVec(Kernel):
    tag = "spvm"
    full_name = "Sparse Vector-Matrix Multiplication"
    properties = "Load imbalance"

    def default_size(self) -> int:
        return 3_000  # rows; ~620 KiB CSR: resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        # Power-law-ish row degrees: most rows small, a few huge.
        raw = rng.pareto(1.8, size) + 1.0
        degrees = np.minimum(
            (raw * AVG_NNZ_PER_ROW / raw.mean()).astype(np.intp), size
        )
        degrees = np.maximum(degrees, 1)
        indptr = np.zeros(size + 1, dtype=np.intp)
        np.cumsum(degrees, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = rng.integers(0, size, nnz, dtype=np.intp)
        values = rng.random(nnz)
        x = rng.random(size)
        return {
            "indptr": indptr,
            "indices": indices,
            "values": values,
            "x": x,
        }

    def run(self, data: dict) -> np.ndarray:
        indptr, indices, values, x = (
            data["indptr"],
            data["indices"],
            data["values"],
            data["x"],
        )
        products = values * x[indices]
        # Row sums via segment reduction (prefix-sum differencing).
        csum = np.concatenate(([0.0], np.cumsum(products)))
        return csum[indptr[1:]] - csum[indptr[:-1]]

    def reference(self, data: dict) -> np.ndarray:
        from scipy.sparse import csr_matrix

        n = data["indptr"].shape[0] - 1
        mat = csr_matrix(
            (data["values"], data["indices"], data["indptr"]), shape=(n, n)
        )
        return mat @ data["x"]

    def verification_size(self) -> int:
        return 512

    def imbalance_factor(self, data: dict, n_threads: int = 4) -> float:
        """Measured max/mean work ratio of a static row partition —
        the quantity the profile's ``load_imbalance`` models."""
        degrees = np.diff(data["indptr"])
        chunks = np.array_split(degrees, n_threads)
        work = np.array([c.sum() for c in chunks], dtype=float)
        return float(work.max() / work.mean())

    def profile(self, size: int) -> OperationProfile:
        rows = float(size)
        nnz = rows * AVG_NNZ_PER_ROW
        return OperationProfile(
            flops=2.0 * nnz,
            # values + col indices stream; x gathers mostly miss; y writes.
            bytes_from_dram=12.0 * nnz + 0.4 * 8.0 * nnz + 16.0 * rows,
            bytes_touched=(12.0 + 8.0) * nnz + 16.0 * rows,
            bytes_cache_traffic=20.0 * nnz + 16.0 * rows,
            working_set_bytes=12.0 * nnz + 16.0 * rows,
            mix=InstructionMix(
                {
                    OpClass.FP_FMA: nnz,
                    OpClass.LOAD: 3.0 * nnz,
                    OpClass.STORE: rows,
                    OpClass.INT_ALU: 2.0 * nnz,
                    OpClass.BRANCH: rows + 0.2 * nnz,
                }
            ),
            pattern=AccessPattern.RANDOM,
            characteristics=KernelCharacteristics(
                simd_fraction=0.25,
                branch_intensity=0.2,
                parallel_fraction=0.99,
                load_imbalance=1.18,
            ),
        )
