"""``3dstc`` — 7-point 3D volume stencil (Table 2: "strided memory
accesses").

Jacobi-style update on a ``G^3`` FP64 grid.  The +/-1 plane neighbours are
``G^2`` elements apart, producing the long strides the suite uses to
stress the memory pipeline; whether the two neighbour planes fit in the
shared L2 decides the DRAM traffic.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)


class Stencil3D(Kernel):
    tag = "3dstc"
    full_name = "3D volume stencil computation"
    properties = "Strided memory accesses (7-point 3D stencil)"

    # 7-point stencil coefficients (centre + 6 neighbours).
    C0 = 0.4
    C1 = 0.1

    def default_size(self) -> int:
        return 36  # 16 B/pt * 36^3 = 750 KiB: resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.random((size, size, size))

    def run(self, grid: np.ndarray) -> np.ndarray:
        out = grid.copy()
        inner = grid[1:-1, 1:-1, 1:-1]
        out[1:-1, 1:-1, 1:-1] = self.C0 * inner + self.C1 * (
            grid[:-2, 1:-1, 1:-1]
            + grid[2:, 1:-1, 1:-1]
            + grid[1:-1, :-2, 1:-1]
            + grid[1:-1, 2:, 1:-1]
            + grid[1:-1, 1:-1, :-2]
            + grid[1:-1, 1:-1, 2:]
        )
        return out

    def reference(self, grid: np.ndarray) -> np.ndarray:
        g = grid.shape[0]
        out = grid.copy()
        for i in range(1, g - 1):
            for j in range(1, g - 1):
                for k in range(1, g - 1):
                    out[i, j, k] = self.C0 * grid[i, j, k] + self.C1 * (
                        grid[i - 1, j, k]
                        + grid[i + 1, j, k]
                        + grid[i, j - 1, k]
                        + grid[i, j + 1, k]
                        + grid[i, j, k - 1]
                        + grid[i, j, k + 1]
                    )
        return out

    def verification_size(self) -> int:
        return 16

    def profile(self, size: int) -> OperationProfile:
        g = float(size)
        pts = g**3
        flops = 8.0 * pts  # 6 adds + 2 muls per point
        return OperationProfile(
            flops=flops,
            # read the volume once (plane reuse in L2) + write-allocate out.
            bytes_from_dram=24.0 * pts,
            bytes_touched=8.0 * 8.0 * pts,
            # The three-plane reuse window fits a 32 KiB L1 at this size
            # (validated against the trace-driven cache simulator in
            # tests/kernels/test_traces.py): the grid streams through L1
            # once plus the write-allocated output.
            bytes_cache_traffic=8.0 * 2.0 * pts,
            working_set_bytes=16.0 * pts,
            mix=InstructionMix(
                {
                    OpClass.FP_FMA: 2.0 * pts,
                    OpClass.FP_ADD: 4.0 * pts,
                    OpClass.LOAD: 7.0 * pts,
                    OpClass.STORE: pts,
                    OpClass.INT_ALU: 1.5 * pts,
                    OpClass.BRANCH: 0.1 * pts,
                }
            ),
            pattern=AccessPattern.STRIDED,
            characteristics=KernelCharacteristics(
                simd_fraction=0.7,
                parallel_fraction=0.995,
            ),
        )
