"""The 11-kernel micro-benchmark suite of Table 2, plus STREAM.

Every kernel is implemented twice:

* a **functional** NumPy implementation (:meth:`Kernel.run`) with an
  independent reference (:meth:`Kernel.reference`) so correctness is
  testable, and
* an **operation profile** (:meth:`Kernel.profile`) — FLOPs, memory
  traffic, instruction mix, access pattern, parallel fraction — consumed
  by the simulated-timing model in :mod:`repro.timing`.

The suite stresses the architectural axes named in Table 2 (data reuse,
strided access, spatial locality, peak FP, reductions, barriers,
irregular access, embarrassing parallelism, load imbalance).
"""

from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)
from repro.kernels.registry import KERNELS, get_kernel, all_kernels
from repro.kernels.stream import StreamBenchmark, StreamResult

__all__ = [
    "AccessPattern",
    "Kernel",
    "KernelCharacteristics",
    "OperationProfile",
    "KERNELS",
    "get_kernel",
    "all_kernels",
    "StreamBenchmark",
    "StreamResult",
]
