"""``red`` — reduction (Table 2: "varying levels of parallelism (scalar
sum)").

A global FP64 sum.  The interesting architectural property is not the
FLOP count (one add per element) but the shrinking parallelism of the
combine tree, captured by the profile's parallel fraction and barrier.
"""

from __future__ import annotations

import math

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)


class Reduction(Kernel):
    tag = "red"
    full_name = "Reduction operation"
    properties = "Varying levels of parallelism (scalar sum)"

    def default_size(self) -> int:
        return 100_000  # 800 KiB: resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.random(size)

    def run(self, x: np.ndarray) -> float:
        # Pairwise tree reduction (what np.sum does internally) written
        # out explicitly to mirror the parallel combine structure.
        a = x
        while a.shape[0] > 1:
            half = a.shape[0] // 2
            tail = a[2 * half :]
            a = a[:half] + a[half : 2 * half]
            if tail.shape[0]:
                a = np.concatenate([a, tail])
        return float(a[0])

    def reference(self, x: np.ndarray) -> float:
        return float(math.fsum(x.tolist()))

    def verify(self, size: int | None = None, seed: int = 0) -> bool:
        n = self.verification_size() if size is None else size
        data = self.make_input(n, seed=seed)
        return math.isclose(
            self.run(data), self.reference(data), rel_tol=1e-9
        )

    def profile(self, size: int) -> OperationProfile:
        n = float(size)
        return OperationProfile(
            flops=n,
            bytes_from_dram=8.0 * n,
            bytes_touched=8.0 * n,
            bytes_cache_traffic=8.0 * n,
            working_set_bytes=8.0 * n,
            mix=InstructionMix(
                {
                    OpClass.FP_ADD: n,
                    OpClass.LOAD: n,
                    OpClass.INT_ALU: 0.25 * n,
                    OpClass.BRANCH: 0.06 * n,
                }
            ),
            pattern=AccessPattern.SEQUENTIAL,
            characteristics=KernelCharacteristics(
                simd_fraction=0.85,
                parallel_fraction=0.99,
                barriers_per_iteration=1,
            ),
        )
