"""STREAM memory-bandwidth benchmark (McCalpin), used for Figure 5.

Implements the four canonical operations with their standard byte
accounting (Copy/Scale 16 B per element, Add/Triad 24 B) and provides
both a *functional* mode (actually moving NumPy data) and a *simulated*
mode that reports the bandwidth a given platform sustains, using the
memory-system model of :mod:`repro.arch.dram`.

The "assumed" STREAM counting convention is used (as in the original
benchmark): write-allocate traffic is not charged, matching how the paper
reports its numbers against peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.soc import Platform

#: Bytes moved per array element, canonical STREAM accounting.
BYTES_PER_ELEMENT = {"Copy": 16.0, "Scale": 16.0, "Add": 24.0, "Triad": 24.0}

#: FLOPs per element.
FLOPS_PER_ELEMENT = {"Copy": 0.0, "Scale": 1.0, "Add": 1.0, "Triad": 2.0}

OPERATIONS = ("Copy", "Scale", "Add", "Triad")

#: Bandwidth derate of each operation relative to a pure read stream.
#: Copy/Scale are 1R+1W, Add/Triad 2R+1W; writes cost slightly more on
#: the weaker memory controllers (read-modify-write of partial lines).
_OP_EFFICIENCY = {"Copy": 1.00, "Scale": 0.99, "Add": 0.96, "Triad": 0.96}


@dataclass(frozen=True)
class StreamResult:
    """Bandwidth (GB/s) for each operation at a core count."""

    platform: str
    cores: int
    bandwidth_gbs: dict[str, float]

    def best(self) -> float:
        return max(self.bandwidth_gbs.values())

    def triad(self) -> float:
        return self.bandwidth_gbs["Triad"]


class StreamBenchmark:
    """STREAM over a platform model (simulated) or real arrays (functional)."""

    def __init__(self, array_elements: int = 10_000_000) -> None:
        if array_elements <= 0:
            raise ValueError("array size must be positive")
        self.array_elements = array_elements

    # -- functional mode ----------------------------------------------------
    def run_functional(self, seed: int = 0) -> dict[str, np.ndarray]:
        """Actually execute the four operations on NumPy arrays (used by the
        correctness tests and the pytest-benchmark harness)."""
        rng = np.random.default_rng(seed)
        n = self.array_elements
        a = rng.random(n)
        b = rng.random(n)
        scalar = 3.0
        out: dict[str, np.ndarray] = {}
        out["Copy"] = a.copy()
        out["Scale"] = scalar * a
        out["Add"] = a + b
        out["Triad"] = a + scalar * b
        return out

    # -- simulated mode -----------------------------------------------------
    def simulate(self, platform: Platform, cores: int) -> StreamResult:
        """Bandwidth the platform model sustains with ``cores`` active.

        Single-core results are concurrency-limited (per-core MLP x line
        / latency); multi-core results saturate at the calibrated fraction
        of peak — reproducing both panels of Figure 5.
        """
        soc = platform.soc
        if not (1 <= cores <= soc.n_cores):
            raise ValueError(
                f"cores must be in [1, {soc.n_cores}] for {platform.name}"
            )
        base = soc.memory.effective_bandwidth_gbs(cores, soc.core.mlp)
        bw = {op: base * _OP_EFFICIENCY[op] for op in OPERATIONS}
        return StreamResult(
            platform=platform.name, cores=cores, bandwidth_gbs=bw
        )

    def simulate_all_cores(self, platform: Platform) -> StreamResult:
        return self.simulate(platform, platform.soc.n_cores)

    def efficiency_vs_peak(self, platform: Platform) -> float:
        """Best multicore bandwidth over peak — the paper's Section 3.2
        efficiency numbers (62% / 27% / 52% / 57%)."""
        res = self.simulate_all_cores(platform)
        return res.best() / platform.soc.memory.peak_bandwidth_gbs
