"""``fft`` — one-dimensional Fast Fourier Transform (Table 2: "peak
floating-point, variable-stride accesses").

A hand-rolled iterative radix-2 Cooley-Tukey decimation-in-time transform
over a power-of-two complex array.  Butterfly strides double every stage,
producing the variable-stride access pattern the suite targets; the
``5 n log2 n`` FLOP count is the classical radix-2 figure.
"""

from __future__ import annotations

import math

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses ``log2(n)``-bit indices."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.uint64)
    rev = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        rev |= ((idx >> np.uint64(b)) & np.uint64(1)) << np.uint64(bits - 1 - b)
    return rev.astype(np.intp)


class FFT1D(Kernel):
    tag = "fft"
    full_name = "One-dimensional Fast Fourier Transform"
    properties = "Peak floating-point, variable-stride accesses"

    def default_size(self) -> int:
        return 1 << 15  # 512 KiB complex array: resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> np.ndarray:
        if size & (size - 1):
            raise ValueError("FFT size must be a power of two")
        rng = np.random.default_rng(seed)
        return rng.random(size) + 1j * rng.random(size)

    def run(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        a = x[_bit_reverse_permutation(n)].astype(np.complex128)
        span = 1
        while span < n:
            # Twiddles for this stage, one per butterfly position.
            w = np.exp(-1j * math.pi * np.arange(span) / span)
            a = a.reshape(-1, 2 * span)
            even = a[:, :span]
            odd = a[:, span:] * w
            upper = even + odd
            lower = even - odd
            a = np.concatenate([upper, lower], axis=1).reshape(-1)
            span *= 2
        return a

    def reference(self, x: np.ndarray) -> np.ndarray:
        return np.fft.fft(x)

    def verification_size(self) -> int:
        return 1 << 10

    def profile(self, size: int) -> OperationProfile:
        n = float(size)
        stages = math.log2(size)
        flops = 5.0 * n * stages
        return OperationProfile(
            flops=flops,
            # 16 MiB complex array exceeds every cache: each stage streams
            # the array in and out (16 B per complex load + store).
            bytes_from_dram=32.0 * n * stages,
            bytes_touched=48.0 * n * stages,
            bytes_cache_traffic=32.0 * n * stages,  # in + out per stage
            working_set_bytes=16.0 * n,
            mix=InstructionMix(
                {
                    OpClass.FP_FMA: 1.5 * n * stages,
                    OpClass.FP_ADD: 2.0 * n * stages,
                    OpClass.LOAD: 2.0 * n * stages,
                    OpClass.STORE: 2.0 * n * stages,
                    OpClass.INT_ALU: 1.0 * n * stages,
                    OpClass.BRANCH: 0.2 * n * stages,
                }
            ),
            pattern=AccessPattern.STRIDED,
            characteristics=KernelCharacteristics(
                simd_fraction=0.6,
                parallel_fraction=0.97,
                barriers_per_iteration=int(stages),
            ),
        )
