"""Address-trace generators: the bridge between the kernel profiles and
the functional cache simulator.

The operation profiles in each kernel module declare analytic
``bytes_cache_traffic`` figures (what reaches the shared L2 after L1
filtering).  This module generates *actual* address streams for the
regular kernels and replays them through
:class:`~repro.arch.cache.CacheHierarchy`, so the analytic numbers can
be validated against simulation — which the test suite does.

Traces are generated lazily (generators of byte addresses) and sampled:
a full default-size trace would be hundreds of millions of accesses;
validation uses reduced sizes with identical structure.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator

from repro.arch.cache import CacheConfig, CacheHierarchy

FP64 = 8


def vecop_trace(n: int, base: int = 0) -> Iterator[tuple[int, bool]]:
    """``z = a*x + y``: reads of x and y, write of z, unit stride.
    Yields (address, is_write)."""
    x0, y0, z0 = base, base + n * FP64, base + 2 * n * FP64
    for i in range(n):
        yield x0 + i * FP64, False
        yield y0 + i * FP64, False
        yield z0 + i * FP64, True


def reduction_trace(n: int, base: int = 0) -> Iterator[tuple[int, bool]]:
    """Sequential read of one vector."""
    for i in range(n):
        yield base + i * FP64, False


def stencil3d_trace(g: int, base: int = 0) -> Iterator[tuple[int, bool]]:
    """7-point stencil over a g^3 grid: centre + 6 neighbours read,
    one write; plane neighbours are g^2 elements away (the long
    strides of Table 2)."""
    plane = g * g * FP64
    row = g * FP64
    out_base = base + g * g * g * FP64
    for i in range(1, g - 1):
        for j in range(1, g - 1):
            for k in range(1, g - 1):
                centre = base + (i * g * g + j * g + k) * FP64
                yield centre, False
                yield centre - plane, False
                yield centre + plane, False
                yield centre - row, False
                yield centre + row, False
                yield centre - FP64, False
                yield centre + FP64, False
                yield out_base + (i * g * g + j * g + k) * FP64, True


def dmmm_trace(
    n: int, block: int = 16, base: int = 0
) -> Iterator[tuple[int, bool]]:
    """Blocked matrix multiply C = A @ B (ikj order inside blocks):
    high reuse of the A block and C row, streaming of B."""
    a0, b0, c0 = base, base + n * n * FP64, base + 2 * n * n * FP64
    for i0 in range(0, n, block):
        for k0 in range(0, n, block):
            for j0 in range(0, n, block):
                for i in range(i0, min(i0 + block, n)):
                    for k in range(k0, min(k0 + block, n)):
                        yield a0 + (i * n + k) * FP64, False
                        for j in range(j0, min(j0 + block, n)):
                            yield b0 + (k * n + j) * FP64, False
                            yield c0 + (i * n + j) * FP64, True


TRACES = {
    "vecop": vecop_trace,
    "red": reduction_trace,
    "3dstc": stencil3d_trace,
    "dmmm": dmmm_trace,
}


@lru_cache(maxsize=64)
def cached_trace(name: str, *args: int) -> tuple[tuple[int, bool], ...]:
    """A materialised, memoized address trace.

    The generators above are pure functions of their integer arguments,
    but validation sweeps re-request the same (kernel, size) traces for
    every cache configuration under test — each regeneration re-executes
    the full nested loops.  This returns the trace as an immutable tuple
    computed once per argument set; callers can replay it any number of
    times.  ``name`` must be a key of :data:`TRACES`.
    """
    try:
        gen = TRACES[name]
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r}; available: {sorted(TRACES)}"
        ) from None
    return tuple(gen(*args))


def replay(
    trace: Iterable[tuple[int, bool]],
    levels: list[CacheConfig],
    dram_latency_cycles: float = 100.0,
) -> CacheHierarchy:
    """Feed a trace through a fresh hierarchy; returns it for stats.

    Accepts any iterable of ``(address, is_write)`` pairs — a lazy
    generator or a :func:`cached_trace` tuple.
    """
    hier = CacheHierarchy(levels, dram_latency_cycles)
    for addr, write in trace:
        hier.access(addr, write=write)
    return hier


def l2_traffic_bytes(
    hier: CacheHierarchy, line_bytes: int | None = None
) -> float:
    """Traffic that reached the second level: L1 misses times the line
    size (what the analytic ``bytes_cache_traffic`` figures model)."""
    l1 = hier.levels[0]
    line = l1.config.line_bytes if line_bytes is None else line_bytes
    return float(l1.misses * line)
