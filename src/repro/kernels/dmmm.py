"""``dmmm`` — dense matrix-matrix multiplication (Table 2: "data reuse and
compute performance").

``C = A @ B`` with square FP64 operands.  With L2-resident blocking the
DRAM traffic is a small multiple of the matrix sizes while FLOPs grow as
``2 N^3``, so the kernel probes the compute roof — the axis along which
the Cortex-A15's pipelined FMA beats the A9's one-FMA-per-two-cycles.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import InstructionMix, OpClass
from repro.kernels.base import (
    AccessPattern,
    Kernel,
    KernelCharacteristics,
    OperationProfile,
)


class DenseMatMul(Kernel):
    tag = "dmmm"
    full_name = "Dense matrix-matrix multiplication"
    properties = "Data reuse and compute performance"

    #: blocking factor assumed by the traffic model (fits a 1 MiB L2).
    BLOCK = 128

    def default_size(self) -> int:
        return 160  # 600 KiB working set: resident in every LLC

    def make_input(self, size: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(seed)
        return rng.random((size, size)), rng.random((size, size))

    def run(self, data: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        a, b = data
        n = a.shape[0]
        blk = min(self.BLOCK, n)
        c = np.zeros((n, n), dtype=a.dtype)
        # Blocked triple loop: realistic data reuse, vectorised inner product.
        for i0 in range(0, n, blk):
            for k0 in range(0, n, blk):
                ab = a[i0 : i0 + blk, k0 : k0 + blk]
                for j0 in range(0, n, blk):
                    c[i0 : i0 + blk, j0 : j0 + blk] += (
                        ab @ b[k0 : k0 + blk, j0 : j0 + blk]
                    )
        return c

    def reference(self, data: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        a, b = data
        return np.matmul(a, b)

    def verification_size(self) -> int:
        return 96

    def profile(self, size: int) -> OperationProfile:
        n = float(size)
        flops = 2.0 * n**3
        # Blocked traffic: each operand block is re-streamed N/BLOCK times.
        refills = max(1.0, n / self.BLOCK)
        dram = 8.0 * n * n * (2.0 * refills + 2.0)
        return OperationProfile(
            flops=flops,
            bytes_from_dram=dram,
            bytes_touched=8.0 * (2.0 * n**3 + n * n),
            # L1 register blocking (32x32 tiles) filters most reloads.
            bytes_cache_traffic=8.0 * n * n * (2.0 * n / 32.0 + 2.0),
            working_set_bytes=24.0 * n * n,
            mix=InstructionMix(
                {
                    OpClass.FP_FMA: n**3,
                    OpClass.LOAD: 2.0 * n**3 / 4.0,  # register blocking
                    OpClass.STORE: n * n,
                    OpClass.INT_ALU: 0.2 * n**3,
                    OpClass.BRANCH: n * n * refills,
                }
            ),
            pattern=AccessPattern.BLOCKED,
            characteristics=KernelCharacteristics(
                simd_fraction=0.85,
                parallel_fraction=0.995,
            ),
        )
