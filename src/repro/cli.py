"""Command-line interface: regenerate any artefact of the paper.

Usage::

    python -m repro table1            # platforms under evaluation
    python -m repro table2            # the kernel suite
    python -m repro table3            # the applications
    python -m repro table4            # bytes/FLOPS balance
    python -m repro fig1 ... fig7     # figure series (text + ASCII chart)
    python -m repro headline          # 97 GFLOPS / 51% / 120 MFLOPS/W
    python -m repro features          # Section 6.3 readiness matrix
    python -m repro stack             # Figure 8 software stack
    python -m repro energy            # the [13] energy-to-solution study
    python -m repro compare           # all paper-vs-measured claims
    python -m repro all               # everything above

Observability (see :mod:`repro.obs`)::

    python -m repro trace hpl                    # per-rank table + hash
    python -m repro trace pingpong --out pp.json # Chrome trace for Perfetto
    python -m repro trace imb --check --runs 3   # replay-determinism check

Fault tolerance (see :mod:`repro.fault`)::

    python -m repro faults                       # HPL-under-faults campaign
    python -m repro faults --shrink --mtbf-x 2 1 # shrink-to-survivors sweep

Performance benchmarks (see :mod:`repro.perf`)::

    python -m repro bench                        # writes BENCH_*.json
    python -m repro bench engine --check         # perf-regression gate
"""

from __future__ import annotations

import argparse
import sys

ARTEFACTS = (
    "table1", "table2", "table3", "table4",
    "fig1", "fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6", "fig7",
    "headline", "features", "stack", "energy", "green500", "compare",
)


def _print_header(title: str) -> None:
    print(f"\n{title}")
    print("=" * len(title))


def run_artefact(name: str, study=None) -> None:
    """Render one artefact to stdout."""
    from repro.analysis import (
        render_figure,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )
    from repro.core.study import MobileSoCStudy

    study = study or MobileSoCStudy()

    if name == "table1":
        _print_header("Table 1: platforms under evaluation")
        print(render_table1())
    elif name == "table2":
        _print_header("Table 2: micro-kernel suite")
        print(render_table2())
    elif name == "table3":
        _print_header("Table 3: applications")
        print(render_table3())
    elif name == "table4":
        _print_header("Table 4: network bytes/FLOPS")
        print(render_table4())
    elif name == "fig1":
        _print_header("Figure 1: TOP500 share")
        print(render_figure("figure1", study.figure1()))
    elif name == "fig2a":
        _print_header("Figure 2a: vector vs commodity trends")
        print(render_figure("figure2a", study.figure2a()))
    elif name == "fig2b":
        _print_header("Figure 2b: server vs mobile trends")
        print(render_figure("figure2b", study.figure2b()))
    elif name == "fig3":
        _print_header("Figure 3: single-core sweep")
        print(render_figure("figure3", study.figure3()))
    elif name == "fig4":
        _print_header("Figure 4: multi-core sweep")
        print(render_figure("figure4", study.figure4()))
    elif name == "fig5":
        _print_header("Figure 5: STREAM bandwidth (GB/s)")
        for plat, d in study.figure5().items():
            print(
                f"  {plat:14s} single triad {d['single']['Triad']:6.2f}  "
                f"multi {d['multi']['Triad']:6.2f}  "
                f"eff {d['efficiency_vs_peak']:.0%}"
            )
    elif name == "fig6":
        _print_header("Figure 6: application scalability")
        print(render_figure("figure6", study.figure6()))
    elif name == "fig7":
        _print_header("Figure 7: interconnect")
        print(render_figure("figure7", study.figure7()))
    elif name == "headline":
        _print_header("Headline: HPL on 96 Tibidabo nodes")
        for k, v in study.headline_hpl().items():
            print(f"  {k}: {v:.2f}")
    elif name == "features":
        _print_header("Section 6.3: HPC-readiness matrix")
        from repro.arch.catalog import PLATFORMS
        from repro.arch.features import Feature, readiness_matrix
        from repro.arch.servers import SERVER_PLATFORMS
        from repro.core.results import render_table

        matrix = readiness_matrix(
            list(PLATFORMS.values()) + list(SERVER_PLATFORMS.values())
        )
        headers = ["Platform"] + [f.name for f in Feature]
        rows = [
            [plat] + ["yes" if row[f.value] else "-" for f in Feature]
            for plat, row in matrix.items()
        ]
        print(render_table(headers, rows))
    elif name == "stack":
        _print_header("Figure 8: software stack")
        from repro.stack import figure8_layout

        for layer, comps in figure8_layout().items():
            print(f"  {layer:22s}: {', '.join(comps)}")
    elif name == "energy":
        _print_header("Energy-to-solution vs a Nehalem cluster [13]")
        from repro.core.energy_study import pde_solver_campaign

        for app, r in pde_solver_campaign().items():
            print(
                f"  {app:10s} time {r.time_ratio:4.1f}x slower, "
                f"energy {r.energy_ratio:4.1f}x lower"
            )
    elif name == "green500":
        _print_header("Green500 positioning")
        from repro.core.green500 import megaproto_claim, tibidabo_positioning

        mp_rank, mp_holds = megaproto_claim()
        print(f"  MegaProto @100 MFLOPS/W, Nov 2007: rank ~{mp_rank:.0f} "
              f"(claim 45-70: {'holds' if mp_holds else 'FAILS'})")
        tb = tibidabo_positioning(study.headline_hpl()['mflops_per_watt'])
        print(f"  Tibidabo @{tb['mflops_per_watt']:.0f} MFLOPS/W, June 2013: "
              f"rank ~{tb['estimated_rank']:.0f}, "
              f"{tb['gap_to_best']:.0f}x under #1")
    elif name == "compare":
        _print_header("Paper vs measured (all encoded claims)")
        from repro.analysis import build_comparisons, comparisons_markdown

        print(comparisons_markdown(build_comparisons(study)))
    else:
        raise SystemExit(f"unknown artefact {name!r}")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "trace":
        from repro.obs.cli import trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "faults":
        from repro.fault.cli import faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.perf.cli import bench_main

        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of the SC'13 mobile-SoC study.",
        epilog="For structured tracing/replay checks: python -m repro trace -h",
    )
    parser.add_argument(
        "artefacts",
        nargs="+",
        choices=ARTEFACTS + ("all",),
        help="which artefacts to regenerate",
    )
    args = parser.parse_args(argv)
    names = (
        list(ARTEFACTS)
        if "all" in args.artefacts
        else list(dict.fromkeys(args.artefacts))
    )
    from repro.core.study import MobileSoCStudy

    study = MobileSoCStudy()
    for name in names:
        run_artefact(name, study)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
