"""Command-line interface: regenerate any artefact of the paper.

Usage::

    python -m repro table1            # platforms under evaluation
    python -m repro table2            # the kernel suite
    python -m repro table3            # the applications
    python -m repro table4            # bytes/FLOPS balance
    python -m repro fig1 ... fig7     # figure series (text + ASCII chart)
    python -m repro headline          # 97 GFLOPS / 51% / 120 MFLOPS/W
    python -m repro features          # Section 6.3 readiness matrix
    python -m repro stack             # Figure 8 software stack
    python -m repro energy            # the [13] energy-to-solution study
    python -m repro compare           # all paper-vs-measured claims
    python -m repro all               # everything above
    python -m repro all --jobs 4      # ... sharded over 4 workers with
                                      #     the .repro-cache result cache

Observability (see :mod:`repro.obs`)::

    python -m repro trace hpl                    # per-rank table + hash
    python -m repro trace pingpong --out pp.json # Chrome trace for Perfetto
    python -m repro trace imb --check --runs 3   # replay-determinism check

Fault tolerance (see :mod:`repro.fault`)::

    python -m repro faults                       # HPL-under-faults campaign
    python -m repro faults --shrink --mtbf-x 2 1 # shrink-to-survivors sweep

Performance benchmarks (see :mod:`repro.perf`)::

    python -m repro bench                        # writes BENCH_*.json
    python -m repro bench engine --check         # perf-regression gate

Serving (see :mod:`repro.serve`)::

    python -m repro serve --port 7653 --jobs 4   # campaign query server
    python -m repro loadtest --port 7653 --quick # open-loop load generator
    python -m repro jobs --port 7653 submit --campaign quick  # durable job
    python -m repro cluster-serve --backends 2 --port 7660    # sharded tier
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ARTEFACTS = (
    "table1", "table2", "table3", "table4",
    "fig1", "fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6", "fig7",
    "headline", "features", "stack", "energy", "green500", "compare",
)

#: Artefact name -> key in a campaign-results dict (``run_all`` shape).
_RESULT_KEYS = {
    "table1": "table1", "table2": "table2", "table4": "table4",
    "fig1": "figure1", "fig2a": "figure2a", "fig2b": "figure2b",
    "fig3": "figure3", "fig4": "figure4", "fig5": "figure5",
    "fig6": "figure6", "fig7": "figure7", "headline": "headline_hpl",
}

#: Campaign-results keys written as JSON files by ``repro all --json-dir``
#: (the byte-identity oracle between serial and sharded runs).
_JSON_ARTEFACTS = {
    "figure3": "figure3.json",
    "figure4": "figure4.json",
    "figure6": "figure6.json",
    "headline_hpl": "headline.json",
}


def jobs_count(value: str) -> int:
    """Shared argparse type for every ``--jobs`` option (``repro all``,
    ``repro bench``, ``repro serve``, ``repro loadtest``): an integer
    worker count of at least 1.  One validator, one error message —
    pre-fix each subcommand rolled its own check (or forgot to)."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError("--jobs must be at least 1")
    return jobs


def _print_header(title: str) -> None:
    print(f"\n{title}")
    print("=" * len(title))


def run_artefact(name: str, study=None, results=None) -> None:
    """Render one artefact to stdout.

    ``results`` (a ``run_all``-shaped dict) supplies precomputed data —
    the sharded campaign path renders from its merged results instead of
    recomputing serially; artefacts without an entry fall back to the
    study methods.
    """
    from repro.analysis import (
        render_figure,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )
    from repro.core.study import MobileSoCStudy

    study = study or MobileSoCStudy()

    def data(fallback):
        """Precomputed campaign data for this artefact, else compute."""
        key = _RESULT_KEYS.get(name)
        if results is not None and key is not None and key in results:
            return results[key]
        return fallback()

    if name == "table1":
        _print_header("Table 1: platforms under evaluation")
        print(render_table1())
    elif name == "table2":
        _print_header("Table 2: micro-kernel suite")
        print(render_table2())
    elif name == "table3":
        _print_header("Table 3: applications")
        print(render_table3())
    elif name == "table4":
        _print_header("Table 4: network bytes/FLOPS")
        print(render_table4())
    elif name == "fig1":
        _print_header("Figure 1: TOP500 share")
        print(render_figure("figure1", data(study.figure1)))
    elif name == "fig2a":
        _print_header("Figure 2a: vector vs commodity trends")
        print(render_figure("figure2a", data(study.figure2a)))
    elif name == "fig2b":
        _print_header("Figure 2b: server vs mobile trends")
        print(render_figure("figure2b", data(study.figure2b)))
    elif name == "fig3":
        _print_header("Figure 3: single-core sweep")
        print(render_figure("figure3", data(study.figure3)))
    elif name == "fig4":
        _print_header("Figure 4: multi-core sweep")
        print(render_figure("figure4", data(study.figure4)))
    elif name == "fig5":
        _print_header("Figure 5: STREAM bandwidth (GB/s)")
        for plat, d in data(study.figure5).items():
            print(
                f"  {plat:14s} single triad {d['single']['Triad']:6.2f}  "
                f"multi {d['multi']['Triad']:6.2f}  "
                f"eff {d['efficiency_vs_peak']:.0%}"
            )
    elif name == "fig6":
        _print_header("Figure 6: application scalability")
        print(render_figure("figure6", data(study.figure6)))
    elif name == "fig7":
        _print_header("Figure 7: interconnect")
        print(render_figure("figure7", data(study.figure7)))
    elif name == "headline":
        _print_header("Headline: HPL on 96 Tibidabo nodes")
        for k, v in data(study.headline_hpl).items():
            print(f"  {k}: {v:.2f}")
    elif name == "features":
        _print_header("Section 6.3: HPC-readiness matrix")
        from repro.arch.catalog import PLATFORMS
        from repro.arch.features import Feature, readiness_matrix
        from repro.arch.servers import SERVER_PLATFORMS
        from repro.core.results import render_table

        matrix = readiness_matrix(
            list(PLATFORMS.values()) + list(SERVER_PLATFORMS.values())
        )
        headers = ["Platform"] + [f.name for f in Feature]
        rows = [
            [plat] + ["yes" if row[f.value] else "-" for f in Feature]
            for plat, row in matrix.items()
        ]
        print(render_table(headers, rows))
    elif name == "stack":
        _print_header("Figure 8: software stack")
        from repro.stack import figure8_layout

        for layer, comps in figure8_layout().items():
            print(f"  {layer:22s}: {', '.join(comps)}")
    elif name == "energy":
        _print_header("Energy-to-solution vs a Nehalem cluster [13]")
        from repro.core.energy_study import pde_solver_campaign

        for app, r in pde_solver_campaign().items():
            print(
                f"  {app:10s} time {r.time_ratio:4.1f}x slower, "
                f"energy {r.energy_ratio:4.1f}x lower"
            )
    elif name == "green500":
        _print_header("Green500 positioning")
        from repro.core.green500 import megaproto_claim, tibidabo_positioning

        mp_rank, mp_holds = megaproto_claim()
        print(f"  MegaProto @100 MFLOPS/W, Nov 2007: rank ~{mp_rank:.0f} "
              f"(claim 45-70: {'holds' if mp_holds else 'FAILS'})")
        tb = tibidabo_positioning(study.headline_hpl()['mflops_per_watt'])
        print(f"  Tibidabo @{tb['mflops_per_watt']:.0f} MFLOPS/W, June 2013: "
              f"rank ~{tb['estimated_rank']:.0f}, "
              f"{tb['gap_to_best']:.0f}x under #1")
    elif name == "compare":
        _print_header("Paper vs measured (all encoded claims)")
        from repro.analysis import build_comparisons, comparisons_markdown

        print(comparisons_markdown(build_comparisons(study)))
    else:
        raise SystemExit(f"unknown artefact {name!r}")


def write_campaign_json(json_dir: Path, results: dict) -> list[Path]:
    """Write the campaign's JSON oracle files (figures 3/4/6 and the
    headline) — byte-identical between serial and sharded runs."""
    json_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for key, fname in _JSON_ARTEFACTS.items():
        path = json_dir / fname
        path.write_text(
            json.dumps(results[key], indent=2, sort_keys=True) + "\n"
        )
        written.append(path)
    return written


def _artefacts_cmd(args: argparse.Namespace) -> int:
    """Handler for the artefact subcommands (``repro table1 fig3 ...``)."""
    requested = [args.artefact] + list(args.more)
    names = (
        list(ARTEFACTS)
        if "all" in requested
        else list(dict.fromkeys(requested))
    )
    from repro.core.study import MobileSoCStudy

    study = MobileSoCStudy()
    for name in names:
        run_artefact(name, study)
    return 0


def _all_cmd(args: argparse.Namespace) -> int:
    """Handler for ``repro all``: the full campaign, optionally sharded
    over ``--jobs`` workers with the persistent result cache."""
    from repro.core.study import MobileSoCStudy

    study = MobileSoCStudy()
    if args.jobs > 1:
        from repro.parallel.runner import run_campaign

        report = run_campaign(
            quick=args.quick,
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            study=study,
        )
        results = report.results
    else:
        report = None
        results = study.run_all(quick=args.quick)
    for name in ARTEFACTS:
        run_artefact(name, study, results)
    if args.json_dir is not None:
        for path in write_campaign_json(args.json_dir, results):
            print(f"wrote {path}")
    if report is not None:
        print()
        print(report.describe())
    return 0


def _load_trace_main(argv: list[str]) -> int:
    from repro.obs.cli import trace_main

    return trace_main(argv)


def _load_faults_main(argv: list[str]) -> int:
    from repro.fault.cli import faults_main

    return faults_main(argv)


def _load_bench_main(argv: list[str]) -> int:
    from repro.perf.cli import bench_main

    return bench_main(argv)


def _load_serve_main(argv: list[str]) -> int:
    from repro.serve.cli import serve_main

    return serve_main(argv)


def _load_loadtest_main(argv: list[str]) -> int:
    from repro.serve.cli import loadtest_main

    return loadtest_main(argv)


def _load_jobs_main(argv: list[str]) -> int:
    from repro.serve.jobs_cli import jobs_main

    return jobs_main(argv)


def _load_cluster_serve_main(argv: list[str]) -> int:
    from repro.serve.cluster import cluster_serve_main

    return cluster_serve_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """The top-level parser: one subcommand per artefact plus the
    ``all`` campaign and the trace/faults/bench tool CLIs."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of the SC'13 mobile-SoC study.",
        epilog="Each tool subcommand has its own options: "
        "'repro trace --help', 'repro faults --help', 'repro bench --help', "
        "'repro serve --help', 'repro loadtest --help'.",
    )
    sub = parser.add_subparsers(
        dest="command", metavar="command", required=True
    )

    all_p = sub.add_parser(
        "all",
        help="regenerate every artefact (the full campaign)",
        description="Run the whole campaign; --jobs shards it across a "
        "multiprocessing pool backed by the persistent result cache, "
        "with output byte-identical to the serial path.",
    )
    all_p.add_argument(
        "--jobs", type=jobs_count, default=1, metavar="N",
        help="worker processes (1 = today's serial path; default: 1)",
    )
    all_p.add_argument(
        "--quick", action="store_true",
        help="trim Figure 6 to the smoke-campaign node counts",
    )
    all_p.add_argument(
        "--json-dir", type=Path, default=None, metavar="DIR",
        help="write figure3/figure4/figure6/headline JSON files here",
    )
    all_p.add_argument(
        "--cache-dir", type=Path, default=Path(".repro-cache"), metavar="DIR",
        help="result-cache location for --jobs > 1 (default: .repro-cache)",
    )
    all_p.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache for this run",
    )
    all_p.set_defaults(handler=_all_cmd)

    for name, summary, tool_main in (
        ("trace", "structured tracing / replay checks (repro.obs)",
         _load_trace_main),
        ("faults", "fault-injection campaigns (repro.fault)",
         _load_faults_main),
        ("bench", "performance suites writing BENCH_*.json (repro.perf)",
         _load_bench_main),
        ("serve", "batched campaign-serving front end (repro.serve)",
         _load_serve_main),
        ("loadtest", "open-loop load generator for serve (repro.serve)",
         _load_loadtest_main),
        ("jobs", "durable campaign job tier client for serve (repro.serve)",
         _load_jobs_main),
        ("cluster-serve",
         "sharded serve cluster: router + N backends (repro.serve)",
         _load_cluster_serve_main),
    ):
        tool_p = sub.add_parser(
            name,
            help=summary,
            add_help=False,
            description=f"Delegates to the '{name}' tool's own parser; "
            f"run 'repro {name} --help' for its options.",
        )
        tool_p.add_argument("args", nargs="*")
        tool_p.set_defaults(handler=None, tool_main=tool_main)

    for name in ARTEFACTS:
        art_p = sub.add_parser(name, help=f"regenerate the {name} artefact")
        art_p.add_argument(
            "more",
            nargs="*",
            choices=ARTEFACTS + ("all", []),
            metavar="artefact",
            help="further artefacts to regenerate in the same run",
        )
        art_p.set_defaults(handler=_artefacts_cmd, artefact=name)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    parser = build_parser()
    # Tool subcommands own their whole tail (including flags the top
    # parser has never heard of), so parse leniently first and hand the
    # tail over verbatim — the top-level grammar owns only argv[0].
    args, extra = parser.parse_known_args(argv)
    if getattr(args, "tool_main", None) is not None:
        return args.tool_main(argv[1:])
    if extra:
        parser.error("unrecognized arguments: " + " ".join(extra))
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
