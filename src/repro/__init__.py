"""repro — reproduction of "Supercomputing with Commodity CPUs: Are
Mobile SoCs Ready for HPC?" (Rajovic et al., SC'13).

The package rebuilds the paper's entire evaluation as calibrated models
and simulators:

* :mod:`repro.arch` — the Table 1 platforms (Tegra 2/3, Exynos 5250,
  Core i7-2760QM) as parametric micro-architecture models,
* :mod:`repro.kernels` — the 11-kernel micro-benchmark suite (Table 2)
  plus STREAM, functionally real in NumPy,
* :mod:`repro.timing` — roofline timing and the Yokogawa power-meter
  measurement procedure (Figures 3-5),
* :mod:`repro.net` / :mod:`repro.mpi` / :mod:`repro.sim` — TCP/IP vs
  Open-MX protocol stacks, switches, and a discrete-event MPI simulator
  (Figure 7),
* :mod:`repro.cluster` — the Tibidabo prototype, cluster power,
  NFS/SLURM, and Section 6's reliability models,
* :mod:`repro.apps` — HPL, PEPC, HYDRO, GROMACS, SPECFEM3D (Figure 6),
* :mod:`repro.core` — TOP500 trends (Figures 1-2), metrics (Table 4)
  and the :class:`~repro.core.study.MobileSoCStudy` orchestrator,
* :mod:`repro.analysis` — text renderings and paper-vs-measured reports.

Quickstart::

    from repro import MobileSoCStudy
    study = MobileSoCStudy()
    print(study.headline_hpl())   # ~97 GFLOPS, ~51%, ~120 MFLOPS/W
"""

from repro.core.study import MobileSoCStudy
from repro.arch.catalog import PLATFORMS, get_platform
from repro.kernels.registry import KERNELS, get_kernel
from repro.cluster.cluster import tibidabo

__version__ = "1.0.0"

__all__ = [
    "MobileSoCStudy",
    "PLATFORMS",
    "get_platform",
    "KERNELS",
    "get_kernel",
    "tibidabo",
    "__version__",
]
