"""Crash-safe append-only journal for the job tier.

The write-ahead log behind :mod:`repro.serve.jobs`: every state change
a restarted server must not forget (a job submitted, a unit completed,
a job reaching a terminal state) is appended here *before* it is
acknowledged.  The design goals, in order:

1. **Never lose an acknowledged record.**  ``append`` writes one
   newline-terminated record and (by default) ``fsync``\\ s before
   returning.  Callers that can afford to lose a few records batch with
   ``flush=False`` and an explicit :meth:`flush` — the job tier sizes
   that batching with :class:`repro.fault.checkpoint.CheckpointPolicy`.
2. **Never crash on a corrupt log.**  A SIGKILL mid-append leaves a
   torn tail; a disk error can flip bits anywhere.  :meth:`replay`
   verifies a CRC-32 per record and, at the first bad record, truncates
   the file back to the last good byte and stops — the corrupt tail and
   everything after it is dropped deterministically (records behind a
   corrupt one cannot be trusted to be ordered against it).
3. **Bounded size.**  :meth:`rotate` writes a compacted snapshot to a
   sibling temp file, ``fsync``\\ s it, and atomically ``os.replace``\\ s
   the live segment (then ``fsync``\\ s the directory), so a crash
   during rotation leaves either the old or the new segment — never a
   half-written one.

Record format — one line per record::

    crc32(payload):08x SP payload LF

where ``payload`` is compact sorted-key JSON of the record dict plus a
``"seq"`` stamp.  The seq is monotonically increasing per journal and
lets :meth:`replay` drop duplicate records (a retried append after a
crash between write and ack can legitimately double-land).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

#: Default segment size that triggers compaction in the job tier.
DEFAULT_ROTATE_BYTES = 4 * 1024 * 1024

_SEGMENT = "jobs.wal"


class JobJournal:
    """One durable journal segment under ``root`` (see module docstring).

    :param root: directory holding the segment (created eagerly).
    :param fsync: ``False`` disables fsync entirely (tests only —
        batching callers want ``append(..., flush=False)`` instead).
    """

    def __init__(self, root: str | Path, fsync: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / _SEGMENT
        self.fsync = fsync
        self._seq = 0
        self._fh = open(self.path, "ab")
        self._dirty = False
        if self.path.stat().st_size:
            # Reopening a live segment: resume the seq counter past the
            # existing records, so appends before (or without) a replay
            # can never collide with surviving seqs — a collision would
            # make replay drop the *new* record as a duplicate.
            self.replay()

    # -- writing -----------------------------------------------------------
    def append(self, doc: dict[str, Any], flush: bool = True) -> int:
        """Append one record; returns its seq.  ``flush=False`` leaves
        the record in the OS buffer until :meth:`flush` (or a flushed
        append) makes it durable — a crash in between loses it, which
        is safe exactly when the record is re-derivable (a unit-done
        record is: the unit's value is already in the result cache)."""
        self._seq += 1
        payload = json.dumps(
            {**doc, "seq": self._seq}, sort_keys=True,
            separators=(",", ":"),
        ).encode()
        if b"\n" in payload:  # pragma: no cover - json never emits one
            raise ValueError("journal records must be single-line")
        record = b"%08x %s\n" % (zlib.crc32(payload), payload)
        self._fh.write(record)
        self._dirty = True
        if flush:
            self.flush()
        return self._seq

    def flush(self) -> None:
        """Make every appended record durable (flush + fsync)."""
        self._fh.flush()
        if self.fsync and self._dirty:
            os.fsync(self._fh.fileno())
        self._dirty = False

    @property
    def size_bytes(self) -> int:
        self._fh.flush()
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # -- replay ------------------------------------------------------------
    def replay(self) -> list[dict[str, Any]]:
        """Parse the segment; returns good records in append order.

        The first corrupt record (torn tail, bad checksum, bad JSON)
        truncates the file back to the last good byte — recover, never
        crash.  Duplicate seqs are dropped.  The internal seq counter
        resumes past the largest replayed seq, so post-replay appends
        never collide with surviving records.
        """
        self._fh.flush()
        try:
            data = self.path.read_bytes()
        except OSError:
            return []
        records: list[dict[str, Any]] = []
        seen: set[int] = set()
        good_end = 0
        offset = 0
        while offset < len(data):
            nl = data.find(b"\n", offset)
            if nl < 0:
                break  # torn tail: no newline ever made it to disk
            doc = self._decode(data[offset:nl])
            if doc is None:
                break  # checksum or parse failure: drop the tail
            offset = good_end = nl + 1
            seq = doc.get("seq")
            if not isinstance(seq, int) or seq in seen:
                continue  # duplicate (or alien) record: replay once
            seen.add(seq)
            records.append(doc)
        if good_end < len(data):
            self._truncate(good_end)
        self._seq = max(seen, default=0)
        return records

    @staticmethod
    def _decode(line: bytes) -> dict[str, Any] | None:
        if len(line) < 10 or line[8:9] != b" ":
            return None
        try:
            crc = int(line[:8], 16)
        except ValueError:
            return None
        payload = line[9:]
        if zlib.crc32(payload) != crc:
            return None
        try:
            doc = json.loads(payload)
        except json.JSONDecodeError:
            return None
        return doc if isinstance(doc, dict) else None

    def _truncate(self, size: int) -> None:
        self._fh.close()
        with open(self.path, "r+b") as fh:
            fh.truncate(size)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        self._fh = open(self.path, "ab")
        self._dirty = False

    # -- compaction --------------------------------------------------------
    def rotate(self, docs: list[dict[str, Any]]) -> None:
        """Atomically replace the segment with a compacted snapshot.

        ``docs`` is the minimal record set that reconstructs live
        state; they are re-stamped with fresh seqs 1..n.  The swap is
        write-new + fsync + ``os.replace`` + fsync(dir): a crash at any
        point leaves a fully valid segment (old or new).
        """
        tmp = self.path.with_suffix(".wal.new")
        with open(tmp, "wb") as fh:
            for i, doc in enumerate(docs, start=1):
                payload = json.dumps(
                    {**doc, "seq": i}, sort_keys=True,
                    separators=(",", ":"),
                ).encode()
                fh.write(b"%08x %s\n" % (zlib.crc32(payload), payload))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        if self.fsync:
            dir_fd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        self._fh = open(self.path, "ab")
        self._seq = len(docs)
        self._dirty = False

    def close(self) -> None:
        try:
            self.flush()
        finally:
            self._fh.close()
