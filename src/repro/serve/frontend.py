"""The transport-independent serving core: coalesce, batch, bound.

:class:`CampaignFrontEnd` accepts campaign queries expressed as the
existing work-unit coordinates (``kind`` + ``params`` from
:mod:`repro.parallel.units`) and resolves each one through a strict
funnel, cheapest mechanism first:

1. **single-flight** — an identical request already in flight shares
   its future; one computation serves every concurrent duplicate;
2. **result cache** — the content-addressed on-disk store answers
   anything any previous run (or process) already computed; a bounded
   in-memory LRU (``hot_values``) fronts it, so the hot set skips the
   disk read *and* hands the transport the same value object every
   time (which is what makes the binary wire's encode memo hit);
3. **micro-batch** — the distinct misses that remain are collected for
   ``batch_window_s`` (up to ``max_batch``) and executed as ONE
   :func:`repro.parallel.runner.run_units` call sharded over a bounded
   multiprocessing pool, in a worker thread so the event loop never
   blocks.

Admission control bounds the miss backlog: once ``queue_limit``
distinct computations are pending, further misses are rejected with
:class:`Overloaded` carrying a ``retry_after_s`` hint (the transport
maps this to a 429-style response).  Coalesced and cached requests are
*always* admitted — they cost no worker time, and rejecting them would
punish exactly the traffic the front end is best at.

Graceful shutdown: :meth:`CampaignFrontEnd.drain` stops admitting new
work, waits for every accepted request to resolve, then retires the
batcher — none dropped.  ``drain(timeout_s=...)`` bounds the wait: at
the deadline the remaining unresolved queries are failed with
:class:`Overloaded` (``reason="draining"``, with a retry hint) instead
of holding shutdown hostage to a slow batch — the durable job tier
(:mod:`repro.serve.jobs`) is where long work survives a restart, not
an unbounded drain.

Observability: when :mod:`repro.obs` is recording, batches emit
``serve.batch`` spans (wall-clock seconds since front-end start — a
live service has no simulated clock, so these traces are *not* part of
the deterministic-replay contract), queue depth lands on the
``serve.queue_depth`` counter, and the ``serve.hit`` /
``serve.coalesced`` / ``serve.computed`` / ``serve.rejected`` totals
mirror :class:`ServeStats`.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.obs.recorder import current as _obs_current
from repro.parallel.cache import DEFAULT_CACHE_DIR, MISS, ResultCache, unit_key
from repro.parallel.units import WorkUnit

#: The queryable work-unit kinds (the campaign decomposition's own).
UNIT_KINDS = ("sweep_base", "sweep_point", "fig6_point", "headline")

#: How a request was served.
SERVED_CACHE = "cache"
SERVED_COALESCED = "coalesced"
SERVED_COMPUTED = "computed"
SERVED_PEER = "peer"  # filled from the key's home shard's cache


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of ``values``."""
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class Overloaded(RuntimeError):
    """Admission control rejected the request (429-style).

    ``retry_after_s`` estimates when the backlog will have drained
    enough to admit a retry; ``reason`` is ``"overloaded"`` for a full
    queue and ``"draining"`` during graceful shutdown.
    """

    def __init__(self, retry_after_s: float, reason: str = "overloaded") -> None:
        super().__init__(
            f"{reason}: retry after {retry_after_s:.3f} s"
        )
        self.retry_after_s = retry_after_s
        self.reason = reason


@dataclass
class ServeConfig:
    """Tunables for one front end."""

    jobs: int = 2                  #: pool workers per batch execution
    batch_window_s: float = 0.01   #: micro-batch collection window
    max_batch: int = 32            #: distinct misses per batch
    queue_limit: int = 256        #: pending distinct computations bound
    cache_dir: Path | None = DEFAULT_CACHE_DIR  #: None = no cache
    cache_max_bytes: int | None = None  #: None = ResultCache default
    seed: int = 0                  #: study seed baked into cache keys
    #: In-memory LRU fronting the disk cache (entries; 0 disables).
    #: Sound because cached values are immutable per (kind, params,
    #: seed) — the memory front can never go stale.
    hot_values: int = 4096

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.hot_values < 0:
            raise ValueError("hot_values must be non-negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")


@dataclass
class ServeStats:
    """Request accounting for one front end's lifetime."""

    accepted: int = 0      #: requests admitted (every served request)
    rejected: int = 0      #: requests refused by admission control
    cache_hits: int = 0    #: served straight from the result cache
    hot_hits: int = 0      #: cache_hits answered by the in-memory LRU
    coalesced: int = 0     #: shared an identical in-flight computation
    peer_fills: int = 0    #: filled from the key's home shard's cache
    peer_serves: int = 0   #: probe hits answered TO peers (home-shard side)
    computed: int = 0      #: required fresh work-unit execution
    failed: int = 0        #: admitted but failed in execution
    direct: int = 0        #: queries tagged via="direct" by a ring client
    batches: int = 0       #: run_units calls issued
    batched_units: int = 0  #: distinct units across all batches
    latencies_s: list[float] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Fraction of admitted requests served without fresh work —
        the coalesce+cache(+peer) ratio the acceptance gate reads."""
        if not self.accepted:
            return 0.0
        return (
            self.cache_hits + self.coalesced + self.peer_fills
        ) / self.accepted

    @property
    def mean_batch_size(self) -> float:
        return self.batched_units / self.batches if self.batches else 0.0

    def record_latency(self, seconds: float) -> None:
        # Bounded: a long-lived server must not grow without limit.
        if len(self.latencies_s) < 1_000_000:
            self.latencies_s.append(seconds)

    def snapshot(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "hot_hits": self.hot_hits,
            "coalesced": self.coalesced,
            "peer_fills": self.peer_fills,
            "peer_serves": self.peer_serves,
            "computed": self.computed,
            "failed": self.failed,
            "direct": self.direct,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "hit_ratio": self.hit_ratio,
        }
        if self.latencies_s:
            doc["p50_latency_s"] = percentile(self.latencies_s, 0.50)
            doc["p99_latency_s"] = percentile(self.latencies_s, 0.99)
        return doc


@dataclass
class _Pending:
    """One distinct in-flight computation."""

    key: tuple[str, str]
    unit: WorkUnit
    future: asyncio.Future


class CampaignFrontEnd:
    """See the module docstring.  Lifecycle::

        fe = CampaignFrontEnd(ServeConfig(jobs=4))
        await fe.start()
        value, served = await fe.submit("sweep_point", {...})
        ...
        await fe.drain()   # graceful: resolves everything accepted

    ``runner`` (tests, benchmarks) replaces the default
    ``run_units``-over-a-pool execution with any callable
    ``list[WorkUnit] -> list[value]``; it runs in a worker thread.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        runner: Callable[[list[WorkUnit]], list[Any]] | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self._runner = runner
        cfg = self.config
        cache_kw: dict[str, Any] = {}
        if cfg.cache_max_bytes is not None:
            cache_kw["max_bytes"] = cfg.cache_max_bytes
        # Two cache handles on the same directory: the probe cache is
        # touched only from the event-loop thread, the batch cache only
        # from the single executor thread — no shared mutable state.
        self._probe_cache = (
            ResultCache(cfg.cache_dir, **cache_kw)
            if cfg.cache_dir is not None else None
        )
        self._batch_cache = (
            ResultCache(cfg.cache_dir, **cache_kw)
            if cfg.cache_dir is not None else None
        )
        self._hot_values: OrderedDict[tuple[str, str], Any] | None = (
            OrderedDict()
            if cfg.cache_dir is not None and cfg.hot_values > 0 else None
        )
        self._pool = None  # persistent worker pool; created in start()
        #: Optional cluster hook (duck-typed; see repro.serve.router's
        #: CachePeerFill): ``await peer_fill.probe(kind, params)``
        #: returns a cached value from the key's home shard or MISS.
        #: Strictly an optimisation — any failure must surface as MISS.
        self.peer_fill = None
        self._inflight: dict[tuple[str, str], _Pending] = {}
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._pending_units = 0  # queued + executing distinct units
        self._draining = False
        self._batcher_task: asyncio.Task | None = None
        # One executor thread: batches execute strictly one at a time —
        # the bounded worker pool is the multiprocessing pool *inside*
        # each run_units call, not a fan-out of concurrent batches.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._t0 = time.perf_counter()
        # Wall throughput of recent batches, for the retry-after hint.
        self._last_batch_rate: float = 0.0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        if self._runner is None and self.config.jobs > 1 and self._pool is None:
            # Pre-fork the worker pool NOW, while the process is still
            # single-threaded.  Batches execute from an executor thread,
            # and forking a pool from there can hand workers a lock the
            # event-loop thread held at fork time — a worker deadlocked
            # before its first task, and a batch that never returns.
            from repro.parallel.runner import _pool_context

            self._pool = _pool_context().Pool(self.config.jobs)
        if self._batcher_task is None:
            self._batcher_task = asyncio.get_running_loop().create_task(
                self._batcher()
            )

    async def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: admit nothing new, resolve everything
        accepted (none dropped), then retire the batcher thread.

        ``timeout_s`` bounds the wait.  At the deadline every still-
        unresolved query future is failed with :class:`Overloaded`
        (``reason="draining"`` plus a retry hint) and worker teardown
        switches to non-blocking — the returned ``False`` tells the
        caller the drain was cut short.  Pre-fix, a single wedged batch
        blocked shutdown indefinitely.
        """
        self._draining = True
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        drained = True
        while self._inflight:
            futures = [p.future for p in self._inflight.values()]
            if deadline is None:
                await asyncio.gather(*futures, return_exceptions=True)
                continue
            remaining = deadline - time.monotonic()
            if remaining > 0:
                done, pending = await asyncio.wait(
                    futures, timeout=remaining
                )
            else:
                pending = [f for f in futures if not f.done()]
            if pending:
                self._abort_pending()
                drained = False
                break
        if self._batcher_task is not None:
            self._batcher_task.cancel()
            try:
                await self._batcher_task
            except asyncio.CancelledError:
                pass
            self._batcher_task = None
        self._executor.shutdown(wait=drained)
        if self._pool is not None:
            if drained:
                self._pool.close()
            else:
                # A batch may still be wedged inside the pool; close()
                # would wait on it via join below.
                self._pool.terminate()
            self._pool.join()
            self._pool = None
        return drained

    def _abort_pending(self) -> None:
        """Timed-out drain: fail every unresolved query future with a
        retryable :class:`Overloaded` so waiters are released *now*.
        Entries still queued (never dispatched) also release their
        pending-unit slots; the executing batch's ``finally`` block
        releases its own when the worker eventually returns."""
        exc = Overloaded(self._retry_after(), reason="draining")
        while True:
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._inflight.pop(entry.key, None)
            self._pending_units -= 1
            if not entry.future.done():
                entry.future.set_exception(exc)
        for entry in list(self._inflight.values()):
            # Executing right now: release the waiter, keep the
            # bookkeeping for the batch's own cleanup path.
            if not entry.future.done():
                entry.future.set_exception(exc)
            self._inflight.pop(entry.key, None)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Distinct computations pending (queued or executing)."""
        return self._pending_units

    def _clock(self) -> float:
        return time.perf_counter() - self._t0

    # -- the funnel --------------------------------------------------------
    async def submit(self, kind: str, params: dict[str, Any]) -> tuple[Any, str]:
        """Resolve one campaign query; returns ``(value, served_by)``.

        Raises :class:`Overloaded` when admission control refuses the
        request and ``ValueError`` for an unknown unit kind.
        """
        if kind not in UNIT_KINDS:
            raise ValueError(
                f"unknown work-unit kind {kind!r} "
                f"(one of: {', '.join(UNIT_KINDS)})"
            )
        t_in = time.perf_counter()
        key = (kind, json.dumps(params, sort_keys=True))
        rec = _obs_current()

        pending = self._inflight.get(key)
        if pending is not None:
            # Single-flight: ride the computation already in the air.
            self.stats.accepted += 1
            self.stats.coalesced += 1
            if rec is not None:
                rec.bump("serve.coalesced")
            try:
                value = await asyncio.shield(pending.future)
            except Exception:
                self.stats.failed += 1
                raise
            self.stats.record_latency(time.perf_counter() - t_in)
            return value, SERVED_COALESCED

        hot = self._hot_values
        if hot is not None:
            value = hot.get(key, MISS)
            if value is not MISS:
                hot.move_to_end(key)
                self.stats.accepted += 1
                self.stats.cache_hits += 1
                self.stats.hot_hits += 1
                if rec is not None:
                    rec.bump("serve.hit")
                self.stats.record_latency(time.perf_counter() - t_in)
                return value, SERVED_CACHE

        if self._probe_cache is not None:
            hit = self._probe_cache.get(unit_key(kind, params, self.config.seed))
            if hit is not MISS:
                self._remember(key, hit)
                self.stats.accepted += 1
                self.stats.cache_hits += 1
                if rec is not None:
                    rec.bump("serve.hit")
                self.stats.record_latency(time.perf_counter() - t_in)
                return hit, SERVED_CACHE

        if self.peer_fill is not None and self._probe_cache is not None:
            # Cluster peer-fill: before paying for a computation, ask
            # the key's home shard whether it already holds the value.
            # A hit is written through to the local cache (so the next
            # request is a plain local hit) and served without worker
            # time — which is also why it skips admission control, like
            # the cache path above.
            value = await self.peer_fill.probe(kind, params)
            if value is not MISS:
                self._probe_cache.put(
                    unit_key(kind, params, self.config.seed), value, kind=kind
                )
                self._remember(key, value)
                self.stats.accepted += 1
                self.stats.peer_fills += 1
                if rec is not None:
                    rec.bump("serve.peer_fill")
                self.stats.record_latency(time.perf_counter() - t_in)
                return value, SERVED_PEER

        # A genuine miss needs worker time: admission control applies.
        if self._draining:
            self.stats.rejected += 1
            if rec is not None:
                rec.bump("serve.rejected")
            raise Overloaded(self._retry_after(), reason="draining")
        if self._pending_units >= self.config.queue_limit:
            self.stats.rejected += 1
            if rec is not None:
                rec.bump("serve.rejected")
            raise Overloaded(self._retry_after())

        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        # Always consume the exception: a waiter that disconnects must
        # not leave an "exception was never retrieved" warning behind.
        fut.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        entry = _Pending(key, WorkUnit(kind, dict(params)), fut)
        self._inflight[key] = entry
        self._pending_units += 1
        self._queue.put_nowait(entry)
        self.stats.accepted += 1
        try:
            value = await asyncio.shield(fut)
        except Exception:
            self.stats.failed += 1
            raise
        self._remember(key, value)
        self.stats.computed += 1
        if rec is not None:
            rec.bump("serve.computed")
        self.stats.record_latency(time.perf_counter() - t_in)
        return value, SERVED_COMPUTED

    def _remember(self, key: tuple[str, str], value: Any) -> None:
        """Front ``value`` in the hot-value LRU (no-op when disabled).

        The stored object is returned as-is on later hits, so the
        transport sees one stable object identity per hot key — the
        property the wire-level encode memo keys on.
        """
        hot = self._hot_values
        if hot is None:
            return
        hot[key] = value
        hot.move_to_end(key)
        if len(hot) > self.config.hot_values:
            hot.popitem(last=False)

    def cache_peek(self, kind: str, params: dict[str, Any]) -> Any:
        """Local-cache-only read for the cluster ``probe`` op: the
        cached value or :data:`MISS`.  Never computes, never coalesces,
        never consults ``peer_fill`` — the home shard answering a
        peer's probe with another probe would recurse across the ring.
        """
        if kind not in UNIT_KINDS:
            raise ValueError(
                f"unknown work-unit kind {kind!r} "
                f"(one of: {', '.join(UNIT_KINDS)})"
            )
        if self._probe_cache is None:
            return MISS
        value = self._probe_cache.get(unit_key(kind, params, self.config.seed))
        if value is not MISS:
            self.stats.peer_serves += 1
            rec = _obs_current()
            if rec is not None:
                rec.bump("serve.peer_serve")
        return value

    def _retry_after(self) -> float:
        """A drain-time estimate for the 429 hint: the current backlog
        over the recently observed batch throughput, floored at one
        batch window.

        Before any batch has completed there is no observed throughput;
        pre-fix the hint degenerated to the bare floor no matter how
        deep the backlog was, telling a client to hammer a cold server
        that provably could not have drained yet.  The fallback assumes
        one ``batch_window_s`` per ``max_batch``-sized batch, so the
        hint still scales with the backlog.
        """
        floor = max(self.config.batch_window_s, 0.01)
        if self._last_batch_rate <= 0:
            batches = math.ceil(
                max(self._pending_units, 1) / self.config.max_batch
            )
            return batches * floor
        return max(floor, self._pending_units / self._last_batch_rate)

    # -- batching ----------------------------------------------------------
    async def _batcher(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.config.batch_window_s
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            await self._execute(batch)

    async def _execute(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        rec = _obs_current()
        t0 = self._clock()
        if rec is not None:
            rec.counter("serve.queue_depth", t0, self._pending_units)
        units = [entry.unit for entry in batch]
        try:
            values = await loop.run_in_executor(
                self._executor, self._run_batch, units
            )
            if len(values) != len(units):
                raise RuntimeError(
                    f"runner returned {len(values)} values for "
                    f"{len(units)} units"
                )
        except Exception as exc:
            for entry in batch:
                self._inflight.pop(entry.key, None)
                if not entry.future.done():
                    entry.future.set_exception(exc)
        else:
            for entry, value in zip(batch, values):
                self._inflight.pop(entry.key, None)
                if not entry.future.done():
                    entry.future.set_result(value)
        finally:
            self._pending_units -= len(batch)
            t1 = self._clock()
            self.stats.batches += 1
            self.stats.batched_units += len(batch)
            if t1 > t0:
                self._last_batch_rate = len(batch) / (t1 - t0)
            if rec is not None:
                rec.span("serve.batch", "serve", t0, t1, batch=len(batch))
                rec.bump("serve.batches")

    def _run_batch(self, units: list[WorkUnit]) -> list[Any]:
        """Executor-thread entry: the injected runner, or the real
        sharded execution.  Either way results are written through to
        the cache — the hit-path contract must not depend on which
        runner computed the value."""
        if self._runner is not None:
            values = self._runner(units)
            if self._batch_cache is not None:
                for unit, value in zip(units, values):
                    self._batch_cache.put(
                        unit_key(unit.kind, unit.params, self.config.seed),
                        value,
                        kind=unit.kind,
                    )
            return values
        from repro.parallel.runner import run_units

        return run_units(
            units,
            jobs=self.config.jobs,
            cache=self._batch_cache,
            seed=self.config.seed,
            pool=self._pool,
        )

    # -- job-tier execution ------------------------------------------------
    async def execute_units(
        self, units: list[WorkUnit], seed: int | None = None
    ) -> list[Any]:
        """Run a job-tier unit batch on the serve executor thread.

        Job batches and query micro-batches share the ONE executor
        thread (and its pre-forked pool), so they serialise instead of
        fighting over workers, and the fork-safety invariant from
        :meth:`start` keeps holding.  Failures come back as
        :class:`~repro.parallel.runner.UnitFailure` slots (``safe``
        execution) — the job tier retries or quarantines per unit;
        completed values are written through to the cache, which is
        exactly what makes unit completion a restart checkpoint.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._run_job_units, units,
            self.config.seed if seed is None else seed,
        )

    def _run_job_units(self, units: list[WorkUnit], seed: int) -> list[Any]:
        from repro.parallel.runner import UnitFailure, run_units

        if self._runner is not None:
            try:
                values = self._runner(units)
            except Exception as exc:  # noqa: BLE001 - containment
                return [
                    UnitFailure(f"{type(exc).__name__}: {exc}")
                    for _ in units
                ]
            if self._batch_cache is not None:
                for unit, value in zip(units, values):
                    if not isinstance(value, UnitFailure):
                        self._batch_cache.put(
                            unit_key(unit.kind, unit.params, seed),
                            value,
                            kind=unit.kind,
                        )
            return values
        return run_units(
            units,
            jobs=self.config.jobs,
            cache=self._batch_cache,
            seed=seed,
            pool=self._pool,
            safe=True,
        )
