"""Batched campaign-serving front end (``repro serve``).

The ROADMAP north star is a system that serves heavy traffic, and the
traffic against this reproduction is overwhelmingly *repeated* requests
for the same operating points — the same Figure 3/4 ``(mode, platform,
freq)`` grid cells and Figure 6 ``(app, nodes)`` points, re-requested
across report builds, CI runs and notebook sessions (the evaluation-
service pattern of the later ARM-HPC studies).  That workload shape
makes three mechanisms do almost all the work:

* **single-flight coalescing** — identical in-flight requests share one
  computation (:class:`~repro.serve.frontend.CampaignFrontEnd`);
* **cache-backed serving** — anything the content-addressed
  :class:`~repro.parallel.cache.ResultCache` already holds is returned
  without touching a worker;
* **micro-batched sharding** — the distinct misses that remain are
  collected for a few milliseconds and executed as one
  :func:`repro.parallel.runner.run_units` call over a bounded
  multiprocessing pool.

Around them sit admission control (a bounded pending queue; excess
load is rejected 429-style with a ``retry_after_s`` hint), graceful
shutdown (drain every accepted request, then exit), and observability
(queue depth / batch size / hit ratio / latency through
:mod:`repro.obs`).  ``repro loadtest`` (:mod:`repro.serve.loadtest`)
is the matching open-loop load generator, and the ``serve`` perf suite
records throughput and tail latency cold vs warm in
``BENCH_serve.json``.

For work that outlives a request — whole figure campaigns, batch
sweeps — the **durable job tier** (:mod:`~repro.serve.jobs`) accepts
``submit``/``status``/``result``/``cancel`` ops backed by a crash-safe
write-ahead journal (:mod:`~repro.serve.journal`): jobs survive a
SIGKILL, resume from the result cache on restart (unit completion is
the checkpoint), are dispatched fairly across tenants under per-tenant
quotas, and retry-then-quarantine failing units.  ``repro jobs``
(:mod:`~repro.serve.jobs_cli`) is the matching client.

Horizontal scale comes from the **cluster tier**
(:mod:`~repro.serve.router`): ``repro cluster-serve`` boots N backend
serve processes plus a :class:`~repro.serve.router.ServeRouter` front
door that consistent-hashes every query's ``(kind, params)`` key to its
home shard, so each backend's cache and single-flight table see only
their slice of the hot set.  Backends cross-fill from each other's
caches via the compute-free ``probe`` op
(:class:`~repro.serve.router.CachePeerFill`), and cluster shutdown
drains router-then-backends in boot order.  The protocol through the
router is byte-identical to a single backend's.

The router proxies by default, but it is a single process and caps
cluster throughput; the **redirect protocol** takes it off the data
path.  A ``locate`` op returns the full topology plus a deterministic
**topology epoch** (:func:`~repro.serve.router.topology_epoch`), and a
:class:`~repro.serve.client.RingClient` then routes every query to its
home shard itself with the very same ring, falling back to the router
(and re-learning the topology) only on failure.  ``repro loadtest
--direct`` drives this path; ``serve.cluster4_direct`` in
``BENCH_serve.json`` records the scaling it buys.

Layering: :mod:`~repro.serve.frontend` is transport-independent pure
asyncio; :mod:`~repro.serve.jobs` adds the durable queue on top of the
front end's executor; :mod:`~repro.serve.server` puts a JSON-lines TCP
protocol in front of both; :mod:`~repro.serve.router` shards that
protocol across backends; :mod:`~repro.serve.cli` is the
``repro serve`` / ``repro loadtest`` argument surface,
:mod:`~repro.serve.cluster` the ``repro cluster-serve`` one and
:mod:`~repro.serve.jobs_cli` the ``repro jobs`` one.
"""

from repro.serve.client import RingClient, request_once
from repro.serve.frontend import (
    CampaignFrontEnd,
    Overloaded,
    ServeConfig,
    ServeStats,
    percentile,
)
from repro.serve.jobs import Job, JobManager, JobsConfig
from repro.serve.journal import JobJournal
from repro.serve.router import (
    CachePeerFill,
    HashRing,
    ServeRouter,
    route_key,
    topology_epoch,
)

__all__ = [
    "CachePeerFill",
    "CampaignFrontEnd",
    "HashRing",
    "Job",
    "JobJournal",
    "JobManager",
    "JobsConfig",
    "Overloaded",
    "RingClient",
    "ServeConfig",
    "ServeRouter",
    "ServeStats",
    "percentile",
    "request_once",
    "route_key",
    "topology_epoch",
]
