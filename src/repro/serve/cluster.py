"""``repro cluster-serve`` — boot a sharded serve cluster.

Usage::

    python -m repro cluster-serve --backends 2 --port 7660 --jobs 1

One command brings up N backend ``repro serve`` processes (each a
cluster shard with its own cache directory and a peer map for cache
peer-fill) plus the in-process :class:`~repro.serve.router.ServeRouter`
front door.  Readiness is one flushed line naming every address::

    repro cluster-serve: listening on 127.0.0.1:7660 \
        (backends: b0=127.0.0.1:34001 b1=127.0.0.1:34002) \
        (epoch: 3f2a9c41d07b)

CI and scripts wait for it, point ``repro loadtest`` at the router
port, and (for peer-fill tests) talk to the backend ports directly.
The trailing ``epoch`` is the cluster's topology version (see
:func:`~repro.serve.router.topology_epoch`) — ring-aware clients
learn it via the ``locate`` op and use it to detect stale rings.
A ``shutdown`` op at the router — or SIGINT/SIGTERM — drains the whole
cluster: the router stops admitting and empties its in-flight
forwards, then each backend drains in boot order, and the final
``drained and stopped`` line confirms none of it was dropped.

Backends run ``--no-jobs``: the durable job tier journals against one
process's journal directory, and sharding jobs across the ring (or
electing a job home with failover) is out of scope for this tier — the
router forwards job ops to the first backend, whose tier is disabled,
so clients get a clean ``bad_request`` instead of half a cluster's
answer.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

from repro.cli import jobs_count
from repro.parallel.cache import DEFAULT_CACHE_DIR
from repro.serve.router import ServeRouter, advertised_host

#: Seconds to wait for one backend's readiness line before declaring
#: the boot failed.
BACKEND_BOOT_TIMEOUT_S = 30.0

#: Seconds to wait for one backend to exit after the drain before
#: escalating to terminate().
BACKEND_EXIT_TIMEOUT_S = 30.0


def free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port that was free a moment ago.

    Backends need their peer map at boot, and the peer map needs every
    backend's port — pre-picking ports breaks that chicken-and-egg.
    The tiny reuse race is acceptable for a dev/CI cluster; a backend
    that loses it fails to bind and the boot aborts loudly.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class _Backend:
    """One backend subprocess plus its stdout pump."""

    def __init__(self, name: str, host: str, port: int, argv: list[str]) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.argv = argv
        self.proc: subprocess.Popen | None = None
        self.ready = threading.Event()
        self._pump: threading.Thread | None = None

    def start(self) -> None:
        self.proc = subprocess.Popen(
            self.argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self._pump = threading.Thread(
            target=self._pump_stdout, name=f"pump-{self.name}", daemon=True
        )
        self._pump.start()

    def _pump_stdout(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        for line in self.proc.stdout:
            if "listening on" in line:
                self.ready.set()
            # Prefixed passthrough: backend logs stay attributable.
            sys.stdout.write(f"[{self.name}] {line}")
            sys.stdout.flush()
        self.ready.set()  # EOF: stop any waiter, ready or not

    def wait_ready(self, timeout_s: float) -> bool:
        ok = self.ready.wait(timeout_s)
        return ok and self.proc is not None and self.proc.poll() is None

    def stop(self, timeout_s: float) -> bool:
        """Await a (presumably drained) exit; escalate to terminate."""
        if self.proc is None:
            return True
        try:
            self.proc.wait(timeout_s)
            return True
        except subprocess.TimeoutExpired:
            self.proc.terminate()
            with contextlib.suppress(subprocess.TimeoutExpired):
                self.proc.wait(5.0)
            if self.proc.poll() is None:
                self.proc.kill()
                self.proc.wait()
            return False


def cluster_serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cluster-serve",
        description="Boot a sharded serve cluster: N backend processes "
        "plus a consistent-hashing router front door.",
    )
    parser.add_argument(
        "--backends", type=int, default=2, metavar="N",
        help="backend serve processes (default: 2)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for router and backends (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="router port (default: 0 = ephemeral, printed on the "
        "'listening on' line); backends always take ephemeral ports",
    )
    parser.add_argument(
        "--jobs", type=jobs_count, default=1,
        help="worker processes per backend batch execution (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=DEFAULT_CACHE_DIR, metavar="DIR",
        help="base cache directory; each backend shards into "
        "DIR/<name> (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="study seed baked into cache keys (default: 0)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=256, metavar="N",
        help="per-backend pending-computation bound (default: 256)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=None, metavar="S",
        help="bound each backend's shutdown drain (default: unbounded)",
    )
    parser.add_argument(
        "--wire", choices=("auto", "json", "binary"), default="auto",
        help="'auto' (default): router and backends accept binary1 "
        "negotiation, backend links stay JSON unless asked; 'binary': "
        "the router also negotiates binary1 on its backend links; "
        "'json': JSON-lines only, cluster-wide",
    )
    parser.add_argument(
        "--advertise-host", default=None, metavar="HOST",
        help="address the peer map and locate/redirect answers carry "
        "(default: the bind address, or this machine's primary "
        "address when binding a wildcard)",
    )
    args = parser.parse_args(argv)
    if args.backends < 1:
        parser.error("--backends must be at least 1")

    # The peer map travels to every backend and back out to ring
    # clients via locate — it must carry a connectable address even
    # when the bind host is a wildcard.
    adv = advertised_host(args.host, args.advertise_host)
    names = [f"b{i}" for i in range(args.backends)]
    ports = [free_port(args.host) for _ in names]
    peers_spec = ",".join(
        f"{name}={adv}:{port}" for name, port in zip(names, ports)
    )
    backends: list[_Backend] = []
    for name, port in zip(names, ports):
        backend_argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", args.host,
            "--port", str(port),
            "--name", name,
            "--peers", peers_spec,
            "--jobs", str(args.jobs),
            "--queue-limit", str(args.queue_limit),
            "--cache-dir", str(args.cache_dir / name),
            "--seed", str(args.seed),
            "--no-jobs",
            "--advertise-host", adv,
        ]
        if args.wire == "json":
            backend_argv += ["--wire", "json"]
        if args.drain_timeout is not None:
            backend_argv += ["--drain-timeout", str(args.drain_timeout)]
        backends.append(_Backend(name, adv, port, backend_argv))

    for backend in backends:
        backend.start()
    for backend in backends:
        if not backend.wait_ready(BACKEND_BOOT_TIMEOUT_S):
            print(
                f"repro cluster-serve: backend {backend.name} failed to "
                "come up; aborting boot",
                file=sys.stderr, flush=True,
            )
            for b in backends:
                if b.proc is not None and b.proc.poll() is None:
                    b.proc.terminate()
            for b in backends:
                b.stop(5.0)
            return 1

    try:
        return asyncio.run(_run_router(args, backends))
    finally:
        # Belt and braces: no backend outlives the router.
        for backend in backends:
            if backend.proc is not None and backend.proc.poll() is None:
                backend.proc.terminate()
            backend.stop(5.0)


async def _run_router(
    args: argparse.Namespace, backends: list[_Backend]
) -> int:
    router = ServeRouter(
        [(b.name, b.host, b.port) for b in backends],
        host=args.host,
        port=args.port,
        binary_wire=args.wire != "json",
        backend_wire="binary" if args.wire == "binary" else "json",
        advertise_host=args.advertise_host,
    )
    await router.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, router.request_shutdown)
    addresses = " ".join(f"{b.name}={b.host}:{b.port}" for b in backends)
    print(
        f"repro cluster-serve: listening on {router.host}:{router.port} "
        f"(backends: {addresses}) (epoch: {router.epoch})",
        flush=True,
    )
    # serve_until_shutdown sends each backend the shutdown op in boot
    # order; the subprocess exit waits below confirm the drains landed.
    await router.serve_until_shutdown()
    clean = True
    for backend in backends:
        clean = backend.stop(BACKEND_EXIT_TIMEOUT_S) and clean
    print(
        "repro cluster-serve: drained and stopped — "
        f"{router.forwarded} forwarded, {router.unavailable} unavailable, "
        f"{router.rejected_draining} rejected while draining, "
        f"backends {'all exited cleanly' if clean else 'NEEDED TERMINATE'}",
        flush=True,
    )
    return 0 if clean else 1
