"""``repro loadtest`` — seeded open-loop load generator for ``repro serve``.

Open-loop means arrivals are scheduled by a Poisson process at the
requested rate regardless of how fast responses come back — the
arrival schedule never adapts to server latency, so the generator
measures the server rather than its own politeness (closed-loop
clients understate tail latency under load).

The workload is deliberately duplicate-heavy, because that is the shape
of real traffic against a reproduction service: ``hot_fraction`` of
requests (default 0.9) draw from a small hot set of operating points,
the rest from the full quick-campaign sweep grid.  Everything is
derived from the seed, so a loadtest run is reproducible
request-for-request.

Each connection drives its share of the workload with id-matched
responses — the server handles queries concurrently per connection, so
duplicates in flight genuinely exercise single-flight coalescing.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any

from repro.serve.frontend import percentile

#: How long the generator keeps retrying the initial connect (CI boots
#: the server as a sibling process and races it to the port).
CONNECT_RETRIES = 100
CONNECT_DELAY_S = 0.1


def build_workload(
    n_requests: int,
    seed: int = 0,
    hot_fraction: float = 0.9,
    hot_set_size: int = 5,
) -> list[tuple[str, dict[str, Any]]]:
    """A seeded, duplicate-heavy request sequence over the sweep
    operating points (sweep_base + every (mode, platform, freq) cell)."""
    from repro.core.study import MobileSoCStudy

    study = MobileSoCStudy()
    distinct: list[tuple[str, dict[str, Any]]] = [("sweep_base", {})]
    for mode in ("single", "multi"):
        for name, platform in study.platforms.items():
            for freq in platform.soc.dvfs.frequencies():
                distinct.append(
                    ("sweep_point",
                     {"mode": mode, "platform": name, "freq": freq})
                )
    rng = random.Random(seed)
    hot = distinct[: max(1, min(hot_set_size, len(distinct)))]
    workload = []
    for _ in range(n_requests):
        pool = hot if rng.random() < hot_fraction else distinct
        workload.append(rng.choice(pool))
    return workload


async def _connect(
    host: str, port: int
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    last: Exception | None = None
    for _ in range(CONNECT_RETRIES):
        try:
            return await asyncio.open_connection(host, port)
        except OSError as exc:
            last = exc
            await asyncio.sleep(CONNECT_DELAY_S)
    raise ConnectionError(
        f"could not connect to {host}:{port} after "
        f"{CONNECT_RETRIES * CONNECT_DELAY_S:.0f} s"
    ) from last


async def request_shutdown(host: str, port: int) -> None:
    """Ask a running server to drain gracefully and exit."""
    reader, writer = await _connect(host, port)
    writer.write(b'{"op": "shutdown", "id": 0}\n')
    await writer.drain()
    await reader.readline()  # the ack
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass


async def run_loadtest(
    host: str,
    port: int,
    workload: list[tuple[str, dict[str, Any]]],
    rate: float,
    arrival_seed: int = 1,
) -> dict[str, Any]:
    """Drive one connection through ``workload`` at Poisson ``rate``;
    returns a report dict (raw latencies under ``latencies_s``)."""
    reader, writer = await _connect(host, port)
    loop = asyncio.get_running_loop()
    waiting: dict[int, asyncio.Future] = {
        rid: loop.create_future() for rid in range(len(workload))
    }
    futures = dict(waiting)

    async def _read_responses() -> None:
        while waiting:
            line = await reader.readline()
            if not line:
                for fut in waiting.values():
                    if not fut.done():
                        fut.set_exception(ConnectionError("server hung up"))
                return
            doc = json.loads(line)
            fut = waiting.pop(doc.get("id"), None)
            if fut is not None and not fut.done():
                fut.set_result(doc)

    reader_task = loop.create_task(_read_responses())

    rng = random.Random(arrival_seed)  # arrival process, own stream
    t_start = loop.time()
    t_next = t_start
    for rid, (kind, params) in enumerate(workload):
        delay = t_next - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        writer.write(
            (json.dumps(
                {"op": "query", "id": rid, "kind": kind, "params": params}
            ) + "\n").encode()
        )
        await writer.drain()
        t_next += rng.expovariate(rate)

    responses = await asyncio.gather(*futures.values(), return_exceptions=True)
    wall_s = loop.time() - t_start
    await reader_task
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass

    completed = rejected = errors = 0
    served: dict[str, int] = {"cache": 0, "coalesced": 0, "computed": 0}
    latencies: list[float] = []
    for doc in responses:
        if isinstance(doc, Exception):
            errors += 1
        elif doc.get("ok"):
            completed += 1
            served[doc["served"]] = served.get(doc["served"], 0) + 1
            latencies.append(doc["latency_s"])
        elif doc.get("error") == "overloaded":
            rejected += 1
        else:
            errors += 1
    return {
        "requests": len(workload),
        "completed": completed,
        "rejected": rejected,
        "errors": errors,
        "served": served,
        "wall_s": wall_s,
        "latencies_s": latencies,
    }


async def run_loadtest_fleet(
    host: str,
    port: int,
    n_requests: int,
    rate: float,
    seed: int = 0,
    hot_fraction: float = 0.9,
    connections: int = 1,
    shutdown_after: bool = False,
) -> dict[str, Any]:
    """Split one seeded workload round-robin across ``connections``
    concurrent clients (sharing the offered rate) and merge the reports."""
    workload = build_workload(n_requests, seed=seed, hot_fraction=hot_fraction)
    connections = max(1, min(connections, len(workload) or 1))
    shards = [workload[i::connections] for i in range(connections)]
    per_conn_rate = rate / connections
    reports = await asyncio.gather(
        *(
            run_loadtest(
                host, port, shard, per_conn_rate, arrival_seed=seed + 1 + i
            )
            for i, shard in enumerate(shards)
        )
    )
    if shutdown_after:
        await request_shutdown(host, port)

    served: dict[str, int] = {"cache": 0, "coalesced": 0, "computed": 0}
    latencies: list[float] = []
    merged: dict[str, Any] = {
        "requests": 0, "completed": 0, "rejected": 0, "errors": 0,
    }
    wall_s = 0.0
    for rep in reports:
        for key in ("requests", "completed", "rejected", "errors"):
            merged[key] += rep[key]
        for key, count in rep["served"].items():
            served[key] = served.get(key, 0) + count
        latencies.extend(rep["latencies_s"])
        wall_s = max(wall_s, rep["wall_s"])

    completed = merged["completed"]
    merged.update(
        served=served,
        wall_s=wall_s,
        connections=connections,
        offered_rate_rps=rate,
        throughput_rps=completed / wall_s if wall_s > 0 else 0.0,
        hit_ratio=(
            (served["cache"] + served["coalesced"]) / completed
            if completed else 0.0
        ),
        answered_ratio=(
            (completed + merged["rejected"]) / merged["requests"]
            if merged["requests"] else 0.0
        ),
    )
    if latencies:
        merged["p50_latency_s"] = percentile(latencies, 0.50)
        merged["p99_latency_s"] = percentile(latencies, 0.99)
    return merged


def format_report(report: dict[str, Any]) -> str:
    lines = [
        f"loadtest: {report['requests']} requests in "
        f"{report['wall_s']:.2f} s over {report['connections']} "
        f"connection(s) (offered {report['offered_rate_rps']:.0f} rps, "
        f"completed {report['throughput_rps']:.0f} rps)",
        f"  completed {report['completed']}, "
        f"rejected {report['rejected']}, errors {report['errors']}",
        "  served: "
        + ", ".join(
            f"{k} {v}" for k, v in sorted(report["served"].items())
        )
        + f"  (hit ratio {report['hit_ratio']:.1%})",
    ]
    if "p50_latency_s" in report:
        lines.append(
            f"  latency: p50 {report['p50_latency_s'] * 1e3:.2f} ms, "
            f"p99 {report['p99_latency_s'] * 1e3:.2f} ms"
        )
    return "\n".join(lines)
