"""``repro loadtest`` — seeded open-loop load generator for ``repro serve``.

Open-loop means arrivals are scheduled by a Poisson process at the
requested rate regardless of how fast responses come back — the
arrival schedule never adapts to server latency, so the generator
measures the server rather than its own politeness (closed-loop
clients understate tail latency under load).

The workload is deliberately duplicate-heavy, because that is the shape
of real traffic against a reproduction service: ``hot_fraction`` of
requests (default 0.9) draw from a small hot set of operating points,
the rest from the full quick-campaign sweep grid.  Everything is
derived from the seed, so a loadtest run is reproducible
request-for-request.

Each connection drives its share of the workload with id-matched
responses — the server handles queries concurrently per connection, so
duplicates in flight genuinely exercise single-flight coalescing.

A fixed-rate open-loop run can only tell you the server *kept up*, not
where its ceiling is: :func:`run_saturation` (``repro loadtest
--max-rate``) ramps the offered rate until the tail degrades and
reports ``max_sustainable_ops_per_s`` — the number BENCH_serve.json's
scaling entries are built from.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any

from repro.serve.frontend import percentile
from repro.serve.wire import (
    BadFrame,
    DecodeMemo,
    EncodeMemo,
    WireConnection,
    WireError,
)

#: How long the generator keeps retrying the initial connect (CI boots
#: the server as a sibling process and races it to the port).
CONNECT_RETRIES = 100
CONNECT_DELAY_S = 0.1


def build_workload(
    n_requests: int,
    seed: int = 0,
    hot_fraction: float = 0.9,
    hot_set_size: int = 5,
) -> list[tuple[str, dict[str, Any]]]:
    """A seeded, duplicate-heavy request sequence over the sweep
    operating points (sweep_base + every (mode, platform, freq) cell)."""
    from repro.core.study import MobileSoCStudy

    study = MobileSoCStudy()
    distinct: list[tuple[str, dict[str, Any]]] = [("sweep_base", {})]
    for mode in ("single", "multi"):
        for name, platform in study.platforms.items():
            for freq in platform.soc.dvfs.frequencies():
                distinct.append(
                    ("sweep_point",
                     {"mode": mode, "platform": name, "freq": freq})
                )
    rng = random.Random(seed)
    hot = distinct[: max(1, min(hot_set_size, len(distinct)))]
    workload = []
    for _ in range(n_requests):
        pool = hot if rng.random() < hot_fraction else distinct
        workload.append(rng.choice(pool))
    return workload


async def _connect(
    host: str, port: int
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    last: Exception | None = None
    for _ in range(CONNECT_RETRIES):
        try:
            return await asyncio.open_connection(host, port)
        except OSError as exc:
            last = exc
            await asyncio.sleep(CONNECT_DELAY_S)
    raise ConnectionError(
        f"could not connect to {host}:{port} after "
        f"{CONNECT_RETRIES * CONNECT_DELAY_S:.0f} s"
    ) from last


async def request_shutdown(host: str, port: int) -> None:
    """Ask a running server to drain gracefully and exit."""
    reader, writer = await _connect(host, port)
    writer.write(b'{"op": "shutdown", "id": 0}\n')
    await writer.drain()
    await reader.readline()  # the ack
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass


async def run_loadtest_direct(
    host: str,
    port: int,
    workload: list[tuple[str, dict[str, Any]]],
    rate: float,
    arrival_seed: int = 1,
    wire: str = "json",
) -> dict[str, Any]:
    """The direct data path: one :class:`~repro.serve.client.RingClient`
    learns the topology from the router at ``host:port`` once, then
    drives ``workload`` at Poisson ``rate`` straight at each key's home
    shard (router fallback on trouble).  Same report shape as
    :func:`run_loadtest` plus the client's routing counters."""
    from repro.serve.client import RingClient

    client = RingClient(host, port, wire=wire)
    last: Exception | None = None
    for _ in range(CONNECT_RETRIES):
        try:
            await client.connect()
            break
        except (ConnectionError, OSError) as exc:
            last = exc
            await asyncio.sleep(CONNECT_DELAY_S)
    else:
        raise ConnectionError(
            f"could not learn the topology from {host}:{port}"
        ) from last

    loop = asyncio.get_running_loop()
    rng = random.Random(arrival_seed)
    tasks: list[asyncio.Task] = []
    t_start = loop.time()
    t_next = t_start
    for kind, params in workload:
        delay = t_next - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        # Open-loop like the proxied path: fire-and-collect, the
        # arrival schedule never waits on a response.
        tasks.append(loop.create_task(client.query(kind, params)))
        t_next += rng.expovariate(rate)
    send_wall_s = loop.time() - t_start
    responses = await asyncio.gather(*tasks, return_exceptions=True)
    wall_s = loop.time() - t_start
    await client.close()

    report = _tally(workload, responses, wall_s, send_wall_s)
    report["direct_queries"] = client.direct_queries
    report["router_fallbacks"] = client.router_fallbacks
    return report


def _tally(
    workload: list[tuple[str, dict[str, Any]]],
    responses: list[Any],
    wall_s: float,
    send_wall_s: float,
) -> dict[str, Any]:
    """Fold raw per-request outcomes into one report dict."""
    completed = rejected = errors = 0
    served: dict[str, int] = {
        "cache": 0, "coalesced": 0, "computed": 0, "peer": 0,
    }
    latencies: list[float] = []
    for doc in responses:
        if isinstance(doc, Exception):
            errors += 1
        elif doc.get("ok"):
            completed += 1
            served[doc["served"]] = served.get(doc["served"], 0) + 1
            latencies.append(doc["latency_s"])
        elif doc.get("error") == "overloaded":
            rejected += 1
        else:
            errors += 1
    return {
        "requests": len(workload),
        "completed": completed,
        "rejected": rejected,
        "errors": errors,
        "served": served,
        "wall_s": wall_s,
        "send_wall_s": send_wall_s,
        "latencies_s": latencies,
    }


async def run_loadtest(
    host: str,
    port: int,
    workload: list[tuple[str, dict[str, Any]]],
    rate: float,
    arrival_seed: int = 1,
    wire: str = "json",
    memos: tuple[EncodeMemo, DecodeMemo] | None = None,
) -> dict[str, Any]:
    """Drive one connection through ``workload`` at Poisson ``rate``;
    returns a report dict (raw latencies under ``latencies_s``).

    ``wire="binary"`` negotiates the ``binary1`` framing first; a
    server that declines leaves the run on JSON-lines (the report still
    completes, which is the downgrade contract).  ``memos`` lets a
    fleet share one codec-cache pair across its connections — the
    workload's hot set references the same params objects in every
    shard, so the caches compound.
    """
    reader, writer = await _connect(host, port)
    encode_memo, decode_memo = memos if memos is not None else (None, None)
    conn = WireConnection(
        reader, writer, allow_binary=False,
        encode_memo=encode_memo, decode_memo=decode_memo,
    )
    if wire == "binary":
        await conn.negotiate()
    loop = asyncio.get_running_loop()
    waiting: dict[int, asyncio.Future] = {
        rid: loop.create_future() for rid in range(len(workload))
    }
    futures = dict(waiting)

    def _fail_outstanding(exc: Exception) -> None:
        """Resolve every unanswered request as a connection error.

        Pre-fix, a connection dropped mid-run left these futures
        unresolved forever: ``writer.drain()`` raising aborted the
        arrival loop before the gather, and a readline *exception* (an
        RST is ``ConnectionResetError``, not a clean EOF) killed
        ``_read_responses`` without failing anything — so the gather
        below waited on futures nobody would ever resolve.
        """
        for fut in waiting.values():
            if not fut.done():
                fut.set_exception(
                    ConnectionError(f"connection lost mid-run: {exc}")
                )
        waiting.clear()

    async def _read_responses() -> None:
        try:
            while waiting:
                doc = await conn.recv()
                if doc is None:
                    _fail_outstanding(ConnectionError("server hung up"))
                    return
                fut = waiting.pop(doc.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(doc)
        except (ConnectionError, OSError, WireError, BadFrame) as exc:
            _fail_outstanding(exc)

    reader_task = loop.create_task(_read_responses())

    rng = random.Random(arrival_seed)  # arrival process, own stream
    t_start = loop.time()
    t_next = t_start
    try:
        for rid, (kind, params) in enumerate(workload):
            delay = t_next - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            conn.write_request(
                {"op": "query", "id": rid, "kind": kind, "params": params}
            )
            await conn.drain()
            t_next += rng.expovariate(rate)
    except (ConnectionError, OSError) as exc:
        # The never-sent requests (and any sent-but-unanswered ones)
        # fail as errors in the report instead of hanging the gather.
        _fail_outstanding(exc)

    # The arrival process's realized duration: a Poisson schedule's
    # gap sum deviates noticeably from n/rate at small n, so capacity
    # judgements (run_saturation) compare against the rate actually
    # offered, not the nominal one.
    send_wall_s = loop.time() - t_start
    responses = await asyncio.gather(*futures.values(), return_exceptions=True)
    wall_s = loop.time() - t_start
    reader_task.cancel()
    try:
        await reader_task
    except asyncio.CancelledError:
        pass
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass

    report = _tally(workload, list(responses), wall_s, send_wall_s)
    # What the connection actually spoke after negotiation — "json"
    # even under wire="binary" when the server declined.
    report["wire"] = conn.wire
    return report


async def run_loadtest_fleet(
    host: str,
    port: int,
    n_requests: int,
    rate: float,
    seed: int = 0,
    hot_fraction: float = 0.9,
    connections: int = 1,
    shutdown_after: bool = False,
    direct: bool = False,
    wire: str = "json",
) -> dict[str, Any]:
    """Split one seeded workload round-robin across ``connections``
    concurrent clients (sharing the offered rate) and merge the reports.

    ``direct=True`` swaps each client for a ring-aware one
    (:func:`run_loadtest_direct`): ``host:port`` must then be the
    *router*, which serves only topology discovery and fallback while
    the queries flow straight to the home shards.
    """
    workload = build_workload(n_requests, seed=seed, hot_fraction=hot_fraction)
    connections = max(1, min(connections, len(workload) or 1))
    shards = [workload[i::connections] for i in range(connections)]
    per_conn_rate = rate / connections
    memos = (
        (EncodeMemo(), DecodeMemo())
        if wire == "binary" and not direct else None
    )
    reports = await asyncio.gather(
        *(
            run_loadtest_direct(
                host, port, shard, per_conn_rate,
                arrival_seed=seed + 1 + i, wire=wire,
            )
            if direct else
            run_loadtest(
                host, port, shard, per_conn_rate,
                arrival_seed=seed + 1 + i, wire=wire, memos=memos,
            )
            for i, shard in enumerate(shards)
        )
    )
    if shutdown_after:
        await request_shutdown(host, port)

    served: dict[str, int] = {
        "cache": 0, "coalesced": 0, "computed": 0, "peer": 0,
    }
    latencies: list[float] = []
    merged: dict[str, Any] = {
        "requests": 0, "completed": 0, "rejected": 0, "errors": 0,
    }
    wall_s = 0.0
    send_wall_s = 0.0
    for rep in reports:
        for key in ("requests", "completed", "rejected", "errors"):
            merged[key] += rep[key]
        for key in ("direct_queries", "router_fallbacks"):
            if key in rep:
                merged[key] = merged.get(key, 0) + rep[key]
        for key, count in rep["served"].items():
            served[key] = served.get(key, 0) + count
        latencies.extend(rep["latencies_s"])
        wall_s = max(wall_s, rep["wall_s"])
        send_wall_s = max(send_wall_s, rep["send_wall_s"])

    completed = merged["completed"]
    merged.update(
        served=served,
        wall_s=wall_s,
        send_wall_s=send_wall_s,
        connections=connections,
        wire=reports[0].get("wire", wire),
        offered_rate_rps=rate,
        throughput_rps=completed / wall_s if wall_s > 0 else 0.0,
        hit_ratio=(
            (served["cache"] + served["coalesced"] + served["peer"])
            / completed
            if completed else 0.0
        ),
        answered_ratio=(
            (completed + merged["rejected"]) / merged["requests"]
            if merged["requests"] else 0.0
        ),
    )
    if latencies:
        merged["p50_latency_s"] = percentile(latencies, 0.50)
        merged["p99_latency_s"] = percentile(latencies, 0.99)
    return merged


async def run_saturation(
    host: str,
    port: int,
    seed: int = 0,
    hot_fraction: float = 0.9,
    connections: int = 4,
    start_rate: float = 500.0,
    growth: float = 2.0,
    step_seconds: float = 0.5,
    max_steps: int = 10,
    p99_limit_s: float = 0.05,
    min_step_requests: int = 200,
    max_step_requests: int = 20_000,
    direct: bool = False,
    wire: str = "json",
) -> dict[str, Any]:
    """Closed-loop saturation probe: find the real throughput ceiling.

    The plain open-loop loadtest reports ~offered rate whenever the
    server keeps up — cold and warm alike — so it measures the *load
    generator*, not capacity (BENCH_serve's pre-fix numbers were ~1000
    ops/s for both passes while the warm p99 was 0.22 ms).  This mode
    closes the loop on the *rate* axis: ramp the offered rate
    geometrically and at each step require the server to actually
    sustain it — delivered throughput within 90% of offered, p99 under
    ``p99_limit_s``, no errors.  The last sustained step's delivered
    throughput is ``max_sustainable_ops_per_s``; the first degraded
    step is reported alongside so the ceiling is bracketed.

    Each step reuses the same seeded duplicate-heavy workload (sized to
    ~``step_seconds`` of offered load), so successive steps measure the
    same traffic shape at increasing pressure.
    """
    if growth <= 1.0:
        raise ValueError("growth must be > 1")
    steps: list[dict[str, Any]] = []
    rate = start_rate
    best_rate = 0.0
    best_p99: float | None = None
    saturated = False
    for _ in range(max_steps):
        n_requests = max(
            min_step_requests,
            min(max_step_requests, int(rate * step_seconds)),
        )
        report = await run_loadtest_fleet(
            host, port, n_requests=n_requests, rate=rate, seed=seed,
            hot_fraction=hot_fraction, connections=connections,
            direct=direct, wire=wire,
        )
        p99 = report.get("p99_latency_s")
        achieved = report["throughput_rps"]
        # Judge against the rate the Poisson process actually offered:
        # the realized gap sum deviates from n/rate at step-sized n, so
        # holding the server to the nominal rate failed steps it had in
        # fact kept up with (arrival noise, not capacity).
        realized = (
            report["requests"] / report["send_wall_s"]
            if report["send_wall_s"] > 0 else rate
        )
        sustained = (
            report["errors"] == 0
            and report["rejected"] == 0
            and achieved >= 0.9 * min(rate, realized)
            and (p99 is None or p99 <= p99_limit_s)
        )
        step: dict[str, Any] = {
            "offered_rate_rps": rate,
            "realized_offered_rps": realized,
            "achieved_rps": achieved,
            "completed": report["completed"],
            "rejected": report["rejected"],
            "errors": report["errors"],
            "p99_latency_s": p99,
            "hit_ratio": report["hit_ratio"],
            "sustained": sustained,
        }
        if direct:
            step["direct_queries"] = report.get("direct_queries", 0)
            step["router_fallbacks"] = report.get("router_fallbacks", 0)
        steps.append(step)
        if not sustained:
            saturated = True
            break
        best_rate = achieved
        best_p99 = p99
        rate *= growth
    return {
        "mode": "saturation",
        "connections": connections,
        "direct": direct,
        "wire": wire,
        "p99_limit_s": p99_limit_s,
        "steps": steps,
        "max_sustainable_ops_per_s": best_rate,
        "sustained_p99_s": best_p99,
        "saturated": saturated,  # False: the ramp ran out before the server did
    }


def format_saturation_report(report: dict[str, Any]) -> str:
    lines = [
        f"saturation: {len(report['steps'])} step(s) over "
        f"{report['connections']} connection(s)"
        + (" [direct data path]" if report.get("direct") else "")
        + f", p99 limit {report['p99_limit_s'] * 1e3:.0f} ms"
    ]
    for step in report["steps"]:
        p99 = step["p99_latency_s"]
        p99_text = "   n/a" if p99 is None else f"{p99 * 1e3:7.2f} ms"
        lines.append(
            f"  offered {step['offered_rate_rps']:8.0f} rps -> "
            f"achieved {step['achieved_rps']:8.0f} rps, "
            f"p99 {p99_text}, "
            + ("sustained" if step["sustained"] else
               f"DEGRADED (rejected {step['rejected']}, "
               f"errors {step['errors']})")
        )
    lines.append(
        f"  max sustainable: {report['max_sustainable_ops_per_s']:.0f} ops/s"
        + ("" if report["saturated"]
           else "  (ramp exhausted before saturation)")
    )
    return "\n".join(lines)


def format_report(report: dict[str, Any]) -> str:
    lines = [
        f"loadtest: {report['requests']} requests in "
        f"{report['wall_s']:.2f} s over {report['connections']} "
        f"connection(s) (offered {report['offered_rate_rps']:.0f} rps, "
        f"completed {report['throughput_rps']:.0f} rps)",
        f"  completed {report['completed']}, "
        f"rejected {report['rejected']}, errors {report['errors']}",
        "  served: "
        + ", ".join(
            f"{k} {v}" for k, v in sorted(report["served"].items())
        )
        + f"  (hit ratio {report['hit_ratio']:.1%})",
    ]
    if "direct_queries" in report:
        lines.append(
            f"  routing: {report['direct_queries']} direct to home "
            f"shards, {report['router_fallbacks']} router fallback(s)"
        )
    if "p50_latency_s" in report:
        lines.append(
            f"  latency: p50 {report['p50_latency_s'] * 1e3:.2f} ms, "
            f"p99 {report['p99_latency_s'] * 1e3:.2f} ms"
        )
    return "\n".join(lines)
